/**
 * @file
 * A small two-pass RV32I assembler for writing the hand-written test
 * programs used to verify the extended cores (paper Sec. 5.3).
 *
 * Supported: the RV32I base mnemonics, common pseudo-instructions
 * (nop, mv, li, j, ret, beqz, bnez), labels, '#' comments, the .word
 * directive, and user-registered custom mnemonics for ISAX
 * instructions.
 */

#ifndef LONGNAIL_RVASM_ASSEMBLER_HH
#define LONGNAIL_RVASM_ASSEMBLER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace longnail {
namespace rvasm {

/** Result of assembling one source buffer. */
struct Program
{
    bool ok = false;
    std::string error;
    uint32_t baseAddr = 0;
    std::vector<uint32_t> words;
    std::map<std::string, uint32_t> labels;
};

/**
 * Encoder callback for a custom mnemonic: receives the parsed operand
 * strings (registers still in textual form) and returns the encoded
 * instruction word, or nullopt with @p error set.
 */
using CustomEncoder = std::function<std::optional<uint32_t>(
    const std::vector<std::string> &operands, std::string &error)>;

class Assembler
{
  public:
    /** Register an ISAX mnemonic. */
    void addCustomMnemonic(const std::string &name,
                           CustomEncoder encoder);

    /** Assemble @p source at @p base address. */
    Program assemble(const std::string &source, uint32_t base = 0);

    /** Parse a register name (x0..x31 or ABI name); -1 if invalid. */
    static int parseRegister(const std::string &text);

  private:
    std::map<std::string, CustomEncoder> custom_;
};

} // namespace rvasm
} // namespace longnail

#endif // LONGNAIL_RVASM_ASSEMBLER_HH
