#include "rvasm/assembler.hh"

#include <algorithm>
#include <cctype>

#include "support/strings.hh"

namespace longnail {
namespace rvasm {

namespace {

/** One parsed source statement. */
struct Statement
{
    int line = 0;
    std::string mnemonic;
    std::vector<std::string> operands;
    uint32_t address = 0;
    unsigned sizeWords = 1;
};

// Encoding helpers.
uint32_t
rType(unsigned funct7, unsigned rs2, unsigned rs1, unsigned funct3,
      unsigned rd, unsigned opcode)
{
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
iType(int32_t imm, unsigned rs1, unsigned funct3, unsigned rd,
      unsigned opcode)
{
    return (uint32_t(imm & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
sType(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3,
      unsigned opcode)
{
    uint32_t u = uint32_t(imm);
    return (((u >> 5) & 0x7f) << 25) | (rs2 << 20) | (rs1 << 15) |
           (funct3 << 12) | ((u & 0x1f) << 7) | opcode;
}

uint32_t
bType(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3)
{
    uint32_t u = uint32_t(imm);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
}

uint32_t
uType(int32_t imm, unsigned rd, unsigned opcode)
{
    return (uint32_t(imm) & 0xfffff000u) | (rd << 7) | opcode;
}

uint32_t
jType(int32_t imm, unsigned rd)
{
    uint32_t u = uint32_t(imm);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
           (rd << 7) | 0x6f;
}

bool
fitsSigned12(int64_t value)
{
    return value >= -2048 && value <= 2047;
}

} // namespace

int
Assembler::parseRegister(const std::string &text)
{
    static const std::map<std::string, int> abi = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},  {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},   {"s0", 8},  {"fp", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11},  {"a2", 12}, {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16},  {"a7", 17}, {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21},  {"s6", 22}, {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31},
    };
    auto it = abi.find(text);
    if (it != abi.end())
        return it->second;
    if (text.size() >= 2 && text[0] == 'x') {
        int n = 0;
        for (size_t i = 1; i < text.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(text[i])))
                return -1;
            n = n * 10 + (text[i] - '0');
        }
        return n <= 31 ? n : -1;
    }
    return -1;
}

void
Assembler::addCustomMnemonic(const std::string &name,
                             CustomEncoder encoder)
{
    custom_[name] = std::move(encoder);
}

Program
Assembler::assemble(const std::string &source, uint32_t base)
{
    Program program;
    program.baseAddr = base;

    auto fail = [&](int line, const std::string &msg) {
        program.ok = false;
        program.error = "line " + std::to_string(line) + ": " + msg;
        return program;
    };

    // --- pass 1: parse statements, assign addresses, record labels ---
    std::vector<Statement> statements;
    uint32_t address = base;
    int line_no = 0;
    for (std::string raw : split(source, '\n')) {
        ++line_no;
        size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw = raw.substr(0, hash);
        std::string text = trim(raw);
        // Labels (possibly several) at line start.
        while (true) {
            size_t colon = text.find(':');
            if (colon == std::string::npos)
                break;
            std::string label = trim(text.substr(0, colon));
            if (label.empty() ||
                label.find(' ') != std::string::npos)
                return fail(line_no, "malformed label");
            if (program.labels.count(label))
                return fail(line_no, "duplicate label '" + label + "'");
            program.labels[label] = address;
            text = trim(text.substr(colon + 1));
        }
        if (text.empty())
            continue;

        Statement stmt;
        stmt.line = line_no;
        size_t space = text.find_first_of(" \t");
        stmt.mnemonic = text.substr(0, space);
        std::transform(stmt.mnemonic.begin(), stmt.mnemonic.end(),
                       stmt.mnemonic.begin(), ::tolower);
        if (space != std::string::npos) {
            for (const std::string &op :
                 split(text.substr(space + 1), ','))
                stmt.operands.push_back(trim(op));
        }
        stmt.address = address;
        // Only 'li' may expand to two words; fixed in pass 1 so label
        // addresses are stable.
        if (stmt.mnemonic == "li") {
            if (stmt.operands.size() != 2)
                return fail(line_no, "li needs 2 operands");
            try {
                int64_t value = std::stoll(stmt.operands[1], nullptr, 0);
                stmt.sizeWords = fitsSigned12(value) ? 1 : 2;
            } catch (const std::exception &) {
                // Probably a label (resolved in pass 2); use the
                // two-word lui+addi form so any address fits.
                stmt.sizeWords = 2;
            }
        }
        address += stmt.sizeWords * 4;
        statements.push_back(std::move(stmt));
    }

    // --- pass 2: encode -------------------------------------------------
    auto reg = [&](const Statement &s, unsigned index,
                   int &out) -> bool {
        if (index >= s.operands.size())
            return false;
        out = parseRegister(s.operands[index]);
        return out >= 0;
    };
    auto immOrLabel = [&](const Statement &s, unsigned index,
                          int64_t &out) -> bool {
        if (index >= s.operands.size())
            return false;
        const std::string &text = s.operands[index];
        auto label = program.labels.find(text);
        if (label != program.labels.end()) {
            out = int64_t(label->second);
            return true;
        }
        try {
            size_t pos = 0;
            out = std::stoll(text, &pos, 0);
            return pos == text.size();
        } catch (const std::exception &) {
            return false;
        }
    };
    // "imm(rs1)" memory operand.
    auto memOperand = [&](const Statement &s, unsigned index,
                          int64_t &imm, int &rs1) -> bool {
        if (index >= s.operands.size())
            return false;
        const std::string &text = s.operands[index];
        size_t open = text.find('(');
        size_t close = text.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            return false;
        std::string imm_text = trim(text.substr(0, open));
        if (imm_text.empty())
            imm_text = "0";
        try {
            imm = std::stoll(imm_text, nullptr, 0);
        } catch (const std::exception &) {
            return false;
        }
        rs1 = parseRegister(trim(text.substr(open + 1,
                                             close - open - 1)));
        return rs1 >= 0;
    };

    for (const Statement &s : statements) {
        const std::string &m = s.mnemonic;
        int rd, rs1, rs2;
        int64_t imm;
        auto emit = [&](uint32_t word) {
            program.words.push_back(word);
        };

        // Custom ISAX mnemonics take precedence.
        auto custom = custom_.find(m);
        if (custom != custom_.end()) {
            std::string error;
            auto word = custom->second(s.operands, error);
            if (!word)
                return fail(s.line, error.empty() ? "bad operands"
                                                  : error);
            emit(*word);
            continue;
        }

        if (m == ".word") {
            if (!immOrLabel(s, 0, imm))
                return fail(s.line, ".word needs a value");
            emit(uint32_t(imm));
        } else if (m == "lui" || m == "auipc") {
            if (!reg(s, 0, rd) || !immOrLabel(s, 1, imm))
                return fail(s.line, "bad operands");
            emit(uType(int32_t(imm << 12), rd,
                       m == "lui" ? 0x37 : 0x17));
        } else if (m == "jal") {
            // jal rd, label  |  jal label (rd = ra)
            if (s.operands.size() == 1) {
                rd = 1;
                if (!immOrLabel(s, 0, imm))
                    return fail(s.line, "bad jump target");
            } else {
                if (!reg(s, 0, rd) || !immOrLabel(s, 1, imm))
                    return fail(s.line, "bad operands");
            }
            emit(jType(int32_t(imm - s.address), unsigned(rd)));
        } else if (m == "j") {
            if (!immOrLabel(s, 0, imm))
                return fail(s.line, "bad jump target");
            emit(jType(int32_t(imm - s.address), 0));
        } else if (m == "jalr") {
            // jalr rd, imm(rs1) | jalr rd, rs1, imm | jalr rs1
            if (s.operands.size() == 1) {
                if (!reg(s, 0, rs1))
                    return fail(s.line, "bad operands");
                emit(iType(0, unsigned(rs1), 0, 1, 0x67));
            } else if (memOperand(s, 1, imm, rs1)) {
                if (!reg(s, 0, rd))
                    return fail(s.line, "bad operands");
                emit(iType(int32_t(imm), unsigned(rs1), 0,
                           unsigned(rd), 0x67));
            } else {
                if (!reg(s, 0, rd) || !reg(s, 1, rs1) ||
                    !immOrLabel(s, 2, imm))
                    return fail(s.line, "bad operands");
                emit(iType(int32_t(imm), unsigned(rs1), 0,
                           unsigned(rd), 0x67));
            }
        } else if (m == "ret") {
            emit(iType(0, 1, 0, 0, 0x67));
        } else if (m == "beq" || m == "bne" || m == "blt" ||
                   m == "bge" || m == "bltu" || m == "bgeu") {
            if (!reg(s, 0, rs1) || !reg(s, 1, rs2) ||
                !immOrLabel(s, 2, imm))
                return fail(s.line, "bad operands");
            unsigned funct3 = m == "beq"    ? 0
                              : m == "bne"  ? 1
                              : m == "blt"  ? 4
                              : m == "bge"  ? 5
                              : m == "bltu" ? 6
                                            : 7;
            emit(bType(int32_t(imm - s.address), unsigned(rs2),
                       unsigned(rs1), funct3));
        } else if (m == "beqz" || m == "bnez") {
            if (!reg(s, 0, rs1) || !immOrLabel(s, 1, imm))
                return fail(s.line, "bad operands");
            emit(bType(int32_t(imm - s.address), 0, unsigned(rs1),
                       m == "beqz" ? 0 : 1));
        } else if (m == "lb" || m == "lh" || m == "lw" || m == "lbu" ||
                   m == "lhu") {
            if (!reg(s, 0, rd) || !memOperand(s, 1, imm, rs1))
                return fail(s.line, "bad operands");
            unsigned funct3 = m == "lb"    ? 0
                              : m == "lh"  ? 1
                              : m == "lw"  ? 2
                              : m == "lbu" ? 4
                                           : 5;
            emit(iType(int32_t(imm), unsigned(rs1), funct3,
                       unsigned(rd), 0x03));
        } else if (m == "sb" || m == "sh" || m == "sw") {
            if (!reg(s, 0, rs2) || !memOperand(s, 1, imm, rs1))
                return fail(s.line, "bad operands");
            unsigned funct3 = m == "sb" ? 0 : m == "sh" ? 1 : 2;
            emit(sType(int32_t(imm), unsigned(rs2), unsigned(rs1),
                       funct3, 0x23));
        } else if (m == "addi" || m == "slti" || m == "sltiu" ||
                   m == "xori" || m == "ori" || m == "andi") {
            if (!reg(s, 0, rd) || !reg(s, 1, rs1) ||
                !immOrLabel(s, 2, imm))
                return fail(s.line, "bad operands");
            unsigned funct3 = m == "addi"    ? 0
                              : m == "slti"  ? 2
                              : m == "sltiu" ? 3
                              : m == "xori"  ? 4
                              : m == "ori"   ? 6
                                             : 7;
            emit(iType(int32_t(imm), unsigned(rs1), funct3,
                       unsigned(rd), 0x13));
        } else if (m == "slli" || m == "srli" || m == "srai") {
            if (!reg(s, 0, rd) || !reg(s, 1, rs1) ||
                !immOrLabel(s, 2, imm))
                return fail(s.line, "bad operands");
            unsigned funct3 = m == "slli" ? 1 : 5;
            unsigned funct7 = m == "srai" ? 0x20 : 0;
            emit(rType(funct7, unsigned(imm) & 31, unsigned(rs1),
                       funct3, unsigned(rd), 0x13));
        } else if (m == "add" || m == "sub" || m == "sll" ||
                   m == "slt" || m == "sltu" || m == "xor" ||
                   m == "srl" || m == "sra" || m == "or" ||
                   m == "and") {
            if (!reg(s, 0, rd) || !reg(s, 1, rs1) || !reg(s, 2, rs2))
                return fail(s.line, "bad operands");
            unsigned funct3 = m == "add" || m == "sub" ? 0
                              : m == "sll"             ? 1
                              : m == "slt"             ? 2
                              : m == "sltu"            ? 3
                              : m == "xor"             ? 4
                              : m == "srl" || m == "sra" ? 5
                              : m == "or"              ? 6
                                                       : 7;
            unsigned funct7 = (m == "sub" || m == "sra") ? 0x20 : 0;
            emit(rType(funct7, unsigned(rs2), unsigned(rs1), funct3,
                       unsigned(rd), 0x33));
        } else if (m == "mv") {
            if (!reg(s, 0, rd) || !reg(s, 1, rs1))
                return fail(s.line, "bad operands");
            emit(iType(0, unsigned(rs1), 0, unsigned(rd), 0x13));
        } else if (m == "li") {
            if (!reg(s, 0, rd) || !immOrLabel(s, 1, imm))
                return fail(s.line, "bad operands");
            if (s.sizeWords == 1) {
                emit(iType(int32_t(imm), 0, 0, unsigned(rd), 0x13));
            } else {
                uint32_t value = uint32_t(imm);
                uint32_t hi = (value + 0x800) & 0xfffff000u;
                int32_t lo = int32_t(value - hi);
                emit(uType(int32_t(hi), unsigned(rd), 0x37));
                emit(iType(lo, unsigned(rd), 0, unsigned(rd), 0x13));
            }
        } else if (m == "nop") {
            emit(iType(0, 0, 0, 0, 0x13));
        } else if (m == "ecall") {
            emit(0x00000073);
        } else if (m == "ebreak") {
            emit(0x00100073);
        } else {
            return fail(s.line, "unknown mnemonic '" + m + "'");
        }
    }

    program.ok = true;
    return program;
}

} // namespace rvasm
} // namespace longnail
