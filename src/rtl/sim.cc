#include "rtl/sim.hh"

#include <algorithm>
#include <atomic>

#include "ir/eval.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"

namespace longnail {
namespace rtl {

namespace {
std::atomic<SimEngine> g_default_engine{SimEngine::Compiled};
} // namespace

SimEngine
defaultSimEngine()
{
    return g_default_engine.load(std::memory_order_relaxed);
}

void
setDefaultSimEngine(SimEngine engine)
{
    g_default_engine.store(engine, std::memory_order_relaxed);
}

std::optional<SimEngine>
parseSimEngine(const std::string &name)
{
    if (name == "interp")
        return SimEngine::Interp;
    if (name == "compiled")
        return SimEngine::Compiled;
    return std::nullopt;
}

const char *
simEngineName(SimEngine engine)
{
    return engine == SimEngine::Interp ? "interp" : "compiled";
}

Simulator::Simulator(const Module &module)
    : Simulator(module, defaultSimEngine())
{
}

Simulator::Simulator(const Module &module, SimEngine engine)
    : module_(module)
{
    std::string err = module.verify();
    if (!err.empty())
        LN_PANIC("cannot simulate invalid module '", module.name(),
                 "': ", err);
    for (const auto &[name, net] : module.inputs())
        inputIndex_.emplace(name, net);
    for (const auto &port : module.outputs())
        outputIndex_.emplace(port.name, port.net);
    if (engine == SimEngine::Compiled) {
        machine_ = std::make_unique<simjit::Machine>(
            simjit::Program::compile(module));
        return;
    }
    values_.reserve(module.numNets());
    for (NetId net = 0; net < module.numNets(); ++net)
        values_.emplace_back(module.widthOf(net), 0);
    for (size_t i = 0; i < module.nodes().size(); ++i) {
        if (module.nodes()[i].kind == NodeKind::Register) {
            regNodes_.push_back(i);
            regState_.push_back(module.nodes()[i].value);
        }
    }
}

Simulator::Simulator(const Module &module,
                     std::shared_ptr<const simjit::Program> program)
    : module_(module)
{
    if (!program || &program->module() != &module)
        LN_PANIC("shared program does not match module '",
                 module.name(), "'");
    for (const auto &[name, net] : module.inputs())
        inputIndex_.emplace(name, net);
    for (const auto &port : module.outputs())
        outputIndex_.emplace(port.name, port.net);
    machine_ = std::make_unique<simjit::Machine>(std::move(program));
}

Simulator::~Simulator()
{
    if (cycles_ > 0)
        obs::count("sim.cycles", cycles_);
}

void
Simulator::reset()
{
    if (machine_) {
        machine_->reset();
        return;
    }
    for (size_t i = 0; i < regNodes_.size(); ++i)
        regState_[i] = module_.nodes()[regNodes_[i]].value;
}

NetId
Simulator::inputNet(const std::string &name) const
{
    auto it = inputIndex_.find(name);
    if (it == inputIndex_.end())
        LN_PANIC("module '", module_.name(), "' has no input '", name,
                 "'");
    return it->second;
}

NetId
Simulator::outputNet(const std::string &name) const
{
    auto it = outputIndex_.find(name);
    if (it == outputIndex_.end())
        LN_PANIC("module '", module_.name(), "' has no output '", name,
                 "'");
    return it->second;
}

void
Simulator::setInput(const std::string &name, const ApInt &value)
{
    setInput(inputNet(name), value);
}

void
Simulator::setInput(const std::string &name, uint64_t value)
{
    setInput(inputNet(name), value);
}

void
Simulator::setInput(NetId net, const ApInt &value)
{
    if (machine_) {
        machine_->setInput(net, value);
        return;
    }
    values_.at(net) = value.zextOrTrunc(module_.widthOf(net));
}

void
Simulator::setInput(NetId net, uint64_t value)
{
    if (machine_) {
        machine_->setInput(net, value);
        return;
    }
    values_.at(net) = ApInt(module_.widthOf(net), value);
}

void
Simulator::evalComb()
{
    if (machine_) {
        machine_->evalComb();
        return;
    }
    evalCombInterp();
}

void
Simulator::evalCombInterp()
{
    size_t reg_index = 0;
    for (const Node &node : module_.nodes()) {
        ApInt &out = values_[node.result];
        auto in = [&](unsigned i) -> const ApInt & {
            return values_[node.operands[i]];
        };
        switch (node.kind) {
          case NodeKind::Input:
            break; // driven externally
          case NodeKind::Constant:
            out = node.value;
            break;
          case NodeKind::Add:
            out = in(0) + in(1);
            break;
          case NodeKind::Sub:
            out = in(0) - in(1);
            break;
          case NodeKind::Mul:
            out = in(0) * in(1);
            break;
          case NodeKind::DivU:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).udiv(in(1));
            break;
          case NodeKind::DivS:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).sdiv(in(1));
            break;
          case NodeKind::ModU:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).urem(in(1));
            break;
          case NodeKind::ModS:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).srem(in(1));
            break;
          case NodeKind::And:
            out = in(0) & in(1);
            break;
          case NodeKind::Or:
            out = in(0) | in(1);
            break;
          case NodeKind::Xor:
            out = in(0) ^ in(1);
            break;
          case NodeKind::Shl:
          case NodeKind::ShrU:
          case NodeKind::ShrS: {
            uint64_t raw = in(1).activeBits() > 32
                               ? in(0).width()
                               : in(1).toUint64();
            unsigned amount = unsigned(
                std::min<uint64_t>(raw, in(0).width()));
            if (node.kind == NodeKind::Shl)
                out = in(0).shl(amount);
            else if (node.kind == NodeKind::ShrU)
                out = in(0).lshr(amount);
            else
                out = in(0).ashr(amount);
            break;
          }
          case NodeKind::ICmp:
            out = ApInt(1, ir::applyICmp(node.pred, in(0), in(1)));
            break;
          case NodeKind::Mux:
            out = in(0).isZero() ? in(2) : in(1);
            break;
          case NodeKind::Extract:
            out = in(0).extract(node.lo, out.width());
            break;
          case NodeKind::Concat: {
            ApInt acc = in(node.operands.size() - 1);
            for (size_t i = node.operands.size() - 1; i-- > 0;)
                acc = in(i).concat(acc);
            out = acc;
            break;
          }
          case NodeKind::Replicate:
            out = in(0).isZero() ? ApInt(out.width(), 0)
                                 : ApInt::allOnes(out.width());
            break;
          case NodeKind::Rom: {
            uint64_t index = in(0).activeBits() > 63
                                 ? node.romValues.size()
                                 : in(0).toUint64();
            out = index < node.romValues.size()
                      ? node.romValues[index].zextOrTrunc(out.width())
                      : ApInt(out.width(), 0);
            break;
          }
          case NodeKind::Register:
            out = regState_[reg_index++];
            break;
        }
    }
}

void
Simulator::clockEdge()
{
    ++simjit::tlsSimStats().cycles;
    ++cycles_;
    if (machine_) {
        machine_->clockEdge();
        return;
    }
    for (size_t i = 0; i < regNodes_.size(); ++i) {
        const Node &node = module_.nodes()[regNodes_[i]];
        bool enabled = node.operands.size() < 2 ||
                       !values_[node.operands[1]].isZero();
        if (enabled)
            regState_[i] = values_[node.operands[0]];
    }
}

const ApInt &
Simulator::net(NetId id) const
{
    if (machine_)
        return machine_->netRef(id);
    return values_.at(id);
}

uint64_t
Simulator::netU64(NetId id) const
{
    if (machine_)
        return machine_->netU64(id);
    return values_.at(id).toUint64();
}

const ApInt &
Simulator::output(const std::string &name) const
{
    return net(outputNet(name));
}

uint64_t
Simulator::outputU64(const std::string &name) const
{
    return netU64(outputNet(name));
}

} // namespace rtl
} // namespace longnail
