#include "rtl/sim.hh"

#include <algorithm>

#include "ir/eval.hh"
#include "support/logging.hh"

namespace longnail {
namespace rtl {

Simulator::Simulator(const Module &module) : module_(module)
{
    std::string err = module.verify();
    if (!err.empty())
        LN_PANIC("cannot simulate invalid module '", module.name(),
                 "': ", err);
    values_.reserve(module.numNets());
    for (NetId net = 0; net < module.numNets(); ++net)
        values_.emplace_back(module.widthOf(net), 0);
    for (size_t i = 0; i < module.nodes().size(); ++i) {
        if (module.nodes()[i].kind == NodeKind::Register) {
            regNodes_.push_back(i);
            regState_.push_back(module.nodes()[i].value);
        }
    }
}

void
Simulator::reset()
{
    for (size_t i = 0; i < regNodes_.size(); ++i)
        regState_[i] = module_.nodes()[regNodes_[i]].value;
}

void
Simulator::setInput(const std::string &name, const ApInt &value)
{
    auto net = module_.findInput(name);
    if (!net)
        LN_PANIC("module '", module_.name(), "' has no input '", name,
                 "'");
    setInput(*net, value);
}

void
Simulator::setInput(NetId net, const ApInt &value)
{
    values_.at(net) = value.zextOrTrunc(module_.widthOf(net));
}

void
Simulator::evalComb()
{
    size_t reg_index = 0;
    for (const Node &node : module_.nodes()) {
        ApInt &out = values_[node.result];
        auto in = [&](unsigned i) -> const ApInt & {
            return values_[node.operands[i]];
        };
        switch (node.kind) {
          case NodeKind::Input:
            break; // driven externally
          case NodeKind::Constant:
            out = node.value;
            break;
          case NodeKind::Add:
            out = in(0) + in(1);
            break;
          case NodeKind::Sub:
            out = in(0) - in(1);
            break;
          case NodeKind::Mul:
            out = in(0) * in(1);
            break;
          case NodeKind::DivU:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).udiv(in(1));
            break;
          case NodeKind::DivS:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).sdiv(in(1));
            break;
          case NodeKind::ModU:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).urem(in(1));
            break;
          case NodeKind::ModS:
            out = in(1).isZero() ? ApInt(out.width(), 0)
                                 : in(0).srem(in(1));
            break;
          case NodeKind::And:
            out = in(0) & in(1);
            break;
          case NodeKind::Or:
            out = in(0) | in(1);
            break;
          case NodeKind::Xor:
            out = in(0) ^ in(1);
            break;
          case NodeKind::Shl:
          case NodeKind::ShrU:
          case NodeKind::ShrS: {
            uint64_t raw = in(1).activeBits() > 32
                               ? in(0).width()
                               : in(1).toUint64();
            unsigned amount = unsigned(
                std::min<uint64_t>(raw, in(0).width()));
            if (node.kind == NodeKind::Shl)
                out = in(0).shl(amount);
            else if (node.kind == NodeKind::ShrU)
                out = in(0).lshr(amount);
            else
                out = in(0).ashr(amount);
            break;
          }
          case NodeKind::ICmp:
            out = ApInt(1, ir::applyICmp(node.pred, in(0), in(1)));
            break;
          case NodeKind::Mux:
            out = in(0).isZero() ? in(2) : in(1);
            break;
          case NodeKind::Extract:
            out = in(0).extract(node.lo, out.width());
            break;
          case NodeKind::Concat: {
            ApInt acc = in(node.operands.size() - 1);
            for (size_t i = node.operands.size() - 1; i-- > 0;)
                acc = in(i).concat(acc);
            out = acc;
            break;
          }
          case NodeKind::Replicate:
            out = in(0).isZero() ? ApInt(out.width(), 0)
                                 : ApInt::allOnes(out.width());
            break;
          case NodeKind::Rom: {
            uint64_t index = in(0).activeBits() > 63
                                 ? node.romValues.size()
                                 : in(0).toUint64();
            out = index < node.romValues.size()
                      ? node.romValues[index].zextOrTrunc(out.width())
                      : ApInt(out.width(), 0);
            break;
          }
          case NodeKind::Register:
            out = regState_[reg_index++];
            break;
        }
    }
}

void
Simulator::clockEdge()
{
    for (size_t i = 0; i < regNodes_.size(); ++i) {
        const Node &node = module_.nodes()[regNodes_[i]];
        bool enabled = node.operands.size() < 2 ||
                       !values_[node.operands[1]].isZero();
        if (enabled)
            regState_[i] = values_[node.operands[0]];
    }
}

const ApInt &
Simulator::output(const std::string &name) const
{
    auto net = module_.findOutput(name);
    if (!net)
        LN_PANIC("module '", module_.name(), "' has no output '", name,
                 "'");
    return values_.at(*net);
}

} // namespace rtl
} // namespace longnail
