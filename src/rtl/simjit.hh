/**
 * @file
 * Compiled simulation for netlist Modules: a one-pass compiler that
 * lowers a Module's topologically-ordered node list into a flat
 * bytecode program executed by a threaded-code dispatch loop.
 *
 * This is the throughput half of the simulation story (docs/
 * simulation.md). The interpreter in sim.cc walks the node list and
 * evaluates every node on heap-allocated ApInts; the compiled engine
 * instead assigns every net a slot in a preallocated register file --
 * a packed `uint64_t` word for nets of width <= 64 (the overwhelmingly
 * common case for RV32 ISAXes), a packed `unsigned __int128` word for
 * widths 65..128 (multi-cycle datapaths like the sqrt ISAXes), and an
 * ApInt spill lane for anything wider -- and emits one dense
 * instruction per combinational node. Constants
 * are preloaded into their slots at compile time, registers hold their
 * state directly in their result slot, and a handful of superops fuse
 * common shapes (compare feeding a mux, shifts by a constant amount).
 *
 * The program is immutable after compilation and can be shared by many
 * Machine instances (the core models reuse one program across all
 * dynamic executions of an ISAX instruction). Behavior is bit-identical
 * to the interpreter for every net after evalComb(); the differential
 * fuzz suite (tests/rtl/test_sim_diff.cc) enforces this.
 */

#ifndef LONGNAIL_RTL_SIMJIT_HH
#define LONGNAIL_RTL_SIMJIT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/netlist.hh"
#include "support/apint.hh"

namespace longnail {
namespace rtl {
namespace simjit {

// Nets of width 65..128 get their own packed lane on compilers with a
// native 128-bit integer (GCC/Clang); elsewhere they fall back to the
// ApInt lane. The typedef keeps a single compiled code path: without
// native support the Wide2 lane is simply never assigned, so the u128
// op bodies are dead code.
#if defined(__SIZEOF_INT128__)
#define LN_SIMJIT_HAS_U128 1
using u128 = unsigned __int128;
using s128 = __int128;
#else
#define LN_SIMJIT_HAS_U128 0
using u128 = uint64_t;
using s128 = int64_t;
#endif

/**
 * Thread-local simulation statistics, accumulated by both engines and
 * always on (plain additions; no atomics). The driver snapshots these
 * around a compile to fill the `--report` simulation section; the obs
 * registry additionally receives them as `sim.*` counters when
 * observability is enabled.
 */
struct SimStats
{
    uint64_t compiles = 0;    ///< programs compiled
    uint64_t programOps = 0;  ///< bytecode ops emitted
    uint64_t cycles = 0;      ///< clock edges simulated (both engines)
    double compileMs = 0.0;   ///< wall time spent compiling
};

SimStats &tlsSimStats();

/** Bytecode opcodes. Values of all narrow (<= 64 bit) nets are kept
 * masked to their width at all times, which every op relies on. */
enum class Op : uint8_t
{
    // dst = a <op> b, masked to the result width.
    Add,
    Sub,
    Mul,
    DivU,   ///< division by zero yields 0 (interpreter semantics)
    DivS,   ///< magnitude-based, like ApInt::sdiv
    ModU,
    ModS,
    And,
    Or,
    Xor,
    Shl,    ///< dynamic amount in b, clamped to the operand width
    ShrU,
    ShrS,
    ShlI,   ///< constant amount in `shift` (amount operand was constant)
    ShrUI,
    ShrSI,
    CmpEq,  ///< dst = (a <pred> b) ? 1 : 0
    CmpNe,
    CmpUlt,
    CmpUle,
    CmpUgt,
    CmpUge,
    CmpSlt,
    CmpSle,
    CmpSgt,
    CmpSge,
    Mux,     ///< dst = a ? b : c
    CmpMux,  ///< dst = (a <pred(sub)> b) ? c : d2   (fused compare+mux)
    Extract, ///< dst = (a >> shift) & mask
    ExtractWide, ///< a is a wide-lane slot; lo in aux, count in auxw
    Concat2, ///< dst = ((a << shift) | b) & mask    (a high, b low)
    ConcatN, ///< concat pool entries [aux, aux+auxw), high to low
    Replicate, ///< dst = a ? mask : 0
    Rom,     ///< dst = idx < table.size() ? table[idx] : 0; table in aux
    // 128-bit lane variants (dst in the u128 register file unless
    // noted). Operand lane flags live in `sshift`: bit N set means
    // field N of (a, b, c, d2) reads the u128 lane, clear means the
    // narrow lane (a zero-extension, values being invariantly masked).
    Add2,
    Sub2,
    Mul2,
    DivU2,
    DivS2,   ///< magnitude-based at the result width (auxw)
    ModU2,
    ModS2,
    And2,
    Or2,
    Xor2,
    Shl2,    ///< dynamic amount in b, clamped to auxw
    ShrU2,
    ShrS2,
    Cmp2,    ///< dst (narrow) = a <pred(sub)> b; operand width in shift
    Mux2,    ///< dst = a (narrow sel) ? b : c
    Extract2N, ///< dst (narrow) = (a >> shift) & mask
    Extract22, ///< dst = (a >> shift) & mask128(auxw)
    Concat22,  ///< dst = ((a << shift) | b) & mask128(auxw)
    ConcatN2,  ///< concat pool entries [aux, aux+shift), high to low
    Replicate2, ///< dst = a ? mask128(auxw) : 0
    Rom2,    ///< table in romTables2_[aux]
    WideEval, ///< interpret module node `aux` (an ApInt-lane net involved)
    Halt,
};

/** One bytecode instruction. Field use depends on the opcode. */
struct Insn
{
    Op op = Op::Halt;
    uint8_t sub = 0;     ///< ICmp predicate for CmpMux
    uint16_t shift = 0;  ///< shift amount / extract lo / concat low width
    uint16_t sshift = 0; ///< 64 - operand width, for sign extension
    uint16_t auxw = 0;   ///< operand width / pool count
    uint32_t dst = 0;
    uint32_t a = 0;
    uint32_t b = 0;
    uint32_t c = 0;
    uint32_t d2 = 0;     ///< else-operand of CmpMux
    uint32_t aux = 0;    ///< rom table / node index / pool offset
    uint64_t mask = 0;   ///< result mask ((1 << width) - 1; ~0 for 64)
};

/** Where a net's value lives in a Machine. */
enum class Lane : uint8_t
{
    Narrow, ///< regs_[slot], width <= 64, always masked
    Wide2,  ///< w2_[slot], a u128, width 65..128, always masked
    Wide,   ///< wide_[slot], an ApInt at the net's declared width
    Lazy,   ///< elided (a fully-fused ICmp); recomputed on demand
};

struct NetLoc
{
    uint32_t slot = 0;
    Lane lane = Lane::Narrow;
};

/**
 * An immutable compiled program for one Module. Compile once, execute
 * through any number of Machines. The Module must outlive the Program
 * (the wide-net fallback and lazy materialization consult its nodes).
 */
class Program
{
  public:
    static std::shared_ptr<const Program> compile(const Module &module);

    const Module &module() const { return *module_; }
    size_t numOps() const { return insns_.size(); }
    const NetLoc &locOf(NetId net) const { return loc_[net]; }

  private:
    friend class Machine;
    Program() = default;

    struct RegN ///< register with narrow result
    {
        uint32_t slot = 0;       ///< state lives in the result slot
        uint32_t d = 0;          ///< narrow slot of the data operand
        uint32_t en = ~0u;       ///< narrow slot of enable, ~0u if none
        uint64_t init = 0;
    };
    struct RegW ///< register with wide result
    {
        uint32_t slot = 0;       ///< wide-lane slot
        uint32_t d = 0;          ///< wide-lane slot of the data operand
        uint32_t en = ~0u;
        ApInt init{1, 0};
    };
    struct Reg2 ///< register with a u128-lane result
    {
        uint32_t slot = 0;
        uint32_t d = 0;          ///< u128-lane slot of the data operand
        uint32_t en = ~0u;       ///< narrow slot of enable, ~0u if none
        u128 init = 0;
    };
    struct PoolEnt ///< one ConcatN/ConcatN2 operand
    {
        uint32_t slot = 0;
        uint16_t width = 0;
        uint8_t wide2 = 0; ///< operand reads the u128 lane
    };

    const Module *module_ = nullptr;
    std::vector<Insn> insns_; ///< ends with Halt
    std::vector<NetLoc> loc_; ///< per net
    std::vector<uint32_t> lazyNode_; ///< per net: node index or ~0u
    uint32_t numNarrow_ = 0;
    uint32_t numWide2_ = 0;
    uint32_t numWide_ = 0;
    std::vector<std::pair<uint32_t, uint64_t>> constN_; ///< preloads
    std::vector<std::pair<uint32_t, u128>> const2_;
    std::vector<std::pair<uint32_t, ApInt>> constW_;
    std::vector<unsigned> wideWidths_; ///< declared width per wide slot
    std::vector<RegN> regsN_;
    std::vector<Reg2> regs2_;
    std::vector<RegW> regsW_;
    std::vector<std::vector<uint64_t>> romTables_; ///< pre-masked
    std::vector<std::vector<u128>> romTables2_;
    std::vector<PoolEnt> concatPool_;
};

/**
 * Execution state for one Program: the packed register file, the wide
 * lane, and the dispatch loop. One Machine per simulated module
 * instance; cheap to construct (no compilation).
 */
class Machine
{
  public:
    explicit Machine(std::shared_ptr<const Program> program);

    const Program &program() const { return *prog_; }

    /** Reset registers to their init values. */
    void reset();

    void setInput(NetId net, const ApInt &value);
    void setInput(NetId net, uint64_t value);

    /** Run the bytecode program once (= evaluate all comb logic). */
    void evalComb();

    /** Capture register data inputs (two-phase; chains are safe). */
    void clockEdge();

    /**
     * Current value of a net as an ApInt at its declared width. Valid
     * after evalComb(). Narrow nets materialize into a preallocated
     * per-net cache (no allocation); the returned reference is stable
     * until the next netRef() call for the same net.
     */
    const ApInt &netRef(NetId net) const;

    /** Low 64 bits of a net's value (full value for narrow nets). */
    uint64_t netU64(NetId net) const;

  private:
    void execWide(uint32_t nodeIndex);
    ApInt loadNet(NetId net) const;
    void storeNet(NetId net, const ApInt &value);
    uint64_t lazyValue(NetId net) const;

    std::shared_ptr<const Program> prog_;
    std::vector<uint64_t> regs_;   ///< narrow lane, invariantly masked
    std::vector<u128> w2_;         ///< u128 lane, invariantly masked
    std::vector<ApInt> wide_;      ///< wide lane, declared widths
    std::vector<uint64_t> nextN_;  ///< clockEdge double-buffer
    std::vector<u128> next2_;
    std::vector<ApInt> nextW_;
    mutable std::vector<ApInt> mat_; ///< netRef materialization cache
};

} // namespace simjit
} // namespace rtl
} // namespace longnail

#endif // LONGNAIL_RTL_SIMJIT_HH
