/**
 * @file
 * SystemVerilog emission from netlist Modules, in the idiomatic style
 * of CIRCT's export pipeline (cf. Fig. 5d of the paper).
 */

#ifndef LONGNAIL_RTL_VERILOG_HH
#define LONGNAIL_RTL_VERILOG_HH

#include <string>

#include "rtl/netlist.hh"

namespace longnail {
namespace rtl {

/** Emit @p module as a self-contained SystemVerilog module. */
std::string emitVerilog(const Module &module);

} // namespace rtl
} // namespace longnail

#endif // LONGNAIL_RTL_VERILOG_HH
