#include "rtl/simjit.hh"

#include <algorithm>
#include <chrono>

#include "ir/eval.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "support/logging.hh"

namespace longnail {
namespace rtl {
namespace simjit {

SimStats &
tlsSimStats()
{
    thread_local SimStats stats;
    return stats;
}

namespace {

inline uint64_t
maskOf(unsigned width)
{
    return width >= 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;
}

/** Sign-extend the low (64 - shift) bits of @p v. */
inline int64_t
sx(uint64_t v, unsigned shift)
{
    return int64_t(v << shift) >> shift;
}

/** Narrow compare; operands masked to their width, @p shift = 64 - w. */
inline bool
cmpEval(ir::ICmpPred pred, uint64_t a, uint64_t b, unsigned shift)
{
    switch (pred) {
      case ir::ICmpPred::Eq: return a == b;
      case ir::ICmpPred::Ne: return a != b;
      case ir::ICmpPred::Ult: return a < b;
      case ir::ICmpPred::Ule: return a <= b;
      case ir::ICmpPred::Ugt: return a > b;
      case ir::ICmpPred::Uge: return a >= b;
      case ir::ICmpPred::Slt: return sx(a, shift) < sx(b, shift);
      case ir::ICmpPred::Sle: return sx(a, shift) <= sx(b, shift);
      case ir::ICmpPred::Sgt: return sx(a, shift) > sx(b, shift);
      case ir::ICmpPred::Sge: return sx(a, shift) >= sx(b, shift);
    }
    return false;
}

/** The interpreter's shift-amount rule: clamp to the operand width,
 * treating amounts that need more than 32 bits as "all the way". */
inline unsigned
clampShift(uint64_t amount, unsigned width)
{
    return unsigned(std::min<uint64_t>(amount, width));
}

// --- u128-lane helpers. The double shifts keep every shift count
// below 64 so the bodies stay defined when u128 is the uint64_t
// fallback typedef (in which case they are never executed anyway).

inline uint64_t
lo64(u128 v)
{
    return uint64_t(v);
}

inline uint64_t
hi64(u128 v)
{
    return uint64_t(v >> 63 >> 1);
}

inline u128
make128(uint64_t lo, uint64_t hi)
{
    return (u128(hi) << 63 << 1) | lo;
}

/** Result mask for a u128-lane width (65..128; the shift count is
 * always below 64, defined even for the fallback typedef). */
inline u128
maskW2(unsigned width)
{
    return ~u128(0) >> (128 - width);
}

/** Sign-extend the low @p width bits of @p v (width 65..128). */
inline s128
sx2(u128 v, unsigned width)
{
    unsigned shift = 128 - width;
    return s128(v << shift) >> shift;
}

inline unsigned
clampShift2(u128 amount, unsigned width)
{
    return amount < width ? unsigned(amount) : width;
}

inline bool
cmpEval2(ir::ICmpPred pred, u128 a, u128 b, unsigned width)
{
    switch (pred) {
      case ir::ICmpPred::Eq: return a == b;
      case ir::ICmpPred::Ne: return a != b;
      case ir::ICmpPred::Ult: return a < b;
      case ir::ICmpPred::Ule: return a <= b;
      case ir::ICmpPred::Ugt: return a > b;
      case ir::ICmpPred::Uge: return a >= b;
      case ir::ICmpPred::Slt: return sx2(a, width) < sx2(b, width);
      case ir::ICmpPred::Sle: return sx2(a, width) <= sx2(b, width);
      case ir::ICmpPred::Sgt: return sx2(a, width) > sx2(b, width);
      case ir::ICmpPred::Sge: return sx2(a, width) >= sx2(b, width);
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

std::shared_ptr<const Program>
Program::compile(const Module &module)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::TraceSpan span("sim.compile");

    std::string err = module.verify();
    if (!err.empty())
        LN_PANIC("cannot compile invalid module '", module.name(),
                 "': ", err);

    auto prog = std::shared_ptr<Program>(new Program());
    Program &p = *prog;
    p.module_ = &module;
    const auto &nodes = module.nodes();
    size_t num_nets = module.numNets();

    auto narrow = [&](NetId net) { return module.widthOf(net) <= 64; };

    // Net -> defining node.
    std::vector<uint32_t> driver(num_nets, ~0u);
    for (size_t i = 0; i < nodes.size(); ++i)
        driver[nodes[i].result] = uint32_t(i);

    // Use counts, to find ICmps whose only consumers are fusable muxes.
    std::vector<uint32_t> total_uses(num_nets, 0);
    std::vector<uint32_t> fusable_uses(num_nets, 0);
    std::vector<uint8_t> is_output(num_nets, 0);
    for (const Node &node : nodes)
        for (NetId operand : node.operands)
            ++total_uses[operand];
    for (const auto &port : module.outputs()) {
        ++total_uses[port.net];
        is_output[port.net] = 1;
    }
    auto fusable_cmp = [&](NetId net) {
        if (driver[net] == ~0u)
            return false;
        const Node &d = nodes[driver[net]];
        return d.kind == NodeKind::ICmp && narrow(d.operands[0]) &&
               narrow(d.operands[1]);
    };
    for (const Node &node : nodes)
        if (node.kind == NodeKind::Mux && narrow(node.result) &&
            fusable_cmp(node.operands[0]))
            ++fusable_uses[node.operands[0]];

    // Lane and slot assignment. An ICmp whose every use is a fused mux
    // select (and that is not an output) gets no slot at all; net()
    // recomputes it on demand.
    p.loc_.resize(num_nets);
    p.lazyNode_.assign(num_nets, ~0u);
    for (NetId net = 0; net < num_nets; ++net) {
        if (fusable_cmp(net) && !is_output[net] &&
            fusable_uses[net] == total_uses[net]) {
            p.loc_[net] = {0, Lane::Lazy};
            p.lazyNode_[net] = driver[net];
        } else if (narrow(net)) {
            p.loc_[net] = {p.numNarrow_++, Lane::Narrow};
        } else if (LN_SIMJIT_HAS_U128 && module.widthOf(net) <= 128) {
            p.loc_[net] = {p.numWide2_++, Lane::Wide2};
        } else {
            p.loc_[net] = {p.numWide_++, Lane::Wide};
            p.wideWidths_.push_back(module.widthOf(net));
        }
    }

    auto slot = [&](NetId net) { return p.loc_[net].slot; };
    auto lane = [&](NetId net) { return p.loc_[net].lane; };
    auto all_narrow = [&](const Node &node) {
        if (!narrow(node.result))
            return false;
        for (NetId operand : node.operands)
            if (lane(operand) != Lane::Narrow)
                return false;
        return true;
    };
    // A node qualifies for the u128 lane when its result lives there
    // and every operand is packed (narrow or u128) -- anything ApInt-
    // or Lazy-laned falls back to WideEval.
    auto w2_node = [&](const Node &node) {
        if (lane(node.result) != Lane::Wide2)
            return false;
        for (NetId operand : node.operands)
            if (lane(operand) != Lane::Narrow &&
                lane(operand) != Lane::Wide2)
                return false;
        return true;
    };
    // Operand lane flags for u128-lane ops: bit N set = instruction
    // field N of (a, b, c, d2) indexes the u128 register file.
    auto w2_flags = [&](std::initializer_list<NetId> operands) {
        uint16_t flags = 0;
        unsigned bit = 0;
        for (NetId operand : operands) {
            if (lane(operand) == Lane::Wide2)
                flags |= uint16_t(1) << bit;
            ++bit;
        }
        return flags;
    };
    auto const_amount = [&](NetId net) -> const ApInt * {
        if (driver[net] == ~0u)
            return nullptr;
        const Node &d = nodes[driver[net]];
        return d.kind == NodeKind::Constant ? &d.value : nullptr;
    };
    auto wide_eval = [&](uint32_t node_index) {
        Insn insn;
        insn.op = Op::WideEval;
        insn.aux = node_index;
        p.insns_.push_back(insn);
    };

    for (size_t ni = 0; ni < nodes.size(); ++ni) {
        const Node &node = nodes[ni];
        NetId res = node.result;
        unsigned w = module.widthOf(res);
        Insn insn;
        insn.dst = slot(res);
        insn.mask = maskOf(w);
        insn.auxw = uint16_t(w);

        switch (node.kind) {
          case NodeKind::Input:
            break; // driven externally, no code
          case NodeKind::Constant:
            if (lane(res) == Lane::Narrow)
                p.constN_.emplace_back(slot(res), node.value.toUint64());
            else if (lane(res) == Lane::Wide2)
                p.const2_.emplace_back(
                    slot(res),
                    make128(node.value.word(0), node.value.word(1)));
            else
                p.constW_.emplace_back(slot(res), node.value);
            break;
          case NodeKind::Register: {
            // The data operand shares the result's width, hence its
            // lane; the enable (if any) is a 1-bit narrow net.
            if (lane(res) == Lane::Narrow) {
                RegN reg;
                reg.slot = slot(res);
                reg.d = slot(node.operands[0]);
                if (node.operands.size() > 1)
                    reg.en = slot(node.operands[1]);
                reg.init = node.value.toUint64();
                p.regsN_.push_back(reg);
            } else if (lane(res) == Lane::Wide2) {
                Reg2 reg;
                reg.slot = slot(res);
                reg.d = slot(node.operands[0]);
                if (node.operands.size() > 1)
                    reg.en = slot(node.operands[1]);
                reg.init = make128(node.value.word(0),
                                   node.value.word(1));
                p.regs2_.push_back(reg);
            } else {
                RegW reg;
                reg.slot = slot(res);
                reg.d = slot(node.operands[0]);
                if (node.operands.size() > 1)
                    reg.en = slot(node.operands[1]);
                reg.init = node.value;
                p.regsW_.push_back(reg);
            }
            break;
          }
          case NodeKind::Add:
          case NodeKind::Sub:
          case NodeKind::Mul:
          case NodeKind::DivU:
          case NodeKind::DivS:
          case NodeKind::ModU:
          case NodeKind::ModS:
          case NodeKind::And:
          case NodeKind::Or:
          case NodeKind::Xor: {
            if (all_narrow(node)) {
                static const Op bin_ops[] = {
                    Op::Add, Op::Sub, Op::Mul, Op::DivU, Op::DivS,
                    Op::ModU, Op::ModS, Op::And, Op::Or, Op::Xor};
                insn.op = bin_ops[int(node.kind) - int(NodeKind::Add)];
                insn.a = slot(node.operands[0]);
                insn.b = slot(node.operands[1]);
                insn.sshift = uint16_t(64 - w);
                p.insns_.push_back(insn);
            } else if (w2_node(node)) {
                static const Op bin2_ops[] = {
                    Op::Add2, Op::Sub2, Op::Mul2, Op::DivU2, Op::DivS2,
                    Op::ModU2, Op::ModS2, Op::And2, Op::Or2, Op::Xor2};
                insn.op = bin2_ops[int(node.kind) - int(NodeKind::Add)];
                insn.a = slot(node.operands[0]);
                insn.b = slot(node.operands[1]);
                insn.sshift =
                    w2_flags({node.operands[0], node.operands[1]});
                p.insns_.push_back(insn);
            } else {
                wide_eval(uint32_t(ni));
            }
            break;
          }
          case NodeKind::Shl:
          case NodeKind::ShrU:
          case NodeKind::ShrS: {
            if (all_narrow(node)) {
                insn.a = slot(node.operands[0]);
                insn.sshift = uint16_t(64 - w);
                if (const ApInt *amount =
                        const_amount(node.operands[1])) {
                    uint64_t raw = amount->activeBits() > 32
                                       ? w
                                       : amount->toUint64();
                    insn.shift = uint16_t(clampShift(raw, w));
                    insn.op = node.kind == NodeKind::Shl ? Op::ShlI
                              : node.kind == NodeKind::ShrU ? Op::ShrUI
                                                            : Op::ShrSI;
                } else {
                    insn.b = slot(node.operands[1]);
                    insn.op = node.kind == NodeKind::Shl ? Op::Shl
                              : node.kind == NodeKind::ShrU ? Op::ShrU
                                                            : Op::ShrS;
                }
                p.insns_.push_back(insn);
            } else if (w2_node(node) &&
                       lane(node.operands[0]) == Lane::Wide2) {
                insn.op = node.kind == NodeKind::Shl ? Op::Shl2
                          : node.kind == NodeKind::ShrU ? Op::ShrU2
                                                        : Op::ShrS2;
                insn.a = slot(node.operands[0]);
                insn.b = slot(node.operands[1]);
                insn.sshift =
                    w2_flags({node.operands[0], node.operands[1]});
                p.insns_.push_back(insn);
            } else {
                wide_eval(uint32_t(ni));
            }
            break;
          }
          case NodeKind::ICmp: {
            if (lane(res) == Lane::Lazy)
                break; // fully fused into CmpMux users
            if (narrow(node.operands[0]) && narrow(node.operands[1])) {
                static const Op cmp_ops[] = {Op::CmpEq, Op::CmpNe,
                                             Op::CmpUlt, Op::CmpUle,
                                             Op::CmpUgt, Op::CmpUge,
                                             Op::CmpSlt, Op::CmpSle,
                                             Op::CmpSgt, Op::CmpSge};
                insn.op = cmp_ops[int(node.pred)];
                insn.a = slot(node.operands[0]);
                insn.b = slot(node.operands[1]);
                insn.sshift =
                    uint16_t(64 - module.widthOf(node.operands[0]));
                p.insns_.push_back(insn);
            } else if (lane(node.operands[0]) == Lane::Wide2 &&
                       lane(node.operands[1]) == Lane::Wide2 &&
                       module.widthOf(node.operands[0]) ==
                           module.widthOf(node.operands[1])) {
                insn.op = Op::Cmp2;
                insn.sub = uint8_t(node.pred);
                insn.a = slot(node.operands[0]);
                insn.b = slot(node.operands[1]);
                insn.shift =
                    uint16_t(module.widthOf(node.operands[0]));
                p.insns_.push_back(insn);
            } else {
                wide_eval(uint32_t(ni));
            }
            break;
          }
          case NodeKind::Mux: {
            if (p.loc_[node.operands[0]].lane == Lane::Lazy) {
                // Fused compare+mux; re-evaluating the (cheap) compare
                // per user beats a separate op plus a select slot.
                const Node &cmp = nodes[p.lazyNode_[node.operands[0]]];
                insn.op = Op::CmpMux;
                insn.sub = uint8_t(cmp.pred);
                insn.a = slot(cmp.operands[0]);
                insn.b = slot(cmp.operands[1]);
                insn.c = slot(node.operands[1]);
                insn.d2 = slot(node.operands[2]);
                insn.sshift =
                    uint16_t(64 - module.widthOf(cmp.operands[0]));
                p.insns_.push_back(insn);
                break;
            }
            if (all_narrow(node)) {
                insn.op = Op::Mux;
                insn.a = slot(node.operands[0]);
                insn.b = slot(node.operands[1]);
                insn.c = slot(node.operands[2]);
                p.insns_.push_back(insn);
            } else if (w2_node(node) &&
                       lane(node.operands[0]) == Lane::Narrow) {
                insn.op = Op::Mux2;
                insn.a = slot(node.operands[0]);
                insn.b = slot(node.operands[1]);
                insn.c = slot(node.operands[2]);
                insn.sshift = w2_flags({node.operands[0],
                                        node.operands[1],
                                        node.operands[2]});
                p.insns_.push_back(insn);
            } else {
                wide_eval(uint32_t(ni));
            }
            break;
          }
          case NodeKind::Extract: {
            NetId src = node.operands[0];
            if (lane(src) == Lane::Narrow && narrow(res)) {
                insn.op = Op::Extract;
                insn.a = slot(src);
                insn.shift = uint16_t(node.lo);
                p.insns_.push_back(insn);
            } else if (lane(src) == Lane::Wide2 && narrow(res)) {
                insn.op = Op::Extract2N;
                insn.a = slot(src);
                insn.shift = uint16_t(node.lo);
                p.insns_.push_back(insn);
            } else if (lane(src) == Lane::Wide2 &&
                       lane(res) == Lane::Wide2) {
                insn.op = Op::Extract22;
                insn.a = slot(src);
                insn.shift = uint16_t(node.lo);
                p.insns_.push_back(insn);
            } else if (lane(src) == Lane::Wide && narrow(res)) {
                insn.op = Op::ExtractWide;
                insn.a = slot(src);
                insn.aux = node.lo;
                p.insns_.push_back(insn);
            } else {
                wide_eval(uint32_t(ni));
            }
            break;
          }
          case NodeKind::Concat: {
            if (all_narrow(node)) {
                if (node.operands.size() == 2) {
                    insn.op = Op::Concat2;
                    insn.a = slot(node.operands[0]); // high
                    insn.b = slot(node.operands[1]); // low
                    insn.shift =
                        uint16_t(module.widthOf(node.operands[1]));
                    p.insns_.push_back(insn);
                    break;
                }
                insn.op = Op::ConcatN;
                insn.aux = uint32_t(p.concatPool_.size());
                insn.auxw = uint16_t(node.operands.size());
                for (NetId operand : node.operands) // high to low
                    p.concatPool_.push_back(
                        {slot(operand),
                         uint16_t(module.widthOf(operand)), 0});
                p.insns_.push_back(insn);
                break;
            }
            if (w2_node(node)) {
                if (node.operands.size() == 2) {
                    insn.op = Op::Concat22;
                    insn.a = slot(node.operands[0]); // high
                    insn.b = slot(node.operands[1]); // low
                    insn.shift =
                        uint16_t(module.widthOf(node.operands[1]));
                    insn.sshift =
                        w2_flags({node.operands[0], node.operands[1]});
                    p.insns_.push_back(insn);
                    break;
                }
                insn.op = Op::ConcatN2;
                insn.aux = uint32_t(p.concatPool_.size());
                insn.shift = uint16_t(node.operands.size());
                for (NetId operand : node.operands) // high to low
                    p.concatPool_.push_back(
                        {slot(operand),
                         uint16_t(module.widthOf(operand)),
                         uint8_t(lane(operand) == Lane::Wide2)});
                p.insns_.push_back(insn);
                break;
            }
            wide_eval(uint32_t(ni));
            break;
          }
          case NodeKind::Replicate: {
            if (all_narrow(node)) {
                insn.op = Op::Replicate;
                insn.a = slot(node.operands[0]);
                p.insns_.push_back(insn);
            } else if (w2_node(node) &&
                       lane(node.operands[0]) == Lane::Narrow) {
                insn.op = Op::Replicate2;
                insn.a = slot(node.operands[0]);
                p.insns_.push_back(insn);
            } else {
                wide_eval(uint32_t(ni));
            }
            break;
          }
          case NodeKind::Rom: {
            if (all_narrow(node)) {
                insn.op = Op::Rom;
                insn.a = slot(node.operands[0]);
                insn.aux = uint32_t(p.romTables_.size());
                std::vector<uint64_t> table;
                table.reserve(node.romValues.size());
                for (const ApInt &value : node.romValues)
                    table.push_back(value.zextOrTrunc(w).toUint64());
                p.romTables_.push_back(std::move(table));
                p.insns_.push_back(insn);
            } else if (w2_node(node)) {
                insn.op = Op::Rom2;
                insn.a = slot(node.operands[0]);
                insn.aux = uint32_t(p.romTables2_.size());
                insn.sshift = w2_flags({node.operands[0]});
                std::vector<u128> table;
                table.reserve(node.romValues.size());
                for (const ApInt &value : node.romValues) {
                    ApInt masked = value.zextOrTrunc(w);
                    table.push_back(
                        make128(masked.word(0), masked.word(1)));
                }
                p.romTables2_.push_back(std::move(table));
                p.insns_.push_back(insn);
            } else {
                wide_eval(uint32_t(ni));
            }
            break;
          }
        }
    }
    p.insns_.push_back(Insn{}); // Halt

    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    SimStats &stats = tlsSimStats();
    ++stats.compiles;
    stats.programOps += p.insns_.size();
    stats.compileMs += ms;
    obs::count("sim.compiles");
    obs::count("sim.program_ops", p.insns_.size());
    obs::observe("sim.compile_ms", ms);
    return prog;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Machine::Machine(std::shared_ptr<const Program> program)
    : prog_(std::move(program))
{
    const Program &p = *prog_;
    regs_.assign(p.numNarrow_, 0);
    w2_.assign(p.numWide2_, 0);
    wide_.reserve(p.numWide_);
    for (unsigned width : p.wideWidths_)
        wide_.emplace_back(width, 0);
    for (const auto &[slot, value] : p.constN_)
        regs_[slot] = value;
    for (const auto &[slot, value] : p.const2_)
        w2_[slot] = value;
    for (const auto &[slot, value] : p.constW_)
        wide_[slot] = value;
    nextN_.assign(p.regsN_.size(), 0);
    next2_.assign(p.regs2_.size(), 0);
    nextW_.reserve(p.regsW_.size());
    for (const auto &reg : p.regsW_)
        nextW_.push_back(reg.init);
    size_t num_nets = p.module_->numNets();
    mat_.reserve(num_nets);
    for (NetId net = 0; net < num_nets; ++net)
        mat_.emplace_back(p.module_->widthOf(net), 0);
    reset();
}

void
Machine::reset()
{
    for (const auto &reg : prog_->regsN_)
        regs_[reg.slot] = reg.init;
    for (const auto &reg : prog_->regs2_)
        w2_[reg.slot] = reg.init;
    for (const auto &reg : prog_->regsW_)
        wide_[reg.slot] = reg.init;
}

void
Machine::setInput(NetId net, const ApInt &value)
{
    const NetLoc &loc = prog_->loc_[net];
    unsigned width = prog_->module_->widthOf(net);
    if (loc.lane == Lane::Narrow) {
        regs_[loc.slot] = value.toUint64() & maskOf(width);
    } else if (loc.lane == Lane::Wide2) {
        if (value.width() == width) {
            w2_[loc.slot] = make128(value.word(0), value.word(1));
        } else {
            ApInt t = value.zextOrTrunc(width);
            w2_[loc.slot] = make128(t.word(0), t.word(1));
        }
    } else {
        wide_[loc.slot] = value.zextOrTrunc(width);
    }
}

void
Machine::setInput(NetId net, uint64_t value)
{
    const NetLoc &loc = prog_->loc_[net];
    unsigned width = prog_->module_->widthOf(net);
    if (loc.lane == Lane::Narrow)
        regs_[loc.slot] = value & maskOf(width);
    else if (loc.lane == Lane::Wide2)
        w2_[loc.slot] = value; // zero-extended; width > 64
    else
        wide_[loc.slot] = ApInt(width, value);
}

// The dispatch loop. With GCC/Clang each opcode body jumps directly to
// the next instruction's body through a label table (threaded code);
// other compilers fall back to a switch in a loop.
#if defined(__GNUC__) || defined(__clang__)
#define LN_SIMJIT_THREADED 1
#else
#define LN_SIMJIT_THREADED 0
#endif

void
Machine::evalComb()
{
    const Insn *ip = prog_->insns_.data();
    uint64_t *R = regs_.data();
    u128 *W = w2_.data();
    (void)W;

// Flag-driven operand load for u128-lane ops: bit N of sshift selects
// the u128 register file, else the narrow one (a zero-extension).
#define LN_W2(bit, field)                                              \
    ((ip->sshift & (1u << bit)) ? W[ip->field] : u128(R[ip->field]))

#define LN_SIMJIT_OPLIST(X)                                            \
    X(Add) X(Sub) X(Mul) X(DivU) X(DivS) X(ModU) X(ModS) X(And) X(Or) \
    X(Xor) X(Shl) X(ShrU) X(ShrS) X(ShlI) X(ShrUI) X(ShrSI) X(CmpEq)  \
    X(CmpNe) X(CmpUlt) X(CmpUle) X(CmpUgt) X(CmpUge) X(CmpSlt)        \
    X(CmpSle) X(CmpSgt) X(CmpSge) X(Mux) X(CmpMux) X(Extract)         \
    X(ExtractWide) X(Concat2) X(ConcatN) X(Replicate) X(Rom)          \
    X(Add2) X(Sub2) X(Mul2) X(DivU2) X(DivS2) X(ModU2) X(ModS2)       \
    X(And2) X(Or2) X(Xor2) X(Shl2) X(ShrU2) X(ShrS2) X(Cmp2) X(Mux2)  \
    X(Extract2N) X(Extract22) X(Concat22) X(ConcatN2) X(Replicate2)   \
    X(Rom2) X(WideEval) X(Halt)

#if LN_SIMJIT_THREADED
#define X(name) &&lbl_##name,
    static const void *jump[] = {LN_SIMJIT_OPLIST(X)};
#undef X
#define LN_CASE(name) lbl_##name:
#define LN_NEXT()                                                      \
    do {                                                               \
        ++ip;                                                          \
        goto *jump[size_t(ip->op)];                                    \
    } while (0)
    goto *jump[size_t(ip->op)];
#else
#define LN_CASE(name) case Op::name:
#define LN_NEXT() break
    for (;; ++ip) {
        switch (ip->op) {
#endif

    LN_CASE(Add) { R[ip->dst] = (R[ip->a] + R[ip->b]) & ip->mask; }
    LN_NEXT();
    LN_CASE(Sub) { R[ip->dst] = (R[ip->a] - R[ip->b]) & ip->mask; }
    LN_NEXT();
    LN_CASE(Mul) { R[ip->dst] = (R[ip->a] * R[ip->b]) & ip->mask; }
    LN_NEXT();
    LN_CASE(DivU)
    {
        uint64_t d = R[ip->b];
        R[ip->dst] = d ? R[ip->a] / d : 0;
    }
    LN_NEXT();
    LN_CASE(DivS)
    {
        uint64_t bv = R[ip->b];
        if (!bv) {
            R[ip->dst] = 0;
        } else {
            // Magnitude-based like ApInt::sdiv; width-64 INT_MIN / -1
            // wraps the same way.
            int64_t sa = sx(R[ip->a], ip->sshift);
            int64_t sb = sx(bv, ip->sshift);
            uint64_t am = sa < 0 ? 0 - uint64_t(sa) : uint64_t(sa);
            uint64_t bm = sb < 0 ? 0 - uint64_t(sb) : uint64_t(sb);
            uint64_t q = am / bm;
            if ((sa < 0) != (sb < 0))
                q = 0 - q;
            R[ip->dst] = q & ip->mask;
        }
    }
    LN_NEXT();
    LN_CASE(ModU)
    {
        uint64_t d = R[ip->b];
        R[ip->dst] = d ? R[ip->a] % d : 0;
    }
    LN_NEXT();
    LN_CASE(ModS)
    {
        uint64_t bv = R[ip->b];
        if (!bv) {
            R[ip->dst] = 0;
        } else {
            int64_t sa = sx(R[ip->a], ip->sshift);
            int64_t sb = sx(bv, ip->sshift);
            uint64_t am = sa < 0 ? 0 - uint64_t(sa) : uint64_t(sa);
            uint64_t bm = sb < 0 ? 0 - uint64_t(sb) : uint64_t(sb);
            uint64_t r = am % bm;
            if (sa < 0)
                r = 0 - r;
            R[ip->dst] = r & ip->mask;
        }
    }
    LN_NEXT();
    LN_CASE(And) { R[ip->dst] = R[ip->a] & R[ip->b]; }
    LN_NEXT();
    LN_CASE(Or) { R[ip->dst] = R[ip->a] | R[ip->b]; }
    LN_NEXT();
    LN_CASE(Xor) { R[ip->dst] = R[ip->a] ^ R[ip->b]; }
    LN_NEXT();
    LN_CASE(Shl)
    {
        unsigned amount = clampShift(R[ip->b], ip->auxw);
        R[ip->dst] =
            amount >= 64 ? 0 : (R[ip->a] << amount) & ip->mask;
    }
    LN_NEXT();
    LN_CASE(ShrU)
    {
        unsigned amount = clampShift(R[ip->b], ip->auxw);
        R[ip->dst] = amount >= 64 ? 0 : R[ip->a] >> amount;
    }
    LN_NEXT();
    LN_CASE(ShrS)
    {
        unsigned amount = clampShift(R[ip->b], ip->auxw);
        int64_t sa = sx(R[ip->a], ip->sshift);
        R[ip->dst] = (amount >= 64 ? uint64_t(sa >> 63)
                                   : uint64_t(sa >> amount)) &
                     ip->mask;
    }
    LN_NEXT();
    LN_CASE(ShlI)
    {
        R[ip->dst] =
            ip->shift >= 64 ? 0 : (R[ip->a] << ip->shift) & ip->mask;
    }
    LN_NEXT();
    LN_CASE(ShrUI)
    {
        R[ip->dst] = ip->shift >= 64 ? 0 : R[ip->a] >> ip->shift;
    }
    LN_NEXT();
    LN_CASE(ShrSI)
    {
        int64_t sa = sx(R[ip->a], ip->sshift);
        R[ip->dst] = (ip->shift >= 64 ? uint64_t(sa >> 63)
                                      : uint64_t(sa >> ip->shift)) &
                     ip->mask;
    }
    LN_NEXT();
    LN_CASE(CmpEq) { R[ip->dst] = R[ip->a] == R[ip->b]; }
    LN_NEXT();
    LN_CASE(CmpNe) { R[ip->dst] = R[ip->a] != R[ip->b]; }
    LN_NEXT();
    LN_CASE(CmpUlt) { R[ip->dst] = R[ip->a] < R[ip->b]; }
    LN_NEXT();
    LN_CASE(CmpUle) { R[ip->dst] = R[ip->a] <= R[ip->b]; }
    LN_NEXT();
    LN_CASE(CmpUgt) { R[ip->dst] = R[ip->a] > R[ip->b]; }
    LN_NEXT();
    LN_CASE(CmpUge) { R[ip->dst] = R[ip->a] >= R[ip->b]; }
    LN_NEXT();
    LN_CASE(CmpSlt)
    {
        R[ip->dst] =
            sx(R[ip->a], ip->sshift) < sx(R[ip->b], ip->sshift);
    }
    LN_NEXT();
    LN_CASE(CmpSle)
    {
        R[ip->dst] =
            sx(R[ip->a], ip->sshift) <= sx(R[ip->b], ip->sshift);
    }
    LN_NEXT();
    LN_CASE(CmpSgt)
    {
        R[ip->dst] =
            sx(R[ip->a], ip->sshift) > sx(R[ip->b], ip->sshift);
    }
    LN_NEXT();
    LN_CASE(CmpSge)
    {
        R[ip->dst] =
            sx(R[ip->a], ip->sshift) >= sx(R[ip->b], ip->sshift);
    }
    LN_NEXT();
    LN_CASE(Mux) { R[ip->dst] = R[ip->a] ? R[ip->b] : R[ip->c]; }
    LN_NEXT();
    LN_CASE(CmpMux)
    {
        bool taken = cmpEval(ir::ICmpPred(ip->sub), R[ip->a], R[ip->b],
                             ip->sshift);
        R[ip->dst] = taken ? R[ip->c] : R[ip->d2];
    }
    LN_NEXT();
    LN_CASE(Extract)
    {
        R[ip->dst] = (R[ip->a] >> ip->shift) & ip->mask;
    }
    LN_NEXT();
    LN_CASE(ExtractWide)
    {
        R[ip->dst] =
            wide_[ip->a].extract(ip->aux, ip->auxw).toUint64();
    }
    LN_NEXT();
    LN_CASE(Concat2)
    {
        R[ip->dst] = ((R[ip->a] << ip->shift) | R[ip->b]) & ip->mask;
    }
    LN_NEXT();
    LN_CASE(ConcatN)
    {
        const auto *pool = prog_->concatPool_.data() + ip->aux;
        uint64_t acc = 0;
        for (unsigned i = 0; i < ip->auxw; ++i)
            acc = (acc << pool[i].width) | R[pool[i].slot];
        R[ip->dst] = acc & ip->mask;
    }
    LN_NEXT();
    LN_CASE(Replicate) { R[ip->dst] = R[ip->a] ? ip->mask : 0; }
    LN_NEXT();
    LN_CASE(Rom)
    {
        const auto &table = prog_->romTables_[ip->aux];
        uint64_t index = R[ip->a];
        R[ip->dst] = index < table.size() ? table[index] : 0;
    }
    LN_NEXT();
    LN_CASE(Add2)
    {
        W[ip->dst] =
            (LN_W2(0, a) + LN_W2(1, b)) & maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(Sub2)
    {
        W[ip->dst] =
            (LN_W2(0, a) - LN_W2(1, b)) & maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(Mul2)
    {
        W[ip->dst] =
            (LN_W2(0, a) * LN_W2(1, b)) & maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(DivU2)
    {
        u128 d = LN_W2(1, b);
        W[ip->dst] = d ? LN_W2(0, a) / d : u128(0);
    }
    LN_NEXT();
    LN_CASE(DivS2)
    {
        u128 bv = LN_W2(1, b);
        if (!bv) {
            W[ip->dst] = 0;
        } else {
            s128 sa = sx2(LN_W2(0, a), ip->auxw);
            s128 sb = sx2(bv, ip->auxw);
            u128 am = sa < 0 ? u128(0) - u128(sa) : u128(sa);
            u128 bm = sb < 0 ? u128(0) - u128(sb) : u128(sb);
            u128 q = am / bm;
            if ((sa < 0) != (sb < 0))
                q = u128(0) - q;
            W[ip->dst] = q & maskW2(ip->auxw);
        }
    }
    LN_NEXT();
    LN_CASE(ModU2)
    {
        u128 d = LN_W2(1, b);
        W[ip->dst] = d ? LN_W2(0, a) % d : u128(0);
    }
    LN_NEXT();
    LN_CASE(ModS2)
    {
        u128 bv = LN_W2(1, b);
        if (!bv) {
            W[ip->dst] = 0;
        } else {
            s128 sa = sx2(LN_W2(0, a), ip->auxw);
            s128 sb = sx2(bv, ip->auxw);
            u128 am = sa < 0 ? u128(0) - u128(sa) : u128(sa);
            u128 bm = sb < 0 ? u128(0) - u128(sb) : u128(sb);
            u128 r = am % bm;
            if (sa < 0)
                r = u128(0) - r;
            W[ip->dst] = r & maskW2(ip->auxw);
        }
    }
    LN_NEXT();
    LN_CASE(And2) { W[ip->dst] = LN_W2(0, a) & LN_W2(1, b); }
    LN_NEXT();
    LN_CASE(Or2) { W[ip->dst] = LN_W2(0, a) | LN_W2(1, b); }
    LN_NEXT();
    LN_CASE(Xor2) { W[ip->dst] = LN_W2(0, a) ^ LN_W2(1, b); }
    LN_NEXT();
    LN_CASE(Shl2)
    {
        unsigned amount = clampShift2(LN_W2(1, b), ip->auxw);
        W[ip->dst] = amount >= 128
                         ? u128(0)
                         : (LN_W2(0, a) << amount) & maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(ShrU2)
    {
        unsigned amount = clampShift2(LN_W2(1, b), ip->auxw);
        W[ip->dst] = amount >= 128 ? u128(0) : LN_W2(0, a) >> amount;
    }
    LN_NEXT();
    LN_CASE(ShrS2)
    {
        unsigned amount = clampShift2(LN_W2(1, b), ip->auxw);
        s128 sa = sx2(LN_W2(0, a), ip->auxw);
        W[ip->dst] = u128(sa >> (amount > 127 ? 127 : amount)) &
                     maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(Cmp2)
    {
        R[ip->dst] = cmpEval2(ir::ICmpPred(ip->sub), W[ip->a],
                              W[ip->b], ip->shift);
    }
    LN_NEXT();
    LN_CASE(Mux2)
    {
        W[ip->dst] =
            (R[ip->a] ? LN_W2(1, b) : LN_W2(2, c)) & maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(Extract2N)
    {
        R[ip->dst] = uint64_t(W[ip->a] >> ip->shift) & ip->mask;
    }
    LN_NEXT();
    LN_CASE(Extract22)
    {
        W[ip->dst] = (W[ip->a] >> ip->shift) & maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(Concat22)
    {
        W[ip->dst] = ((LN_W2(0, a) << ip->shift) | LN_W2(1, b)) &
                     maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(ConcatN2)
    {
        const auto *pool = prog_->concatPool_.data() + ip->aux;
        u128 acc = 0;
        for (unsigned i = 0; i < ip->shift; ++i) {
            u128 v = pool[i].wide2 ? W[pool[i].slot]
                                   : u128(R[pool[i].slot]);
            acc = (acc << pool[i].width) | v;
        }
        W[ip->dst] = acc & maskW2(ip->auxw);
    }
    LN_NEXT();
    LN_CASE(Replicate2)
    {
        W[ip->dst] = R[ip->a] ? maskW2(ip->auxw) : u128(0);
    }
    LN_NEXT();
    LN_CASE(Rom2)
    {
        const auto &table = prog_->romTables2_[ip->aux];
        u128 iv = LN_W2(0, a);
        // activeBits() > 63 is out of bounds for the interpreter.
        uint64_t index = (iv >> 63) ? ~uint64_t(0) : uint64_t(iv);
        W[ip->dst] = index < table.size() ? table[index] : u128(0);
    }
    LN_NEXT();
    LN_CASE(WideEval) { execWide(ip->aux); }
    LN_NEXT();
    LN_CASE(Halt) { return; }

#if !LN_SIMJIT_THREADED
        }
    }
#endif
#undef LN_CASE
#undef LN_NEXT
#undef LN_W2
#undef LN_SIMJIT_OPLIST
}

void
Machine::clockEdge()
{
    const Program &p = *prog_;
    // Two phases so register chains capture pre-edge values.
    for (size_t i = 0; i < p.regsN_.size(); ++i) {
        const Program::RegN &reg = p.regsN_[i];
        bool enabled = reg.en == ~0u || regs_[reg.en] != 0;
        nextN_[i] = enabled ? regs_[reg.d] : regs_[reg.slot];
    }
    for (size_t i = 0; i < p.regs2_.size(); ++i) {
        const Program::Reg2 &reg = p.regs2_[i];
        bool enabled = reg.en == ~0u || regs_[reg.en] != 0;
        next2_[i] = enabled ? w2_[reg.d] : w2_[reg.slot];
    }
    for (size_t i = 0; i < p.regsW_.size(); ++i) {
        const Program::RegW &reg = p.regsW_[i];
        bool enabled = reg.en == ~0u || regs_[reg.en] != 0;
        nextW_[i] = enabled ? wide_[reg.d] : wide_[reg.slot];
    }
    for (size_t i = 0; i < p.regsN_.size(); ++i)
        regs_[p.regsN_[i].slot] = nextN_[i];
    for (size_t i = 0; i < p.regs2_.size(); ++i)
        w2_[p.regs2_[i].slot] = next2_[i];
    for (size_t i = 0; i < p.regsW_.size(); ++i)
        wide_[p.regsW_[i].slot] = nextW_[i];
}

uint64_t
Machine::lazyValue(NetId net) const
{
    const Node &node = prog_->module_->nodes()[prog_->lazyNode_[net]];
    uint64_t a = regs_[prog_->loc_[node.operands[0]].slot];
    uint64_t b = regs_[prog_->loc_[node.operands[1]].slot];
    unsigned shift =
        64 - prog_->module_->widthOf(node.operands[0]);
    return cmpEval(node.pred, a, b, shift) ? 1 : 0;
}

const ApInt &
Machine::netRef(NetId net) const
{
    const NetLoc &loc = prog_->loc_[net];
    switch (loc.lane) {
      case Lane::Wide:
        return wide_[loc.slot];
      case Lane::Narrow:
        mat_[net].setValue(regs_[loc.slot]);
        return mat_[net];
      case Lane::Wide2:
        mat_[net].setValue(lo64(w2_[loc.slot]), hi64(w2_[loc.slot]));
        return mat_[net];
      case Lane::Lazy:
        mat_[net].setValue(lazyValue(net));
        return mat_[net];
    }
    LN_PANIC("bad net lane");
}

uint64_t
Machine::netU64(NetId net) const
{
    const NetLoc &loc = prog_->loc_[net];
    switch (loc.lane) {
      case Lane::Narrow: return regs_[loc.slot];
      case Lane::Wide2: return lo64(w2_[loc.slot]);
      case Lane::Wide: return wide_[loc.slot].toUint64();
      case Lane::Lazy: return lazyValue(net);
    }
    LN_PANIC("bad net lane");
}

ApInt
Machine::loadNet(NetId net) const
{
    const NetLoc &loc = prog_->loc_[net];
    switch (loc.lane) {
      case Lane::Narrow:
        return ApInt(prog_->module_->widthOf(net), regs_[loc.slot]);
      case Lane::Wide2: {
        ApInt out(prog_->module_->widthOf(net), 0);
        out.setValue(lo64(w2_[loc.slot]), hi64(w2_[loc.slot]));
        return out;
      }
      case Lane::Wide:
        return wide_[loc.slot];
      case Lane::Lazy:
        return ApInt(1, lazyValue(net));
    }
    LN_PANIC("bad net lane");
}

void
Machine::storeNet(NetId net, const ApInt &value)
{
    const NetLoc &loc = prog_->loc_[net];
    unsigned width = prog_->module_->widthOf(net);
    if (loc.lane == Lane::Narrow) {
        regs_[loc.slot] = value.toUint64() & maskOf(width);
    } else if (loc.lane == Lane::Wide2) {
        if (value.width() == width) {
            w2_[loc.slot] = make128(value.word(0), value.word(1));
        } else {
            ApInt t = value.zextOrTrunc(width);
            w2_[loc.slot] = make128(t.word(0), t.word(1));
        }
    } else {
        wide_[loc.slot] =
            value.width() == width ? value : value.zextOrTrunc(width);
    }
}

/** Fallback for nodes touching wide nets: evaluate with interpreter
 * semantics on ApInts. Rare by construction for RV32 ISAXes. */
void
Machine::execWide(uint32_t nodeIndex)
{
    const Node &node = prog_->module_->nodes()[nodeIndex];
    unsigned w = prog_->module_->widthOf(node.result);
    auto in = [&](unsigned i) { return loadNet(node.operands[i]); };
    ApInt out(w, 0);
    switch (node.kind) {
      case NodeKind::Input:
      case NodeKind::Constant:
      case NodeKind::Register:
        LN_PANIC("node kind has no wide fallback");
      case NodeKind::Add: out = in(0) + in(1); break;
      case NodeKind::Sub: out = in(0) - in(1); break;
      case NodeKind::Mul: out = in(0) * in(1); break;
      case NodeKind::DivU: {
        ApInt rhs = in(1);
        if (!rhs.isZero())
            out = in(0).udiv(rhs);
        break;
      }
      case NodeKind::DivS: {
        ApInt rhs = in(1);
        if (!rhs.isZero())
            out = in(0).sdiv(rhs);
        break;
      }
      case NodeKind::ModU: {
        ApInt rhs = in(1);
        if (!rhs.isZero())
            out = in(0).urem(rhs);
        break;
      }
      case NodeKind::ModS: {
        ApInt rhs = in(1);
        if (!rhs.isZero())
            out = in(0).srem(rhs);
        break;
      }
      case NodeKind::And: out = in(0) & in(1); break;
      case NodeKind::Or: out = in(0) | in(1); break;
      case NodeKind::Xor: out = in(0) ^ in(1); break;
      case NodeKind::Shl:
      case NodeKind::ShrU:
      case NodeKind::ShrS: {
        ApInt value = in(0), amt = in(1);
        uint64_t raw =
            amt.activeBits() > 32 ? value.width() : amt.toUint64();
        unsigned amount = clampShift(raw, value.width());
        if (node.kind == NodeKind::Shl)
            out = value.shl(amount);
        else if (node.kind == NodeKind::ShrU)
            out = value.lshr(amount);
        else
            out = value.ashr(amount);
        break;
      }
      case NodeKind::ICmp:
        out = ApInt(1, ir::applyICmp(node.pred, in(0), in(1)));
        break;
      case NodeKind::Mux:
        out = in(0).isZero() ? in(2) : in(1);
        break;
      case NodeKind::Extract:
        out = in(0).extract(node.lo, w);
        break;
      case NodeKind::Concat: {
        ApInt acc = in(unsigned(node.operands.size() - 1));
        for (size_t i = node.operands.size() - 1; i-- > 0;)
            acc = in(unsigned(i)).concat(acc);
        out = std::move(acc);
        break;
      }
      case NodeKind::Replicate:
        out = in(0).isZero() ? ApInt(w, 0) : ApInt::allOnes(w);
        break;
      case NodeKind::Rom: {
        ApInt idx = in(0);
        uint64_t index = idx.activeBits() > 63 ? node.romValues.size()
                                               : idx.toUint64();
        if (index < node.romValues.size())
            out = node.romValues[index].zextOrTrunc(w);
        break;
      }
    }
    storeNet(node.result, out);
}

} // namespace simjit
} // namespace rtl
} // namespace longnail
