/**
 * @file
 * Cycle-accurate simulator for netlist Modules. This is the "RTL
 * simulation" half of the paper's verification story (Sec. 5.3): the
 * generated ISAX modules execute here, in lock-step with the cycle-
 * level host-core models.
 *
 * Two engines implement the same API (docs/simulation.md):
 *  - SimEngine::Compiled (the default): the module is lowered once
 *    into a bytecode program run by a threaded-code loop (simjit.hh).
 *  - SimEngine::Interp: the original node-by-node ApInt interpreter,
 *    retained as the differential oracle for the compiled engine.
 *
 * Net values are defined after evalComb(); the engines are
 * bit-identical there for every net (tests/rtl/test_sim_diff.cc).
 */

#ifndef LONGNAIL_RTL_SIM_HH
#define LONGNAIL_RTL_SIM_HH

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/netlist.hh"
#include "rtl/simjit.hh"
#include "support/apint.hh"

namespace longnail {
namespace rtl {

enum class SimEngine
{
    Interp,   ///< node-by-node ApInt interpretation (the oracle)
    Compiled, ///< bytecode + threaded-code dispatch (simjit.hh)
};

/** Process-wide default engine for new Simulators (initially
 * Compiled; the CLI's --sim-engine flag overrides it). */
SimEngine defaultSimEngine();
void setDefaultSimEngine(SimEngine engine);
/** Parse "interp" / "compiled"; nullopt on anything else. */
std::optional<SimEngine> parseSimEngine(const std::string &name);
const char *simEngineName(SimEngine engine);

class Simulator
{
  public:
    explicit Simulator(const Module &module);
    Simulator(const Module &module, SimEngine engine);
    /** Compiled engine sharing an already-compiled program (the core
     * models compile each ISAX module once and reuse it across all
     * dynamic executions). The program must be for @p module. */
    Simulator(const Module &module,
              std::shared_ptr<const simjit::Program> program);
    /** Flushes this instance's cycle count to the obs registry. */
    ~Simulator();

    SimEngine engine() const
    {
        return machine_ ? SimEngine::Compiled : SimEngine::Interp;
    }

    /** Reset all registers to their initial values. */
    void reset();

    void setInput(const std::string &name, const ApInt &value);
    void setInput(const std::string &name, uint64_t value);
    void setInput(NetId net, const ApInt &value);
    void setInput(NetId net, uint64_t value);

    /**
     * Evaluate all combinational logic with the current inputs and
     * register states. Safe to call repeatedly within a cycle.
     */
    void evalComb();

    /** Capture register inputs (call after evalComb). */
    void clockEdge();

    /** evalComb + clockEdge. */
    void
    tick()
    {
        evalComb();
        clockEdge();
    }

    const ApInt &net(NetId id) const;
    /** Low 64 bits of a net (the full value for nets <= 64 bits wide);
     * avoids materializing an ApInt on the compiled engine. */
    uint64_t netU64(NetId id) const;
    const ApInt &output(const std::string &name) const;
    uint64_t outputU64(const std::string &name) const;

    const Module &module() const { return module_; }

  private:
    void evalCombInterp();
    NetId inputNet(const std::string &name) const;
    NetId outputNet(const std::string &name) const;

    const Module &module_;
    // Port-name lookup, built once (findInput/findOutput scan).
    std::unordered_map<std::string, NetId> inputIndex_;
    std::unordered_map<std::string, NetId> outputIndex_;
    // Interpreter engine state (empty when compiled).
    std::vector<ApInt> values_;    ///< current net values
    std::vector<ApInt> regState_;  ///< per register node, stored value
    std::vector<size_t> regNodes_; ///< indices of register nodes
    // Compiled engine state (null when interpreting).
    std::unique_ptr<simjit::Machine> machine_;
    uint64_t cycles_ = 0; ///< clock edges simulated by this instance
};

} // namespace rtl
} // namespace longnail

#endif // LONGNAIL_RTL_SIM_HH
