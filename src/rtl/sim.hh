/**
 * @file
 * Cycle-accurate simulator for netlist Modules. This is the "RTL
 * simulation" half of the paper's verification story (Sec. 5.3): the
 * generated ISAX modules execute here, in lock-step with the cycle-
 * level host-core models.
 */

#ifndef LONGNAIL_RTL_SIM_HH
#define LONGNAIL_RTL_SIM_HH

#include <string>
#include <vector>

#include "rtl/netlist.hh"
#include "support/apint.hh"

namespace longnail {
namespace rtl {

class Simulator
{
  public:
    explicit Simulator(const Module &module);

    /** Reset all registers to their initial values. */
    void reset();

    void setInput(const std::string &name, const ApInt &value);
    void setInput(NetId net, const ApInt &value);

    /**
     * Evaluate all combinational logic with the current inputs and
     * register states. Safe to call repeatedly within a cycle.
     */
    void evalComb();

    /** Capture register inputs (call after evalComb). */
    void clockEdge();

    /** evalComb + clockEdge. */
    void
    tick()
    {
        evalComb();
        clockEdge();
    }

    const ApInt &net(NetId id) const { return values_.at(id); }
    const ApInt &output(const std::string &name) const;

    const Module &module() const { return module_; }

  private:
    const Module &module_;
    std::vector<ApInt> values_;    ///< current net values
    std::vector<ApInt> regState_;  ///< per register node, stored value
    std::vector<size_t> regNodes_; ///< indices of register nodes
};

} // namespace rtl
} // namespace longnail

#endif // LONGNAIL_RTL_SIM_HH
