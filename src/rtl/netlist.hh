/**
 * @file
 * Register-transfer-level netlist IR: the equivalent of the CIRCT
 * hw/comb/seq dialects that Longnail's hardware generation targets
 * (Sec. 4.1(d)).
 *
 * A Module is a flat, topologically ordered list of nodes over nets.
 * Registers are nodes whose result reads as the stored state during
 * evaluation and capture their data input at the clock edge (optionally
 * gated by an enable, which yields the "stallable pipeline registers"
 * of Sec. 4.5).
 */

#ifndef LONGNAIL_RTL_NETLIST_HH
#define LONGNAIL_RTL_NETLIST_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.hh"
#include "support/apint.hh"

namespace longnail {
namespace rtl {

/** A net: the single driver of a value inside a module. */
using NetId = uint32_t;
constexpr NetId invalidNet = ~NetId(0);

enum class NodeKind
{
    Input,     ///< module input port
    Constant,  ///< literal; value attr
    Add,
    Sub,
    Mul,
    DivU,
    DivS,
    ModU,
    ModS,
    And,
    Or,
    Xor,
    Shl,
    ShrU,
    ShrS,
    ICmp,      ///< predicate attr
    Mux,       ///< operands: sel(1), then, else
    Extract,   ///< lo attr
    Concat,    ///< operand 0 is the high part
    Replicate, ///< 1-bit operand replicated to the result width
    Rom,       ///< values attr; operand: index
    Register,  ///< operands: d [, enable]; init attr
};

const char *nodeKindName(NodeKind kind);

/** One netlist node; its result is net @c result. */
struct Node
{
    NodeKind kind = NodeKind::Constant;
    NetId result = invalidNet;
    std::vector<NetId> operands;
    // Attributes (used by the kinds noted above).
    ApInt value{1, 0};              ///< Constant / Register init
    ir::ICmpPred pred = ir::ICmpPred::Eq;
    unsigned lo = 0;
    std::vector<ApInt> romValues;
};

/** An output port: a name bound to a driven net. */
struct OutputPort
{
    std::string name;
    NetId net = invalidNet;
};

class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Create an input port; returns its net. */
    NetId addInput(const std::string &name, unsigned width);
    /** Bind an output port to a net. */
    void addOutput(const std::string &name, NetId net);

    NetId addConstant(const ApInt &value);
    /** Generic node builder; width is the result width. */
    NetId addNode(NodeKind kind, unsigned width,
                  std::vector<NetId> operands);
    NetId addICmp(ir::ICmpPred pred, NetId lhs, NetId rhs);
    NetId addExtract(NetId v, unsigned lo, unsigned count);
    NetId addRom(std::vector<ApInt> values, unsigned width, NetId index);
    /**
     * Add a register; @p enable may be invalidNet for free-running.
     * The register's result net reads the *stored* state.
     */
    NetId addRegister(NetId d, NetId enable, const ApInt &init);

    unsigned widthOf(NetId net) const { return netWidths_.at(net); }
    size_t numNets() const { return netWidths_.size(); }
    const std::vector<Node> &nodes() const { return nodes_; }
    /**
     * Mutable node access. Exists for fault seeding in the
     * translation-validation tests (swap an operand, change a kind);
     * production code never mutates a built module.
     */
    Node &node(size_t index) { return nodes_.at(index); }
    /** Re-bind an existing output port to a different net (fault
     * seeding; panics when the port does not exist). */
    void rebindOutput(const std::string &name, NetId net);
    const std::vector<OutputPort> &outputs() const { return outputs_; }
    /** Input ports in declaration order: (name, net). */
    const std::vector<std::pair<std::string, NetId>> &inputs() const
    {
        return inputs_;
    }
    std::optional<NetId> findInput(const std::string &name) const;
    std::optional<NetId> findOutput(const std::string &name) const;

    /** Optional user-facing net name (used by the Verilog emitter). */
    void nameNet(NetId net, const std::string &name);
    const std::string &netName(NetId net) const;

    /** Number of register nodes (pipeline depth indicator). */
    unsigned numRegisters() const;
    /** Total register bits (for the area model). */
    unsigned numRegisterBits() const;

    /**
     * Structural verification: operand nets defined before use, widths
     * consistent. @return empty string when valid.
     */
    std::string verify() const;

  private:
    NetId newNet(unsigned width);

    std::string name_;
    std::vector<unsigned> netWidths_;
    std::vector<std::string> netNames_;
    std::vector<Node> nodes_;
    std::vector<std::pair<std::string, NetId>> inputs_;
    std::vector<OutputPort> outputs_;
};

} // namespace rtl
} // namespace longnail

#endif // LONGNAIL_RTL_NETLIST_HH
