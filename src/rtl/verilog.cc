#include "rtl/verilog.hh"

#include <set>
#include <sstream>

#include "support/logging.hh"

namespace longnail {
namespace rtl {

namespace {

class Emitter
{
  public:
    explicit Emitter(const Module &module) : module_(module) {}

    std::string
    run()
    {
        assignNames();
        emitHeader();
        emitDeclarations();
        emitBody();
        emitOutputs();
        os_ << "endmodule\n";
        return os_.str();
    }

  private:
    std::string
    width(unsigned w)
    {
        if (w == 1)
            return "";
        return "[" + std::to_string(w - 1) + ":0] ";
    }

    void
    assignNames()
    {
        // A net may carry the name of an output port; the internal
        // wire then needs a distinct name (the port is declared in the
        // header and bound via a trailing assign).
        std::set<std::string> port_names;
        for (const auto &port : module_.outputs())
            port_names.insert(port.name);
        names_.resize(module_.numNets());
        for (NetId net = 0; net < module_.numNets(); ++net) {
            const std::string &given = module_.netName(net);
            if (given.empty())
                names_[net] = "_t" + std::to_string(net);
            else if (port_names.count(given))
                names_[net] = given + "_w";
            else
                names_[net] = given;
        }
    }

    const std::string &name(NetId net) const { return names_.at(net); }

    void
    emitHeader()
    {
        os_ << "module " << module_.name() << "(\n";
        os_ << "    input clk,\n    input rst";
        for (const auto &[port_name, net] : module_.inputs())
            os_ << ",\n    input " << width(module_.widthOf(net))
                << port_name;
        for (const auto &port : module_.outputs())
            os_ << ",\n    output " << width(module_.widthOf(port.net))
                << port.name;
        os_ << ");\n\n";
    }

    void
    emitDeclarations()
    {
        for (const Node &node : module_.nodes()) {
            unsigned w = module_.widthOf(node.result);
            switch (node.kind) {
              case NodeKind::Input:
                break;
              case NodeKind::Register:
              case NodeKind::Rom:
                os_ << "  reg " << width(w) << name(node.result)
                    << ";\n";
                break;
              default:
                os_ << "  wire " << width(w) << name(node.result)
                    << ";\n";
                break;
            }
        }
        os_ << "\n";
    }

    std::string
    literal(const ApInt &value)
    {
        return std::to_string(value.width()) + "'h" +
               value.toStringUnsigned(16);
    }

    void
    emitBody()
    {
        for (const Node &node : module_.nodes())
            emitNode(node);
    }

    void
    emitNode(const Node &node)
    {
        const std::string &res = name(node.result);
        auto in = [&](unsigned i) -> const std::string & {
            return names_[node.operands[i]];
        };
        auto assign = [&](const std::string &rhs) {
            os_ << "  assign " << res << " = " << rhs << ";\n";
        };
        switch (node.kind) {
          case NodeKind::Input:
            break;
          case NodeKind::Constant:
            assign(literal(node.value));
            break;
          case NodeKind::Add: assign(in(0) + " + " + in(1)); break;
          case NodeKind::Sub: assign(in(0) + " - " + in(1)); break;
          case NodeKind::Mul: assign(in(0) + " * " + in(1)); break;
          case NodeKind::DivU: assign(in(0) + " / " + in(1)); break;
          case NodeKind::DivS:
            assign("$signed(" + in(0) + ") / $signed(" + in(1) + ")");
            break;
          case NodeKind::ModU: assign(in(0) + " % " + in(1)); break;
          case NodeKind::ModS:
            assign("$signed(" + in(0) + ") % $signed(" + in(1) + ")");
            break;
          case NodeKind::And: assign(in(0) + " & " + in(1)); break;
          case NodeKind::Or: assign(in(0) + " | " + in(1)); break;
          case NodeKind::Xor: assign(in(0) + " ^ " + in(1)); break;
          case NodeKind::Shl: assign(in(0) + " << " + in(1)); break;
          case NodeKind::ShrU: assign(in(0) + " >> " + in(1)); break;
          case NodeKind::ShrS:
            assign("$signed(" + in(0) + ") >>> " + in(1));
            break;
          case NodeKind::ICmp: {
            const char *op = "==";
            bool is_signed = false;
            switch (node.pred) {
              case ir::ICmpPred::Eq: op = "=="; break;
              case ir::ICmpPred::Ne: op = "!="; break;
              case ir::ICmpPred::Ult: op = "<"; break;
              case ir::ICmpPred::Ule: op = "<="; break;
              case ir::ICmpPred::Ugt: op = ">"; break;
              case ir::ICmpPred::Uge: op = ">="; break;
              case ir::ICmpPred::Slt: op = "<"; is_signed = true; break;
              case ir::ICmpPred::Sle: op = "<="; is_signed = true; break;
              case ir::ICmpPred::Sgt: op = ">"; is_signed = true; break;
              case ir::ICmpPred::Sge: op = ">="; is_signed = true; break;
            }
            if (is_signed)
                assign("$signed(" + in(0) + ") " + op + " $signed(" +
                       in(1) + ")");
            else
                assign(in(0) + " " + op + " " + in(1));
            break;
          }
          case NodeKind::Mux:
            assign(in(0) + " ? " + in(1) + " : " + in(2));
            break;
          case NodeKind::Extract:
            if (module_.widthOf(node.result) == 1)
                assign(in(0) + "[" + std::to_string(node.lo) + "]");
            else
                assign(in(0) + "[" +
                       std::to_string(node.lo +
                                      module_.widthOf(node.result) - 1) +
                       ":" + std::to_string(node.lo) + "]");
            break;
          case NodeKind::Concat: {
            std::string rhs = "{";
            for (size_t i = 0; i < node.operands.size(); ++i) {
                if (i)
                    rhs += ", ";
                rhs += in(i);
            }
            assign(rhs + "}");
            break;
          }
          case NodeKind::Replicate:
            assign("{" +
                   std::to_string(module_.widthOf(node.result)) + "{" +
                   in(0) + "}}");
            break;
          case NodeKind::Rom: {
            os_ << "  always_comb begin\n    case (" << in(0)
                << ")\n";
            for (size_t i = 0; i < node.romValues.size(); ++i)
                os_ << "      " << i << ": " << res << " = "
                    << literal(node.romValues[i]) << ";\n";
            os_ << "      default: " << res << " = '0;\n"
                << "    endcase\n  end\n";
            break;
          }
          case NodeKind::Register: {
            os_ << "  always_ff @(posedge clk)\n    " << res
                << " <= rst ? " << literal(node.value) << " : ";
            if (node.operands.size() == 2)
                os_ << "(" << in(1) << " ? " << in(0) << " : " << res
                    << ")";
            else
                os_ << in(0);
            os_ << ";\n";
            break;
          }
        }
    }

    void
    emitOutputs()
    {
        os_ << "\n";
        for (const auto &port : module_.outputs()) {
            if (name(port.net) != port.name)
                os_ << "  assign " << port.name << " = "
                    << name(port.net) << ";\n";
        }
    }

    const Module &module_;
    std::ostringstream os_;
    std::vector<std::string> names_;
};

} // namespace

std::string
emitVerilog(const Module &module)
{
    return Emitter(module).run();
}

} // namespace rtl
} // namespace longnail
