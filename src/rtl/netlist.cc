#include "rtl/netlist.hh"

#include <map>

#include "support/logging.hh"

namespace longnail {
namespace rtl {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Input: return "input";
      case NodeKind::Constant: return "constant";
      case NodeKind::Add: return "add";
      case NodeKind::Sub: return "sub";
      case NodeKind::Mul: return "mul";
      case NodeKind::DivU: return "divu";
      case NodeKind::DivS: return "divs";
      case NodeKind::ModU: return "modu";
      case NodeKind::ModS: return "mods";
      case NodeKind::And: return "and";
      case NodeKind::Or: return "or";
      case NodeKind::Xor: return "xor";
      case NodeKind::Shl: return "shl";
      case NodeKind::ShrU: return "shru";
      case NodeKind::ShrS: return "shrs";
      case NodeKind::ICmp: return "icmp";
      case NodeKind::Mux: return "mux";
      case NodeKind::Extract: return "extract";
      case NodeKind::Concat: return "concat";
      case NodeKind::Replicate: return "replicate";
      case NodeKind::Rom: return "rom";
      case NodeKind::Register: return "register";
    }
    return "?";
}

NetId
Module::newNet(unsigned width)
{
    if (width == 0)
        LN_PANIC("zero-width net");
    netWidths_.push_back(width);
    netNames_.emplace_back();
    return netWidths_.size() - 1;
}

NetId
Module::addInput(const std::string &name, unsigned width)
{
    NetId net = newNet(width);
    Node node;
    node.kind = NodeKind::Input;
    node.result = net;
    nodes_.push_back(std::move(node));
    inputs_.emplace_back(name, net);
    nameNet(net, name);
    return net;
}

void
Module::addOutput(const std::string &name, NetId net)
{
    outputs_.push_back({name, net});
}

NetId
Module::addConstant(const ApInt &value)
{
    NetId net = newNet(value.width());
    Node node;
    node.kind = NodeKind::Constant;
    node.result = net;
    node.value = value;
    nodes_.push_back(std::move(node));
    return net;
}

NetId
Module::addNode(NodeKind kind, unsigned width, std::vector<NetId> operands)
{
    NetId net = newNet(width);
    Node node;
    node.kind = kind;
    node.result = net;
    node.operands = std::move(operands);
    nodes_.push_back(std::move(node));
    return net;
}

NetId
Module::addICmp(ir::ICmpPred pred, NetId lhs, NetId rhs)
{
    NetId net = newNet(1);
    Node node;
    node.kind = NodeKind::ICmp;
    node.result = net;
    node.operands = {lhs, rhs};
    node.pred = pred;
    nodes_.push_back(std::move(node));
    return net;
}

NetId
Module::addExtract(NetId v, unsigned lo, unsigned count)
{
    if (lo == 0 && count == widthOf(v))
        return v;
    NetId net = newNet(count);
    Node node;
    node.kind = NodeKind::Extract;
    node.result = net;
    node.operands = {v};
    node.lo = lo;
    nodes_.push_back(std::move(node));
    return net;
}

NetId
Module::addRom(std::vector<ApInt> values, unsigned width, NetId index)
{
    NetId net = newNet(width);
    Node node;
    node.kind = NodeKind::Rom;
    node.result = net;
    node.operands = {index};
    node.romValues = std::move(values);
    nodes_.push_back(std::move(node));
    return net;
}

NetId
Module::addRegister(NetId d, NetId enable, const ApInt &init)
{
    NetId net = newNet(widthOf(d));
    Node node;
    node.kind = NodeKind::Register;
    node.result = net;
    node.operands = {d};
    if (enable != invalidNet)
        node.operands.push_back(enable);
    node.value = init.zextOrTrunc(widthOf(d));
    nodes_.push_back(std::move(node));
    return net;
}

void
Module::rebindOutput(const std::string &name, NetId net)
{
    for (auto &port : outputs_) {
        if (port.name == name) {
            port.net = net;
            return;
        }
    }
    LN_PANIC("no output port named ", name);
}

std::optional<NetId>
Module::findInput(const std::string &name) const
{
    for (const auto &[n, net] : inputs_)
        if (n == name)
            return net;
    return std::nullopt;
}

std::optional<NetId>
Module::findOutput(const std::string &name) const
{
    for (const auto &port : outputs_)
        if (port.name == name)
            return port.net;
    return std::nullopt;
}

void
Module::nameNet(NetId net, const std::string &name)
{
    netNames_.at(net) = name;
}

const std::string &
Module::netName(NetId net) const
{
    return netNames_.at(net);
}

unsigned
Module::numRegisters() const
{
    unsigned n = 0;
    for (const auto &node : nodes_)
        if (node.kind == NodeKind::Register)
            ++n;
    return n;
}

unsigned
Module::numRegisterBits() const
{
    unsigned bits = 0;
    for (const auto &node : nodes_)
        if (node.kind == NodeKind::Register)
            bits += netWidths_[node.result];
    return bits;
}

std::string
Module::verify() const
{
    std::vector<bool> defined(netWidths_.size(), false);
    for (const auto &node : nodes_) {
        for (NetId operand : node.operands) {
            if (operand >= netWidths_.size())
                return "operand net out of range";
            if (!defined[operand])
                return std::string("net used before definition in ") +
                       nodeKindName(node.kind) + " node";
        }
        switch (node.kind) {
          case NodeKind::Add:
          case NodeKind::Sub:
          case NodeKind::Mul:
          case NodeKind::DivU:
          case NodeKind::DivS:
          case NodeKind::ModU:
          case NodeKind::ModS:
          case NodeKind::And:
          case NodeKind::Or:
          case NodeKind::Xor:
            if (node.operands.size() != 2 ||
                widthOf(node.operands[0]) != widthOf(node.result) ||
                widthOf(node.operands[1]) != widthOf(node.result))
                return std::string("width mismatch in ") +
                       nodeKindName(node.kind);
            break;
          case NodeKind::Mux:
            if (node.operands.size() != 3 ||
                widthOf(node.operands[0]) != 1 ||
                widthOf(node.operands[1]) != widthOf(node.result) ||
                widthOf(node.operands[2]) != widthOf(node.result))
                return "malformed mux";
            break;
          case NodeKind::ICmp:
            if (node.operands.size() != 2 ||
                widthOf(node.operands[0]) != widthOf(node.operands[1]))
                return "malformed icmp";
            break;
          case NodeKind::Extract:
            if (node.operands.size() != 1 ||
                node.lo + widthOf(node.result) >
                    widthOf(node.operands[0]))
                return "extract out of range";
            break;
          case NodeKind::Concat:
            if (node.operands.size() < 2)
                return "concat needs at least two operands";
            break;
          case NodeKind::Register:
            if (node.operands.empty() ||
                widthOf(node.operands[0]) != widthOf(node.result))
                return "register width mismatch";
            if (node.operands.size() == 2 &&
                widthOf(node.operands[1]) != 1)
                return "register enable must be one bit";
            break;
          default:
            break;
        }
        defined[node.result] = true;
    }
    for (const auto &port : outputs_) {
        if (port.net >= netWidths_.size() || !defined[port.net])
            return "output port '" + port.name +
                   "' bound to an undefined net";
    }
    return "";
}

} // namespace rtl
} // namespace longnail
