/**
 * @file
 * Structural IR verifier for the HIR (coredsl+hwarith) and LIL
 * (lil+comb) dialect levels (docs/static-analysis.md).
 *
 * The verifier checks, per graph:
 *  - def-before-use and non-null operands — because graphs are ordered
 *    op lists, this also establishes acyclic combinational dataflow
 *    (LN4001);
 *  - operand/result arity per operation kind (LN4002);
 *  - type/width consistency per operation kind (LN4003);
 *  - required attributes present and well-formed (LN4005);
 *  - dialect-level purity and terminator placement (LN4006).
 *
 * It runs as part of the analysis pipeline phase, and — under the
 * LONGNAIL_VERIFY_IR option — after every transform in hir/transforms
 * so a transform bug is caught at the transform that introduced it.
 */

#ifndef LONGNAIL_ANALYSIS_VERIFIER_HH
#define LONGNAIL_ANALYSIS_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/ir.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace analysis {

/** One verifier finding, carrying its stable LN code. */
struct VerifyIssue
{
    std::string code; ///< LN4001..LN4006
    SourceLoc loc;    ///< location of the offending op, if stamped
    std::string message;

    std::string str() const { return code + ": " + message; }
};

/** Options controlling what verifyGraph() enforces. */
struct VerifyOptions
{
    /**
     * Require a terminator as the last operation of the top-level
     * graph (coredsl.end at the HIR level, lil.sink at the LIL
     * level). Off for transform-time checks, where tests legitimately
     * canonicalize terminator-less scratch graphs.
     */
    bool requireTerminator = false;
};

/**
 * Verify one behavior graph (and its spawn subgraphs). The dialect
 * level is inferred from the operation kinds present; mixing levels is
 * itself a finding.
 * @return all issues found, empty when the graph is well-formed.
 */
std::vector<VerifyIssue> verifyGraph(const ir::Graph &graph,
                                     const VerifyOptions &options = {});

/** Report @p issues as errors into @p diags, prefixed with @p what. */
void reportIssues(const std::vector<VerifyIssue> &issues,
                  const std::string &what, DiagnosticEngine &diags);

/**
 * Whether transforms re-verify their result. Defaults to the
 * LONGNAIL_VERIFY_IR environment variable (any non-empty value other
 * than "0"); setVerifyIr() overrides the environment.
 */
bool verifyIrEnabled();
void setVerifyIr(bool enable);

/** RAII enable/restore of the verify-after-transform option. */
class ScopedVerifyIr
{
  public:
    explicit ScopedVerifyIr(bool enable);
    ~ScopedVerifyIr();
    ScopedVerifyIr(const ScopedVerifyIr &) = delete;
    ScopedVerifyIr &operator=(const ScopedVerifyIr &) = delete;

  private:
    bool prevOverride_;
    bool prevValue_;
};

/**
 * Transform-time hook: when verifyIrEnabled(), verify @p graph and
 * throw std::runtime_error naming @p when on corruption. The driver's
 * fail-soft boundary turns the throw into an LN3009 diagnostic; tests
 * exercising transforms directly see the exception.
 */
void verifyAfterTransform(const ir::Graph &graph, const char *when);

} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_VERIFIER_HH
