#include "analysis/dataflow.hh"

#include "ir/eval.hh"

namespace longnail {
namespace analysis {

using ir::ICmpPred;
using ir::OpKind;
using ir::Operation;
using ir::Value;

// --------------------------------------------------------------------
// ValueRange
// --------------------------------------------------------------------

uint64_t
ValueRange::maxFor(unsigned width)
{
    // Saturated: for 64+ bit wires UINT64_MAX means "unbounded above".
    return width >= 64 ? UINT64_MAX : ((uint64_t(1) << width) - 1);
}

ValueRange
ValueRange::full(unsigned width)
{
    ValueRange r;
    r.umin = 0;
    r.umax = maxFor(width);
    return r;
}

namespace {

/** True if the raw value fits a uint64 (allowing wide, small values). */
bool
fitsUint64(const ApInt &value)
{
    for (unsigned bit = 64; bit < value.width(); ++bit)
        if (value.getBit(bit))
            return false;
    return true;
}

/** a + b, saturating at UINT64_MAX. */
uint64_t
satAdd(uint64_t a, uint64_t b)
{
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/** An upper bound is only a real bound when it did not saturate. */
bool
bounded(uint64_t umax)
{
    return umax != UINT64_MAX;
}

} // namespace

ValueRange
ValueRange::exact(const ApInt &value)
{
    ValueRange r;
    r.constant = value;
    if (fitsUint64(value)) {
        r.umin = r.umax = value.zextOrTrunc(64).toUint64();
    } else {
        r.umin = 0;
        r.umax = UINT64_MAX;
    }
    return r;
}

bool
ValueRange::operator==(const ValueRange &rhs) const
{
    if (constant.has_value() != rhs.constant.has_value())
        return false;
    if (constant &&
        (constant->width() != rhs.constant->width() ||
         *constant != *rhs.constant))
        return false;
    return umin == rhs.umin && umax == rhs.umax;
}

// --------------------------------------------------------------------
// RangeLattice
// --------------------------------------------------------------------

ValueRange
RangeLattice::top(const Value &value) const
{
    return ValueRange::full(value.type.width);
}

ValueRange
RangeLattice::join(const ValueRange &a, const ValueRange &b) const
{
    if (a.constant && b.constant &&
        a.constant->width() == b.constant->width() &&
        *a.constant == *b.constant)
        return a;
    ValueRange r;
    r.umin = std::min(a.umin, b.umin);
    r.umax = std::max(a.umax, b.umax);
    return r;
}

bool
RangeLattice::equal(const ValueRange &a, const ValueRange &b) const
{
    return a == b;
}

std::optional<bool>
icmpOutcome(ICmpPred pred, const ValueRange &lhs, const ValueRange &rhs)
{
    if (lhs.constant && rhs.constant &&
        lhs.constant->width() == rhs.constant->width())
        return ir::applyICmp(pred, *lhs.constant, *rhs.constant);

    // Range reasoning works on unsigned bounds only; saturated upper
    // bounds (see bounded()) never decide anything.
    bool disjoint =
        (bounded(lhs.umax) && lhs.umax < rhs.umin) ||
        (bounded(rhs.umax) && rhs.umax < lhs.umin);
    switch (pred) {
      case ICmpPred::Eq:
        if (disjoint)
            return false;
        return std::nullopt;
      case ICmpPred::Ne:
        if (disjoint)
            return true;
        return std::nullopt;
      case ICmpPred::Ult:
        if (bounded(lhs.umax) && lhs.umax < rhs.umin)
            return true;
        if (bounded(rhs.umax) && lhs.umin >= rhs.umax)
            return false;
        return std::nullopt;
      case ICmpPred::Ule:
        if (bounded(lhs.umax) && lhs.umax <= rhs.umin)
            return true;
        if (bounded(rhs.umax) && lhs.umin > rhs.umax)
            return false;
        return std::nullopt;
      case ICmpPred::Ugt:
        if (bounded(rhs.umax) && lhs.umin > rhs.umax)
            return true;
        if (bounded(lhs.umax) && lhs.umax <= rhs.umin)
            return false;
        return std::nullopt;
      case ICmpPred::Uge:
        if (bounded(rhs.umax) && lhs.umin >= rhs.umax)
            return true;
        if (bounded(lhs.umax) && lhs.umax < rhs.umin)
            return false;
        return std::nullopt;
      default:
        // Signed predicates are only decided for exact constants.
        return std::nullopt;
    }
}

std::vector<ValueRange>
RangeLattice::transfer(const Operation &op,
                       const std::vector<ValueRange> &operands) const
{
    if (op.numResults() != 1)
        return {};
    unsigned rw = op.result()->type.width;

    if (op.kind() == OpKind::HwConstant ||
        op.kind() == OpKind::CombConstant)
        return {ValueRange::exact(op.apAttr("value"))};

    // All-constant pure computations fold through the shared evaluator.
    if (ir::isPureComputation(op.kind()) && op.numOperands() > 0) {
        bool all_const = true;
        std::vector<ApInt> values;
        for (const auto &state : operands) {
            if (!state.constant) {
                all_const = false;
                break;
            }
            values.push_back(*state.constant);
        }
        if (all_const)
            if (auto result = ir::evaluate(op, values))
                return {ValueRange::exact(*result)};
    }

    ValueRange out = ValueRange::full(rw);
    auto widthOf = [&](unsigned i) { return op.operand(i)->type.width; };

    switch (op.kind()) {
      case OpKind::HwAdd:
      case OpKind::CombAdd: {
        if (op.numOperands() != 2)
            break;
        if (op.kind() == OpKind::HwAdd &&
            (op.operand(0)->type.isSigned ||
             op.operand(1)->type.isSigned || op.result()->type.isSigned))
            break; // sign extension invalidates raw-bit bounds
        const ValueRange &a = operands[0], &b = operands[1];
        if (bounded(a.umax) && bounded(b.umax)) {
            uint64_t smax = satAdd(a.umax, b.umax);
            // No wrap: the concrete sum always fits the result width.
            if (bounded(smax) && smax <= ValueRange::maxFor(rw)) {
                out.umin = satAdd(a.umin, b.umin);
                out.umax = smax;
            }
        }
        break;
      }
      case OpKind::HwMux:
      case OpKind::CombMux: {
        if (op.numOperands() != 3)
            break;
        const ValueRange &cond = operands[0];
        if (cond.constant)
            out = cond.constant->isZero() ? operands[2] : operands[1];
        else
            out = join(operands[1], operands[2]);
        break;
      }
      case OpKind::CoredslExtract:
      case OpKind::CombExtract: {
        if (op.numOperands() != 1 || !op.hasAttr("lo"))
            break;
        const ValueRange &a = operands[0];
        // Keeping the low bits loses nothing when the value fits.
        if (op.intAttr("lo") == 0 && bounded(a.umax) &&
            a.umax <= ValueRange::maxFor(rw)) {
            out.umin = a.umin;
            out.umax = a.umax;
        }
        break;
      }
      case OpKind::CoredslCast: {
        if (op.numOperands() != 1)
            break;
        const ValueRange &a = operands[0];
        bool widens = rw >= widthOf(0);
        if (op.operand(0)->type.isSigned && widens)
            break; // sign extension
        if (widens || (bounded(a.umax) &&
                       a.umax <= ValueRange::maxFor(rw))) {
            out.umin = a.umin;
            out.umax = a.umax;
        }
        break;
      }
      case OpKind::CoredslConcat:
      case OpKind::CombConcat: {
        if (op.numOperands() != 2 || rw > 64)
            break;
        const ValueRange &hi = operands[0], &lo = operands[1];
        unsigned lo_width = widthOf(1);
        out.umin = (hi.umin << lo_width) + lo.umin;
        out.umax = (hi.umax << lo_width) + lo.umax;
        break;
      }
      case OpKind::HwAnd:
      case OpKind::CombAnd: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        if (a.isConstZero() || b.isConstZero()) {
            out = ValueRange::exact(ApInt(rw, 0));
        } else {
            out.umin = 0;
            out.umax = std::min(a.umax, b.umax);
        }
        break;
      }
      case OpKind::HwOr:
      case OpKind::CombOr:
      case OpKind::HwXor:
      case OpKind::CombXor: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        bool is_or =
            op.kind() == OpKind::HwOr || op.kind() == OpKind::CombOr;
        out.umin = is_or ? std::max(a.umin, b.umin) : 0;
        if (bounded(a.umax) && bounded(b.umax))
            out.umax = std::min(ValueRange::maxFor(rw),
                                satAdd(a.umax, b.umax));
        break;
      }
      case OpKind::HwICmp:
      case OpKind::CombICmp: {
        if (op.numOperands() != 2 || !op.hasAttr("pred"))
            break;
        auto pred = ICmpPred(op.intAttr("pred"));
        if (auto outcome = icmpOutcome(pred, operands[0], operands[1]))
            out = ValueRange::exact(ApInt(1, *outcome ? 1 : 0));
        else
            out = ValueRange::full(1);
        break;
      }
      default:
        break;
    }
    return {out};
}

std::map<const Value *, ValueRange>
computeRanges(const ir::Graph &graph)
{
    RangeLattice lattice;
    return ForwardDataflow<ValueRange>(lattice).run(graph);
}

// --------------------------------------------------------------------
// InitLattice
// --------------------------------------------------------------------

InitState
InitLattice::top(const Value &) const
{
    return {false};
}

InitState
InitLattice::join(const InitState &a, const InitState &b) const
{
    return {a.maybeUninit || b.maybeUninit};
}

bool
InitLattice::equal(const InitState &a, const InitState &b) const
{
    return a == b;
}

std::vector<InitState>
InitLattice::transfer(const Operation &op,
                      const std::vector<InitState> &operands) const
{
    std::vector<InitState> results(op.numResults(), InitState{false});
    if (results.empty())
        return results;
    if (uninitSources_.count(&op)) {
        for (auto &r : results)
            r.maybeUninit = true;
        return results;
    }
    // Taint propagates through every data dependence.
    bool any = false;
    for (const auto &state : operands)
        any = any || state.maybeUninit;
    for (auto &r : results)
        r.maybeUninit = any;
    return results;
}

} // namespace analysis
} // namespace longnail
