#include "analysis/dataflow.hh"

#include "ir/eval.hh"

namespace longnail {
namespace analysis {

using ir::ICmpPred;
using ir::OpKind;
using ir::Operation;
using ir::Value;

// --------------------------------------------------------------------
// ValueRange
// --------------------------------------------------------------------

uint64_t
ValueRange::maxFor(unsigned width)
{
    // Saturated: for 64+ bit wires UINT64_MAX means "unbounded above".
    return width >= 64 ? UINT64_MAX : ((uint64_t(1) << width) - 1);
}

ValueRange
ValueRange::full(unsigned width)
{
    ValueRange r;
    r.umin = 0;
    r.umax = maxFor(width);
    return r;
}

namespace {

/** True if the raw value fits a uint64 (allowing wide, small values). */
bool
fitsUint64(const ApInt &value)
{
    for (unsigned bit = 64; bit < value.width(); ++bit)
        if (value.getBit(bit))
            return false;
    return true;
}

/** a + b, saturating at UINT64_MAX. */
uint64_t
satAdd(uint64_t a, uint64_t b)
{
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/** An upper bound is only a real bound when it did not saturate. */
bool
bounded(uint64_t umax)
{
    return umax != UINT64_MAX;
}

} // namespace

ValueRange
ValueRange::exact(const ApInt &value)
{
    ValueRange r;
    r.constant = value;
    if (fitsUint64(value)) {
        r.umin = r.umax = value.zextOrTrunc(64).toUint64();
    } else {
        r.umin = 0;
        r.umax = UINT64_MAX;
    }
    return r;
}

bool
ValueRange::operator==(const ValueRange &rhs) const
{
    if (constant.has_value() != rhs.constant.has_value())
        return false;
    if (constant &&
        (constant->width() != rhs.constant->width() ||
         *constant != *rhs.constant))
        return false;
    return umin == rhs.umin && umax == rhs.umax;
}

// --------------------------------------------------------------------
// RangeLattice
// --------------------------------------------------------------------

ValueRange
RangeLattice::top(const Value &value) const
{
    return ValueRange::full(value.type.width);
}

ValueRange
RangeLattice::join(const ValueRange &a, const ValueRange &b) const
{
    if (a.constant && b.constant &&
        a.constant->width() == b.constant->width() &&
        *a.constant == *b.constant)
        return a;
    ValueRange r;
    r.umin = std::min(a.umin, b.umin);
    r.umax = std::max(a.umax, b.umax);
    return r;
}

bool
RangeLattice::equal(const ValueRange &a, const ValueRange &b) const
{
    return a == b;
}

std::optional<bool>
icmpOutcome(ICmpPred pred, const ValueRange &lhs, const ValueRange &rhs)
{
    if (lhs.constant && rhs.constant &&
        lhs.constant->width() == rhs.constant->width())
        return ir::applyICmp(pred, *lhs.constant, *rhs.constant);

    // Range reasoning works on unsigned bounds only; saturated upper
    // bounds (see bounded()) never decide anything.
    bool disjoint =
        (bounded(lhs.umax) && lhs.umax < rhs.umin) ||
        (bounded(rhs.umax) && rhs.umax < lhs.umin);
    switch (pred) {
      case ICmpPred::Eq:
        if (disjoint)
            return false;
        return std::nullopt;
      case ICmpPred::Ne:
        if (disjoint)
            return true;
        return std::nullopt;
      case ICmpPred::Ult:
        if (bounded(lhs.umax) && lhs.umax < rhs.umin)
            return true;
        if (bounded(rhs.umax) && lhs.umin >= rhs.umax)
            return false;
        return std::nullopt;
      case ICmpPred::Ule:
        if (bounded(lhs.umax) && lhs.umax <= rhs.umin)
            return true;
        if (bounded(rhs.umax) && lhs.umin > rhs.umax)
            return false;
        return std::nullopt;
      case ICmpPred::Ugt:
        if (bounded(rhs.umax) && lhs.umin > rhs.umax)
            return true;
        if (bounded(lhs.umax) && lhs.umax <= rhs.umin)
            return false;
        return std::nullopt;
      case ICmpPred::Uge:
        if (bounded(rhs.umax) && lhs.umin >= rhs.umax)
            return true;
        if (bounded(lhs.umax) && lhs.umax < rhs.umin)
            return false;
        return std::nullopt;
      default:
        // Signed predicates are only decided for exact constants.
        return std::nullopt;
    }
}

std::vector<ValueRange>
RangeLattice::transfer(const Operation &op,
                       const std::vector<ValueRange> &operands) const
{
    if (op.numResults() != 1)
        return {};
    unsigned rw = op.result()->type.width;

    if (op.kind() == OpKind::HwConstant ||
        op.kind() == OpKind::CombConstant)
        return {ValueRange::exact(op.apAttr("value"))};

    // All-constant pure computations fold through the shared evaluator.
    if (ir::isPureComputation(op.kind()) && op.numOperands() > 0) {
        bool all_const = true;
        std::vector<ApInt> values;
        for (const auto &state : operands) {
            if (!state.constant) {
                all_const = false;
                break;
            }
            values.push_back(*state.constant);
        }
        if (all_const)
            if (auto result = ir::evaluate(op, values))
                return {ValueRange::exact(*result)};
    }

    ValueRange out = ValueRange::full(rw);
    auto widthOf = [&](unsigned i) { return op.operand(i)->type.width; };

    switch (op.kind()) {
      case OpKind::HwAdd:
      case OpKind::CombAdd: {
        if (op.numOperands() != 2)
            break;
        if (op.kind() == OpKind::HwAdd &&
            (op.operand(0)->type.isSigned ||
             op.operand(1)->type.isSigned || op.result()->type.isSigned))
            break; // sign extension invalidates raw-bit bounds
        const ValueRange &a = operands[0], &b = operands[1];
        if (bounded(a.umax) && bounded(b.umax)) {
            uint64_t smax = satAdd(a.umax, b.umax);
            // No wrap: the concrete sum always fits the result width.
            if (bounded(smax) && smax <= ValueRange::maxFor(rw)) {
                out.umin = satAdd(a.umin, b.umin);
                out.umax = smax;
            }
        }
        break;
      }
      case OpKind::HwMux:
      case OpKind::CombMux: {
        if (op.numOperands() != 3)
            break;
        const ValueRange &cond = operands[0];
        if (cond.constant)
            out = cond.constant->isZero() ? operands[2] : operands[1];
        else
            out = join(operands[1], operands[2]);
        break;
      }
      case OpKind::CoredslExtract:
      case OpKind::CombExtract: {
        if (op.numOperands() != 1 || !op.hasAttr("lo"))
            break;
        const ValueRange &a = operands[0];
        // Keeping the low bits loses nothing when the value fits.
        if (op.intAttr("lo") == 0 && bounded(a.umax) &&
            a.umax <= ValueRange::maxFor(rw)) {
            out.umin = a.umin;
            out.umax = a.umax;
        }
        break;
      }
      case OpKind::CoredslCast: {
        if (op.numOperands() != 1)
            break;
        const ValueRange &a = operands[0];
        bool widens = rw >= widthOf(0);
        if (op.operand(0)->type.isSigned && widens)
            break; // sign extension
        if (widens || (bounded(a.umax) &&
                       a.umax <= ValueRange::maxFor(rw))) {
            out.umin = a.umin;
            out.umax = a.umax;
        }
        break;
      }
      case OpKind::CoredslConcat:
      case OpKind::CombConcat: {
        if (op.numOperands() != 2 || rw > 64)
            break;
        const ValueRange &hi = operands[0], &lo = operands[1];
        unsigned lo_width = widthOf(1);
        out.umin = (hi.umin << lo_width) + lo.umin;
        out.umax = (hi.umax << lo_width) + lo.umax;
        break;
      }
      case OpKind::HwAnd:
      case OpKind::CombAnd: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        if (a.isConstZero() || b.isConstZero()) {
            out = ValueRange::exact(ApInt(rw, 0));
        } else {
            out.umin = 0;
            out.umax = std::min(a.umax, b.umax);
        }
        break;
      }
      case OpKind::HwOr:
      case OpKind::CombOr:
      case OpKind::HwXor:
      case OpKind::CombXor: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        bool is_or =
            op.kind() == OpKind::HwOr || op.kind() == OpKind::CombOr;
        out.umin = is_or ? std::max(a.umin, b.umin) : 0;
        if (bounded(a.umax) && bounded(b.umax))
            out.umax = std::min(ValueRange::maxFor(rw),
                                satAdd(a.umax, b.umax));
        break;
      }
      case OpKind::HwICmp:
      case OpKind::CombICmp: {
        if (op.numOperands() != 2 || !op.hasAttr("pred"))
            break;
        auto pred = ICmpPred(op.intAttr("pred"));
        if (auto outcome = icmpOutcome(pred, operands[0], operands[1]))
            out = ValueRange::exact(ApInt(1, *outcome ? 1 : 0));
        else
            out = ValueRange::full(1);
        break;
      }
      case OpKind::CombSub: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        // No borrow: the subtrahend never exceeds the minuend, so the
        // modular subtraction coincides with the integer one.
        if (bounded(b.umax) && a.umin >= b.umax) {
            out.umin = a.umin - b.umax;
            if (bounded(a.umax))
                out.umax = a.umax - b.umin;
        }
        break;
      }
      case OpKind::CombMul: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        uint64_t limit = ValueRange::maxFor(rw);
        if (bounded(a.umax) && bounded(b.umax) && bounded(limit)) {
            unsigned __int128 p = (unsigned __int128)a.umax * b.umax;
            // No wrap: the largest product fits the result width.
            if (p <= limit) {
                out.umin = a.umin * b.umin;
                out.umax = uint64_t(p);
            }
        }
        break;
      }
      case OpKind::CombShl: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &amt = operands[1];
        if (amt.umin >= rw) {
            // Overshift: every data bit is discarded (amounts clamp
            // to the width, and shl by the width yields zero).
            out = ValueRange::exact(ApInt(rw, 0));
        } else if (amt.constant && bounded(a.umax)) {
            uint64_t c = amt.umin;
            uint64_t limit = ValueRange::maxFor(rw);
            if (c < 64 && bounded(limit)) {
                unsigned __int128 hi = (unsigned __int128)a.umax << c;
                if (hi <= limit) {
                    out.umin = a.umin << c;
                    out.umax = uint64_t(hi);
                }
            }
        }
        break;
      }
      case OpKind::CombShrU: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &amt = operands[1];
        if (amt.umin >= rw) {
            out = ValueRange::exact(ApInt(rw, 0));
            break;
        }
        uint64_t shift = std::min<uint64_t>(amt.umin, 63);
        uint64_t amax =
            bounded(a.umax) ? a.umax : ValueRange::maxFor(rw);
        if (bounded(amax))
            out.umax = amax >> shift;
        break;
      }
      case OpKind::CombDivU: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        // Only when the divisor is provably nonzero (division by zero
        // is left unspecified by the evaluator).
        if (b.umin >= 1) {
            uint64_t amax =
                bounded(a.umax) ? a.umax : ValueRange::maxFor(rw);
            if (bounded(amax))
                out.umax = amax / b.umin;
            if (bounded(b.umax))
                out.umin = a.umin / b.umax;
        }
        break;
      }
      case OpKind::CombModU: {
        if (op.numOperands() != 2)
            break;
        const ValueRange &a = operands[0], &b = operands[1];
        if (b.umin >= 1 && bounded(b.umax)) {
            out.umax = b.umax - 1;
            if (bounded(a.umax))
                out.umax = std::min(out.umax, a.umax);
        }
        break;
      }
      case OpKind::CombReplicate: {
        if (op.numOperands() != 1)
            break;
        const ValueRange &a = operands[0];
        if (a.umax == 0)
            out = ValueRange::exact(ApInt(rw, 0));
        else if (a.umin >= 1)
            out = ValueRange::exact(ApInt::allOnes(rw));
        break;
      }
      case OpKind::CoredslRom:
      case OpKind::CombRom: {
        if (!op.hasAttr("values"))
            break;
        const auto &values = op.romAttr("values");
        if (values.empty())
            break;
        if (op.numOperands() == 0) {
            out = ValueRange::exact(values[0].zextOrTrunc(rw));
            break;
        }
        uint64_t lo = UINT64_MAX, hi = 0;
        bool all_fit = true;
        for (const auto &v : values) {
            if (!fitsUint64(v)) {
                all_fit = false;
                break;
            }
            uint64_t u = v.zextOrTrunc(64).toUint64();
            lo = std::min(lo, u);
            hi = std::max(hi, u);
        }
        if (!all_fit)
            break;
        // Out-of-range indices read as zero, so zero joins the table
        // unless the index is provably within it.
        const ValueRange &idx = operands[0];
        bool in_range = bounded(idx.umax) && idx.umax < values.size();
        out.umin = in_range ? lo : 0;
        out.umax = hi;
        break;
      }
      default:
        break;
    }
    return {out};
}

std::map<const Value *, ValueRange>
computeRanges(const ir::Graph &graph)
{
    RangeLattice lattice;
    return ForwardDataflow<ValueRange>(lattice).run(graph);
}

// --------------------------------------------------------------------
// DemandedBitsLattice
// --------------------------------------------------------------------

namespace {

/** Mask with the low @p k bits of a @p width-bit value set. */
ApInt
lowMask(unsigned width, unsigned k)
{
    if (k >= width)
        return ApInt::allOnes(width);
    if (k == 0)
        return ApInt(width, 0);
    return ApInt::allOnes(k).zext(width);
}

/** The constant an operand is defined by, if any. */
const ApInt *
constantOf(const Value *v)
{
    const Operation *def = v->owner;
    if (def && (def->kind() == OpKind::CombConstant ||
                def->kind() == OpKind::HwConstant) &&
        def->hasAttr("value"))
        return &def->apAttr("value");
    return nullptr;
}

} // namespace

DemandedBits
DemandedBitsLattice::top(const Value &value) const
{
    return DemandedBits::none(value.type.width);
}

DemandedBits
DemandedBitsLattice::join(const DemandedBits &a,
                          const DemandedBits &b) const
{
    if (a.mask.width() != b.mask.width())
        return DemandedBits::all(std::max(a.mask.width(),
                                          b.mask.width()));
    return DemandedBits{a.mask | b.mask};
}

bool
DemandedBitsLattice::equal(const DemandedBits &a,
                           const DemandedBits &b) const
{
    return a.mask.width() == b.mask.width() && a.mask == b.mask;
}

std::vector<DemandedBits>
DemandedBitsLattice::transferBackward(
    const Operation &op, const std::vector<DemandedBits> &results) const
{
    if (op.numOperands() == 0)
        return {};

    auto widthOf = [&](unsigned i) {
        return op.operand(i)->type.width;
    };
    auto demandAll = [&] {
        std::vector<DemandedBits> out;
        out.reserve(op.numOperands());
        for (unsigned i = 0; i < op.numOperands(); ++i)
            out.push_back(DemandedBits::all(widthOf(i)));
        return out;
    };
    auto demandNone = [&] {
        std::vector<DemandedBits> out;
        out.reserve(op.numOperands());
        for (unsigned i = 0; i < op.numOperands(); ++i)
            out.push_back(DemandedBits::none(widthOf(i)));
        return out;
    };

    // Result-less ops (interface writes, terminators) root the
    // analysis: everything they consume feeds an observable.
    if (op.numResults() == 0)
        return demandAll();
    if (op.numResults() != 1)
        return demandAll();

    // A memory read is architecturally observable through its address
    // and enable even when the loaded data is dead; a custom-register
    // read is not (reading has no side effect).
    if (op.kind() == OpKind::LilReadMem)
        return demandAll();

    const ApInt &R = results[0].mask;
    if (R.isZero())
        return demandNone();
    unsigned k = R.activeBits();

    switch (op.kind()) {
      case OpKind::CombAdd:
      case OpKind::CombSub:
      case OpKind::CombMul: {
        if (op.numOperands() != 2)
            return demandAll();
        // Carries ripple upward only: result bit i depends on operand
        // bits [0, i], so only the low activeBits(R) matter.
        DemandedBits d{lowMask(widthOf(0), k)};
        return {d, DemandedBits{lowMask(widthOf(1), k)}};
      }
      case OpKind::CombAnd: {
        if (op.numOperands() != 2)
            return demandAll();
        const ApInt *c0 = constantOf(op.operand(0));
        const ApInt *c1 = constantOf(op.operand(1));
        // Bits masked off by a constant zero are never demanded.
        ApInt d0 = c1 ? (R & *c1) : R;
        ApInt d1 = c0 ? (R & *c0) : R;
        return {DemandedBits{d0}, DemandedBits{d1}};
      }
      case OpKind::CombOr: {
        if (op.numOperands() != 2)
            return demandAll();
        const ApInt *c0 = constantOf(op.operand(0));
        const ApInt *c1 = constantOf(op.operand(1));
        // Bits forced to one by a constant hide the other operand.
        ApInt d0 = c1 ? (R & ~*c1) : R;
        ApInt d1 = c0 ? (R & ~*c0) : R;
        return {DemandedBits{d0}, DemandedBits{d1}};
      }
      case OpKind::CombXor: {
        if (op.numOperands() != 2)
            return demandAll();
        return {DemandedBits{R}, DemandedBits{R}};
      }
      case OpKind::CombShl: {
        if (op.numOperands() != 2)
            return demandAll();
        unsigned w0 = widthOf(0);
        DemandedBits amount = DemandedBits::all(widthOf(1));
        if (const ApInt *c = constantOf(op.operand(1))) {
            // Amounts clamp to the width; an overshift discards all.
            uint64_t amt = c->activeBits() > 32
                               ? w0
                               : c->zextOrTrunc(64).toUint64();
            if (amt >= w0)
                return {DemandedBits::none(w0), amount};
            return {DemandedBits{R.lshr(unsigned(amt))}, amount};
        }
        // Unknown amount only moves bits up, so source bits at or
        // above the highest demanded result bit stay dead.
        return {DemandedBits{lowMask(w0, k)}, amount};
      }
      case OpKind::CombShrU: {
        if (op.numOperands() != 2)
            return demandAll();
        unsigned w0 = widthOf(0);
        DemandedBits amount = DemandedBits::all(widthOf(1));
        if (const ApInt *c = constantOf(op.operand(1))) {
            uint64_t amt = c->activeBits() > 32
                               ? w0
                               : c->zextOrTrunc(64).toUint64();
            if (amt >= w0)
                return {DemandedBits::none(w0), amount};
            return {DemandedBits{R.shl(unsigned(amt))}, amount};
        }
        return {DemandedBits::all(w0), amount};
      }
      case OpKind::CombMux: {
        if (op.numOperands() != 3)
            return demandAll();
        return {DemandedBits::all(widthOf(0)), DemandedBits{R},
                DemandedBits{R}};
      }
      case OpKind::CombExtract: {
        if (op.numOperands() != 1 || !op.hasAttr("lo"))
            return demandAll();
        unsigned lo = unsigned(op.intAttr("lo"));
        unsigned w0 = widthOf(0);
        return {DemandedBits{R.zextOrTrunc(w0).shl(lo)}};
      }
      case OpKind::CombConcat: {
        if (op.numOperands() != 2)
            return demandAll();
        // Operand 0 is the high part.
        unsigned w0 = widthOf(0), w1 = widthOf(1);
        return {DemandedBits{R.extract(w1, w0)},
                DemandedBits{R.extract(0, w1)}};
      }
      case OpKind::CombReplicate: {
        if (op.numOperands() != 1)
            return demandAll();
        return {DemandedBits::all(widthOf(0))};
      }
      default:
        // Shift-right-signed (the sign bit splats everywhere),
        // division/remainder, comparisons, ROM indexing and every
        // coredsl/hwarith kind: conservatively demand everything.
        return demandAll();
    }
}

std::map<const Value *, DemandedBits>
computeDemandedBits(const ir::Graph &graph)
{
    DemandedBitsLattice lattice;
    return BackwardDataflow<DemandedBits>(lattice).run(graph);
}

// --------------------------------------------------------------------
// InitLattice
// --------------------------------------------------------------------

InitState
InitLattice::top(const Value &) const
{
    return {false};
}

InitState
InitLattice::join(const InitState &a, const InitState &b) const
{
    return {a.maybeUninit || b.maybeUninit};
}

bool
InitLattice::equal(const InitState &a, const InitState &b) const
{
    return a == b;
}

std::vector<InitState>
InitLattice::transfer(const Operation &op,
                      const std::vector<InitState> &operands) const
{
    std::vector<InitState> results(op.numResults(), InitState{false});
    if (results.empty())
        return results;
    if (uninitSources_.count(&op)) {
        for (auto &r : results)
            r.maybeUninit = true;
        return results;
    }
    // Taint propagates through every data dependence.
    bool any = false;
    for (const auto &state : operands)
        any = any || state.maybeUninit;
    for (auto &r : results)
        r.maybeUninit = any;
    return results;
}

} // namespace analysis
} // namespace longnail
