/**
 * @file
 * The longnail-lint checks: module-level IR verification plus the
 * dataflow- and catalog-level lint findings (docs/static-analysis.md).
 *
 * Findings carry stable LN4xxx codes and flow through the
 * DiagnosticEngine, so severity is configurable per code
 * (--Werror=CODE / --no-warn=CODE) and tests can match on codes:
 *
 *   LN4001..LN4006  structural verifier violations (errors)
 *   LN4101  guaranteed bitwidth truncation
 *   LN4102  always-false condition
 *   LN4103  read of a never-written custom register
 *   LN4104  dead LIL node (write whose predicate is always false)
 *   LN4201  overlapping/ambiguous ISAX instruction encodings
 *   LN4202  ISAX encoding overlaps an RV32I base instruction
 *   LN4301  sub-interface not offered by the target core
 *   LN4302  operation cannot meet its earliest/latest window
 *   LN4303  write-port arbitration conflict between always-blocks
 */

#ifndef LONGNAIL_ANALYSIS_LINT_HH
#define LONGNAIL_ANALYSIS_LINT_HH

#include "hir/hir.hh"
#include "lil/lil.hh"
#include "scaiev/datasheet.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace analysis {

/**
 * Run the structural verifier (analysis/verifier.hh) over every
 * behavior graph of the module; violations are reported as errors.
 * @return true when every graph is well-formed.
 */
bool verifyHirModule(const hir::HirModule &mod, DiagnosticEngine &diags);
bool verifyLilModule(const lil::LilModule &mod, DiagnosticEngine &diags);

/**
 * HIR-level dataflow lints (LN4101, LN4102). Runs on the
 * pre-canonicalization HIR, where the evidence (e.g. a truncating
 * cast of a provably large value) has not been folded away yet.
 */
void checkHirModule(const hir::HirModule &mod, DiagnosticEngine &diags);

/**
 * LIL-level dataflow lints (LN4103, LN4104) plus the cross-instruction
 * checks: encoding overlaps within the ISAX and against the RV32I base
 * (LN4201, LN4202) and pre-schedule datasheet violations (LN4301,
 * LN4302, LN4303).
 */
void checkLilModule(const lil::LilModule &mod,
                    const scaiev::Datasheet &sheet,
                    DiagnosticEngine &diags);

} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_LINT_HH
