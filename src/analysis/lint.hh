/**
 * @file
 * The longnail-lint checks: module-level IR verification plus the
 * dataflow- and catalog-level lint findings (docs/static-analysis.md).
 *
 * Findings carry stable LN4xxx codes and flow through the
 * DiagnosticEngine, so severity is configurable per code
 * (--Werror=CODE / --no-warn=CODE) and tests can match on codes:
 *
 *   LN4001..LN4006  structural verifier violations (errors)
 *   LN4101  guaranteed bitwidth truncation
 *   LN4102  always-false condition
 *   LN4103  read of a never-written custom register
 *   LN4104  dead LIL node (write whose predicate is always false)
 *   LN4201  overlapping/ambiguous ISAX instruction encodings
 *   LN4202  ISAX encoding overlaps an RV32I base instruction
 *   LN4301  sub-interface not offered by the target core
 *   LN4302  operation cannot meet its earliest/latest window
 *   LN4303  write-port arbitration conflict between always-blocks
 *   LN4801..LN4805  spawn/always effect-interference findings
 *                   (analysis/effects.hh)
 *
 * The file also hosts the single-source LN-code registry: every
 * stable diagnostic code the compiler can emit, with its default
 * severity, pipeline phase and one-line summary. The docs table in
 * docs/static-analysis.md §3 is rendered from it (`longnail
 * --ln-codes`), and a ctest pins the two against each other.
 */

#ifndef LONGNAIL_ANALYSIS_LINT_HH
#define LONGNAIL_ANALYSIS_LINT_HH

#include <cstddef>
#include <string>

#include "hir/hir.hh"
#include "lil/lil.hh"
#include "scaiev/datasheet.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace analysis {

// --------------------------------------------------------------------
// LN-code registry
// --------------------------------------------------------------------

/** One row of the diagnostic-code registry. */
struct LnCodeInfo
{
    const char *code;     ///< stable code, e.g. "LN4101"
    const char *severity; ///< default severity: "error" or "warning"
    const char *phase;    ///< pipeline phase that emits it
    const char *summary;  ///< one-line description
};

/**
 * Every stable LN code, in ascending order. New diagnostics MUST add
 * a row here; the registry ctest rejects duplicates and codes missing
 * from docs/static-analysis.md.
 */
inline constexpr LnCodeInfo lnCodeRegistry[] = {
    {"LN1001", "error", "parse", "syntax error in the CoreDSL source"},
    {"LN1002", "error", "sema", "semantic error during ISA elaboration"},
    {"LN1003", "error", "astlower",
     "unsupported construct during AST lowering"},
    {"LN1004", "error", "lil",
     "illegal state or interface use during LIL lowering"},
    {"LN1901", "error", "parse", "injected fault at the 'parse' failpoint"},
    {"LN1902", "error", "sema", "injected fault at the 'sema' failpoint"},
    {"LN1903", "error", "astlower",
     "injected fault at the 'astlower' failpoint"},
    {"LN1904", "error", "lil", "injected fault at the 'lil' failpoint"},
    {"LN2001", "warning", "sched",
     "optimal scheduler abandoned; fallback schedule in use"},
    {"LN2002", "error", "sched", "no feasible schedule for the target core"},
    {"LN2901", "error", "sched", "injected fault at the 'sched' failpoint"},
    {"LN3001", "error", "hwgen", "hardware generation failed"},
    {"LN3002", "error", "scaiev-config",
     "SCAIE-V configuration emission failed"},
    {"LN3003", "error", "driver", "malformed datasheet YAML"},
    {"LN3004", "error", "scaiev-config", "malformed SCAIE-V config"},
    {"LN3005", "error", "driver", "unknown target core"},
    {"LN3006", "error", "driver", "unknown catalog ISAX"},
    {"LN3009", "error", "driver",
     "internal error caught at the fail-soft boundary"},
    {"LN3010", "warning", "driver",
     "corrupted cache entry; unit recompiled"},
    {"LN3011", "error", "driver",
     "compile cancelled or deadline exceeded at a phase boundary"},
    {"LN3012", "error", "driver", "cannot write an output file"},
    {"LN3101", "error", "serve", "malformed protocol frame"},
    {"LN3102", "error", "serve", "oversized request rejected"},
    {"LN3103", "error", "serve", "idle connection timed out"},
    {"LN3110", "error", "serve", "server overloaded (admission control)"},
    {"LN3111", "error", "serve", "request deadline exceeded"},
    {"LN3112", "error", "serve", "server draining; request rejected"},
    {"LN3901", "error", "hwgen", "injected fault at the 'hwgen' failpoint"},
    {"LN3902", "error", "scaiev-config",
     "injected fault at the 'scaiev-config' failpoint"},
    {"LN3903", "warning", "driver",
     "injected cache fault; lookup treated as a miss"},
    {"LN3904", "error", "serve", "injected fault at the 'serve' failpoint"},
    {"LN4001", "error", "analysis",
     "IR verifier: def-before-use or null-operand violation"},
    {"LN4002", "error", "analysis",
     "IR verifier: operand/result arity violation"},
    {"LN4003", "error", "analysis",
     "IR verifier: type or width inconsistency"},
    {"LN4005", "error", "analysis",
     "IR verifier: missing or malformed attribute"},
    {"LN4006", "error", "analysis",
     "IR verifier: dialect purity or terminator violation"},
    {"LN4101", "warning", "analysis", "guaranteed bitwidth truncation"},
    {"LN4102", "warning", "analysis", "always-false condition"},
    {"LN4103", "warning", "analysis",
     "read of a never-written custom register"},
    {"LN4104", "warning", "analysis",
     "dead LIL node (predicate always false)"},
    {"LN4105", "warning", "analysis",
     "shift amount always >= the operand width"},
    {"LN4201", "warning", "analysis",
     "overlapping/ambiguous ISAX instruction encodings"},
    {"LN4202", "warning", "analysis",
     "ISAX encoding overlaps an RV32I base instruction"},
    {"LN4301", "warning", "analysis",
     "sub-interface not offered by the target core"},
    {"LN4302", "warning", "analysis",
     "operation cannot meet its earliest/latest interface window"},
    {"LN4303", "warning", "analysis",
     "write-port arbitration conflict between always-blocks"},
    {"LN4401", "error", "validate",
     "schedule re-check: operation has no start time"},
    {"LN4402", "error", "validate",
     "schedule re-check: def-use latency violated"},
    {"LN4403", "error", "validate",
     "schedule re-check: interface op outside its datasheet window"},
    {"LN4404", "warning", "validate",
     "schedule re-check: combinational chain not broken"},
    {"LN4405", "error", "validate",
     "schedule re-check: sub-interface used more than once"},
    {"LN4501", "error", "validate",
     "a pass or the netlist changed observable behavior (refuted)"},
    {"LN4502", "warning", "validate",
     "equivalence not symbolically proved; co-simulation agreed"},
    {"LN4601", "error", "validate", "netlist lint: combinational cycle"},
    {"LN4602", "error", "validate", "netlist lint: width mismatch"},
    {"LN4603", "error", "validate",
     "netlist lint: undriven or multiply-driven net"},
    {"LN4604", "warning", "validate",
     "netlist lint: dead logic drives no output"},
    {"LN4801", "warning", "analysis",
     "decoupled (spawn) write races an architectural read"},
    {"LN4802", "warning", "analysis",
     "lost update: spawn and main (or two spawns) write one register"},
    {"LN4803", "warning", "analysis",
     "spawn memory write may alias a core-visible memory access"},
    {"LN4804", "warning", "analysis",
     "non-idempotent spawn effect before a stall/flush boundary"},
    {"LN4805", "warning", "analysis",
     "dead spawn block: its effects are never observable"},
    {"LN4901", "error", "analysis",
     "injected fault at the 'analysis' failpoint"},
    {"LN4902", "error", "validate",
     "injected fault at the 'validate' failpoint"},
};

inline constexpr size_t lnCodeRegistrySize =
    sizeof(lnCodeRegistry) / sizeof(lnCodeRegistry[0]);

/** Registry row for @p code, or nullptr if unknown. */
const LnCodeInfo *findLnCode(const std::string &code);

/**
 * Render the registry as the markdown table embedded in
 * docs/static-analysis.md §3 (CLI: `longnail --ln-codes`). The docs
 * file must contain this output verbatim; the registry ctest diffs
 * the two.
 */
std::string renderLnCodeTable();

/**
 * Run the structural verifier (analysis/verifier.hh) over every
 * behavior graph of the module; violations are reported as errors.
 * @return true when every graph is well-formed.
 */
bool verifyHirModule(const hir::HirModule &mod, DiagnosticEngine &diags);
bool verifyLilModule(const lil::LilModule &mod, DiagnosticEngine &diags);

/**
 * HIR-level dataflow lints (LN4101, LN4102) plus the structural
 * dead-spawn check (LN4805: a spawn block containing no state update
 * at all). Runs on the pre-canonicalization HIR, where the evidence
 * (e.g. a truncating cast of a provably large value, or a spawn whose
 * dead body DCE would erase) has not been folded away yet.
 */
void checkHirModule(const hir::HirModule &mod, DiagnosticEngine &diags);

/**
 * LIL-level dataflow lints (LN4103, LN4104) plus the cross-instruction
 * checks: encoding overlaps within the ISAX and against the RV32I base
 * (LN4201, LN4202), pre-schedule datasheet violations (LN4301,
 * LN4302, LN4303), and the spawn/always effect-interference family
 * (LN4801..LN4805) powered by the MAY/MUST summaries of
 * analysis/effects.hh.
 */
void checkLilModule(const lil::LilModule &mod,
                    const scaiev::Datasheet &sheet,
                    DiagnosticEngine &diags);

} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_LINT_HH
