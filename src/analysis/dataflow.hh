/**
 * @file
 * A small bidirectional sparse dataflow engine over behavior graphs,
 * plus the lattices the lint checks and optimization passes are built
 * on (docs/static-analysis.md, docs/pass-pipeline.md).
 *
 * Behaviors are straight-line SSA, so "dataflow" here is a sparse
 * fixpoint over the SSA value graph. A forward analysis drains a
 * worklist of operations front-to-back: each op's transfer function
 * maps operand states to result states and users of changed values are
 * re-queued. A backward analysis drains the worklist back-to-front
 * over use-def edges: each op's backward transfer maps the states of
 * its results to the demand it places on its operands, and the
 * *defining* op of a changed operand is re-queued. Ops without results
 * (interface writes, terminators) are the roots of a backward
 * analysis: they are transferred with an empty result-state vector and
 * seed the fixpoint. Spawn subgraphs are analyzed together with their
 * enclosing graph (their operands may reference outer values).
 *
 * A lattice plugs in through the Lattice<State> interface: top(),
 * join(), equal() and the per-op transfer() / transferBackward().
 * States must form a finite-height semilattice under join for
 * termination.
 */

#ifndef LONGNAIL_ANALYSIS_DATAFLOW_HH
#define LONGNAIL_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ir/ir.hh"
#include "support/apint.hh"

namespace longnail {
namespace analysis {

/** Propagation direction of a sparse dataflow run. */
enum class Direction
{
    Forward,  ///< def-use edges: operand states -> result states
    Backward, ///< use-def edges: result states -> operand demands
};

/** The abstract-domain interface of the dataflow engine. */
template <typename State>
class Lattice
{
  public:
    virtual ~Lattice() = default;

    /** The initial (most optimistic reachable) state for @p value. */
    virtual State top(const ir::Value &value) const = 0;

    /** Least upper bound of two states. */
    virtual State join(const State &a, const State &b) const = 0;

    virtual bool equal(const State &a, const State &b) const = 0;

    /**
     * Abstractly execute @p op on @p operand_states (one entry per
     * operand, in order). Must return one state per result. Only
     * called for Direction::Forward runs; the default keeps every
     * result at top so backward-only lattices need not override it.
     */
    virtual std::vector<State>
    transfer(const ir::Operation &op,
             const std::vector<State> & /*operand_states*/) const
    {
        std::vector<State> out;
        out.reserve(op.numResults());
        for (unsigned r = 0; r < op.numResults(); ++r)
            out.push_back(top(*op.result(r)));
        return out;
    }

    /**
     * Abstract reverse execution of @p op: given the joined states of
     * its results (one entry per result; empty for result-less ops,
     * which root the analysis), return the contribution @p op makes to
     * each operand's state (one entry per operand). Contributions are
     * *joined* into the operand states across all users. Only called
     * for Direction::Backward runs; the default contributes nothing
     * (an empty vector leaves every operand untouched).
     */
    virtual std::vector<State>
    transferBackward(const ir::Operation &op,
                     const std::vector<State> &result_states) const
    {
        (void)op;
        (void)result_states;
        return {};
    }
};

/**
 * Runs a lattice to fixpoint over one graph (including spawn
 * subgraphs) and returns the final per-value states.
 */
template <typename State>
class SparseDataflow
{
  public:
    SparseDataflow(const Lattice<State> &lattice, Direction direction)
        : lattice_(lattice), direction_(direction)
    {}

    std::map<const ir::Value *, State>
    run(const ir::Graph &graph)
    {
        ops_.clear();
        collect(graph);
        return direction_ == Direction::Forward ? runForward()
                                                : runBackward();
    }

  private:
    std::map<const ir::Value *, State>
    runForward()
    {
        // Map each value to the op indices using it, so only affected
        // transfers re-run after a state change.
        std::map<const ir::Value *, std::vector<size_t>> users;
        for (size_t i = 0; i < ops_.size(); ++i)
            for (const ir::Value *v : ops_[i]->operands())
                users[v].push_back(i);

        std::map<const ir::Value *, State> states;
        auto stateOf = [&](const ir::Value *v) -> State {
            auto it = states.find(v);
            if (it != states.end())
                return it->second;
            return lattice_.top(*v);
        };

        // Ordered worklist keeps evaluation deterministic. Ops are
        // seeded in graph order, so the first pass sees operand states
        // already computed (def-before-use).
        std::set<size_t> worklist;
        for (size_t i = 0; i < ops_.size(); ++i)
            worklist.insert(i);

        while (!worklist.empty()) {
            size_t idx = *worklist.begin();
            worklist.erase(worklist.begin());
            const ir::Operation &op = *ops_[idx];

            std::vector<State> operand_states;
            operand_states.reserve(op.numOperands());
            for (const ir::Value *v : op.operands())
                operand_states.push_back(stateOf(v));

            std::vector<State> results =
                lattice_.transfer(op, operand_states);
            for (unsigned r = 0;
                 r < op.numResults() && r < results.size(); ++r) {
                const ir::Value *v = op.result(r);
                State merged = results[r];
                auto it = states.find(v);
                if (it != states.end()) {
                    // Monotone update: never move back up the lattice.
                    merged = lattice_.join(it->second, merged);
                    if (lattice_.equal(it->second, merged))
                        continue;
                    it->second = merged;
                } else {
                    states.emplace(v, merged);
                }
                for (size_t user : users[v])
                    worklist.insert(user);
            }
        }
        return states;
    }

    std::map<const ir::Value *, State>
    runBackward()
    {
        // Map each value to the index of its defining op, so a changed
        // operand demand re-queues exactly the transfer that can
        // propagate it further up the use-def chain.
        std::map<const ir::Value *, size_t> def;
        for (size_t i = 0; i < ops_.size(); ++i)
            for (unsigned r = 0; r < ops_[i]->numResults(); ++r)
                def[ops_[i]->result(r)] = i;

        std::map<const ir::Value *, State> states;
        auto stateOf = [&](const ir::Value *v) -> State {
            auto it = states.find(v);
            if (it != states.end())
                return it->second;
            return lattice_.top(*v);
        };

        // Drain back-to-front: uses are visited before defs, so the
        // first sweep already sees each result's full demand
        // (use-before-def in reverse program order).
        std::set<size_t> worklist;
        for (size_t i = 0; i < ops_.size(); ++i)
            worklist.insert(i);

        while (!worklist.empty()) {
            auto last = std::prev(worklist.end());
            size_t idx = *last;
            worklist.erase(last);
            const ir::Operation &op = *ops_[idx];

            std::vector<State> result_states;
            result_states.reserve(op.numResults());
            for (unsigned r = 0; r < op.numResults(); ++r)
                result_states.push_back(stateOf(op.result(r)));

            std::vector<State> demands =
                lattice_.transferBackward(op, result_states);
            for (unsigned i = 0;
                 i < op.numOperands() && i < demands.size(); ++i) {
                const ir::Value *v = op.operand(i);
                State merged = demands[i];
                auto it = states.find(v);
                if (it != states.end()) {
                    merged = lattice_.join(it->second, merged);
                    if (lattice_.equal(it->second, merged))
                        continue;
                    it->second = merged;
                } else {
                    if (lattice_.equal(merged, lattice_.top(*v)))
                        continue;
                    states.emplace(v, merged);
                }
                auto d = def.find(v);
                if (d != def.end())
                    worklist.insert(d->second);
            }
        }
        return states;
    }

    void
    collect(const ir::Graph &graph)
    {
        for (const auto &op : graph.ops()) {
            ops_.push_back(op.get());
            if (op->subgraph())
                collect(*op->subgraph());
        }
    }

    const Lattice<State> &lattice_;
    Direction direction_;
    std::vector<const ir::Operation *> ops_;
};

/** The classic forward engine, now a thin wrapper over SparseDataflow. */
template <typename State>
class ForwardDataflow : public SparseDataflow<State>
{
  public:
    explicit ForwardDataflow(const Lattice<State> &lattice)
        : SparseDataflow<State>(lattice, Direction::Forward)
    {}
};

/** Backward counterpart, propagating demands over use-def edges. */
template <typename State>
class BackwardDataflow : public SparseDataflow<State>
{
  public:
    explicit BackwardDataflow(const Lattice<State> &lattice)
        : SparseDataflow<State>(lattice, Direction::Backward)
    {}
};

// --------------------------------------------------------------------
// Constant/range lattice
// --------------------------------------------------------------------

/**
 * Abstract value of the constant/range analysis: an optional exact
 * constant plus unsigned bounds on the raw bits. Bounds are exact for
 * widths up to 64 and saturate to [0, UINT64_MAX] beyond that.
 */
struct ValueRange
{
    std::optional<ApInt> constant;
    uint64_t umin = 0;
    uint64_t umax = UINT64_MAX;

    /** Saturated maximum raw value of a @p width-bit wire. */
    static uint64_t maxFor(unsigned width);
    static ValueRange full(unsigned width);
    static ValueRange exact(const ApInt &value);

    bool isConstZero() const
    {
        return constant && constant->isZero();
    }
    bool operator==(const ValueRange &rhs) const;
};

/** Constant propagation + unsigned range tracking over both levels. */
class RangeLattice : public Lattice<ValueRange>
{
  public:
    ValueRange top(const ir::Value &value) const override;
    ValueRange join(const ValueRange &a,
                    const ValueRange &b) const override;
    bool equal(const ValueRange &a, const ValueRange &b) const override;
    std::vector<ValueRange>
    transfer(const ir::Operation &op,
             const std::vector<ValueRange> &operands) const override;
};

/** Convenience: solve the range lattice over @p graph. */
std::map<const ir::Value *, ValueRange>
computeRanges(const ir::Graph &graph);

/**
 * Decide an icmp given operand ranges: returns the comparison outcome
 * when the ranges prove it, nullopt otherwise. Signed predicates are
 * only decided for exact constants.
 */
std::optional<bool> icmpOutcome(ir::ICmpPred pred, const ValueRange &lhs,
                                const ValueRange &rhs);

// --------------------------------------------------------------------
// Demanded-bits lattice (backward)
// --------------------------------------------------------------------

/**
 * Abstract value of the demanded-bits analysis: a mask as wide as the
 * value with a 1 wherever some observable behavior (an interface
 * write, a memory access, ...) may depend on that bit. Top is the
 * all-zero mask — nothing demanded — and join is bitwise OR, so the
 * analysis starts optimistic and only bits with a concrete use-chain
 * to an observable end up set. A value whose mask has k < width active
 * bits can be narrowed to k bits without changing any observable.
 */
struct DemandedBits
{
    ApInt mask = ApInt(1, 0);

    static DemandedBits none(unsigned width)
    {
        return DemandedBits{ApInt(width, 0)};
    }
    static DemandedBits all(unsigned width)
    {
        return DemandedBits{ApInt::allOnes(width)};
    }

    bool anyDemanded() const { return !mask.isZero(); }
    bool operator==(const DemandedBits &rhs) const = default;
};

/**
 * Backward lattice computing which bits of each value can influence
 * an observable effect. Conservative for operations without a precise
 * rule (they demand every bit of every operand).
 */
class DemandedBitsLattice : public Lattice<DemandedBits>
{
  public:
    DemandedBits top(const ir::Value &value) const override;
    DemandedBits join(const DemandedBits &a,
                      const DemandedBits &b) const override;
    bool equal(const DemandedBits &a,
               const DemandedBits &b) const override;
    std::vector<DemandedBits>
    transferBackward(const ir::Operation &op,
                     const std::vector<DemandedBits> &results)
        const override;
};

/** Convenience: solve the demanded-bits lattice over @p graph. */
std::map<const ir::Value *, DemandedBits>
computeDemandedBits(const ir::Graph &graph);

// --------------------------------------------------------------------
// Definite-initialization lattice
// --------------------------------------------------------------------

/**
 * Tracks whether a value may depend on an uninitialized source (e.g.
 * the read of a never-written custom register). Two-point lattice:
 * initialized (top) / maybe-uninitialized.
 */
struct InitState
{
    bool maybeUninit = false;

    bool operator==(const InitState &rhs) const = default;
};

class InitLattice : public Lattice<InitState>
{
  public:
    /** @p uninit_sources: ops whose results are uninitialized reads. */
    explicit InitLattice(std::set<const ir::Operation *> uninit_sources)
        : uninitSources_(std::move(uninit_sources))
    {}

    InitState top(const ir::Value &value) const override;
    InitState join(const InitState &a, const InitState &b) const override;
    bool equal(const InitState &a, const InitState &b) const override;
    std::vector<InitState>
    transfer(const ir::Operation &op,
             const std::vector<InitState> &operands) const override;

  private:
    std::set<const ir::Operation *> uninitSources_;
};

} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_DATAFLOW_HH
