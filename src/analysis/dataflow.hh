/**
 * @file
 * A small forward dataflow engine over behavior graphs, plus the two
 * lattices the lint checks are built on (docs/static-analysis.md).
 *
 * Behaviors are straight-line SSA, so "dataflow" here is a sparse
 * fixpoint over the SSA value graph: a worklist of operations is
 * drained, each op's transfer function maps operand states to result
 * states, and users of changed values are re-queued. Spawn subgraphs
 * are analyzed together with their enclosing graph (their operands may
 * reference outer values).
 *
 * A lattice plugs in through the Lattice<State> interface: top(),
 * join(), equal() and the per-op transfer(). States must form a
 * finite-height semilattice under join for termination.
 */

#ifndef LONGNAIL_ANALYSIS_DATAFLOW_HH
#define LONGNAIL_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ir/ir.hh"
#include "support/apint.hh"

namespace longnail {
namespace analysis {

/** The abstract-domain interface of the dataflow engine. */
template <typename State>
class Lattice
{
  public:
    virtual ~Lattice() = default;

    /** The initial (most optimistic reachable) state for @p value. */
    virtual State top(const ir::Value &value) const = 0;

    /** Least upper bound of two states. */
    virtual State join(const State &a, const State &b) const = 0;

    virtual bool equal(const State &a, const State &b) const = 0;

    /**
     * Abstractly execute @p op on @p operand_states (one entry per
     * operand, in order). Must return one state per result.
     */
    virtual std::vector<State>
    transfer(const ir::Operation &op,
             const std::vector<State> &operand_states) const = 0;
};

/**
 * Runs a lattice to fixpoint over one graph (including spawn
 * subgraphs) and returns the final per-value states.
 */
template <typename State>
class ForwardDataflow
{
  public:
    explicit ForwardDataflow(const Lattice<State> &lattice)
        : lattice_(lattice)
    {}

    std::map<const ir::Value *, State>
    run(const ir::Graph &graph)
    {
        ops_.clear();
        collect(graph);

        // Map each value to the op indices using it, so only affected
        // transfers re-run after a state change.
        std::map<const ir::Value *, std::vector<size_t>> users;
        for (size_t i = 0; i < ops_.size(); ++i)
            for (const ir::Value *v : ops_[i]->operands())
                users[v].push_back(i);

        std::map<const ir::Value *, State> states;
        auto stateOf = [&](const ir::Value *v) -> State {
            auto it = states.find(v);
            if (it != states.end())
                return it->second;
            return lattice_.top(*v);
        };

        // Ordered worklist keeps evaluation deterministic. Ops are
        // seeded in graph order, so the first pass sees operand states
        // already computed (def-before-use).
        std::set<size_t> worklist;
        for (size_t i = 0; i < ops_.size(); ++i)
            worklist.insert(i);

        while (!worklist.empty()) {
            size_t idx = *worklist.begin();
            worklist.erase(worklist.begin());
            const ir::Operation &op = *ops_[idx];

            std::vector<State> operand_states;
            operand_states.reserve(op.numOperands());
            for (const ir::Value *v : op.operands())
                operand_states.push_back(stateOf(v));

            std::vector<State> results =
                lattice_.transfer(op, operand_states);
            for (unsigned r = 0;
                 r < op.numResults() && r < results.size(); ++r) {
                const ir::Value *v = op.result(r);
                State merged = results[r];
                auto it = states.find(v);
                if (it != states.end()) {
                    // Monotone update: never move back up the lattice.
                    merged = lattice_.join(it->second, merged);
                    if (lattice_.equal(it->second, merged))
                        continue;
                    it->second = merged;
                } else {
                    states.emplace(v, merged);
                }
                for (size_t user : users[v])
                    worklist.insert(user);
            }
        }
        return states;
    }

  private:
    void
    collect(const ir::Graph &graph)
    {
        for (const auto &op : graph.ops()) {
            ops_.push_back(op.get());
            if (op->subgraph())
                collect(*op->subgraph());
        }
    }

    const Lattice<State> &lattice_;
    std::vector<const ir::Operation *> ops_;
};

// --------------------------------------------------------------------
// Constant/range lattice
// --------------------------------------------------------------------

/**
 * Abstract value of the constant/range analysis: an optional exact
 * constant plus unsigned bounds on the raw bits. Bounds are exact for
 * widths up to 64 and saturate to [0, UINT64_MAX] beyond that.
 */
struct ValueRange
{
    std::optional<ApInt> constant;
    uint64_t umin = 0;
    uint64_t umax = UINT64_MAX;

    /** Saturated maximum raw value of a @p width-bit wire. */
    static uint64_t maxFor(unsigned width);
    static ValueRange full(unsigned width);
    static ValueRange exact(const ApInt &value);

    bool isConstZero() const
    {
        return constant && constant->isZero();
    }
    bool operator==(const ValueRange &rhs) const;
};

/** Constant propagation + unsigned range tracking over both levels. */
class RangeLattice : public Lattice<ValueRange>
{
  public:
    ValueRange top(const ir::Value &value) const override;
    ValueRange join(const ValueRange &a,
                    const ValueRange &b) const override;
    bool equal(const ValueRange &a, const ValueRange &b) const override;
    std::vector<ValueRange>
    transfer(const ir::Operation &op,
             const std::vector<ValueRange> &operands) const override;
};

/** Convenience: solve the range lattice over @p graph. */
std::map<const ir::Value *, ValueRange>
computeRanges(const ir::Graph &graph);

/**
 * Decide an icmp given operand ranges: returns the comparison outcome
 * when the ranges prove it, nullopt otherwise. Signed predicates are
 * only decided for exact constants.
 */
std::optional<bool> icmpOutcome(ir::ICmpPred pred, const ValueRange &lhs,
                                const ValueRange &rhs);

// --------------------------------------------------------------------
// Definite-initialization lattice
// --------------------------------------------------------------------

/**
 * Tracks whether a value may depend on an uninitialized source (e.g.
 * the read of a never-written custom register). Two-point lattice:
 * initialized (top) / maybe-uninitialized.
 */
struct InitState
{
    bool maybeUninit = false;

    bool operator==(const InitState &rhs) const = default;
};

class InitLattice : public Lattice<InitState>
{
  public:
    /** @p uninit_sources: ops whose results are uninitialized reads. */
    explicit InitLattice(std::set<const ir::Operation *> uninit_sources)
        : uninitSources_(std::move(uninit_sources))
    {}

    InitState top(const ir::Value &value) const override;
    InitState join(const InitState &a, const InitState &b) const override;
    bool equal(const InitState &a, const InitState &b) const override;
    std::vector<InitState>
    transfer(const ir::Operation &op,
             const std::vector<InitState> &operands) const override;

  private:
    std::set<const ir::Operation *> uninitSources_;
};

} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_DATAFLOW_HH
