#include "analysis/effects.hh"

#include <algorithm>
#include <functional>

#include "analysis/dataflow.hh"

namespace longnail {
namespace analysis {

namespace {

using ir::Graph;
using ir::OpKind;
using ir::Operation;
using ir::Value;

void
forEachOp(const Graph &graph, const std::function<void(const Operation &)> &fn)
{
    for (const auto &op : graph.ops()) {
        fn(*op);
        if (op->subgraph())
            forEachOp(*op->subgraph(), fn);
    }
}

/** Predicate operand of a LIL interface op, if it carries one. */
const Value *
predOperand(const Operation &op)
{
    switch (op.kind()) {
      case OpKind::LilWriteRd:
      case OpKind::LilWritePC:
      case OpKind::LilWriteCustRegData:
        return op.numOperands() == 2 ? op.operand(1) : nullptr;
      case OpKind::LilWriteMem:
        return op.numOperands() == 3 ? op.operand(2) : nullptr;
      case OpKind::LilReadMem:
        return op.numOperands() == 2 ? op.operand(1) : nullptr;
      default:
        return nullptr;
    }
}

void
joinEffect(std::map<std::string, Effect> &into, const std::string &key,
           bool may, bool must, SourceLoc loc)
{
    auto [it, fresh] = into.emplace(key, Effect{may, must, loc});
    if (!fresh) {
        it->second.may |= may;
        it->second.must |= must;
    }
}

/** Walks the transitive fan-in of values, memoized per query set. */
class FanIn
{
  public:
    explicit FanIn(const Graph &graph)
    {
        collectDefs(graph);
    }

    /** True if any op satisfying @p pred is in @p root's fan-in
     * (including @p root's defining op itself). */
    bool
    reaches(const Value *root,
            const std::function<bool(const Operation &)> &pred) const
    {
        std::set<const Value *> seen;
        return walk(root, pred, seen);
    }

  private:
    bool
    walk(const Value *v, const std::function<bool(const Operation &)> &pred,
         std::set<const Value *> &seen) const
    {
        if (!v || !seen.insert(v).second)
            return false;
        auto it = defs_.find(v);
        if (it == defs_.end())
            return false;
        const Operation &def = *it->second;
        if (pred(def))
            return true;
        for (const Value *operand : def.operands())
            if (walk(operand, pred, seen))
                return true;
        return false;
    }

    void
    collectDefs(const Graph &graph)
    {
        for (const auto &op : graph.ops()) {
            for (unsigned r = 0; r < op->numResults(); ++r)
                defs_[op->result(r)] = op.get();
            if (op->subgraph())
                collectDefs(*op->subgraph());
        }
    }

    std::map<const Value *, const Operation *> defs_;
};

} // namespace

bool
EffectSummary::redirectsPc() const
{
    auto it = ifaceWrites.find("pc");
    return it != ifaceWrites.end() && it->second.may;
}

bool
EffectSummary::observableEmpty() const
{
    for (const auto &[reg, e] : regsWritten)
        if (e.may)
            return false;
    for (const auto &m : memWrites)
        if (m.may)
            return false;
    for (const auto &[port, e] : ifaceWrites)
        if (e.may)
            return false;
    return true;
}

GraphEffects
summarizeGraph(const Graph &graph)
{
    GraphEffects fx;
    auto ranges = computeRanges(graph);
    auto rangeOf = [&](const Value *v) {
        auto it = ranges.find(v);
        return it != ranges.end() ? it->second
                                  : ValueRange::full(v->type.width);
    };
    FanIn fanin(graph);

    auto readsReg = [&](const Value *v, const std::string &reg) {
        return fanin.reaches(v, [&](const Operation &def) {
            return def.kind() == OpKind::LilReadCustReg &&
                   def.strAttr("reg") == reg;
        });
    };
    auto readsMem = [&](const Value *v) {
        return fanin.reaches(v, [&](const Operation &def) {
            return def.kind() == OpKind::LilReadMem;
        });
    };

    forEachOp(graph, [&](const Operation &op) {
        if (!ir::isInterfaceOp(op.kind()))
            return;

        bool in_spawn = op.hasAttr("spawn");
        if (in_spawn && !fx.hasSpawn) {
            fx.hasSpawn = true;
            fx.spawnLoc = op.loc();
        }
        EffectSummary &s = in_spawn ? fx.spawn : fx.main;

        // MAY/MUST from the predicate: a provably false predicate
        // means the op has no effect at all; a provably true (or
        // absent) predicate makes it a MUST effect.
        bool may = true, must = true;
        if (const Value *pred = predOperand(op)) {
            ValueRange r = rangeOf(pred);
            if (r.isConstZero())
                may = must = false;
            else
                must = r.umin >= 1;
        }
        if (!may)
            return;

        // Byte-address interval of a memory access: the LIL memory
        // interface moves aligned 32-bit words, so the footprint is
        // [addr, addr + 3] (saturating).
        auto memInterval = [&](const Value *addr) {
            ValueRange r = rangeOf(addr);
            MemEffect m;
            m.lo = r.umin;
            m.hi = r.umax > UINT64_MAX - 3 ? UINT64_MAX : r.umax + 3;
            m.may = may;
            m.must = must;
            m.loc = op.loc();
            return m;
        };

        switch (op.kind()) {
          case OpKind::LilInstrWord:
            joinEffect(s.ifaceReads, "instr", may, must, op.loc());
            break;
          case OpKind::LilReadRs1:
            joinEffect(s.ifaceReads, "rs1", may, must, op.loc());
            break;
          case OpKind::LilReadRs2:
            joinEffect(s.ifaceReads, "rs2", may, must, op.loc());
            break;
          case OpKind::LilReadPC:
            joinEffect(s.ifaceReads, "pc", may, must, op.loc());
            break;
          case OpKind::LilReadMem:
            joinEffect(s.ifaceReads, "mem", may, must, op.loc());
            s.memReads.push_back(memInterval(op.operand(0)));
            break;
          case OpKind::LilReadCustReg:
            joinEffect(s.regsRead, op.strAttr("reg"), may, must,
                       op.loc());
            break;
          case OpKind::LilWriteRd:
            joinEffect(s.ifaceWrites, "rd", may, must, op.loc());
            break;
          case OpKind::LilWritePC:
            joinEffect(s.ifaceWrites, "pc", may, must, op.loc());
            break;
          case OpKind::LilWriteMem: {
            joinEffect(s.ifaceWrites, "mem", may, must, op.loc());
            MemEffect m = memInterval(op.operand(0));
            m.dependsOnMemRead = readsMem(op.operand(0)) ||
                                 readsMem(op.operand(1));
            s.memWrites.push_back(m);
            break;
          }
          case OpKind::LilWriteCustRegAddr:
            // The paired LilWriteCustRegData op carries the value and
            // predicate; the address leg alone is not an effect.
            break;
          case OpKind::LilWriteCustRegData: {
            const std::string &reg = op.strAttr("reg");
            joinEffect(s.regsWritten, reg, may, must, op.loc());
            if (readsReg(op.operand(0), reg))
                s.regsRmw.insert(reg);
            break;
          }
          default:
            break;
        }
    });
    return fx;
}

const char *
hazardKindName(HazardKind kind)
{
    switch (kind) {
      case HazardKind::RegRace: return "reg-race";
      case HazardKind::RegWaw: return "reg-waw";
      case HazardKind::MemAlias: return "mem-alias";
      case HazardKind::PortConflict: return "port-conflict";
    }
    return "?";
}

std::vector<Hazard>
interference(const EffectSummary &a, const EffectSummary &b)
{
    std::vector<Hazard> out;

    // Register hazards: a's writes against b's reads and writes.
    for (const auto &[reg, wa] : a.regsWritten) {
        if (!wa.may)
            continue;
        if (auto it = b.regsRead.find(reg);
            it != b.regsRead.end() && it->second.may)
            out.push_back({HazardKind::RegRace, reg,
                           wa.must && it->second.must, wa.loc});
        if (auto it = b.regsWritten.find(reg);
            it != b.regsWritten.end() && it->second.may)
            out.push_back({HazardKind::RegWaw, reg,
                           wa.must && it->second.must, wa.loc});
    }

    // Port conflicts: both partitions driving the same core write
    // port (rd/pc; "mem" overlap is reported precisely below).
    for (const auto &[port, wa] : a.ifaceWrites) {
        if (!wa.may || port == "mem")
            continue;
        if (auto it = b.ifaceWrites.find(port);
            it != b.ifaceWrites.end() && it->second.may)
            out.push_back({HazardKind::PortConflict, port,
                           wa.must && it->second.must, wa.loc});
    }

    // Memory aliasing: a's writes against b's reads and writes, using
    // the range-lattice address intervals.
    for (const auto &wa : a.memWrites) {
        if (!wa.may)
            continue;
        bool alias = false, must = false;
        for (const auto &rb : b.memReads)
            if (rb.may && wa.overlaps(rb)) {
                alias = true;
                must |= wa.must && rb.must;
            }
        for (const auto &wb : b.memWrites)
            if (wb.may && wa.overlaps(wb)) {
                alias = true;
                must |= wa.must && wb.must;
            }
        if (alias)
            out.push_back({HazardKind::MemAlias, "memory", must,
                           wa.loc});
    }
    return out;
}

bool
spawnIsolated(const GraphEffects &fx)
{
    if (!fx.hasSpawn)
        return false;
    return interference(fx.spawn, fx.main).empty() &&
           interference(fx.main, fx.spawn).empty();
}

} // namespace analysis
} // namespace longnail
