#include "analysis/tv/netlint.hh"

#include <vector>

namespace longnail {
namespace analysis {
namespace tv {

using rtl::invalidNet;
using rtl::NetId;
using rtl::NodeKind;

namespace {

std::string
where(const rtl::Module &module, const rtl::Node &node, size_t index)
{
    std::string s = std::string(rtl::nodeKindName(node.kind)) +
                    " node #" + std::to_string(index);
    if (node.result < module.numNets() &&
        !module.netName(node.result).empty())
        s += " ('" + module.netName(node.result) + "')";
    return s;
}

/** Per-kind operand/result width rules (LN4602). Empty = no finding. */
std::string
widthRule(const rtl::Module &m, const rtl::Node &node)
{
    auto w = [&](NetId net) { return m.widthOf(net); };
    unsigned rw = w(node.result);
    const auto &ops = node.operands;
    switch (node.kind) {
      case NodeKind::Add:
      case NodeKind::Sub:
      case NodeKind::Mul:
      case NodeKind::DivU:
      case NodeKind::DivS:
      case NodeKind::ModU:
      case NodeKind::ModS:
      case NodeKind::And:
      case NodeKind::Or:
      case NodeKind::Xor:
        if (ops.size() != 2)
            return "expects exactly two operands";
        if (w(ops[0]) != rw || w(ops[1]) != rw)
            return "operand widths " + std::to_string(w(ops[0])) +
                   "/" + std::to_string(w(ops[1])) +
                   " do not match result width " + std::to_string(rw);
        break;
      case NodeKind::Shl:
      case NodeKind::ShrU:
      case NodeKind::ShrS:
        if (ops.size() != 2)
            return "expects exactly two operands";
        if (w(ops[0]) != rw)
            return "shifted value width " + std::to_string(w(ops[0])) +
                   " does not match result width " + std::to_string(rw);
        break;
      case NodeKind::ICmp:
        if (ops.size() != 2)
            return "expects exactly two operands";
        if (rw != 1)
            return "result must be one bit";
        if (w(ops[0]) != w(ops[1]))
            return "compares operands of widths " +
                   std::to_string(w(ops[0])) + " and " +
                   std::to_string(w(ops[1]));
        break;
      case NodeKind::Mux:
        if (ops.size() != 3)
            return "expects select, then, else operands";
        if (w(ops[0]) != 1)
            return "select must be one bit";
        if (w(ops[1]) != rw || w(ops[2]) != rw)
            return "arm widths " + std::to_string(w(ops[1])) + "/" +
                   std::to_string(w(ops[2])) +
                   " do not match result width " + std::to_string(rw);
        break;
      case NodeKind::Extract:
        if (ops.size() != 1)
            return "expects exactly one operand";
        if (node.lo + rw > w(ops[0]))
            return "extracts bits [" + std::to_string(node.lo) + "+:" +
                   std::to_string(rw) + "] from a " +
                   std::to_string(w(ops[0])) + "-bit operand";
        break;
      case NodeKind::Concat: {
        if (ops.size() < 2)
            return "expects at least two operands";
        unsigned sum = 0;
        for (NetId op : ops)
            sum += w(op);
        if (sum != rw)
            return "operand widths sum to " + std::to_string(sum) +
                   ", result is " + std::to_string(rw) + " bits";
        break;
      }
      case NodeKind::Replicate:
        if (ops.size() != 1 || w(ops[0]) != 1)
            return "expects a single one-bit operand";
        break;
      case NodeKind::Rom:
        if (ops.size() != 1)
            return "expects exactly one index operand";
        break;
      case NodeKind::Register:
        if (ops.empty() || ops.size() > 2)
            return "expects data [, enable] operands";
        if (w(ops[0]) != rw)
            return "data width " + std::to_string(w(ops[0])) +
                   " does not match register width " +
                   std::to_string(rw);
        if (ops.size() == 2 && w(ops[1]) != 1)
            return "enable must be one bit";
        break;
      case NodeKind::Input:
      case NodeKind::Constant:
        if (!ops.empty())
            return "expects no operands";
        break;
    }
    return "";
}

} // namespace

NetlistLintResult
lintNetlist(const rtl::Module &module, DiagnosticEngine &diags)
{
    NetlistLintResult result;
    const std::string in = " in module '" + module.name() + "'";
    auto err = [&](const std::string &code, const std::string &msg) {
        ++result.errors;
        diags.error(SourceLoc{}, code, msg + in);
    };

    size_t num_nets = module.numNets();
    const auto &nodes = module.nodes();

    // Driver map: defOrder[net] = index of the defining node.
    constexpr size_t undriven = ~size_t(0);
    std::vector<size_t> def_order(num_nets, undriven);
    for (size_t i = 0; i < nodes.size(); ++i) {
        const rtl::Node &node = nodes[i];
        if (node.result >= num_nets) {
            err("LN4603", where(module, node, i) +
                              " drives an out-of-range net");
            continue;
        }
        if (def_order[node.result] != undriven)
            err("LN4603",
                "net " + std::to_string(node.result) +
                    " is driven by both node #" +
                    std::to_string(def_order[node.result]) + " and " +
                    where(module, node, i));
        else
            def_order[node.result] = i;
    }

    // Operand checks: every use must refer to an earlier driver
    // (Registers included -- hwgen never emits a feedback path; a
    // later driver in this topologically ordered IR means a
    // combinational loop once emitted as Verilog `assign`s).
    for (size_t i = 0; i < nodes.size(); ++i) {
        const rtl::Node &node = nodes[i];
        for (NetId op : node.operands) {
            if (op >= num_nets || def_order[op] == undriven) {
                err("LN4603", where(module, node, i) +
                                  " reads undriven net " +
                                  std::to_string(op));
            } else if (def_order[op] >= i) {
                err("LN4601",
                    where(module, node, i) + " reads net " +
                        std::to_string(op) +
                        " whose driver comes later (node #" +
                        std::to_string(def_order[op]) +
                        "): combinational loop");
            }
        }
    }

    // Width rules are only meaningful over valid nets.
    if (result.errors == 0) {
        for (size_t i = 0; i < nodes.size(); ++i) {
            std::string finding = widthRule(module, nodes[i]);
            if (!finding.empty())
                err("LN4602",
                    where(module, nodes[i], i) + " " + finding);
        }
    }

    // Output bindings.
    for (const rtl::OutputPort &port : module.outputs()) {
        if (port.net >= num_nets || def_order[port.net] == undriven)
            err("LN4603", "output port '" + port.name +
                              "' is bound to an undriven net");
    }

    // LN4604: reverse reachability from the output ports. Inputs are
    // exempt (an interface port a unit never reads is normal), and so
    // are constants (free literals hwgen interns eagerly); all other
    // unreachable nodes are logic hwgen built for nothing.
    if (result.errors == 0) {
        std::vector<bool> live(nodes.size(), false);
        std::vector<size_t> work;
        for (const rtl::OutputPort &port : module.outputs()) {
            size_t def = def_order[port.net];
            if (!live[def]) {
                live[def] = true;
                work.push_back(def);
            }
        }
        while (!work.empty()) {
            size_t i = work.back();
            work.pop_back();
            for (NetId op : nodes[i].operands) {
                size_t def = def_order[op];
                if (!live[def]) {
                    live[def] = true;
                    work.push_back(def);
                }
            }
        }
        for (size_t i = 0; i < nodes.size(); ++i) {
            if (live[i] || nodes[i].kind == NodeKind::Input ||
                nodes[i].kind == NodeKind::Constant)
                continue;
            ++result.deadNodes;
            diags.warning(SourceLoc{}, "LN4604",
                          where(module, nodes[i], i) +
                              " drives no output: dead logic" + in);
        }
    }

    return result;
}

} // namespace tv
} // namespace analysis
} // namespace longnail
