/**
 * @file
 * Translation validation, part 1: schedule legality re-checking
 * (docs/translation-validation.md).
 *
 * checkSchedule() audits a solved scheduling problem *independently* of
 * the solver: the dependence latencies, interface stage windows and
 * chain-breaking edges are re-derived from the LIL graph, the core
 * datasheet and the technology library through code paths separate from
 * the ILP model construction, so a bug in the solver or in the fallback
 * chain cannot silently vouch for itself.
 *
 * Findings (docs/failure-model.md):
 *   LN4401  operation unscheduled or at a negative start time (error)
 *   LN4402  dependence/latency violation between def and use (error)
 *   LN4403  interface op outside its datasheet stage window (error)
 *   LN4404  combinational chain exceeds the cycle time (warning;
 *           skipped for FallbackRelaxed schedules, which give up
 *           chain-breaking by design)
 *   LN4405  SCAIE-V once-per-instruction rule violated (error)
 */

#ifndef LONGNAIL_ANALYSIS_TV_SCHEDCHECK_HH
#define LONGNAIL_ANALYSIS_TV_SCHEDCHECK_HH

#include "lil/lil.hh"
#include "scaiev/datasheet.hh"
#include "sched/scheduler.hh"
#include "sched/techlib.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace analysis {
namespace tv {

/** Outcome counters of one schedule audit. */
struct ScheduleCheckResult
{
    unsigned edgesChecked = 0;
    /** LN4401/02/03/05 errors. */
    unsigned violations = 0;
    /** LN4404 chaining warnings (advisory; fmax, not correctness). */
    unsigned chainWarnings = 0;

    bool ok() const { return violations == 0; }
};

/**
 * Re-verify the start times recorded in @p built against @p graph,
 * @p core and @p tech. @p quality selects which guarantees the
 * schedule claims (FallbackRelaxed schedules are exempt from the
 * LN4404 chaining check). Emits LN44xx diagnostics into @p diags.
 */
ScheduleCheckResult checkSchedule(const lil::LilGraph &graph,
                                  const sched::BuiltProblem &built,
                                  const scaiev::Datasheet &core,
                                  const sched::TechLibrary &tech,
                                  sched::ScheduleQuality quality,
                                  DiagnosticEngine &diags);

} // namespace tv
} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_TV_SCHEDCHECK_HH
