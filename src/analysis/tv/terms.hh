/**
 * @file
 * Canonical bitvector term DAG for translation validation
 * (docs/translation-validation.md).
 *
 * Both sides of the equivalence check — the scheduled rtl::Module
 * netlist and the LIL graph it was generated from — are evaluated
 * into terms owned by one shared TermBuilder. The builder
 * hash-conses structurally identical terms, folds constants with
 * exactly the rtl::Simulator / ir::evaluate() semantics (shift
 * amounts >= width saturate, division by zero yields 0, ROM
 * out-of-range reads yield 0), sorts the operands of commutative
 * operators, and applies local identity rewrites (x+0, x&x,
 * mux(c,a,b), ...). Two values are proved equal when they reduce to
 * the same TermId; anything else falls back to co-simulation.
 */

#ifndef LONGNAIL_ANALYSIS_TV_TERMS_HH
#define LONGNAIL_ANALYSIS_TV_TERMS_HH

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/dataflow.hh"
#include "ir/ir.hh"
#include "support/apint.hh"

namespace longnail {
namespace analysis {
namespace tv {

/** Index of a term inside its TermBuilder. */
using TermId = uint32_t;
constexpr TermId invalidTerm = ~TermId(0);

/** Operator of a term node (mirrors rtl::NodeKind's pure subset). */
enum class TermKind
{
    Var,      ///< free variable (an architectural input)
    Const,    ///< literal
    Add,
    Sub,
    Mul,
    DivU,
    DivS,
    ModU,
    ModS,
    And,
    Or,
    Xor,
    Shl,
    ShrU,
    ShrS,
    ICmp,     ///< pred attr
    Mux,      ///< operands: sel(1), then, else
    Extract,  ///< lo attr
    Concat,   ///< operand 0 is the high part
    Replicate,///< 1-bit operand replicated to the term width
    Rom,      ///< values attr; operand: index
};

const char *termKindName(TermKind kind);

/** One node of the term DAG. */
struct Term
{
    TermKind kind = TermKind::Const;
    unsigned width = 1;
    std::vector<TermId> operands;
    ApInt cval{1, 0};        ///< Const payload
    std::string var;         ///< Var name
    ir::ICmpPred pred = ir::ICmpPred::Eq;
    unsigned lo = 0;         ///< Extract offset
    std::vector<ApInt> romValues;
};

/**
 * Owns the term DAG and guarantees the canonical-form invariant: any
 * two calls that build structurally equal (post-rewrite) terms return
 * the same TermId.
 */
class TermBuilder
{
  public:
    /** Free variable; the same (name, width) always returns the same
     * id, so both evaluation sides share input symbols. */
    TermId var(const std::string &name, unsigned width);

    /** A fresh variable no other term can equal (used for values the
     * checker cannot model, e.g. a register with a symbolic enable). */
    TermId opaque(unsigned width);

    TermId constant(const ApInt &value);

    /**
     * Generic canonicalizing constructor for the computational kinds.
     * Applies constant folding, identity rewrites and commutative
     * operand sorting before hash-consing.
     */
    TermId make(TermKind kind, unsigned width,
                std::vector<TermId> operands);

    TermId icmp(ir::ICmpPred pred, TermId lhs, TermId rhs);
    /** Memoized: extraction recurses structurally through shared
     * sub-DAGs, and without the cache the same (value, lo, count)
     * slice is recomputed once per path — exponential on deeply
     * chained graphs like an unrolled sqrt. */
    TermId extract(TermId value, unsigned lo, unsigned count);
    TermId rom(std::vector<ApInt> values, unsigned width, TermId index);

    const Term &term(TermId id) const { return terms_.at(id); }
    size_t size() const { return terms_.size(); }

    /** Bounded-depth s-expression rendering for diagnostics. */
    std::string render(TermId id, unsigned max_depth = 4) const;

  private:
    /** Structural key for hash-consing. */
    struct Key
    {
        TermKind kind;
        unsigned width;
        std::vector<TermId> operands;
        std::string payload; ///< cval/var/pred/lo/rom, serialized

        bool operator<(const Key &rhs) const;
    };

    TermId intern(Term term);
    TermId extractImpl(TermId value, unsigned lo, unsigned count);
    const ApInt &constOf(TermId id) const { return terms_[id].cval; }
    bool isConst(TermId id) const
    {
        return terms_[id].kind == TermKind::Const;
    }

    /**
     * Structural unsigned range of a term, memoized; mirrors the
     * RangeLattice transfer rules so comparisons the graph-side range
     * analysis decides also fold here (range-driven dead-code
     * elimination then proves symbolically, docs/pass-pipeline.md).
     */
    ValueRange rangeOf(TermId id);

    std::vector<Term> terms_;
    std::map<Key, TermId> interned_;
    std::map<TermId, ValueRange> ranges_;
    std::map<std::tuple<TermId, unsigned, unsigned>, TermId>
        extractMemo_;
    unsigned nextOpaque_ = 0;
};

} // namespace tv
} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_TV_TERMS_HH
