/**
 * @file
 * Translation validation of one compiled unit
 * (docs/translation-validation.md): the entry point the driver runs
 * behind `longnail --validate` / CompileOptions::validate.
 *
 * Composes the three independent checkers over one (LIL graph,
 * schedule, netlist) triple:
 *   1. schedule legality      (analysis/tv/schedcheck.hh, LN44xx)
 *   2. LIL<->netlist equivalence (analysis/tv/equiv.hh,   LN45xx)
 *   3. netlist lints          (analysis/tv/netlint.hh,    LN46xx)
 */

#ifndef LONGNAIL_ANALYSIS_TV_TV_HH
#define LONGNAIL_ANALYSIS_TV_TV_HH

#include "analysis/tv/equiv.hh"
#include "analysis/tv/netlint.hh"
#include "analysis/tv/schedcheck.hh"

namespace longnail {
namespace analysis {
namespace tv {

struct TvOptions
{
    EquivOptions equiv;
};

/** Combined result of validating one compiled unit. */
struct UnitResult
{
    ScheduleCheckResult schedule;
    EquivResult equiv;
    NetlistLintResult netlist;

    /** Every checker passed and the equivalence was proved
     * symbolically (an LN4502-only unit is ok() but not proved). */
    bool proved() const
    {
        return ok() && equiv.proved;
    }
    /** No error-severity finding. */
    bool ok() const
    {
        return schedule.ok() && !equiv.refuted && netlist.ok();
    }
};

/**
 * Validate the translation of @p graph into @p module under the
 * schedule in @p built. Emits LN44xx/LN45xx/LN46xx diagnostics into
 * @p diags; the caller decides whether errors abort the compile.
 */
UnitResult validateUnit(const lil::LilGraph &graph,
                        const sched::BuiltProblem &built,
                        const hwgen::GeneratedModule &module,
                        const scaiev::Datasheet &core,
                        const sched::TechLibrary &tech,
                        sched::ScheduleQuality quality,
                        const coredsl::ElaboratedIsa &isa,
                        DiagnosticEngine &diags,
                        const TvOptions &options = {});

} // namespace tv
} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_TV_TV_HH
