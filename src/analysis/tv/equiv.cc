#include "analysis/tv/equiv.hh"

#include <map>
#include <random>

#include "analysis/tv/terms.hh"
#include "hwgen/runner.hh"
#include "lil/interp.hh"
#include "obs/metrics.hh"

namespace longnail {
namespace analysis {
namespace tv {

using ir::OpKind;
using rtl::NetId;
using rtl::NodeKind;
using scaiev::SubInterface;

namespace {

/** One per-output proof obligation. */
struct Obligation
{
    std::string port;
    TermId lil = invalidTerm;
    TermId net = invalidTerm;
};

TermKind
termKindOfComb(OpKind kind)
{
    switch (kind) {
      case OpKind::CombAdd: return TermKind::Add;
      case OpKind::CombSub: return TermKind::Sub;
      case OpKind::CombMul: return TermKind::Mul;
      case OpKind::CombDivU: return TermKind::DivU;
      case OpKind::CombDivS: return TermKind::DivS;
      case OpKind::CombModU: return TermKind::ModU;
      case OpKind::CombModS: return TermKind::ModS;
      case OpKind::CombAnd: return TermKind::And;
      case OpKind::CombOr: return TermKind::Or;
      case OpKind::CombXor: return TermKind::Xor;
      case OpKind::CombShl: return TermKind::Shl;
      case OpKind::CombShrU: return TermKind::ShrU;
      case OpKind::CombShrS: return TermKind::ShrS;
      case OpKind::CombMux: return TermKind::Mux;
      case OpKind::CombConcat: return TermKind::Concat;
      case OpKind::CombReplicate: return TermKind::Replicate;
      default:
        return TermKind::Var; // caller treats as "not a comb op"
    }
}

bool
isCombBinaryLike(OpKind kind)
{
    return termKindOfComb(kind) != TermKind::Var;
}

/** Canonical shared-variable name for an interface read. */
std::string
readVarName(SubInterface iface, const std::string &reg)
{
    switch (iface) {
      case SubInterface::RdInstr: return "instr_word";
      case SubInterface::RdRS1: return "rs1";
      case SubInterface::RdRS2: return "rs2";
      case SubInterface::RdPC: return "pc";
      case SubInterface::RdMem: return "rdmem_data";
      case SubInterface::RdCustReg: return "rdreg_data:" + reg;
      default:
        return "";
    }
}

/**
 * Symbolically evaluate the LIL graph. Interface reads become shared
 * free variables; interface writes contribute obligations against the
 * netlist's output ports.
 */
void
evalLilSide(const lil::LilGraph &graph,
            const hwgen::GeneratedModule &module, TermBuilder &builder,
            std::vector<Obligation> &obligations,
            std::vector<std::string> &structural)
{
    std::map<const ir::Value *, TermId> values;
    auto get = [&](const ir::Value *v) { return values.at(v); };
    auto oblige = [&](const std::string &port, const ir::Value *v) {
        obligations.push_back({port, get(v), invalidTerm});
    };

    for (const auto &op : graph.graph.ops()) {
        unsigned rw = op->numResults() ? op->result()->type.width : 1;
        OpKind kind = op->kind();
        std::string reg =
            op->hasAttr("reg") ? op->strAttr("reg") : std::string();
        const hwgen::InterfacePort *port = nullptr;
        if (auto iface = scaiev::subInterfaceFor(kind)) {
            port = module.findPort(*iface, reg);
            if (!port) {
                structural.push_back(
                    "netlist has no port for interface op '" +
                    std::string(op->name()) + "'");
                if (op->numResults())
                    values[op->result()] = builder.opaque(rw);
                continue;
            }
        }
        switch (kind) {
          case OpKind::CombConstant:
            values[op->result()] =
                builder.constant(op->apAttr("value"));
            break;
          case OpKind::CombExtract:
            values[op->result()] = builder.extract(
                get(op->operand(0)), unsigned(op->intAttr("lo")), rw);
            break;
          case OpKind::CombICmp:
            values[op->result()] = builder.icmp(
                static_cast<ir::ICmpPred>(op->intAttr("pred")),
                get(op->operand(0)), get(op->operand(1)));
            break;
          case OpKind::CombRom:
            values[op->result()] = builder.rom(
                op->romAttr("values"), rw, get(op->operand(0)));
            break;
          case OpKind::LilInstrWord:
          case OpKind::LilReadRs1:
          case OpKind::LilReadRs2:
          case OpKind::LilReadPC:
            values[op->result()] = builder.var(
                readVarName(*scaiev::subInterfaceFor(kind), reg), rw);
            break;
          case OpKind::LilReadMem:
            // The environment drives the data port with the same value
            // on both sides once the address and valid obligations
            // hold (hwgen/runner.cc leaves it 0 when valid is low,
            // matching the interpreter's predicated-off result).
            oblige(port->addrPort, op->operand(0));
            oblige(port->validPort, op->operand(1));
            values[op->result()] =
                builder.var(readVarName(SubInterface::RdMem, ""), rw);
            break;
          case OpKind::LilReadCustReg:
            if (!port->addrPort.empty())
                oblige(port->addrPort, op->operand(0));
            values[op->result()] = builder.var(
                readVarName(SubInterface::RdCustReg, reg), rw);
            break;
          case OpKind::LilWriteRd:
          case OpKind::LilWritePC:
            oblige(port->dataPort, op->operand(0));
            oblige(port->validPort, op->operand(1));
            break;
          case OpKind::LilWriteMem:
            oblige(port->addrPort, op->operand(0));
            oblige(port->dataPort, op->operand(1));
            oblige(port->validPort, op->operand(2));
            break;
          case OpKind::LilWriteCustRegAddr:
            if (!port->addrPort.empty())
                oblige(port->addrPort, op->operand(0));
            break;
          case OpKind::LilWriteCustRegData:
            oblige(port->dataPort, op->operand(0));
            oblige(port->validPort, op->operand(1));
            break;
          case OpKind::LilSink:
            break;
          default:
            if (isCombBinaryLike(kind)) {
                std::vector<TermId> operands;
                for (unsigned i = 0; i < op->numOperands(); ++i)
                    operands.push_back(get(op->operand(i)));
                values[op->result()] = builder.make(
                    termKindOfComb(kind), rw, std::move(operands));
            } else if (op->numResults()) {
                values[op->result()] = builder.opaque(rw);
            }
            break;
        }
    }
}

/**
 * Symbolically evaluate the netlist under the isolated-execution
 * environment: stall inputs 0, interface data inputs shared free
 * variables, registers transparent (their enables fold to 1 once the
 * stalls are constant). Fills each obligation's netlist side.
 */
void
evalNetlistSide(const hwgen::GeneratedModule &module,
                TermBuilder &builder,
                std::vector<Obligation> &obligations,
                std::vector<std::string> &structural)
{
    const rtl::Module &m = module.module;

    // Input name -> canonical variable name.
    std::map<std::string, std::string> input_vars;
    for (const auto &port : module.ports) {
        std::string var = readVarName(port.iface, port.reg);
        if (!var.empty() && !port.dataPort.empty())
            input_vars[port.dataPort] = var;
    }
    std::map<std::string, bool> stall_inputs;
    for (const std::string &name : module.stallInputs)
        if (!name.empty())
            stall_inputs[name] = true;
    std::map<NetId, std::string> input_names;
    for (const auto &[name, net] : m.inputs())
        input_names[net] = name;

    std::vector<TermId> net_terms(m.numNets(), invalidTerm);
    for (const rtl::Node &node : m.nodes()) {
        unsigned rw = m.widthOf(node.result);
        TermId t = invalidTerm;
        switch (node.kind) {
          case NodeKind::Input: {
            const std::string &name = input_names.at(node.result);
            if (stall_inputs.count(name))
                t = builder.constant(ApInt(1, 0));
            else if (auto it = input_vars.find(name);
                     it != input_vars.end())
                t = builder.var(it->second, rw);
            else
                t = builder.var(name, rw);
            break;
          }
          case NodeKind::Constant:
            t = builder.constant(node.value);
            break;
          case NodeKind::ICmp:
            t = builder.icmp(node.pred, net_terms[node.operands[0]],
                             net_terms[node.operands[1]]);
            break;
          case NodeKind::Extract:
            t = builder.extract(net_terms[node.operands[0]], node.lo,
                                rw);
            break;
          case NodeKind::Rom:
            t = builder.rom(node.romValues, rw,
                            net_terms[node.operands[0]]);
            break;
          case NodeKind::Register: {
            TermId d = net_terms[node.operands[0]];
            if (node.operands.size() < 2) {
                t = d; // free-running: pure delay, untimed identity
                break;
            }
            const Term &en = builder.term(net_terms[node.operands[1]]);
            if (en.kind == TermKind::Const)
                t = en.cval.isZero() ? builder.constant(node.value) : d;
            else
                t = builder.opaque(rw); // data-dependent enable
            break;
          }
          default: {
            TermKind kind;
            switch (node.kind) {
              case NodeKind::Add: kind = TermKind::Add; break;
              case NodeKind::Sub: kind = TermKind::Sub; break;
              case NodeKind::Mul: kind = TermKind::Mul; break;
              case NodeKind::DivU: kind = TermKind::DivU; break;
              case NodeKind::DivS: kind = TermKind::DivS; break;
              case NodeKind::ModU: kind = TermKind::ModU; break;
              case NodeKind::ModS: kind = TermKind::ModS; break;
              case NodeKind::And: kind = TermKind::And; break;
              case NodeKind::Or: kind = TermKind::Or; break;
              case NodeKind::Xor: kind = TermKind::Xor; break;
              case NodeKind::Shl: kind = TermKind::Shl; break;
              case NodeKind::ShrU: kind = TermKind::ShrU; break;
              case NodeKind::ShrS: kind = TermKind::ShrS; break;
              case NodeKind::Mux: kind = TermKind::Mux; break;
              case NodeKind::Concat: kind = TermKind::Concat; break;
              case NodeKind::Replicate:
                kind = TermKind::Replicate;
                break;
              default:
                kind = TermKind::Var;
                break;
            }
            if (kind == TermKind::Var) {
                t = builder.opaque(rw);
                break;
            }
            std::vector<TermId> operands;
            for (NetId op : node.operands)
                operands.push_back(net_terms[op]);
            t = builder.make(kind, rw, std::move(operands));
            break;
          }
        }
        net_terms[node.result] = t;
    }

    for (Obligation &o : obligations) {
        auto net = m.findOutput(o.port);
        if (!net) {
            structural.push_back("netlist has no output port '" +
                                 o.port + "'");
            continue;
        }
        o.net = net_terms[*net];
    }
}

// --- Co-simulation fallback ------------------------------------------------

std::string
hex(const ApInt &v)
{
    return "0x" + v.toStringUnsigned(16);
}

/** First difference between the golden-model and RTL effects; empty
 * when they agree. */
std::string
diffEffects(const lil::InterpResult &want, const lil::InterpResult &got)
{
    auto scalar = [](const char *what, const lil::InterpWrite &w,
                     const lil::InterpWrite &g) -> std::string {
        if (w.enabled != g.enabled)
            return std::string(what) + " valid: golden=" +
                   (w.enabled ? "1" : "0") +
                   " rtl=" + (g.enabled ? "1" : "0");
        if (w.enabled && !(w.value == g.value))
            return std::string(what) + ": golden=" + hex(w.value) +
                   " rtl=" + hex(g.value);
        return "";
    };
    std::string d = scalar("WrRD", want.rd, got.rd);
    if (d.empty())
        d = scalar("WrPC", want.pcWrite, got.pcWrite);
    if (!d.empty())
        return d;
    if (want.mem.enabled != got.mem.enabled)
        return std::string("WrMem valid: golden=") +
               (want.mem.enabled ? "1" : "0") +
               " rtl=" + (got.mem.enabled ? "1" : "0");
    if (want.mem.enabled &&
        (!(want.mem.addr == got.mem.addr) ||
         !(want.mem.value == got.mem.value)))
        return "WrMem: golden=[" + hex(want.mem.addr) + "]<-" +
               hex(want.mem.value) + " rtl=[" + hex(got.mem.addr) +
               "]<-" + hex(got.mem.value);
    if (want.memReadUsed != got.memReadUsed)
        return std::string("RdMem valid: golden=") +
               (want.memReadUsed ? "1" : "0") +
               " rtl=" + (got.memReadUsed ? "1" : "0");
    if (want.memReadUsed && !(want.memReadAddr == got.memReadAddr))
        return "RdMem addr: golden=" + hex(want.memReadAddr) +
               " rtl=" + hex(got.memReadAddr);
    for (const auto &[reg, w] : want.custWrites) {
        auto it = got.custWrites.find(reg);
        bool got_enabled =
            it != got.custWrites.end() && it->second.enabled;
        if (w.enabled != got_enabled)
            return "Wr" + reg + " valid: golden=" +
                   (w.enabled ? "1" : "0") +
                   " rtl=" + (got_enabled ? "1" : "0");
        if (w.enabled && (!(w.value == it->second.value) ||
                          !(w.index == it->second.index)))
            return "Wr" + reg + ": golden=[" + hex(w.index) + "]<-" +
                   hex(w.value) + " rtl=[" + hex(it->second.index) +
                   "]<-" + hex(it->second.value);
    }
    for (const auto &[reg, g] : got.custWrites) {
        if (g.enabled && !want.custWrites.count(reg))
            return "Wr" + reg + " valid: golden=0 rtl=1";
    }
    return "";
}

/** Deterministic memory contents: a pure hash of the address. */
ApInt
hashMemWord(const ApInt &addr)
{
    uint64_t x = addr.toUint64() ^ 0x5bd1e995u;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return ApInt(32, uint32_t(x));
}

lil::InterpInput
cosimInput(const lil::LilGraph &graph,
           const coredsl::ElaboratedIsa &isa, unsigned trial,
           std::mt19937 &rng)
{
    auto word = [&]() -> uint32_t {
        if (trial == 0)
            return 0;
        if (trial == 1)
            return ~0u;
        return rng();
    };
    lil::InterpInput input;
    uint32_t raw = word();
    input.instrWord =
        ApInt(32, graph.instr
                      ? (graph.instr->match | (raw & ~graph.instr->mask))
                      : raw);
    input.rs1 = ApInt(32, word());
    input.rs2 = ApInt(32, word());
    input.pc = ApInt(32, word() & ~3u);
    input.readMem = hashMemWord;
    for (const auto &state : isa.state) {
        if (state.isCoreState || state.isConst ||
            state.kind != coredsl::StateInfo::Kind::Register)
            continue;
        std::vector<ApInt> contents;
        for (uint64_t i = 0; i < state.numElements; ++i)
            contents.push_back(
                ApInt(state.elementType.width,
                      trial == 0 ? 0
                      : trial == 1
                          ? ~0ull
                          : (uint64_t(rng()) << 32 | rng())));
        input.custRegs[state.name] = contents;
    }
    return input;
}

std::string
describeInput(const lil::InterpInput &input)
{
    return "instr_word=" + hex(input.instrWord) +
           " rs1=" + hex(input.rs1) + " rs2=" + hex(input.rs2) +
           " pc=" + hex(input.pc);
}

} // namespace

EquivResult
checkEquivalence(const lil::LilGraph &graph,
                 const hwgen::GeneratedModule &module,
                 const coredsl::ElaboratedIsa &isa,
                 DiagnosticEngine &diags, const EquivOptions &options)
{
    EquivResult result;
    TermBuilder builder;
    std::vector<Obligation> obligations;
    std::vector<std::string> structural;

    evalLilSide(graph, module, builder, obligations, structural);
    evalNetlistSide(module, builder, obligations, structural);
    result.termDagSize = builder.size();

    if (!structural.empty()) {
        // The port layout itself disagrees with the LIL graph; running
        // the co-simulation harness would panic on the missing ports.
        for (const std::string &s : structural)
            diags.error(SourceLoc{}, "LN4501",
                        "'" + graph.name + "': " + s);
        result.refuted = true;
        return result;
    }

    std::vector<const Obligation *> unproved;
    for (const Obligation &o : obligations) {
        ++result.outputsChecked;
        if (o.lil == o.net)
            ++result.outputsProved;
        else
            unproved.push_back(&o);
    }
    if (unproved.empty()) {
        result.proved = true;
        return result;
    }

    // Symbolic check inconclusive: hunt for a concrete counterexample.
    uint64_t cycles_per_run = uint64_t(module.lastStage) + 1;
    std::mt19937 rng(0x4c4e5456u); // deterministic: "LNTV"
    for (unsigned trial = 0; trial < options.cosimTrials; ++trial) {
        lil::InterpInput input = cosimInput(graph, isa, trial, rng);
        lil::InterpResult want = lil::interpret(graph, input);
        lil::InterpResult got = hwgen::runIsolated(module, input);
        result.cexCycles += cycles_per_run;
        std::string diff = diffEffects(want, got);
        if (diff.empty())
            continue;
        result.refuted = true;
        const Obligation &o = *unproved.front();
        diags.error(
            SourceLoc{}, "LN4501",
            "'" + graph.name +
                "': netlist is not equivalent to its LIL graph; "
                "counterexample (trial " +
                std::to_string(trial) + "): " + describeInput(input) +
                ": " + diff + "; first unproved output '" + o.port +
                "': lil=" + builder.render(o.lil) +
                " vs rtl=" + builder.render(o.net));
        return result;
    }

    std::string ports;
    for (const Obligation *o : unproved)
        ports += (ports.empty() ? "" : ", ") + o->port;
    const Obligation &o = *unproved.front();
    diags.warning(
        SourceLoc{}, "LN4502",
        "'" + graph.name + "': could not symbolically prove output" +
            (unproved.size() > 1 ? "s " : " ") + ports +
            " equivalent; " + std::to_string(options.cosimTrials) +
            " co-simulation trials agree (lil=" +
            builder.render(o.lil) + " vs rtl=" + builder.render(o.net) +
            ")");
    return result;
}

} // namespace tv
} // namespace analysis
} // namespace longnail
