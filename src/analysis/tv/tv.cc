#include "analysis/tv/tv.hh"

#include "obs/metrics.hh"
#include "obs/obs.hh"

namespace longnail {
namespace analysis {
namespace tv {

UnitResult
validateUnit(const lil::LilGraph &graph,
             const sched::BuiltProblem &built,
             const hwgen::GeneratedModule &module,
             const scaiev::Datasheet &core,
             const sched::TechLibrary &tech,
             sched::ScheduleQuality quality,
             const coredsl::ElaboratedIsa &isa,
             DiagnosticEngine &diags, const TvOptions &options)
{
    UnitResult result;
    {
        obs::TraceSpan span("tv.schedcheck");
        result.schedule =
            checkSchedule(graph, built, core, tech, quality, diags);
    }
    {
        obs::TraceSpan span("tv.netlint");
        result.netlist = lintNetlist(module.module, diags);
    }
    {
        obs::TraceSpan span("tv.equiv");
        result.equiv = checkEquivalence(graph, module, isa, diags,
                                        options.equiv);
    }
    obs::count("tv.sched_edges_checked", result.schedule.edgesChecked);
    obs::count("tv.outputs_checked", result.equiv.outputsChecked);
    obs::count("tv.outputs_proved", result.equiv.outputsProved);
    obs::count("tv.term_dag_nodes", result.equiv.termDagSize);
    return result;
}

} // namespace tv
} // namespace analysis
} // namespace longnail
