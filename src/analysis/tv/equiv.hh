/**
 * @file
 * Translation validation, part 2: bit-precise LIL <-> netlist
 * equivalence (docs/translation-validation.md).
 *
 * checkEquivalence() evaluates both the LIL graph and the generated
 * rtl::Module symbolically into one shared canonical term DAG
 * (analysis/tv/terms.hh) under the isolated-execution environment of
 * hwgen/runner.cc: stall inputs are 0, interface read ports are shared
 * free variables, pipeline registers are transparent. Each interface
 * output (write data/valid, memory address, register index) becomes a
 * proof obligation: the netlist term and the LIL term must hash-cons
 * to the same id.
 *
 * When an obligation does not reduce to syntactic equality, the
 * checker falls back to directed random co-simulation
 * (hwgen::runIsolated vs. lil::interpret):
 *
 *   LN4501  co-simulation diverged -- the netlist is NOT equivalent;
 *           the diagnostic carries a concrete counterexample (error)
 *   LN4502  symbolically unproved but all co-simulation trials agree
 *           (warning; the rewrite system is incomplete, e.g. for
 *           reassociated arithmetic)
 */

#ifndef LONGNAIL_ANALYSIS_TV_EQUIV_HH
#define LONGNAIL_ANALYSIS_TV_EQUIV_HH

#include "coredsl/module.hh"
#include "hwgen/hwgen.hh"
#include "lil/lil.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace analysis {
namespace tv {

struct EquivOptions
{
    /** Co-simulation trials when the symbolic proof is inconclusive. */
    unsigned cosimTrials = 24;
};

/** Outcome of one equivalence check. */
struct EquivResult
{
    unsigned outputsChecked = 0;
    unsigned outputsProved = 0;
    /** Every obligation reduced to the same canonical term. */
    bool proved = false;
    /** Co-simulation produced a concrete counterexample. */
    bool refuted = false;
    /** Simulated module cycles spent searching for counterexamples. */
    uint64_t cexCycles = 0;
    /** Term-DAG size after both sides were evaluated. */
    size_t termDagSize = 0;
};

/**
 * Prove @p module equivalent to @p graph, or refute it with a
 * counterexample. @p isa supplies the custom-register shapes for
 * co-simulation. Emits LN45xx diagnostics into @p diags.
 */
EquivResult checkEquivalence(const lil::LilGraph &graph,
                             const hwgen::GeneratedModule &module,
                             const coredsl::ElaboratedIsa &isa,
                             DiagnosticEngine &diags,
                             const EquivOptions &options = {});

} // namespace tv
} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_TV_EQUIV_HH
