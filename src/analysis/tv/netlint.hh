/**
 * @file
 * Translation validation, part 3: structural lints over the generated
 * rtl::Module netlist (docs/translation-validation.md).
 *
 * These go beyond rtl::Module::verify() (which hwgen already runs):
 * they produce LN-coded diagnostics per finding instead of a single
 * pass/fail string, and add driver analysis and dead-logic detection.
 *
 * Findings (docs/failure-model.md):
 *   LN4601  net used before its driver is defined -- in a
 *           topologically ordered netlist this is a combinational
 *           loop or a corrupted node order (error)
 *   LN4602  operand/result width rule violated for the node kind
 *           (error)
 *   LN4603  undriven, multiply-driven or out-of-range net; output
 *           port bound to an invalid net (error)
 *   LN4604  dead logic: a node (other than an input port or a
 *           constant) whose result no output transitively depends on
 *           (warning)
 */

#ifndef LONGNAIL_ANALYSIS_TV_NETLINT_HH
#define LONGNAIL_ANALYSIS_TV_NETLINT_HH

#include "rtl/netlist.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace analysis {
namespace tv {

/** Outcome counters of one netlist lint pass. */
struct NetlistLintResult
{
    unsigned errors = 0;
    unsigned deadNodes = 0;

    bool ok() const { return errors == 0; }
};

/** Lint @p module, emitting LN46xx diagnostics into @p diags. */
NetlistLintResult lintNetlist(const rtl::Module &module,
                              DiagnosticEngine &diags);

} // namespace tv
} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_TV_NETLINT_HH
