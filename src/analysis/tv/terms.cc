#include "analysis/tv/terms.hh"

#include <algorithm>

#include "ir/eval.hh"
#include "support/logging.hh"

namespace longnail {
namespace analysis {
namespace tv {

const char *
termKindName(TermKind kind)
{
    switch (kind) {
      case TermKind::Var: return "var";
      case TermKind::Const: return "const";
      case TermKind::Add: return "add";
      case TermKind::Sub: return "sub";
      case TermKind::Mul: return "mul";
      case TermKind::DivU: return "divu";
      case TermKind::DivS: return "divs";
      case TermKind::ModU: return "modu";
      case TermKind::ModS: return "mods";
      case TermKind::And: return "and";
      case TermKind::Or: return "or";
      case TermKind::Xor: return "xor";
      case TermKind::Shl: return "shl";
      case TermKind::ShrU: return "shru";
      case TermKind::ShrS: return "shrs";
      case TermKind::ICmp: return "icmp";
      case TermKind::Mux: return "mux";
      case TermKind::Extract: return "extract";
      case TermKind::Concat: return "concat";
      case TermKind::Replicate: return "replicate";
      case TermKind::Rom: return "rom";
    }
    return "?";
}

namespace {

bool
isCommutative(TermKind kind)
{
    switch (kind) {
      case TermKind::Add:
      case TermKind::Mul:
      case TermKind::And:
      case TermKind::Or:
      case TermKind::Xor:
        return true;
      default:
        return false;
    }
}

/**
 * The shift-amount clamping shared by rtl/sim.cc and ir/eval.cc: an
 * amount with more than 32 active bits saturates to the value width,
 * and the effective amount never exceeds the value width.
 */
unsigned
clampShiftAmount(const ApInt &amount, unsigned value_width)
{
    uint64_t raw = amount.activeBits() > 32 ? value_width
                                            : amount.toUint64();
    return unsigned(std::min<uint64_t>(raw, value_width));
}

/** Mask with the low @p k bits of a @p width-bit value set. */
ApInt
maskLow(unsigned width, unsigned k)
{
    if (k >= width)
        return ApInt::allOnes(width);
    if (k == 0)
        return ApInt(width, 0);
    return ApInt::allOnes(k).zext(width);
}

} // namespace

bool
TermBuilder::Key::operator<(const Key &rhs) const
{
    if (kind != rhs.kind)
        return kind < rhs.kind;
    if (width != rhs.width)
        return width < rhs.width;
    if (operands != rhs.operands)
        return operands < rhs.operands;
    return payload < rhs.payload;
}

TermId
TermBuilder::intern(Term term)
{
    Key key;
    key.kind = term.kind;
    key.width = term.width;
    key.operands = term.operands;
    switch (term.kind) {
      case TermKind::Const:
        key.payload = term.cval.toStringUnsigned(16);
        break;
      case TermKind::Var:
        key.payload = term.var;
        break;
      case TermKind::ICmp:
        key.payload = ir::icmpPredName(term.pred);
        break;
      case TermKind::Extract:
        key.payload = std::to_string(term.lo);
        break;
      case TermKind::Rom:
        for (const ApInt &v : term.romValues)
            key.payload += v.toStringUnsigned(16) + ",";
        break;
      default:
        break;
    }
    auto [it, inserted] =
        interned_.emplace(std::move(key), TermId(terms_.size()));
    if (inserted)
        terms_.push_back(std::move(term));
    return it->second;
}

TermId
TermBuilder::var(const std::string &name, unsigned width)
{
    Term t;
    t.kind = TermKind::Var;
    t.width = width;
    t.var = name;
    return intern(std::move(t));
}

TermId
TermBuilder::opaque(unsigned width)
{
    // A variable with a name no port mapping can produce, unique per
    // call: structurally incomparable to everything else.
    return var("!opaque#" + std::to_string(nextOpaque_++), width);
}

TermId
TermBuilder::constant(const ApInt &value)
{
    Term t;
    t.kind = TermKind::Const;
    t.width = value.width();
    t.cval = value;
    return intern(std::move(t));
}

TermId
TermBuilder::icmp(ir::ICmpPred pred, TermId lhs, TermId rhs)
{
    // Fold and rewrite here; intern carries the predicate payload.
    if (isConst(lhs) && isConst(rhs))
        return constant(
            ApInt(1, ir::applyICmp(pred, constOf(lhs), constOf(rhs))));
    if (lhs == rhs) {
        switch (pred) {
          case ir::ICmpPred::Eq:
          case ir::ICmpPred::Ule:
          case ir::ICmpPred::Uge:
          case ir::ICmpPred::Sle:
          case ir::ICmpPred::Sge:
            return constant(ApInt(1, 1));
          case ir::ICmpPred::Ne:
          case ir::ICmpPred::Ult:
          case ir::ICmpPred::Ugt:
          case ir::ICmpPred::Slt:
          case ir::ICmpPred::Sgt:
            return constant(ApInt(1, 0));
        }
    }
    // Range reasoning: comparisons the graph-side RangeLattice can
    // decide also fold here, so range-driven dead-code elimination
    // proves symbolically rather than falling back to co-simulation.
    if (auto outcome = icmpOutcome(pred, rangeOf(lhs), rangeOf(rhs)))
        return constant(ApInt(1, *outcome ? 1 : 0));
    // Eq/Ne are symmetric: order the operands.
    if ((pred == ir::ICmpPred::Eq || pred == ir::ICmpPred::Ne) &&
        rhs < lhs)
        std::swap(lhs, rhs);
    Term t;
    t.kind = TermKind::ICmp;
    t.width = 1;
    t.operands = {lhs, rhs};
    t.pred = pred;
    return intern(std::move(t));
}

TermId
TermBuilder::extract(TermId value, unsigned lo, unsigned count)
{
    // Memoize up front: the structural rewrites below recurse into
    // both operands of shared subterms, and on a DAG the same slice
    // request repeats once per path to the subterm.
    auto memo_key = std::make_tuple(value, lo, count);
    auto memo = extractMemo_.find(memo_key);
    if (memo != extractMemo_.end())
        return memo->second;
    TermId out = extractImpl(value, lo, count);
    extractMemo_.emplace(memo_key, out);
    return out;
}

TermId
TermBuilder::extractImpl(TermId value, unsigned lo, unsigned count)
{
    // Copy: the recursive rewrites below may grow terms_ and
    // invalidate references into it.
    const TermKind vkind = terms_.at(value).kind;
    const unsigned vwidth = terms_.at(value).width;
    const unsigned vlo = terms_.at(value).lo;
    const std::vector<TermId> vops = terms_.at(value).operands;

    if (vkind == TermKind::Const)
        return constant(constOf(value).extract(lo, count));
    if (lo == 0 && count == vwidth)
        return value;

    // Slices fold through slices, concatenations and bit-parallel or
    // carry-rippling operators, so a computation narrowed by the pass
    // pipeline (docs/pass-pipeline.md) reduces to the same term as
    // the wide original it replaced.
    switch (vkind) {
      case TermKind::Extract:
        return extract(vops[0], vlo + lo, count);
      case TermKind::Concat: {
        unsigned w1 = terms_.at(vops[1]).width;
        if (lo + count <= w1)
            return extract(vops[1], lo, count);
        if (lo >= w1)
            return extract(vops[0], lo - w1, count);
        TermId hi = extract(vops[0], 0, lo + count - w1);
        TermId low = extract(vops[1], lo, w1 - lo);
        return make(TermKind::Concat, count, {hi, low});
      }
      case TermKind::And:
      case TermKind::Or:
      case TermKind::Xor:
        return make(vkind, count,
                    {extract(vops[0], lo, count),
                     extract(vops[1], lo, count)});
      case TermKind::Mux:
        return make(TermKind::Mux, count,
                    {vops[0], extract(vops[1], lo, count),
                     extract(vops[2], lo, count)});
      case TermKind::Replicate:
        return make(TermKind::Replicate, count, {vops[0]});
      case TermKind::Add:
      case TermKind::Sub:
      case TermKind::Mul:
      case TermKind::Shl:
        // Low bits depend only on low operand bits (carries ripple
        // upward). The shift case holds at any width because amounts
        // clamp to the value width on both sides: an amount >= count
        // zeroes the low `count` bits of the wide shift too.
        if (lo == 0) {
            TermId a = extract(vops[0], 0, count);
            TermId b = vkind == TermKind::Shl
                           ? vops[1]
                           : extract(vops[1], 0, count);
            return make(vkind, count, {a, b});
        }
        break;
      default:
        break;
    }

    Term t;
    t.kind = TermKind::Extract;
    t.width = count;
    t.operands = {value};
    t.lo = lo;
    return intern(std::move(t));
}

TermId
TermBuilder::rom(std::vector<ApInt> values, unsigned width, TermId index)
{
    const Term &idx = terms_.at(index);
    if (idx.kind == TermKind::Const) {
        uint64_t i = idx.cval.activeBits() > 63 ? values.size()
                                                : idx.cval.toUint64();
        if (i >= values.size())
            return constant(ApInt(width, 0));
        return constant(values[i].zextOrTrunc(width));
    }
    Term t;
    t.kind = TermKind::Rom;
    t.width = width;
    t.operands = {index};
    t.romValues = std::move(values);
    return intern(std::move(t));
}

TermId
TermBuilder::make(TermKind kind, unsigned width,
                  std::vector<TermId> operands)
{
    switch (kind) {
      case TermKind::Var:
      case TermKind::Const:
      case TermKind::ICmp:
      case TermKind::Extract:
      case TermKind::Rom:
        LN_PANIC("use the dedicated TermBuilder entry point for ",
                 termKindName(kind));
      default:
        break;
    }

    bool all_const = true;
    for (TermId op : operands)
        all_const &= isConst(op);

    // Constant folding, mirroring rtl/sim.cc evaluation exactly.
    if (all_const && !operands.empty()) {
        auto c = [&](unsigned i) -> const ApInt & {
            return constOf(operands[i]);
        };
        switch (kind) {
          case TermKind::Add: return constant(c(0) + c(1));
          case TermKind::Sub: return constant(c(0) - c(1));
          case TermKind::Mul: return constant(c(0) * c(1));
          case TermKind::DivU:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).udiv(c(1)));
          case TermKind::DivS:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).sdiv(c(1)));
          case TermKind::ModU:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).urem(c(1)));
          case TermKind::ModS:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).srem(c(1)));
          case TermKind::And: return constant(c(0) & c(1));
          case TermKind::Or: return constant(c(0) | c(1));
          case TermKind::Xor: return constant(c(0) ^ c(1));
          case TermKind::Shl:
            return constant(
                c(0).shl(clampShiftAmount(c(1), c(0).width())));
          case TermKind::ShrU:
            return constant(
                c(0).lshr(clampShiftAmount(c(1), c(0).width())));
          case TermKind::ShrS:
            return constant(
                c(0).ashr(clampShiftAmount(c(1), c(0).width())));
          case TermKind::Mux:
            return c(0).isZero() ? operands[2] : operands[1];
          case TermKind::Concat: {
            ApInt acc = c(unsigned(operands.size() - 1));
            for (size_t i = operands.size() - 1; i-- > 0;)
                acc = c(unsigned(i)).concat(acc);
            return constant(acc);
          }
          case TermKind::Replicate:
            return constant(c(0).isZero() ? ApInt(width, 0)
                                          : ApInt::allOnes(width));
          default:
            break;
        }
    }

    // Local identity rewrites (x op neutral-element, idempotence).
    auto zero = [&](TermId id) {
        return isConst(id) && constOf(id).isZero();
    };
    auto one = [&](TermId id) {
        return isConst(id) && constOf(id) == ApInt(constOf(id).width(), 1);
    };
    auto ones = [&](TermId id) {
        return isConst(id) && constOf(id).isAllOnes();
    };
    switch (kind) {
      case TermKind::Add:
        if (zero(operands[0])) return operands[1];
        if (zero(operands[1])) return operands[0];
        break;
      case TermKind::Sub:
        if (zero(operands[1])) return operands[0];
        if (operands[0] == operands[1])
            return constant(ApInt(width, 0));
        break;
      case TermKind::Mul:
        if (zero(operands[0]) || zero(operands[1]))
            return constant(ApInt(width, 0));
        if (one(operands[0])) return operands[1];
        if (one(operands[1])) return operands[0];
        break;
      case TermKind::And:
        if (zero(operands[0]) || zero(operands[1]))
            return constant(ApInt(width, 0));
        if (ones(operands[0])) return operands[1];
        if (ones(operands[1])) return operands[0];
        if (operands[0] == operands[1]) return operands[0];
        break;
      case TermKind::Or:
        if (zero(operands[0])) return operands[1];
        if (zero(operands[1])) return operands[0];
        if (ones(operands[0]) || ones(operands[1]))
            return constant(ApInt::allOnes(width));
        if (operands[0] == operands[1]) return operands[0];
        break;
      case TermKind::Xor:
        if (zero(operands[0])) return operands[1];
        if (zero(operands[1])) return operands[0];
        if (operands[0] == operands[1])
            return constant(ApInt(width, 0));
        break;
      case TermKind::Shl:
      case TermKind::ShrU:
      case TermKind::ShrS:
        if (zero(operands[1])) return operands[0];
        break;
      case TermKind::Mux:
        if (isConst(operands[0]))
            return constOf(operands[0]).isZero() ? operands[2]
                                                 : operands[1];
        if (operands[1] == operands[2]) return operands[1];
        break;
      case TermKind::Replicate:
        if (width == 1) return operands[0];
        break;
      default:
        break;
    }

    // Strength/shape canonicalizations: power-of-two multiplicative
    // operators become shifts/masks and constant masks narrow the
    // computation they guard, so the graph-side strength reduction and
    // bitwidth narrowing rewrites (src/passes/) reduce to the same
    // canonical term as the code they replaced.
    auto powerOfTwo = [&](TermId id) -> std::optional<unsigned> {
        if (!isConst(id))
            return std::nullopt;
        const ApInt &c = constOf(id);
        unsigned k = c.activeBits();
        if (k == 0 || c != ApInt::oneBit(c.width(), k - 1))
            return std::nullopt;
        return k - 1;
    };
    switch (kind) {
      case TermKind::Mul:
        for (unsigned i = 0; i < 2; ++i)
            if (auto s = powerOfTwo(operands[i]))
                return make(TermKind::Shl, width,
                            {operands[1 - i],
                             constant(ApInt(width, *s))});
        break;
      case TermKind::DivU:
        if (auto s = powerOfTwo(operands[1]))
            return make(TermKind::ShrU, width,
                        {operands[0], constant(ApInt(width, *s))});
        break;
      case TermKind::ModU:
        if (auto s = powerOfTwo(operands[1])) {
            if (*s == 0)
                return constant(ApInt(width, 0));
            return make(TermKind::And, width,
                        {operands[0], constant(maskLow(width, *s))});
        }
        break;
      case TermKind::And:
        for (unsigned i = 0; i < 2; ++i) {
            if (!isConst(operands[i]) || isConst(operands[1 - i]))
                continue;
            ApInt c = constOf(operands[i]);
            unsigned k = c.activeBits();
            // High bits of the mask are zero: only the low k bits of
            // the other operand can reach the result.
            if (k == 0 || k >= width)
                continue;
            TermId low = make(TermKind::And, k,
                              {extract(operands[1 - i], 0, k),
                               constant(c.extract(0, k))});
            return make(TermKind::Concat, width,
                        {constant(ApInt(width - k, 0)), low});
        }
        break;
      case TermKind::Shl:
      case TermKind::ShrU:
        // Overshift: amounts clamp to the width and every data bit is
        // discarded (shrs keeps the sign fill and stays symbolic).
        if (isConst(operands[1]) &&
            clampShiftAmount(constOf(operands[1]), width) >= width)
            return constant(ApInt(width, 0));
        break;
      default:
        break;
    }

    if (isCommutative(kind) && operands.size() == 2 &&
        operands[1] < operands[0])
        std::swap(operands[0], operands[1]);

    Term t;
    t.kind = kind;
    t.width = width;
    t.operands = std::move(operands);
    return intern(std::move(t));
}

ValueRange
TermBuilder::rangeOf(TermId id)
{
    auto hit = ranges_.find(id);
    if (hit != ranges_.end())
        return hit->second;

    auto boundedMax = [](uint64_t umax) { return umax != UINT64_MAX; };
    auto satAdd = [](uint64_t a, uint64_t b) {
        return a > UINT64_MAX - b ? UINT64_MAX : a + b;
    };

    // Copy the node: recursive rangeOf calls do not grow terms_, but
    // keeping a value avoids any aliasing surprise.
    const Term t = terms_.at(id);
    const unsigned w = t.width;
    ValueRange out = ValueRange::full(w);

    switch (t.kind) {
      case TermKind::Const:
        out = ValueRange::exact(t.cval);
        break;
      case TermKind::Add: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange b = rangeOf(t.operands[1]);
        if (boundedMax(a.umax) && boundedMax(b.umax)) {
            uint64_t smax = satAdd(a.umax, b.umax);
            if (boundedMax(smax) && smax <= ValueRange::maxFor(w)) {
                out.umin = satAdd(a.umin, b.umin);
                out.umax = smax;
            }
        }
        break;
      }
      case TermKind::Sub: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange b = rangeOf(t.operands[1]);
        if (boundedMax(b.umax) && a.umin >= b.umax) {
            out.umin = a.umin - b.umax;
            if (boundedMax(a.umax))
                out.umax = a.umax - b.umin;
        }
        break;
      }
      case TermKind::Mul: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange b = rangeOf(t.operands[1]);
        uint64_t limit = ValueRange::maxFor(w);
        if (boundedMax(a.umax) && boundedMax(b.umax) &&
            boundedMax(limit)) {
            unsigned __int128 p = (unsigned __int128)a.umax * b.umax;
            if (p <= limit) {
                out.umin = a.umin * b.umin;
                out.umax = uint64_t(p);
            }
        }
        break;
      }
      case TermKind::And: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange b = rangeOf(t.operands[1]);
        out.umin = 0;
        out.umax = std::min(a.umax, b.umax);
        break;
      }
      case TermKind::Or:
      case TermKind::Xor: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange b = rangeOf(t.operands[1]);
        out.umin = t.kind == TermKind::Or ? std::max(a.umin, b.umin)
                                          : 0;
        if (boundedMax(a.umax) && boundedMax(b.umax))
            out.umax = std::min(ValueRange::maxFor(w),
                                satAdd(a.umax, b.umax));
        break;
      }
      case TermKind::ShrU: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange amt = rangeOf(t.operands[1]);
        uint64_t shift = std::min<uint64_t>(amt.umin, 63);
        uint64_t amax =
            boundedMax(a.umax) ? a.umax : ValueRange::maxFor(w);
        if (boundedMax(amax))
            out.umax = amax >> shift;
        break;
      }
      case TermKind::Shl: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange amt = rangeOf(t.operands[1]);
        uint64_t limit = ValueRange::maxFor(w);
        if (amt.constant && boundedMax(a.umax) && amt.umin < 64 &&
            boundedMax(limit)) {
            unsigned __int128 hi = (unsigned __int128)a.umax
                                   << amt.umin;
            if (hi <= limit) {
                out.umin = a.umin << amt.umin;
                out.umax = uint64_t(hi);
            }
        }
        break;
      }
      case TermKind::DivU: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange b = rangeOf(t.operands[1]);
        if (b.umin >= 1) {
            uint64_t amax =
                boundedMax(a.umax) ? a.umax : ValueRange::maxFor(w);
            if (boundedMax(amax))
                out.umax = amax / b.umin;
            if (boundedMax(b.umax))
                out.umin = a.umin / b.umax;
        }
        break;
      }
      case TermKind::ModU: {
        ValueRange a = rangeOf(t.operands[0]);
        ValueRange b = rangeOf(t.operands[1]);
        if (b.umin >= 1 && boundedMax(b.umax)) {
            out.umax = b.umax - 1;
            if (boundedMax(a.umax))
                out.umax = std::min(out.umax, a.umax);
        }
        break;
      }
      case TermKind::Mux: {
        ValueRange a = rangeOf(t.operands[1]);
        ValueRange b = rangeOf(t.operands[2]);
        out.umin = std::min(a.umin, b.umin);
        out.umax = std::max(a.umax, b.umax);
        break;
      }
      case TermKind::Extract: {
        ValueRange a = rangeOf(t.operands[0]);
        if (t.lo == 0 && boundedMax(a.umax) &&
            a.umax <= ValueRange::maxFor(w)) {
            out.umin = a.umin;
            out.umax = a.umax;
        }
        break;
      }
      case TermKind::Concat: {
        if (w > 64)
            break;
        ValueRange hi = rangeOf(t.operands[0]);
        ValueRange lo = rangeOf(t.operands[1]);
        unsigned lo_width = terms_.at(t.operands[1]).width;
        out.umin = (hi.umin << lo_width) + lo.umin;
        out.umax = (hi.umax << lo_width) + lo.umax;
        break;
      }
      case TermKind::Rom: {
        if (t.romValues.empty())
            break;
        uint64_t lo = UINT64_MAX, hi = 0;
        bool all_fit = true;
        for (const ApInt &v : t.romValues) {
            if (v.activeBits() > 64) {
                all_fit = false;
                break;
            }
            uint64_t u = v.zextOrTrunc(64).toUint64();
            lo = std::min(lo, u);
            hi = std::max(hi, u);
        }
        if (!all_fit)
            break;
        ValueRange idx = rangeOf(t.operands[0]);
        bool in_range =
            boundedMax(idx.umax) && idx.umax < t.romValues.size();
        out.umin = in_range ? lo : 0;
        out.umax = hi;
        break;
      }
      default:
        break;
    }

    ranges_[id] = out;
    return out;
}

std::string
TermBuilder::render(TermId id, unsigned max_depth) const
{
    const Term &t = terms_.at(id);
    switch (t.kind) {
      case TermKind::Var:
        return t.var;
      case TermKind::Const:
        return "0x" + t.cval.toStringUnsigned(16) + ":" +
               std::to_string(t.width);
      default:
        break;
    }
    if (max_depth == 0)
        return "...";
    std::string out = "(";
    out += termKindName(t.kind);
    if (t.kind == TermKind::ICmp)
        out += std::string(".") + ir::icmpPredName(t.pred);
    if (t.kind == TermKind::Extract)
        out += "[" + std::to_string(t.lo) + "+:" +
               std::to_string(t.width) + "]";
    for (TermId op : t.operands)
        out += " " + render(op, max_depth - 1);
    out += ")";
    return out;
}

} // namespace tv
} // namespace analysis
} // namespace longnail
