#include "analysis/tv/terms.hh"

#include <algorithm>

#include "ir/eval.hh"
#include "support/logging.hh"

namespace longnail {
namespace analysis {
namespace tv {

const char *
termKindName(TermKind kind)
{
    switch (kind) {
      case TermKind::Var: return "var";
      case TermKind::Const: return "const";
      case TermKind::Add: return "add";
      case TermKind::Sub: return "sub";
      case TermKind::Mul: return "mul";
      case TermKind::DivU: return "divu";
      case TermKind::DivS: return "divs";
      case TermKind::ModU: return "modu";
      case TermKind::ModS: return "mods";
      case TermKind::And: return "and";
      case TermKind::Or: return "or";
      case TermKind::Xor: return "xor";
      case TermKind::Shl: return "shl";
      case TermKind::ShrU: return "shru";
      case TermKind::ShrS: return "shrs";
      case TermKind::ICmp: return "icmp";
      case TermKind::Mux: return "mux";
      case TermKind::Extract: return "extract";
      case TermKind::Concat: return "concat";
      case TermKind::Replicate: return "replicate";
      case TermKind::Rom: return "rom";
    }
    return "?";
}

namespace {

bool
isCommutative(TermKind kind)
{
    switch (kind) {
      case TermKind::Add:
      case TermKind::Mul:
      case TermKind::And:
      case TermKind::Or:
      case TermKind::Xor:
        return true;
      default:
        return false;
    }
}

/**
 * The shift-amount clamping shared by rtl/sim.cc and ir/eval.cc: an
 * amount with more than 32 active bits saturates to the value width,
 * and the effective amount never exceeds the value width.
 */
unsigned
clampShiftAmount(const ApInt &amount, unsigned value_width)
{
    uint64_t raw = amount.activeBits() > 32 ? value_width
                                            : amount.toUint64();
    return unsigned(std::min<uint64_t>(raw, value_width));
}

} // namespace

bool
TermBuilder::Key::operator<(const Key &rhs) const
{
    if (kind != rhs.kind)
        return kind < rhs.kind;
    if (width != rhs.width)
        return width < rhs.width;
    if (operands != rhs.operands)
        return operands < rhs.operands;
    return payload < rhs.payload;
}

TermId
TermBuilder::intern(Term term)
{
    Key key;
    key.kind = term.kind;
    key.width = term.width;
    key.operands = term.operands;
    switch (term.kind) {
      case TermKind::Const:
        key.payload = term.cval.toStringUnsigned(16);
        break;
      case TermKind::Var:
        key.payload = term.var;
        break;
      case TermKind::ICmp:
        key.payload = ir::icmpPredName(term.pred);
        break;
      case TermKind::Extract:
        key.payload = std::to_string(term.lo);
        break;
      case TermKind::Rom:
        for (const ApInt &v : term.romValues)
            key.payload += v.toStringUnsigned(16) + ",";
        break;
      default:
        break;
    }
    auto [it, inserted] =
        interned_.emplace(std::move(key), TermId(terms_.size()));
    if (inserted)
        terms_.push_back(std::move(term));
    return it->second;
}

TermId
TermBuilder::var(const std::string &name, unsigned width)
{
    Term t;
    t.kind = TermKind::Var;
    t.width = width;
    t.var = name;
    return intern(std::move(t));
}

TermId
TermBuilder::opaque(unsigned width)
{
    // A variable with a name no port mapping can produce, unique per
    // call: structurally incomparable to everything else.
    return var("!opaque#" + std::to_string(nextOpaque_++), width);
}

TermId
TermBuilder::constant(const ApInt &value)
{
    Term t;
    t.kind = TermKind::Const;
    t.width = value.width();
    t.cval = value;
    return intern(std::move(t));
}

TermId
TermBuilder::icmp(ir::ICmpPred pred, TermId lhs, TermId rhs)
{
    // Fold and rewrite here; intern carries the predicate payload.
    if (isConst(lhs) && isConst(rhs))
        return constant(
            ApInt(1, ir::applyICmp(pred, constOf(lhs), constOf(rhs))));
    if (lhs == rhs) {
        switch (pred) {
          case ir::ICmpPred::Eq:
          case ir::ICmpPred::Ule:
          case ir::ICmpPred::Uge:
          case ir::ICmpPred::Sle:
          case ir::ICmpPred::Sge:
            return constant(ApInt(1, 1));
          case ir::ICmpPred::Ne:
          case ir::ICmpPred::Ult:
          case ir::ICmpPred::Ugt:
          case ir::ICmpPred::Slt:
          case ir::ICmpPred::Sgt:
            return constant(ApInt(1, 0));
        }
    }
    // Eq/Ne are symmetric: order the operands.
    if ((pred == ir::ICmpPred::Eq || pred == ir::ICmpPred::Ne) &&
        rhs < lhs)
        std::swap(lhs, rhs);
    Term t;
    t.kind = TermKind::ICmp;
    t.width = 1;
    t.operands = {lhs, rhs};
    t.pred = pred;
    return intern(std::move(t));
}

TermId
TermBuilder::extract(TermId value, unsigned lo, unsigned count)
{
    const Term &v = terms_.at(value);
    if (v.kind == TermKind::Const)
        return constant(v.cval.extract(lo, count));
    if (lo == 0 && count == v.width)
        return value;
    Term t;
    t.kind = TermKind::Extract;
    t.width = count;
    t.operands = {value};
    t.lo = lo;
    return intern(std::move(t));
}

TermId
TermBuilder::rom(std::vector<ApInt> values, unsigned width, TermId index)
{
    const Term &idx = terms_.at(index);
    if (idx.kind == TermKind::Const) {
        uint64_t i = idx.cval.activeBits() > 63 ? values.size()
                                                : idx.cval.toUint64();
        if (i >= values.size())
            return constant(ApInt(width, 0));
        return constant(values[i].zextOrTrunc(width));
    }
    Term t;
    t.kind = TermKind::Rom;
    t.width = width;
    t.operands = {index};
    t.romValues = std::move(values);
    return intern(std::move(t));
}

TermId
TermBuilder::make(TermKind kind, unsigned width,
                  std::vector<TermId> operands)
{
    switch (kind) {
      case TermKind::Var:
      case TermKind::Const:
      case TermKind::ICmp:
      case TermKind::Extract:
      case TermKind::Rom:
        LN_PANIC("use the dedicated TermBuilder entry point for ",
                 termKindName(kind));
      default:
        break;
    }

    bool all_const = true;
    for (TermId op : operands)
        all_const &= isConst(op);

    // Constant folding, mirroring rtl/sim.cc evaluation exactly.
    if (all_const && !operands.empty()) {
        auto c = [&](unsigned i) -> const ApInt & {
            return constOf(operands[i]);
        };
        switch (kind) {
          case TermKind::Add: return constant(c(0) + c(1));
          case TermKind::Sub: return constant(c(0) - c(1));
          case TermKind::Mul: return constant(c(0) * c(1));
          case TermKind::DivU:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).udiv(c(1)));
          case TermKind::DivS:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).sdiv(c(1)));
          case TermKind::ModU:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).urem(c(1)));
          case TermKind::ModS:
            return constant(c(1).isZero() ? ApInt(width, 0)
                                          : c(0).srem(c(1)));
          case TermKind::And: return constant(c(0) & c(1));
          case TermKind::Or: return constant(c(0) | c(1));
          case TermKind::Xor: return constant(c(0) ^ c(1));
          case TermKind::Shl:
            return constant(
                c(0).shl(clampShiftAmount(c(1), c(0).width())));
          case TermKind::ShrU:
            return constant(
                c(0).lshr(clampShiftAmount(c(1), c(0).width())));
          case TermKind::ShrS:
            return constant(
                c(0).ashr(clampShiftAmount(c(1), c(0).width())));
          case TermKind::Mux:
            return c(0).isZero() ? operands[2] : operands[1];
          case TermKind::Concat: {
            ApInt acc = c(unsigned(operands.size() - 1));
            for (size_t i = operands.size() - 1; i-- > 0;)
                acc = c(unsigned(i)).concat(acc);
            return constant(acc);
          }
          case TermKind::Replicate:
            return constant(c(0).isZero() ? ApInt(width, 0)
                                          : ApInt::allOnes(width));
          default:
            break;
        }
    }

    // Local identity rewrites (x op neutral-element, idempotence).
    auto zero = [&](TermId id) {
        return isConst(id) && constOf(id).isZero();
    };
    auto one = [&](TermId id) {
        return isConst(id) && constOf(id) == ApInt(constOf(id).width(), 1);
    };
    auto ones = [&](TermId id) {
        return isConst(id) && constOf(id).isAllOnes();
    };
    switch (kind) {
      case TermKind::Add:
        if (zero(operands[0])) return operands[1];
        if (zero(operands[1])) return operands[0];
        break;
      case TermKind::Sub:
        if (zero(operands[1])) return operands[0];
        if (operands[0] == operands[1])
            return constant(ApInt(width, 0));
        break;
      case TermKind::Mul:
        if (zero(operands[0]) || zero(operands[1]))
            return constant(ApInt(width, 0));
        if (one(operands[0])) return operands[1];
        if (one(operands[1])) return operands[0];
        break;
      case TermKind::And:
        if (zero(operands[0]) || zero(operands[1]))
            return constant(ApInt(width, 0));
        if (ones(operands[0])) return operands[1];
        if (ones(operands[1])) return operands[0];
        if (operands[0] == operands[1]) return operands[0];
        break;
      case TermKind::Or:
        if (zero(operands[0])) return operands[1];
        if (zero(operands[1])) return operands[0];
        if (ones(operands[0]) || ones(operands[1]))
            return constant(ApInt::allOnes(width));
        if (operands[0] == operands[1]) return operands[0];
        break;
      case TermKind::Xor:
        if (zero(operands[0])) return operands[1];
        if (zero(operands[1])) return operands[0];
        if (operands[0] == operands[1])
            return constant(ApInt(width, 0));
        break;
      case TermKind::Shl:
      case TermKind::ShrU:
      case TermKind::ShrS:
        if (zero(operands[1])) return operands[0];
        break;
      case TermKind::Mux:
        if (isConst(operands[0]))
            return constOf(operands[0]).isZero() ? operands[2]
                                                 : operands[1];
        if (operands[1] == operands[2]) return operands[1];
        break;
      case TermKind::Replicate:
        if (width == 1) return operands[0];
        break;
      default:
        break;
    }

    if (isCommutative(kind) && operands.size() == 2 &&
        operands[1] < operands[0])
        std::swap(operands[0], operands[1]);

    Term t;
    t.kind = kind;
    t.width = width;
    t.operands = std::move(operands);
    return intern(std::move(t));
}

std::string
TermBuilder::render(TermId id, unsigned max_depth) const
{
    const Term &t = terms_.at(id);
    switch (t.kind) {
      case TermKind::Var:
        return t.var;
      case TermKind::Const:
        return "0x" + t.cval.toStringUnsigned(16) + ":" +
               std::to_string(t.width);
      default:
        break;
    }
    if (max_depth == 0)
        return "...";
    std::string out = "(";
    out += termKindName(t.kind);
    if (t.kind == TermKind::ICmp)
        out += std::string(".") + ir::icmpPredName(t.pred);
    if (t.kind == TermKind::Extract)
        out += "[" + std::to_string(t.lo) + "+:" +
               std::to_string(t.width) + "]";
    for (TermId op : t.operands)
        out += " " + render(op, max_depth - 1);
    out += ")";
    return out;
}

} // namespace tv
} // namespace analysis
} // namespace longnail
