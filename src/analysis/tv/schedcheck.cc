#include "analysis/tv/schedcheck.hh"

#include <map>
#include <string>
#include <utility>

#include "scaiev/interface.hh"

namespace longnail {
namespace analysis {
namespace tv {

using scaiev::SubInterface;

namespace {

/** Stage window an operation must be scheduled into, re-derived from
 * the datasheet rules (Secs. 4.2/4.4) without consulting the solver's
 * OperatorType. */
struct Window
{
    int earliest = 0;
    int latest = sched::noUpperBound;
};

Window
windowOf(const ir::Operation &op, bool is_always,
         const scaiev::Datasheet &core)
{
    Window w;
    auto iface = scaiev::subInterfaceFor(op.kind());
    if (!iface)
        return w;
    if (is_always) {
        // Sec. 4.4: always-blocks run entirely in stage 0.
        w.latest = 0;
        return w;
    }
    const scaiev::InterfaceTiming &t = core.timing(*iface);
    w.earliest = t.earliest;
    w.latest = scaiev::supportsLateVariants(*iface) ? sched::noUpperBound
                                                    : t.latest;
    return w;
}

/** Result latency of an operation, re-derived from the technology
 * library and the datasheet. */
unsigned
latencyOf(const ir::Operation &op, const scaiev::Datasheet &core,
          const sched::TechLibrary &tech)
{
    unsigned latency = tech.timing(op).latency;
    if (auto iface = scaiev::subInterfaceFor(op.kind()))
        latency = std::max(latency, core.timing(*iface).latency);
    return latency;
}

std::string
describe(const ir::Operation &op)
{
    return std::string(op.name());
}

} // namespace

ScheduleCheckResult
checkSchedule(const lil::LilGraph &graph,
              const sched::BuiltProblem &built,
              const scaiev::Datasheet &core,
              const sched::TechLibrary &tech,
              sched::ScheduleQuality quality, DiagnosticEngine &diags)
{
    ScheduleCheckResult result;
    auto flag = [&](const ir::Operation *op, const std::string &code,
                    const std::string &msg) {
        ++result.violations;
        diags.error(op ? op->loc() : SourceLoc{}, code,
                    "schedule for '" + graph.name + "': " + msg);
    };

    // LN4401: every operation must carry a non-negative start time.
    for (const auto &op : graph.graph.ops()) {
        int start = built.startTimeOf(op.get());
        if (start < 0)
            flag(op.get(), "LN4401",
                 "operation '" + describe(*op) +
                     "' has no scheduled start time");
    }
    if (result.violations)
        return result; // start times below would be meaningless

    // LN4402: def-use latency; edges come from the LIL graph itself,
    // not from the solver's dependence list.
    for (const auto &op : graph.graph.ops()) {
        int use = built.startTimeOf(op.get());
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            const ir::Operation *def = op->operand(i)->owner;
            int def_start = built.startTimeOf(def);
            int lat = int(latencyOf(*def, core, tech));
            ++result.edgesChecked;
            if (use < def_start + lat)
                flag(op.get(), "LN4402",
                     "'" + describe(*op) + "' at stage " +
                         std::to_string(use) + " uses '" +
                         describe(*def) + "' scheduled at stage " +
                         std::to_string(def_start) + " with latency " +
                         std::to_string(lat));
        }
    }

    // LN4403: datasheet stage windows.
    for (const auto &op : graph.graph.ops()) {
        Window w = windowOf(*op, graph.isAlways, core);
        int start = built.startTimeOf(op.get());
        if (start < w.earliest || start > w.latest)
            flag(op.get(), "LN4403",
                 "interface op '" + describe(*op) + "' at stage " +
                     std::to_string(start) +
                     " outside its datasheet window [" +
                     std::to_string(w.earliest) + ", " +
                     (w.latest == sched::noUpperBound
                          ? std::string("inf")
                          : std::to_string(w.latest)) +
                     "]");
    }

    // LN4404: combinational chains. Re-derive the chain-breaking edges
    // through the pure algorithm and require each broken edge to span a
    // register boundary. FallbackRelaxed schedules abandon C5 by
    // design (docs/failure-model.md), so the check is informational
    // noise there.
    if (quality != sched::ScheduleQuality::FallbackRelaxed) {
        for (const sched::Dependence &edge :
             sched::deriveChainBreakers(built.problem)) {
            const ir::Operation *from = built.irOps.at(edge.from);
            const ir::Operation *to = built.irOps.at(edge.to);
            int span = built.startTimeOf(to) - built.startTimeOf(from);
            int lat = int(latencyOf(*from, core, tech));
            if (span < lat + 1) {
                ++result.chainWarnings;
                diags.warning(
                    to ? to->loc() : SourceLoc{}, "LN4404",
                    "schedule for '" + graph.name +
                        "': combinational chain from '" +
                        describe(*from) + "' into '" + describe(*to) +
                        "' is not broken; the cycle-time target of " +
                        std::to_string(built.problem.cycleTime()) +
                        " ns may be missed");
            }
        }
    }

    // LN4405: SCAIE-V instantiates each (interface, register) pair at
    // most once per instruction; hwgen relies on this to give ports
    // unique names.
    std::map<std::pair<SubInterface, std::string>,
             const ir::Operation *>
        iface_uses;
    for (const auto &op : graph.graph.ops()) {
        auto iface = scaiev::subInterfaceFor(op->kind());
        if (!iface)
            continue;
        std::string reg;
        if (op->hasAttr("reg"))
            reg = op->strAttr("reg");
        auto [it, inserted] =
            iface_uses.emplace(std::make_pair(*iface, reg), op.get());
        if (!inserted)
            flag(op.get(), "LN4405",
                 "interface '" + std::string(op->name()) +
                     (reg.empty() ? "" : "' on register '" + reg) +
                     "' used more than once in one instruction "
                     "(SCAIE-V once-per-instruction rule)");
    }

    return result;
}

} // namespace tv
} // namespace analysis
} // namespace longnail
