#include "analysis/verifier.hh"

#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

namespace longnail {
namespace analysis {

namespace {

using ir::Graph;
using ir::OpKind;
using ir::Operation;
using ir::Value;

/** The two dialect levels a behavior graph can live at. */
enum class Level { Unknown, Hir, Lil };

Level
levelOf(OpKind kind)
{
    switch (kind) {
      case OpKind::CoredslField:
      case OpKind::CoredslGet:
      case OpKind::CoredslSet:
      case OpKind::CoredslGetMem:
      case OpKind::CoredslSetMem:
      case OpKind::CoredslCast:
      case OpKind::CoredslConcat:
      case OpKind::CoredslExtract:
      case OpKind::CoredslRom:
      case OpKind::CoredslSpawn:
      case OpKind::CoredslEnd:
      case OpKind::HwConstant:
      case OpKind::HwAdd:
      case OpKind::HwSub:
      case OpKind::HwMul:
      case OpKind::HwDiv:
      case OpKind::HwRem:
      case OpKind::HwShl:
      case OpKind::HwShr:
      case OpKind::HwAnd:
      case OpKind::HwOr:
      case OpKind::HwXor:
      case OpKind::HwNot:
      case OpKind::HwICmp:
      case OpKind::HwMux:
        return Level::Hir;
      default:
        return Level::Lil;
    }
}

class GraphVerifier
{
  public:
    explicit GraphVerifier(const VerifyOptions &options)
        : options_(options)
    {}

    std::vector<VerifyIssue>
    run(const Graph &graph)
    {
        verifyGraphOps(graph, nullptr);
        if (options_.requireTerminator)
            verifyTerminator(graph);
        return std::move(issues_);
    }

  private:
    void
    issue(const Operation &op, const char *code, const std::string &msg)
    {
        issues_.push_back(
            {code, op.loc(), std::string(op.name()) + ": " + msg});
    }

    // --- LN4001: SSA structure ---------------------------------------

    void
    verifyGraphOps(const Graph &graph, const Graph *outer)
    {
        // Because a graph is an ordered op list and operands must be
        // defined by earlier ops (of this graph or the enclosing
        // prefix), passing this check also proves the combinational
        // dataflow is acyclic.
        std::set<const Value *> defined;
        if (outer)
            for (const auto &op : outer->ops())
                for (unsigned i = 0; i < op->numResults(); ++i)
                    defined.insert(op->result(i));

        Level level = Level::Unknown;
        for (const auto &op : graph.ops()) {
            for (unsigned i = 0; i < op->numOperands(); ++i) {
                const Value *v = op->operand(i);
                if (!v) {
                    issue(*op, "LN4001", "null operand");
                    continue;
                }
                if (!defined.count(v))
                    issue(*op, "LN4001",
                          "operand %" + std::to_string(v->id) +
                              " used before definition");
            }
            for (unsigned i = 0; i < op->numResults(); ++i) {
                const Value *v = op->result(i);
                if (v->type.width == 0)
                    issue(*op, "LN4003", "zero-width result");
                defined.insert(v);
            }

            Level op_level = levelOf(op->kind());
            if (level == Level::Unknown)
                level = op_level;
            else if (op_level != level)
                issue(*op, "LN4006",
                      "mixes dialect levels within one graph");

            verifyOp(*op);

            if (op->kind() == OpKind::CoredslSpawn) {
                if (!op->subgraph())
                    issue(*op, "LN4005", "spawn without a subgraph");
                else
                    verifyGraphOps(*op->subgraph(), &graph);
            } else if (op->subgraph()) {
                issue(*op, "LN4005",
                      "only coredsl.spawn may carry a subgraph");
            }
        }
    }

    // --- LN4006: terminator placement --------------------------------

    void
    verifyTerminator(const Graph &graph)
    {
        if (graph.empty())
            return;
        const Operation &last = *graph.ops().back();
        Level level = levelOf(graph.ops().front()->kind());
        OpKind want = level == Level::Lil ? OpKind::LilSink
                                          : OpKind::CoredslEnd;
        if (last.kind() != want)
            issue(last, "LN4006",
                  std::string("graph must end in ") + ir::opKindName(want));
        for (const auto &op : graph.ops())
            if ((op->kind() == OpKind::CoredslEnd ||
                 op->kind() == OpKind::LilSink) &&
                op.get() != &last)
                issue(*op, "LN4006",
                      "terminator before the end of the graph");
    }

    // --- per-op arity / width / attribute rules ----------------------

    bool
    checkArity(const Operation &op, unsigned min_ops, unsigned max_ops,
               unsigned results)
    {
        bool ok = true;
        if (op.numOperands() < min_ops || op.numOperands() > max_ops) {
            std::ostringstream os;
            os << "expected ";
            if (min_ops == max_ops)
                os << min_ops;
            else
                os << min_ops << ".." << max_ops;
            os << " operands, got " << op.numOperands();
            issue(op, "LN4002", os.str());
            ok = false;
        }
        if (op.numResults() != results) {
            issue(op, "LN4002",
                  "expected " + std::to_string(results) +
                      " results, got " + std::to_string(op.numResults()));
            ok = false;
        }
        return ok;
    }

    void
    checkWidth(const Operation &op, const Value *v, unsigned width,
               const char *what)
    {
        if (v && v->type.width != width)
            issue(op, "LN4003",
                  std::string(what) + " must be " +
                      std::to_string(width) + " bits wide, is " +
                      std::to_string(v->type.width));
    }

    bool
    requireStrAttr(const Operation &op, const char *key)
    {
        if (!op.hasAttr(key) ||
            !std::holds_alternative<std::string>(op.attrs().at(key))) {
            issue(op, "LN4005",
                  std::string("missing string attribute '") + key + "'");
            return false;
        }
        return true;
    }

    bool
    requireIntAttr(const Operation &op, const char *key)
    {
        if (!op.hasAttr(key) ||
            !std::holds_alternative<int64_t>(op.attrs().at(key))) {
            issue(op, "LN4005",
                  std::string("missing integer attribute '") + key + "'");
            return false;
        }
        return true;
    }

    void
    checkConstant(const Operation &op)
    {
        if (!checkArity(op, 0, 0, 1))
            return;
        if (!op.hasAttr("value") ||
            !std::holds_alternative<ApInt>(op.attrs().at("value"))) {
            issue(op, "LN4005", "missing ApInt attribute 'value'");
            return;
        }
        if (op.apAttr("value").width() != op.result()->type.width)
            issue(op, "LN4003",
                  "constant value width differs from result width");
    }

    void
    checkIcmp(const Operation &op)
    {
        if (!checkArity(op, 2, 2, 1))
            return;
        checkWidth(op, op.result(), 1, "icmp result");
        // hwarith.icmp compares values of differing widths directly
        // (LIL lowering widens into a common domain); only the
        // comb-level icmp requires pre-equalized operands.
        if (op.kind() == OpKind::CombICmp && op.operand(0) &&
            op.operand(1) &&
            op.operand(0)->type.width != op.operand(1)->type.width)
            issue(op, "LN4003", "icmp operand widths differ");
        if (requireIntAttr(op, "pred")) {
            int64_t pred = op.intAttr("pred");
            if (pred < 0 || pred > int64_t(ir::ICmpPred::Sge))
                issue(op, "LN4005", "invalid icmp predicate");
        }
    }

    void
    checkMux(const Operation &op)
    {
        if (!checkArity(op, 3, 3, 1))
            return;
        checkWidth(op, op.operand(0), 1, "mux condition");
        unsigned rw = op.result()->type.width;
        if (op.operand(1))
            checkWidth(op, op.operand(1), rw, "mux true arm");
        if (op.operand(2))
            checkWidth(op, op.operand(2), rw, "mux false arm");
    }

    void
    checkExtract(const Operation &op)
    {
        if (!checkArity(op, 1, 1, 1))
            return;
        if (!requireIntAttr(op, "lo"))
            return;
        int64_t lo = op.intAttr("lo");
        const Value *v = op.operand(0);
        if (v && (lo < 0 ||
                  uint64_t(lo) + op.result()->type.width > v->type.width))
            issue(op, "LN4003",
                  "extracted range exceeds the operand width");
    }

    void
    checkConcat(const Operation &op)
    {
        if (!checkArity(op, 2, 2, 1))
            return;
        const Value *hi = op.operand(0);
        const Value *lo = op.operand(1);
        if (hi && lo &&
            hi->type.width + lo->type.width != op.result()->type.width)
            issue(op, "LN4003",
                  "result width is not the sum of the operand widths");
    }

    void
    checkRom(const Operation &op)
    {
        if (!checkArity(op, 0, 1, 1))
            return;
        if (!op.hasAttr("values") ||
            !std::holds_alternative<std::vector<ApInt>>(
                op.attrs().at("values"))) {
            issue(op, "LN4005", "missing rom attribute 'values'");
            return;
        }
        const auto &values = op.romAttr("values");
        if (values.empty())
            issue(op, "LN4005", "rom has no values");
        for (const auto &v : values)
            if (v.width() != op.result()->type.width) {
                issue(op, "LN4003",
                      "rom value width differs from result width");
                break;
            }
    }

    /** Predicate operand (always the last one) must be one bit. */
    void
    checkPred(const Operation &op, unsigned min_ops_with_pred)
    {
        if (op.numOperands() >= min_ops_with_pred)
            checkWidth(op, op.operand(op.numOperands() - 1), 1,
                       "predicate");
    }

    void
    verifyOp(const Operation &op)
    {
        unsigned rw =
            op.numResults() == 1 ? op.result()->type.width : 0;
        switch (op.kind()) {
            // --- coredsl ---
          case OpKind::CoredslField:
            checkArity(op, 0, 0, 1);
            requireStrAttr(op, "field");
            break;
          case OpKind::CoredslGet:
            checkArity(op, 0, 1, 1);
            requireStrAttr(op, "state");
            break;
          case OpKind::CoredslSet:
            if (checkArity(op, 2, 3, 0)) {
                unsigned want = op.hasAttr("indexed") ? 3 : 2;
                if (op.numOperands() != want)
                    issue(op, "LN4002",
                          "indexed/value/predicate operand mismatch");
                checkPred(op, 2);
            }
            requireStrAttr(op, "state");
            break;
          case OpKind::CoredslGetMem:
            checkArity(op, 1, 2, 1);
            checkPred(op, 2);
            break;
          case OpKind::CoredslSetMem:
            checkArity(op, 2, 3, 0);
            checkPred(op, 3);
            requireStrAttr(op, "state");
            break;
          case OpKind::CoredslCast:
            checkArity(op, 1, 1, 1);
            break;
          case OpKind::CoredslConcat:
          case OpKind::CombConcat:
            checkConcat(op);
            break;
          case OpKind::CoredslExtract:
          case OpKind::CombExtract:
            checkExtract(op);
            break;
          case OpKind::CoredslRom:
          case OpKind::CombRom:
            checkRom(op);
            break;
          case OpKind::CoredslSpawn:
            checkArity(op, 0, 0, 0);
            break;
          case OpKind::CoredslEnd:
          case OpKind::LilSink:
            checkArity(op, 0, 0, 0);
            break;

            // --- hwarith ---
          case OpKind::HwConstant:
          case OpKind::CombConstant:
            checkConstant(op);
            break;
          case OpKind::HwAdd:
          case OpKind::HwSub:
          case OpKind::HwMul:
          case OpKind::HwDiv:
          case OpKind::HwRem:
            // hwarith arithmetic grows/changes widths by the CoreDSL
            // type rules; only the shape is checked here.
            checkArity(op, 2, 2, 1);
            break;
          case OpKind::HwAnd:
          case OpKind::HwOr:
          case OpKind::HwXor:
            if (checkArity(op, 2, 2, 1)) {
                checkWidth(op, op.operand(0), rw, "bitwise operand");
                checkWidth(op, op.operand(1), rw, "bitwise operand");
            }
            break;
          case OpKind::HwShl:
          case OpKind::HwShr:
            // The result keeps the lhs type; the shift amount may have
            // any width.
            if (checkArity(op, 2, 2, 1))
                checkWidth(op, op.operand(0), rw, "shift operand");
            break;
          case OpKind::HwNot:
            if (checkArity(op, 1, 1, 1))
                checkWidth(op, op.operand(0), rw, "operand");
            break;
          case OpKind::HwICmp:
          case OpKind::CombICmp:
            checkIcmp(op);
            break;
          case OpKind::HwMux:
          case OpKind::CombMux:
            checkMux(op);
            break;

            // --- lil ---
          case OpKind::LilInstrWord:
          case OpKind::LilReadRs1:
          case OpKind::LilReadRs2:
          case OpKind::LilReadPC:
            if (checkArity(op, 0, 0, 1))
                checkWidth(op, op.result(), 32, "interface result");
            break;
          case OpKind::LilReadMem:
            if (checkArity(op, 1, 2, 1)) {
                checkWidth(op, op.operand(0), 32, "memory address");
                checkPred(op, 2);
            }
            break;
          case OpKind::LilWriteRd:
            if (checkArity(op, 1, 2, 0)) {
                checkWidth(op, op.operand(0), 32, "rd value");
                checkPred(op, 2);
            }
            break;
          case OpKind::LilWritePC:
            if (checkArity(op, 1, 2, 0)) {
                checkWidth(op, op.operand(0), 32, "pc value");
                checkPred(op, 2);
            }
            break;
          case OpKind::LilWriteMem:
            if (checkArity(op, 2, 3, 0)) {
                checkWidth(op, op.operand(0), 32, "memory address");
                checkPred(op, 3);
            }
            break;
          case OpKind::LilReadCustReg:
            checkArity(op, 0, 1, 1);
            requireStrAttr(op, "reg");
            break;
          case OpKind::LilWriteCustRegAddr:
            checkArity(op, 0, 1, 0);
            requireStrAttr(op, "reg");
            break;
          case OpKind::LilWriteCustRegData:
            if (checkArity(op, 1, 2, 0))
                checkPred(op, 2);
            requireStrAttr(op, "reg");
            break;

            // --- comb ---
          case OpKind::CombAdd:
          case OpKind::CombSub:
          case OpKind::CombMul:
          case OpKind::CombDivU:
          case OpKind::CombDivS:
          case OpKind::CombModU:
          case OpKind::CombModS:
          case OpKind::CombAnd:
          case OpKind::CombOr:
          case OpKind::CombXor:
            if (checkArity(op, 2, 2, 1)) {
                checkWidth(op, op.operand(0), rw, "comb operand");
                checkWidth(op, op.operand(1), rw, "comb operand");
            }
            break;
          case OpKind::CombShl:
          case OpKind::CombShrU:
          case OpKind::CombShrS:
            if (checkArity(op, 2, 2, 1))
                checkWidth(op, op.operand(0), rw, "shift operand");
            break;
          case OpKind::CombReplicate:
            if (checkArity(op, 1, 1, 1))
                checkWidth(op, op.operand(0), 1, "replicated value");
            break;
        }
    }

    VerifyOptions options_;
    std::vector<VerifyIssue> issues_;
};

} // namespace

std::vector<VerifyIssue>
verifyGraph(const ir::Graph &graph, const VerifyOptions &options)
{
    return GraphVerifier(options).run(graph);
}

void
reportIssues(const std::vector<VerifyIssue> &issues,
             const std::string &what, DiagnosticEngine &diags)
{
    for (const auto &issue : issues)
        diags.error(issue.loc, issue.code,
                    "invalid IR in " + what + ": " + issue.message);
}

// --- verify-after-transform option ----------------------------------

namespace {

bool g_verifyOverridden = false;
bool g_verifyValue = false;

bool
envEnabled()
{
    const char *env = std::getenv("LONGNAIL_VERIFY_IR");
    return env && *env && std::string(env) != "0";
}

} // namespace

bool
verifyIrEnabled()
{
    return g_verifyOverridden ? g_verifyValue : envEnabled();
}

void
setVerifyIr(bool enable)
{
    g_verifyOverridden = true;
    g_verifyValue = enable;
}

ScopedVerifyIr::ScopedVerifyIr(bool enable)
    : prevOverride_(g_verifyOverridden), prevValue_(g_verifyValue)
{
    setVerifyIr(enable);
}

ScopedVerifyIr::~ScopedVerifyIr()
{
    g_verifyOverridden = prevOverride_;
    g_verifyValue = prevValue_;
}

void
verifyAfterTransform(const ir::Graph &graph, const char *when)
{
    if (!verifyIrEnabled())
        return;
    auto issues = verifyGraph(graph);
    if (issues.empty())
        return;
    std::ostringstream os;
    os << "IR verification failed after " << when << ":";
    for (const auto &issue : issues)
        os << "\n  " << issue.str();
    throw std::runtime_error(os.str());
}

} // namespace analysis
} // namespace longnail
