/**
 * @file
 * MAY/MUST effect summaries and the cross-graph interference checker
 * (docs/static-analysis.md §4).
 *
 * A behavior graph touches architectural state through its interface
 * operations: custom-register reads/writes, memory reads/writes, and
 * the core ports (rs1/rs2/pc/instr reads, rd/pc writes). This module
 * abstracts each graph into a per-*partition* summary of those
 * effects:
 *
 *   - the **main** partition: interface ops executed in-order with the
 *     parent instruction (or the whole graph for always-blocks);
 *   - the **spawn** partition: interface ops carrying the `"spawn"`
 *     provenance attribute, i.e. lowered from a decoupled spawn block
 *     (they retire at an unpredictable later time).
 *
 * Every effect is classified MAY (its predicate is not provably
 * false) and MUST (it has no predicate, or the predicate is provably
 * true). Memory effects additionally carry an address interval from
 * the range lattice (`RangeLattice`), so provably disjoint accesses
 * do not alias. Commit/stall points are modeled through two proxies:
 * the graph's implicit end-of-graph retire (`lil.sink`) is the commit
 * point, and a PC write is the flush boundary (`redirectsPc()`) —
 * effects launched before it may be re-issued on a mispredicted or
 * redirected path.
 *
 * `interference()` joins two summaries and reports the hazards
 * between them; `spawnIsolated()` is the MUST-not-interfere verdict
 * the pass manager uses to run the -O1 pipeline on spawn graphs
 * (docs/pass-pipeline.md §1). The verdict is conservative at
 * register-name granularity: absence of any MAY-level hazard proves
 * the partitions touch disjoint state.
 */

#ifndef LONGNAIL_ANALYSIS_EFFECTS_HH
#define LONGNAIL_ANALYSIS_EFFECTS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace analysis {

/** One abstract state effect. MUST implies MAY. */
struct Effect
{
    /** The effect can happen (predicate not provably false). */
    bool may = false;
    /** The effect happens on every execution (no predicate, or the
     * predicate is provably true). */
    bool must = false;
    /** Source location of the first operation contributing it. */
    SourceLoc loc;
};

/** One abstract memory access with its address interval. */
struct MemEffect
{
    /** Inclusive byte-address bounds from the range lattice (the
     * 4-byte access footprint is folded into `hi`). */
    uint64_t lo = 0;
    uint64_t hi = UINT64_MAX;
    bool may = false;
    bool must = false;
    /** The address or stored value transitively depends on a memory
     * read — re-executing the access is not idempotent. */
    bool dependsOnMemRead = false;
    SourceLoc loc;

    bool overlaps(const MemEffect &other) const
    {
        return lo <= other.hi && other.lo <= hi;
    }
};

/** MAY/MUST effect summary of one partition of a behavior graph. */
struct EffectSummary
{
    /** Custom-register accesses, keyed by register name (array
     * registers are summarized whole — index-insensitive, which is
     * the conservative direction for interference). */
    std::map<std::string, Effect> regsRead;
    std::map<std::string, Effect> regsWritten;
    /** Registers whose written value transitively depends on a read
     * of the same register (read-modify-write; not idempotent). */
    std::set<std::string> regsRmw;

    /** Memory accesses with address intervals, in operation order. */
    std::vector<MemEffect> memReads;
    std::vector<MemEffect> memWrites;

    /** Core-port usage: reads keyed "rs1"/"rs2"/"pc"/"instr"/"mem",
     * writes keyed "rd"/"pc"/"mem". */
    std::map<std::string, Effect> ifaceReads;
    std::map<std::string, Effect> ifaceWrites;

    /** The partition may redirect the PC — the flush-boundary proxy:
     * any effect issued alongside it sits before a stall/flush point. */
    bool redirectsPc() const;

    /** No observable state update MAY execute in this partition. */
    bool observableEmpty() const;
};

/** Partitioned summary of one graph. */
struct GraphEffects
{
    /** In-order (architectural) partition; the whole graph for
     * always-blocks and spawn-free instructions. */
    EffectSummary main;
    /** Decoupled partition: interface ops marked `"spawn"`. */
    EffectSummary spawn;
    bool hasSpawn = false;
    /** Location of the first spawn-marked operation. */
    SourceLoc spawnLoc;
};

/**
 * Summarize @p graph (spawn subgraphs included) into its per-partition
 * MAY/MUST effect sets. Runs the range lattice once for the address
 * intervals and the MUST classification of predicates.
 */
GraphEffects summarizeGraph(const ir::Graph &graph);

/** Kind of a cross-partition hazard. */
enum class HazardKind
{
    /** A write in one partition races a read in the other. */
    RegRace,
    /** Both partitions write the same register (lost update / WAW). */
    RegWaw,
    /** A memory write may alias a memory access in the other
     * partition (the address intervals overlap). */
    MemAlias,
    /** Both partitions drive the same core write port. */
    PortConflict,
};

const char *hazardKindName(HazardKind kind);

/** One hazard between two effect summaries. */
struct Hazard
{
    HazardKind kind;
    /** Register name, core port, or "memory". */
    std::string target;
    /** Both sides of the hazard MUST execute. */
    bool must = false;
    /** Location of the offending write in the first summary. */
    SourceLoc loc;
};

/**
 * Hazards caused by @p a's writes against @p b's accesses (reads and
 * writes). Symmetric coverage needs both `interference(a, b)` and
 * `interference(b, a)`. Deterministic order: registers sorted by
 * name, then ports, then memory effects in operation order.
 */
std::vector<Hazard> interference(const EffectSummary &a,
                                 const EffectSummary &b);

/**
 * The MUST-not-interfere verdict: true when the graph has a spawn
 * partition and no MAY-level hazard exists between it and the main
 * partition in either direction. For such graphs the untimed
 * last-enabled-wins semantics of `lil::interpret()` is a faithful
 * model of the decoupled execution, so the -O1 passes (which the
 * signature check re-proves against exactly that model) are sound to
 * run (docs/pass-pipeline.md §1).
 */
bool spawnIsolated(const GraphEffects &fx);

} // namespace analysis
} // namespace longnail

#endif // LONGNAIL_ANALYSIS_EFFECTS_HH
