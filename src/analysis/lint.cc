#include "analysis/lint.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "analysis/dataflow.hh"
#include "analysis/effects.hh"
#include "analysis/verifier.hh"
#include "cores/rv32i.hh"
#include "scaiev/interface.hh"

namespace longnail {
namespace analysis {

namespace {

using coredsl::InstrInfo;
using ir::Graph;
using ir::OpKind;
using ir::Operation;
using ir::Value;

std::string
lowercase(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

void
forEachOp(const Graph &graph, const std::function<void(const Operation &)> &fn)
{
    for (const auto &op : graph.ops()) {
        fn(*op);
        if (op->subgraph())
            forEachOp(*op->subgraph(), fn);
    }
}

// --------------------------------------------------------------------
// HIR-level dataflow lints
// --------------------------------------------------------------------

/** Position of the predicate operand of a state-update op, if any. */
const Value *
predOperand(const Operation &op)
{
    switch (op.kind()) {
      case OpKind::CoredslSet:
        // [index,] value, pred — the predicate is always last.
        return op.numOperands() >= 2 ? op.operand(op.numOperands() - 1)
                                     : nullptr;
      case OpKind::CoredslSetMem:
        return op.numOperands() == 3 ? op.operand(2) : nullptr;
      case OpKind::LilWriteRd:
      case OpKind::LilWritePC:
      case OpKind::LilWriteCustRegData:
        return op.numOperands() == 2 ? op.operand(1) : nullptr;
      case OpKind::LilWriteMem:
        return op.numOperands() == 3 ? op.operand(2) : nullptr;
      case OpKind::LilReadMem:
        return op.numOperands() == 2 ? op.operand(1) : nullptr;
      default:
        return nullptr;
    }
}

void
checkHirGraph(const Graph &graph, const std::string &unit,
              DiagnosticEngine &diags)
{
    auto ranges = computeRanges(graph);
    auto rangeOf = [&](const Value *v) {
        auto it = ranges.find(v);
        return it != ranges.end() ? it->second
                                  : ValueRange::full(v->type.width);
    };
    // One `if` lowers to one mux per assigned variable; report the
    // shared dead condition once per source location.
    std::set<std::pair<int, int>> dead_mux_locs;

    forEachOp(graph, [&](const Operation &op) {
        // LN4101: a narrowing cast whose operand is provably too large
        // for the result width — the discarded bits are never zero.
        if (op.kind() == OpKind::CoredslCast && op.numOperands() == 1 &&
            op.numResults() == 1) {
            const Value *src = op.operand(0);
            unsigned rw = op.result()->type.width;
            if (!src->type.isSigned && rw < src->type.width) {
                ValueRange r = rangeOf(src);
                if (r.umin > ValueRange::maxFor(rw)) {
                    std::ostringstream os;
                    os << "cast from " << src->type.str() << " to "
                       << op.result()->type.str() << " in '" << unit
                       << "' always truncates: the value is at least "
                       << r.umin << " but only " << rw
                       << " bits are kept";
                    diags.warning(op.loc(), "LN4101", os.str());
                }
            }
        }

        // LN4102: a state write predicated on a provably false
        // condition, or a mux whose condition never holds.
        if (const Value *pred = predOperand(op)) {
            if (op.kind() == OpKind::CoredslSet ||
                op.kind() == OpKind::CoredslSetMem) {
                if (rangeOf(pred).isConstZero()) {
                    std::string state =
                        op.hasAttr("state") ? op.strAttr("state") : "?";
                    diags.warning(op.loc(), "LN4102",
                                  "condition is always false: the "
                                  "write to '" +
                                      state + "' in '" + unit +
                                      "' never executes");
                }
            }
        }
        if (op.kind() == OpKind::HwMux && op.numOperands() == 3 &&
            rangeOf(op.operand(0)).isConstZero() &&
            dead_mux_locs.insert({op.loc().line, op.loc().column})
                .second)
            diags.warning(op.loc(), "LN4102",
                          "condition is always false: the true "
                          "branch in '" +
                              unit + "' is never selected");

        // LN4805 (structural variant): a spawn block with no state
        // update at all. Checked here, pre-canonicalization, because
        // DCE erases the dead body before the LIL-level effect
        // summary could see it.
        if (op.kind() == OpKind::CoredslSpawn && op.subgraph()) {
            bool has_update = false;
            forEachOp(*op.subgraph(), [&](const Operation &inner) {
                if (inner.kind() == OpKind::CoredslSet ||
                    inner.kind() == OpKind::CoredslSetMem)
                    has_update = true;
            });
            if (!has_update)
                diags.warning(op.loc(), "LN4805",
                              "dead spawn block in '" + unit +
                                  "': it contains no state update, so "
                                  "its effects are never observable");
        }
    });
}

// --------------------------------------------------------------------
// LIL-level dataflow lints
// --------------------------------------------------------------------

void
checkLilGraph(const lil::LilGraph &graph,
              const std::set<std::string> &written_regs,
              DiagnosticEngine &diags)
{
    // LN4103: reads of custom registers no instruction or always-block
    // ever writes. Definite-initialization dataflow then shows where
    // the uninitialized value ends up.
    std::set<const Operation *> uninit_reads;
    forEachOp(graph.graph, [&](const Operation &op) {
        if (op.kind() != OpKind::LilReadCustReg)
            return;
        const std::string &reg = op.strAttr("reg");
        if (written_regs.count(reg))
            return;
        uninit_reads.insert(&op);
        diags.warning(op.loc(), "LN4103",
                      "custom register '" + reg + "' is read in '" +
                          graph.name +
                          "' but never written by any instruction or "
                          "always-block");
    });
    if (!uninit_reads.empty()) {
        InitLattice lattice(uninit_reads);
        auto states = ForwardDataflow<InitState>(lattice).run(graph.graph);
        forEachOp(graph.graph, [&](const Operation &op) {
            if (!ir::isStateUpdateOp(op.kind()))
                return;
            for (const Value *v : op.operands()) {
                auto it = states.find(v);
                if (it != states.end() && it->second.maybeUninit) {
                    diags.note(op.loc(),
                               std::string("the uninitialized value "
                                           "reaches ") +
                                   op.name() + " here");
                    break;
                }
            }
        });
    }

    // LN4104: interface operations that can never take effect because
    // their predicate is constant false — dead LIL nodes the frontend
    // could not fold away.
    auto ranges = computeRanges(graph.graph);
    forEachOp(graph.graph, [&](const Operation &op) {
        const Value *pred = predOperand(op);
        if (!pred || !ir::isInterfaceOp(op.kind()))
            return;
        auto it = ranges.find(pred);
        if (it != ranges.end() && it->second.isConstZero())
            diags.warning(op.loc(), "LN4104",
                          std::string("dead node: ") + op.name() +
                              " in '" + graph.name +
                              "' never executes (its predicate is "
                              "always false)");
    });

    // LN4105: shift amounts that are provably at least the operand
    // width. Amounts clamp to the width, so such a shift discards
    // every data bit — almost always an off-by-one in the amount
    // expression or a width mix-up.
    forEachOp(graph.graph, [&](const Operation &op) {
        bool is_shift = op.kind() == OpKind::CombShl ||
                        op.kind() == OpKind::CombShrU ||
                        op.kind() == OpKind::CombShrS;
        if (!is_shift || op.numOperands() != 2 || op.numResults() != 1)
            return;
        unsigned width = op.result()->type.width;
        auto it = ranges.find(op.operand(1));
        if (it == ranges.end() || it->second.umin < width)
            return;
        bool arith = op.kind() == OpKind::CombShrS;
        diags.warning(
            op.loc(), "LN4105",
            std::string("shift amount in '") + graph.name +
                "' is always >= the operand width (" +
                std::to_string(width) + "): " + op.name() +
                (arith ? " always yields just copies of the sign bit"
                       : " always yields 0"));
    });
}

// --------------------------------------------------------------------
// Spawn/always effect-interference checks (LN4801..LN4805)
// --------------------------------------------------------------------

/**
 * Joins the MAY/MUST effect summaries (analysis/effects.hh) across
 * every graph of the module and reports the decoupled-execution
 * hazards. The architectural side of each comparison is a graph's
 * non-spawn (main) partition — always-blocks are all main.
 */
void
checkEffects(const lil::LilModule &mod, DiagnosticEngine &diags)
{
    struct Unit
    {
        const lil::LilGraph *graph;
        GraphEffects fx;
    };
    std::vector<Unit> units;
    units.reserve(mod.graphs.size());
    for (const auto &graph : mod.graphs)
        units.push_back({graph.get(), summarizeGraph(graph->graph)});

    auto describe = [](const Unit &u) {
        return std::string(u.graph->isAlways ? "always-block '"
                                             : "'") +
               u.graph->name + "'";
    };

    for (size_t i = 0; i < units.size(); ++i) {
        const Unit &u = units[i];
        if (!u.fx.hasSpawn)
            continue;
        const EffectSummary &sp = u.fx.spawn;

        // LN4801: a decoupled custom-register write racing an
        // architectural (in-order) read in *another* graph. The same
        // graph's own in-order reads always precede the spawn
        // (operands are retrieved with the fetched instruction), so
        // they are not a race.
        for (const auto &[reg, w] : sp.regsWritten) {
            if (!w.may)
                continue;
            for (size_t j = 0; j < units.size(); ++j) {
                if (j == i)
                    continue;
                auto it = units[j].fx.main.regsRead.find(reg);
                if (it == units[j].fx.main.regsRead.end() ||
                    !it->second.may)
                    continue;
                diags.warning(
                    w.loc, "LN4801",
                    "decoupled write to custom register '" + reg +
                        "' in " + describe(u) +
                        " races the architectural read in " +
                        describe(units[j]) +
                        ": the read may observe the value before or "
                        "after the spawn retires");
                diags.note(it->second.loc,
                           "the racing read of '" + reg + "' is here");
            }
        }

        // LN4802: lost update — the decoupled write and another
        // write (an in-order write anywhere, or another graph's
        // spawn) target the same register with no ordering between
        // them.
        for (const auto &[reg, w] : sp.regsWritten) {
            if (!w.may)
                continue;
            for (size_t j = 0; j < units.size(); ++j) {
                const EffectSummary &other_main = units[j].fx.main;
                auto it = other_main.regsWritten.find(reg);
                if (it != other_main.regsWritten.end() &&
                    it->second.may) {
                    diags.warning(
                        w.loc, "LN4802",
                        "lost update: the decoupled write to custom "
                        "register '" +
                            reg + "' in " + describe(u) +
                            " and the in-order write in " +
                            describe(units[j]) +
                            " are unordered; one update can be "
                            "silently overwritten");
                    diags.note(it->second.loc,
                               "the conflicting write to '" + reg +
                                   "' is here");
                }
                if (j <= i)
                    continue; // each spawn/spawn pair reported once
                auto sp_it = units[j].fx.spawn.regsWritten.find(reg);
                if (sp_it != units[j].fx.spawn.regsWritten.end() &&
                    sp_it->second.may) {
                    diags.warning(
                        w.loc, "LN4802",
                        "lost update: decoupled writes to custom "
                        "register '" +
                            reg + "' in " + describe(u) + " and " +
                            describe(units[j]) +
                            " retire in an unpredictable order");
                    diags.note(sp_it->second.loc,
                               "the conflicting write to '" + reg +
                                   "' is here");
                }
            }
        }

        // LN4803: a decoupled memory write whose address interval
        // overlaps a core-visible (in-order) memory access — the
        // core's ordering guarantees do not extend to the spawn.
        for (const auto &mw : sp.memWrites) {
            if (!mw.may)
                continue;
            bool reported = false;
            for (size_t j = 0; j < units.size() && !reported; ++j) {
                const EffectSummary &other_main = units[j].fx.main;
                auto checkAlias = [&](const MemEffect &acc,
                                      const char *what) {
                    if (reported || !acc.may || !mw.overlaps(acc))
                        return;
                    reported = true;
                    diags.warning(
                        mw.loc, "LN4803",
                        "memory ordering hazard: the decoupled store "
                        "in " +
                            describe(u) + " may alias the in-order " +
                            what + " in " + describe(units[j]) +
                            " (address ranges overlap)");
                    diags.note(acc.loc,
                               std::string("the aliasing ") + what +
                                   " is here");
                };
                for (const auto &mr : other_main.memReads)
                    checkAlias(mr, "load");
                for (const auto &ow : other_main.memWrites)
                    checkAlias(ow, "store");
            }
        }

        // LN4804: a non-idempotent decoupled effect (read-modify-write
        // of a register, or a store derived from a load) in a graph
        // whose in-order part may redirect the PC. The redirect is a
        // flush boundary: a squashed-and-reissued instruction would
        // launch the spawn twice.
        if (u.fx.main.redirectsPc()) {
            for (const auto &reg : sp.regsRmw) {
                auto it = sp.regsWritten.find(reg);
                if (it == sp.regsWritten.end() || !it->second.may)
                    continue;
                diags.warning(
                    it->second.loc, "LN4804",
                    "non-idempotent decoupled effect in " +
                        describe(u) +
                        ": the read-modify-write of custom register "
                        "'" +
                        reg +
                        "' is launched before the PC redirect (a "
                        "flush boundary); a re-issued instruction "
                        "applies it twice");
            }
            for (const auto &mw : sp.memWrites) {
                if (!mw.may || !mw.dependsOnMemRead)
                    continue;
                diags.warning(
                    mw.loc, "LN4804",
                    "non-idempotent decoupled effect in " +
                        describe(u) +
                        ": the store depends on a load and is "
                        "launched before the PC redirect (a flush "
                        "boundary); a re-issued instruction applies "
                        "it twice");
            }
        }

        // LN4805 (effect variant): spawn ops exist but no observable
        // update MAY execute — e.g. every decoupled write is
        // predicated provably false.
        if (sp.observableEmpty())
            diags.warning(u.fx.spawnLoc, "LN4805",
                          "dead spawn block in " + describe(u) +
                              ": no decoupled state update can ever "
                              "execute, so its effects are never "
                              "observable");
    }
}

// --------------------------------------------------------------------
// Encoding checks
// --------------------------------------------------------------------

/** True if some instruction word matches both patterns. */
bool
patternsOverlap(uint32_t mask_a, uint32_t match_a, uint32_t mask_b,
                uint32_t match_b)
{
    return ((match_a ^ match_b) & mask_a & mask_b) == 0;
}

std::string
hexWord(uint32_t word)
{
    std::ostringstream os;
    os << "0x" << std::hex << word;
    return os.str();
}

void
checkEncodings(const coredsl::ElaboratedIsa &isa, DiagnosticEngine &diags)
{
    std::vector<const InstrInfo *> ext;
    for (const auto &instr : isa.instructions)
        if (!instr.fromBase)
            ext.push_back(&instr);

    // LN4201: pairwise overlap between the ISAX's own instructions —
    // some word would decode as both, making the extension ambiguous.
    for (size_t i = 0; i < ext.size(); ++i) {
        for (size_t j = i + 1; j < ext.size(); ++j) {
            const InstrInfo &a = *ext[i], &b = *ext[j];
            if (!patternsOverlap(a.mask, a.match, b.mask, b.match))
                continue;
            SourceLoc loc = b.ast ? b.ast->loc : SourceLoc{};
            diags.warning(loc, "LN4201",
                          "encodings of '" + a.name + "' and '" +
                              b.name + "' overlap: word " +
                              hexWord(a.match | b.match) +
                              " matches both");
        }
    }

    // LN4202: overlap with the RV32I base — the host core would steal
    // (or mis-decode) the ISAX's encodings.
    for (const InstrInfo *instr : ext) {
        std::set<std::string> reported;
        SourceLoc loc = instr->ast ? instr->ast->loc : SourceLoc{};
        for (const auto &pat : cores::rv32iBasePatterns()) {
            if (!patternsOverlap(instr->mask, instr->match, pat.mask,
                                 pat.match))
                continue;
            reported.insert(lowercase(pat.name));
            diags.warning(loc, "LN4202",
                          "encoding of '" + instr->name +
                              "' overlaps the RV32I base instruction "
                              "'" +
                              pat.name + "'");
        }
        for (const auto &base : isa.instructions) {
            if (!base.fromBase || reported.count(lowercase(base.name)))
                continue;
            if (patternsOverlap(instr->mask, instr->match, base.mask,
                                base.match))
                diags.warning(loc, "LN4202",
                              "encoding of '" + instr->name +
                                  "' overlaps the base instruction '" +
                                  base.name + "'");
        }
    }
}

// --------------------------------------------------------------------
// Pre-schedule datasheet checks
// --------------------------------------------------------------------

void
checkDatasheet(const lil::LilModule &mod, const scaiev::Datasheet &sheet,
               DiagnosticEngine &diags)
{
    for (const auto &graph : mod.graphs) {
        // Dependence-driven ASAP lower bound per op: interface ops may
        // not start before their window opens, and every operand must
        // have been produced (interface latencies included). This is a
        // relaxation of the real scheduling problem, so anything
        // flagged here is guaranteed infeasible for the scheduler too.
        std::map<const Value *, int> ready; // earliest availability
        forEachOp(graph->graph, [&](const Operation &op) {
            int start = 0;
            for (const Value *v : op.operands()) {
                auto it = ready.find(v);
                if (it != ready.end())
                    start = std::max(start, it->second);
            }

            auto iface = scaiev::subInterfaceFor(op.kind());
            unsigned latency = 0;
            if (iface) {
                auto timing_it = sheet.timings.find(*iface);
                if (timing_it == sheet.timings.end()) {
                    // LN4301: the datasheet does not offer this
                    // sub-interface at all.
                    diags.warning(
                        op.loc(), "LN4301",
                        std::string("sub-interface ") +
                            scaiev::subInterfaceName(*iface) +
                            " used by '" + graph->name +
                            "' is not offered by core '" +
                            sheet.coreName + "'");
                } else {
                    const auto &timing = timing_it->second;
                    start = std::max(start, timing.earliest);
                    latency = timing.latency;
                    // LN4302: the op depends on values that are only
                    // ready after the interface's window has closed.
                    // Decoupled/spawned ops and late-capable writes
                    // (WrRD, memory) escape the native window.
                    bool windowed =
                        !scaiev::supportsLateVariants(*iface) &&
                        !op.hasAttr("spawn");
                    if (windowed && start > timing.latest) {
                        std::ostringstream os;
                        os << op.name() << " in '" << graph->name
                           << "' cannot start before stage " << start
                           << ", but core '" << sheet.coreName
                           << "' only offers "
                           << scaiev::subInterfaceName(*iface)
                           << " in stages " << timing.earliest << ".."
                           << timing.latest;
                        diags.warning(op.loc(), "LN4302", os.str());
                    }
                }
            }
            for (unsigned r = 0; r < op.numResults(); ++r)
                ready[op.result(r)] = start + int(latency);
        });
    }

    // LN4303: two always-blocks driving the same write port would
    // contend every cycle — there is no instruction arbitration to
    // separate them.
    std::map<std::string, std::vector<std::string>> always_writers;
    for (const auto &graph : mod.graphs) {
        if (!graph->isAlways)
            continue;
        std::set<std::string> targets;
        forEachOp(graph->graph, [&](const Operation &op) {
            auto iface = scaiev::subInterfaceFor(op.kind());
            if (!iface || !scaiev::isWriteInterface(*iface))
                return;
            if (op.kind() == OpKind::LilWriteCustRegData ||
                op.kind() == OpKind::LilWriteCustRegAddr)
                targets.insert("custom register '" +
                               op.strAttr("reg") + "'");
            else
                targets.insert(
                    std::string(scaiev::subInterfaceName(*iface)));
        });
        for (const auto &target : targets)
            always_writers[target].push_back(graph->name);
    }
    for (const auto &[target, writers] : always_writers) {
        if (writers.size() < 2)
            continue;
        std::string names;
        for (const auto &w : writers)
            names += (names.empty() ? "'" : ", '") + w + "'";
        diags.warning({}, "LN4303",
                      "write-port arbitration conflict: always-blocks " +
                          names + " all drive " + target +
                          " every cycle");
    }
}

} // namespace

// --------------------------------------------------------------------
// Entry points
// --------------------------------------------------------------------

namespace {

bool
verifyUnit(const Graph &graph, const std::string &what,
           DiagnosticEngine &diags)
{
    VerifyOptions options;
    options.requireTerminator = true;
    auto issues = verifyGraph(graph, options);
    reportIssues(issues, what, diags);
    return issues.empty();
}

} // namespace

bool
verifyHirModule(const hir::HirModule &mod, DiagnosticEngine &diags)
{
    bool ok = true;
    for (const auto &instr : mod.instructions)
        ok &= verifyUnit(instr->body, "HIR of '" + instr->name + "'",
                         diags);
    for (const auto &blk : mod.alwaysBlocks)
        ok &= verifyUnit(blk->body, "HIR of '" + blk->name + "'", diags);
    return ok;
}

bool
verifyLilModule(const lil::LilModule &mod, DiagnosticEngine &diags)
{
    bool ok = true;
    for (const auto &graph : mod.graphs)
        ok &= verifyUnit(graph->graph, "LIL of '" + graph->name + "'",
                         diags);
    return ok;
}

void
checkHirModule(const hir::HirModule &mod, DiagnosticEngine &diags)
{
    for (const auto &instr : mod.instructions)
        checkHirGraph(instr->body, instr->name, diags);
    for (const auto &blk : mod.alwaysBlocks)
        checkHirGraph(blk->body, blk->name, diags);
}

void
checkLilModule(const lil::LilModule &mod, const scaiev::Datasheet &sheet,
               DiagnosticEngine &diags)
{
    std::set<std::string> written;
    for (const auto &graph : mod.graphs)
        for (const auto &reg : graph->customRegsWritten)
            written.insert(reg);

    for (const auto &graph : mod.graphs)
        checkLilGraph(*graph, written, diags);

    checkEffects(mod, diags);

    if (mod.isa)
        checkEncodings(*mod.isa, diags);
    checkDatasheet(mod, sheet, diags);
}

// --------------------------------------------------------------------
// LN-code registry
// --------------------------------------------------------------------

const LnCodeInfo *
findLnCode(const std::string &code)
{
    for (const LnCodeInfo &info : lnCodeRegistry)
        if (code == info.code)
            return &info;
    return nullptr;
}

std::string
renderLnCodeTable()
{
    std::ostringstream os;
    os << "| code | severity | phase | finding |\n";
    os << "|------|----------|-------|---------|\n";
    for (const LnCodeInfo &info : lnCodeRegistry)
        os << "| " << info.code << " | " << info.severity << " | "
           << info.phase << " | " << info.summary << " |\n";
    return os.str();
}

} // namespace analysis
} // namespace longnail
