/**
 * @file
 * Pure-operation evaluator shared by constant folding, the LIL
 * interpreter (the golden model for generated datapaths), and tests.
 */

#ifndef LONGNAIL_IR_EVAL_HH
#define LONGNAIL_IR_EVAL_HH

#include <optional>
#include <vector>

#include "ir/ir.hh"
#include "support/apint.hh"

namespace longnail {
namespace ir {

/**
 * Evaluate a side-effect-free operation given its operand values.
 *
 * Operand value widths must match the corresponding operand types.
 * @return the result value, or nullopt if the operation is not a pure
 *         computation (interface ops, state accesses, terminators) or
 *         hits undefined behavior (division by zero).
 */
std::optional<ApInt> evaluate(const Operation &op,
                              const std::vector<ApInt> &operands);

/** True if @p kind is evaluatable by evaluate() (pure computation). */
bool isPureComputation(OpKind kind);

/** Apply an ICmp predicate to two equally-typed raw values. */
bool applyICmp(ICmpPred pred, const ApInt &lhs, const ApInt &rhs);

} // namespace ir
} // namespace longnail

#endif // LONGNAIL_IR_EVAL_HH
