/**
 * @file
 * Lightweight SSA IR infrastructure standing in for MLIR/CIRCT in the
 * Longnail flow (Sec. 4.1 of the paper).
 *
 * Longnail's behaviors are straight-line after if-conversion, loop
 * unrolling and inlining, so the IR is a *graph*: an ordered list of
 * operations producing SSA values. Operation kinds are grouped into
 * dialect-style namespaces:
 *
 *  - "coredsl.*"  high-level ops close to the input language (Fig. 5b)
 *  - "hwarith.*"  bitwidth-aware arithmetic on signed/unsigned values
 *  - "lil.*"      SCAIE-V sub-interface operations made explicit
 *                 (Fig. 5c)
 *  - "comb.*"     plain combinational logic of fixed, signless widths
 *
 * A spawn block is an operation carrying a nested graph.
 */

#ifndef LONGNAIL_IR_IR_HH
#define LONGNAIL_IR_IR_HH

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/apint.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace ir {

/** The type of an SSA value: a bit width plus hwarith signedness. */
struct WireType
{
    unsigned width = 0;
    /** Only meaningful at the hwarith level; comb values are signless. */
    bool isSigned = false;

    WireType() = default;
    WireType(unsigned w, bool s = false) : width(w), isSigned(s) {}

    bool operator==(const WireType &rhs) const = default;
    /** "ui32" / "si12" / "i32" rendering (comb values print signless). */
    std::string str() const;
};

/** All operation kinds across the four dialects. */
enum class OpKind
{
    // --- coredsl dialect (high-level, Fig. 5b) ---
    CoredslField,    ///< encoding field value; strAttr=name
    CoredslGet,      ///< read state; strAttr=state; operands: [index]
    CoredslSet,      ///< write state; operands: [index,] value [, pred]
    CoredslGetMem,   ///< read address space; operands: addr [, pred]
    CoredslSetMem,   ///< write; operands: addr, value [, pred]
    CoredslCast,     ///< resize/re-sign to the result type
    CoredslConcat,   ///< lhs(high) :: rhs(low); result unsigned
    CoredslExtract,  ///< static bit range; intAttr("lo")
    CoredslRom,      ///< constant-register lookup; operands: index
    CoredslSpawn,    ///< decoupled block; carries a nested graph
    CoredslEnd,      ///< behavior terminator

    // --- hwarith dialect (bitwidth-aware) ---
    HwConstant, ///< apAttr("value"); result type carries signedness
    HwAdd,
    HwSub,
    HwMul,
    HwDiv,
    HwRem,
    HwShl,      ///< result keeps lhs type
    HwShr,      ///< arithmetic/logical chosen by lhs signedness
    HwAnd,
    HwOr,
    HwXor,
    HwNot,      ///< bitwise complement, same type
    HwICmp,     ///< intAttr("pred") = ICmpPred; signedness from operands
    HwMux,      ///< operands: cond(i1), true, false

    // --- lil dialect (SCAIE-V sub-interfaces, Fig. 5c / Table 1) ---
    LilInstrWord,       ///< i32 instruction word
    LilReadRs1,         ///< i32
    LilReadRs2,         ///< i32
    LilReadPC,          ///< i32
    LilReadMem,         ///< operands: addr [, pred] -> i32
    LilWriteRd,         ///< operands: value [, pred]
    LilWritePC,         ///< operands: value [, pred]
    LilWriteMem,        ///< operands: addr, value [, pred]
    LilReadCustReg,     ///< strAttr=reg; operands: [index] -> iDW
    LilWriteCustRegAddr,///< strAttr=reg; operands: [index]
    LilWriteCustRegData,///< strAttr=reg; operands: value [, pred]
    LilSink,            ///< graph terminator

    // --- comb dialect (signless combinational logic, Fig. 5c/5d) ---
    CombConstant, ///< apAttr("value")
    CombAdd,
    CombSub,
    CombMul,
    CombDivU,
    CombDivS,
    CombModU,
    CombModS,
    CombAnd,
    CombOr,
    CombXor,
    CombShl,
    CombShrU,
    CombShrS,
    CombICmp,     ///< intAttr("pred")
    CombMux,
    CombExtract,  ///< intAttr("lo"); result width selects the count
    CombConcat,   ///< first operand is the high part
    CombReplicate,///< replicate a 1-bit value to the result width
    CombRom,      ///< romAttr("values"); operands: index
};

/** Comparison predicates shared by hwarith.icmp and comb.icmp. */
enum class ICmpPred { Eq, Ne, Ult, Ule, Ugt, Uge, Slt, Sle, Sgt, Sge };

const char *opKindName(OpKind kind);
const char *icmpPredName(ICmpPred pred);

/** True for lil.* operations that touch a SCAIE-V sub-interface. */
bool isInterfaceOp(OpKind kind);
/** True for interface ops that update architectural state. */
bool isStateUpdateOp(OpKind kind);

class Operation;
class Graph;

/** An SSA value: the result of an operation. */
struct Value
{
    Operation *owner = nullptr;
    unsigned resultIndex = 0;
    WireType type;
    /** Printer/debugging id, assigned on creation. */
    unsigned id = 0;
};

/** Attribute payload. */
using Attr = std::variant<int64_t, std::string, ApInt, std::vector<ApInt>>;

class Operation
{
  public:
    Operation(OpKind kind, std::vector<Value *> operands)
        : kind_(kind), operands_(std::move(operands))
    {}

    OpKind kind() const { return kind_; }
    const char *name() const { return opKindName(kind_); }

    const std::vector<Value *> &operands() const { return operands_; }
    Value *operand(unsigned i) const { return operands_.at(i); }
    unsigned numOperands() const { return operands_.size(); }
    void setOperand(unsigned i, Value *v) { operands_.at(i) = v; }
    void
    replaceUsesOf(Value *from, Value *to)
    {
        for (auto &op : operands_)
            if (op == from)
                op = to;
    }

    unsigned numResults() const { return results_.size(); }
    Value *result(unsigned i = 0) const { return results_.at(i).get(); }

    // Attributes.
    bool hasAttr(const std::string &key) const { return attrs_.count(key); }
    void setAttr(const std::string &key, Attr value);
    int64_t intAttr(const std::string &key) const;
    const std::string &strAttr(const std::string &key) const;
    const ApInt &apAttr(const std::string &key) const;
    const std::vector<ApInt> &romAttr(const std::string &key) const;
    const std::map<std::string, Attr> &attrs() const { return attrs_; }

    /** Nested graph (only for coredsl.spawn). */
    Graph *subgraph() const { return subgraph_.get(); }

    /**
     * CoreDSL source position of the construct this operation was
     * lowered from; invalid when synthesized without one. Lowerers
     * stamp it via Graph::setDefaultLoc so analyses can point findings
     * back at the input.
     */
    SourceLoc loc() const { return loc_; }
    void setLoc(SourceLoc loc) { loc_ = loc; }

    /**
     * Rewrite this operation in place into a constant producing
     * @p value; result Value pointers stay valid, so users are
     * unaffected. @p comb_level selects comb.constant vs.
     * hwarith.constant.
     */
    void morphToConstant(const ApInt &value, bool comb_level);

    /**
     * Rewrite this operation in place to @p kind over @p operands,
     * keeping its results (Value pointers stay valid, so users are
     * unaffected). Attributes and any subgraph are dropped; the caller
     * re-sets whatever the new kind requires. The optimization passes
     * use this to swap an op's implementation without re-linking users.
     */
    void morph(OpKind kind, std::vector<Value *> operands);

  private:
    friend class Graph;

    OpKind kind_;
    std::vector<Value *> operands_;
    std::vector<std::unique_ptr<Value>> results_;
    std::map<std::string, Attr> attrs_;
    std::unique_ptr<Graph> subgraph_;
    SourceLoc loc_;
};

/**
 * An ordered, owning list of operations. Operands must be results of
 * operations that appear earlier in this graph or an enclosing graph
 * (def-before-use).
 */
class Graph
{
  public:
    Graph() = default;
    Graph(const Graph &) = delete;
    Graph &operator=(const Graph &) = delete;

    /** Append a new operation with @p result_types results. */
    Operation *append(OpKind kind, std::vector<Value *> operands,
                      std::vector<WireType> result_types);

    /** Append a spawn-style op owning a fresh nested graph. */
    Operation *appendWithSubgraph(OpKind kind);

    /**
     * Insert a new operation immediately before @p anchor, which must
     * be a top-level operation of this graph. Operations are
     * heap-allocated, so existing Value* / Operation* pointers stay
     * valid across the deque insertion. The new op inherits @p anchor's
     * source location (it computes on behalf of the anchored op).
     */
    Operation *insertBefore(const Operation *anchor, OpKind kind,
                            std::vector<Value *> operands,
                            std::vector<WireType> result_types);

    /**
     * Source location stamped onto subsequently appended operations.
     * Lowerers update it as they walk the AST (or the source IR) so
     * every new op inherits the position of the construct being
     * lowered.
     */
    void setDefaultLoc(SourceLoc loc) { defaultLoc_ = loc; }
    SourceLoc defaultLoc() const { return defaultLoc_; }

    const std::deque<std::unique_ptr<Operation>> &ops() const
    {
        return ops_;
    }
    size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /** Remove operations not satisfying @p keep (no use checking). */
    template <typename Pred>
    void
    removeIf(Pred keep_removing)
    {
        std::erase_if(ops_, [&](const std::unique_ptr<Operation> &op) {
            return keep_removing(*op);
        });
    }

    /**
     * Verify def-before-use and per-op structural invariants.
     * @return an empty string when valid, else a description.
     */
    std::string verify() const;

    /** Multi-line textual form, similar to Fig. 5c of the paper. */
    std::string print() const;

  private:
    void printInto(std::string &out, int indent) const;
    std::string verifyInner(const Graph *outer) const;

    std::deque<std::unique_ptr<Operation>> ops_;
    SourceLoc defaultLoc_;
    // Per-graph so concurrent compiles never share mutable state; ids are
    // debugging labels only (print/verify/panic messages), never artifacts.
    unsigned nextValueId_ = 0;
};

} // namespace ir
} // namespace longnail

#endif // LONGNAIL_IR_IR_HH
