#include "ir/ir.hh"

#include <set>
#include <sstream>

#include "support/logging.hh"

namespace longnail {
namespace ir {

std::string
WireType::str() const
{
    return (isSigned ? "si" : "ui") + std::to_string(width);
}

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::CoredslField: return "coredsl.field";
      case OpKind::CoredslGet: return "coredsl.get";
      case OpKind::CoredslSet: return "coredsl.set";
      case OpKind::CoredslGetMem: return "coredsl.get_mem";
      case OpKind::CoredslSetMem: return "coredsl.set_mem";
      case OpKind::CoredslCast: return "coredsl.cast";
      case OpKind::CoredslConcat: return "coredsl.concat";
      case OpKind::CoredslExtract: return "coredsl.extract";
      case OpKind::CoredslRom: return "coredsl.rom";
      case OpKind::CoredslSpawn: return "coredsl.spawn";
      case OpKind::CoredslEnd: return "coredsl.end";
      case OpKind::HwConstant: return "hwarith.constant";
      case OpKind::HwAdd: return "hwarith.add";
      case OpKind::HwSub: return "hwarith.sub";
      case OpKind::HwMul: return "hwarith.mul";
      case OpKind::HwDiv: return "hwarith.div";
      case OpKind::HwRem: return "hwarith.rem";
      case OpKind::HwShl: return "hwarith.shl";
      case OpKind::HwShr: return "hwarith.shr";
      case OpKind::HwAnd: return "hwarith.and";
      case OpKind::HwOr: return "hwarith.or";
      case OpKind::HwXor: return "hwarith.xor";
      case OpKind::HwNot: return "hwarith.not";
      case OpKind::HwICmp: return "hwarith.icmp";
      case OpKind::HwMux: return "hwarith.mux";
      case OpKind::LilInstrWord: return "lil.instr_word";
      case OpKind::LilReadRs1: return "lil.read_rs1";
      case OpKind::LilReadRs2: return "lil.read_rs2";
      case OpKind::LilReadPC: return "lil.read_pc";
      case OpKind::LilReadMem: return "lil.read_mem";
      case OpKind::LilWriteRd: return "lil.write_rd";
      case OpKind::LilWritePC: return "lil.write_pc";
      case OpKind::LilWriteMem: return "lil.write_mem";
      case OpKind::LilReadCustReg: return "lil.read_custreg";
      case OpKind::LilWriteCustRegAddr: return "lil.write_custreg_addr";
      case OpKind::LilWriteCustRegData: return "lil.write_custreg_data";
      case OpKind::LilSink: return "lil.sink";
      case OpKind::CombConstant: return "comb.constant";
      case OpKind::CombAdd: return "comb.add";
      case OpKind::CombSub: return "comb.sub";
      case OpKind::CombMul: return "comb.mul";
      case OpKind::CombDivU: return "comb.divu";
      case OpKind::CombDivS: return "comb.divs";
      case OpKind::CombModU: return "comb.modu";
      case OpKind::CombModS: return "comb.mods";
      case OpKind::CombAnd: return "comb.and";
      case OpKind::CombOr: return "comb.or";
      case OpKind::CombXor: return "comb.xor";
      case OpKind::CombShl: return "comb.shl";
      case OpKind::CombShrU: return "comb.shru";
      case OpKind::CombShrS: return "comb.shrs";
      case OpKind::CombICmp: return "comb.icmp";
      case OpKind::CombMux: return "comb.mux";
      case OpKind::CombExtract: return "comb.extract";
      case OpKind::CombConcat: return "comb.concat";
      case OpKind::CombReplicate: return "comb.replicate";
      case OpKind::CombRom: return "comb.rom";
    }
    return "<invalid>";
}

const char *
icmpPredName(ICmpPred pred)
{
    switch (pred) {
      case ICmpPred::Eq: return "eq";
      case ICmpPred::Ne: return "ne";
      case ICmpPred::Ult: return "ult";
      case ICmpPred::Ule: return "ule";
      case ICmpPred::Ugt: return "ugt";
      case ICmpPred::Uge: return "uge";
      case ICmpPred::Slt: return "slt";
      case ICmpPred::Sle: return "sle";
      case ICmpPred::Sgt: return "sgt";
      case ICmpPred::Sge: return "sge";
    }
    return "?";
}

bool
isInterfaceOp(OpKind kind)
{
    switch (kind) {
      case OpKind::LilInstrWord:
      case OpKind::LilReadRs1:
      case OpKind::LilReadRs2:
      case OpKind::LilReadPC:
      case OpKind::LilReadMem:
      case OpKind::LilWriteRd:
      case OpKind::LilWritePC:
      case OpKind::LilWriteMem:
      case OpKind::LilReadCustReg:
      case OpKind::LilWriteCustRegAddr:
      case OpKind::LilWriteCustRegData:
        return true;
      default:
        return false;
    }
}

bool
isStateUpdateOp(OpKind kind)
{
    switch (kind) {
      case OpKind::LilWriteRd:
      case OpKind::LilWritePC:
      case OpKind::LilWriteMem:
      case OpKind::LilWriteCustRegAddr:
      case OpKind::LilWriteCustRegData:
        return true;
      default:
        return false;
    }
}

void
Operation::setAttr(const std::string &key, Attr value)
{
    attrs_[key] = std::move(value);
}

int64_t
Operation::intAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    if (it == attrs_.end() || !std::holds_alternative<int64_t>(it->second))
        LN_PANIC("missing int attribute '", key, "' on ", name());
    return std::get<int64_t>(it->second);
}

const std::string &
Operation::strAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    if (it == attrs_.end() ||
        !std::holds_alternative<std::string>(it->second))
        LN_PANIC("missing string attribute '", key, "' on ", name());
    return std::get<std::string>(it->second);
}

const ApInt &
Operation::apAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    if (it == attrs_.end() || !std::holds_alternative<ApInt>(it->second))
        LN_PANIC("missing ApInt attribute '", key, "' on ", name());
    return std::get<ApInt>(it->second);
}

const std::vector<ApInt> &
Operation::romAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    if (it == attrs_.end() ||
        !std::holds_alternative<std::vector<ApInt>>(it->second))
        LN_PANIC("missing ROM attribute '", key, "' on ", name());
    return std::get<std::vector<ApInt>>(it->second);
}

void
Operation::morphToConstant(const ApInt &value, bool comb_level)
{
    if (numResults() != 1)
        LN_PANIC("morphToConstant requires exactly one result");
    kind_ = comb_level ? OpKind::CombConstant : OpKind::HwConstant;
    operands_.clear();
    attrs_.clear();
    subgraph_.reset();
    setAttr("value", value.zextOrTrunc(result()->type.width));
}

void
Operation::morph(OpKind kind, std::vector<Value *> operands)
{
    kind_ = kind;
    operands_ = std::move(operands);
    attrs_.clear();
    subgraph_.reset();
}

Operation *
Graph::append(OpKind kind, std::vector<Value *> operands,
              std::vector<WireType> result_types)
{
    auto op = std::make_unique<Operation>(kind, std::move(operands));
    for (unsigned i = 0; i < result_types.size(); ++i) {
        auto v = std::make_unique<Value>();
        v->owner = op.get();
        v->resultIndex = i;
        v->type = result_types[i];
        v->id = nextValueId_++;
        op->results_.push_back(std::move(v));
    }
    op->loc_ = defaultLoc_;
    ops_.push_back(std::move(op));
    return ops_.back().get();
}

Operation *
Graph::appendWithSubgraph(OpKind kind)
{
    Operation *op = append(kind, {}, {});
    op->subgraph_ = std::make_unique<Graph>();
    return op;
}

Operation *
Graph::insertBefore(const Operation *anchor, OpKind kind,
                    std::vector<Value *> operands,
                    std::vector<WireType> result_types)
{
    auto it = ops_.begin();
    for (; it != ops_.end(); ++it)
        if (it->get() == anchor)
            break;
    if (it == ops_.end())
        LN_PANIC("insertBefore: anchor op is not in this graph");

    auto op = std::make_unique<Operation>(kind, std::move(operands));
    for (unsigned i = 0; i < result_types.size(); ++i) {
        auto v = std::make_unique<Value>();
        v->owner = op.get();
        v->resultIndex = i;
        v->type = result_types[i];
        v->id = nextValueId_++;
        op->results_.push_back(std::move(v));
    }
    op->loc_ = anchor->loc();
    return ops_.insert(it, std::move(op))->get();
}

namespace {

std::string
attrToString(const Attr &attr)
{
    if (std::holds_alternative<int64_t>(attr))
        return std::to_string(std::get<int64_t>(attr));
    if (std::holds_alternative<std::string>(attr))
        return "\"" + std::get<std::string>(attr) + "\"";
    if (std::holds_alternative<ApInt>(attr))
        return std::get<ApInt>(attr).toStringUnsigned();
    const auto &values = std::get<std::vector<ApInt>>(attr);
    std::string out = "[";
    size_t shown = std::min<size_t>(values.size(), 8);
    for (size_t i = 0; i < shown; ++i) {
        if (i)
            out += ", ";
        out += values[i].toStringUnsigned();
    }
    if (values.size() > shown)
        out += ", ...(" + std::to_string(values.size()) + " entries)";
    return out + "]";
}

} // namespace

void
Graph::printInto(std::string &out, int indent) const
{
    std::string pad(indent, ' ');
    for (const auto &op : ops_) {
        out += pad;
        if (op->numResults() > 0) {
            for (unsigned i = 0; i < op->numResults(); ++i) {
                if (i)
                    out += ", ";
                out += "%" + std::to_string(op->result(i)->id);
            }
            out += " = ";
        }
        out += op->name();
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            out += i ? ", " : " ";
            out += "%" + std::to_string(op->operand(i)->id);
        }
        bool first_attr = true;
        for (const auto &[key, attr] : op->attrs()) {
            out += first_attr ? " {" : ", ";
            first_attr = false;
            out += key + " = " + attrToString(attr);
        }
        if (!first_attr)
            out += "}";
        if (op->numResults() > 0) {
            out += " : ";
            for (unsigned i = 0; i < op->numResults(); ++i) {
                if (i)
                    out += ", ";
                out += op->result(i)->type.str();
            }
        }
        out += "\n";
        if (op->subgraph()) {
            out += pad + "{\n";
            op->subgraph()->printInto(out, indent + 2);
            out += pad + "}\n";
        }
    }
}

std::string
Graph::print() const
{
    std::string out;
    printInto(out, 0);
    return out;
}

std::string
Graph::verify() const
{
    return verifyInner(nullptr);
}

std::string
Graph::verifyInner(const Graph *outer) const
{
    // Def-before-use within this graph, allowing defs from the
    // enclosing graph prefix (spawn blocks see earlier outer values).
    std::set<const Value *> defined;
    if (outer) {
        for (const auto &op : outer->ops()) {
            for (unsigned i = 0; i < op->numResults(); ++i)
                defined.insert(op->result(i));
        }
    }

    for (const auto &op : ops_) {
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            const Value *v = op->operand(i);
            if (!v)
                return std::string("null operand on ") + op->name();
            if (!defined.count(v))
                return std::string("operand %") + std::to_string(v->id) +
                       " of " + op->name() + " used before definition";
        }
        for (unsigned i = 0; i < op->numResults(); ++i) {
            const Value *v = op->result(i);
            if (v->type.width == 0)
                return std::string("zero-width result on ") + op->name();
            defined.insert(v);
        }
        if (op->subgraph()) {
            std::string err = op->subgraph()->verifyInner(this);
            if (!err.empty())
                return err;
        }
    }
    return "";
}

} // namespace ir
} // namespace longnail
