#include "ir/eval.hh"

#include <algorithm>

#include "support/logging.hh"

namespace longnail {
namespace ir {

bool
isPureComputation(OpKind kind)
{
    switch (kind) {
      case OpKind::HwConstant:
      case OpKind::HwAdd:
      case OpKind::HwSub:
      case OpKind::HwMul:
      case OpKind::HwDiv:
      case OpKind::HwRem:
      case OpKind::HwShl:
      case OpKind::HwShr:
      case OpKind::HwAnd:
      case OpKind::HwOr:
      case OpKind::HwXor:
      case OpKind::HwNot:
      case OpKind::HwICmp:
      case OpKind::HwMux:
      case OpKind::CoredslCast:
      case OpKind::CoredslConcat:
      case OpKind::CoredslExtract:
      case OpKind::CoredslRom:
      case OpKind::CombConstant:
      case OpKind::CombAdd:
      case OpKind::CombSub:
      case OpKind::CombMul:
      case OpKind::CombDivU:
      case OpKind::CombDivS:
      case OpKind::CombModU:
      case OpKind::CombModS:
      case OpKind::CombAnd:
      case OpKind::CombOr:
      case OpKind::CombXor:
      case OpKind::CombShl:
      case OpKind::CombShrU:
      case OpKind::CombShrS:
      case OpKind::CombICmp:
      case OpKind::CombMux:
      case OpKind::CombExtract:
      case OpKind::CombConcat:
      case OpKind::CombReplicate:
      case OpKind::CombRom:
        return true;
      default:
        return false;
    }
}

bool
applyICmp(ICmpPred pred, const ApInt &lhs, const ApInt &rhs)
{
    switch (pred) {
      case ICmpPred::Eq: return lhs == rhs;
      case ICmpPred::Ne: return lhs != rhs;
      case ICmpPred::Ult: return lhs.ult(rhs);
      case ICmpPred::Ule: return lhs.ule(rhs);
      case ICmpPred::Ugt: return lhs.ugt(rhs);
      case ICmpPred::Uge: return lhs.uge(rhs);
      case ICmpPred::Slt: return lhs.slt(rhs);
      case ICmpPred::Sle: return lhs.sle(rhs);
      case ICmpPred::Sgt: return lhs.sgt(rhs);
      case ICmpPred::Sge: return lhs.sge(rhs);
    }
    LN_PANIC("invalid icmp predicate");
}

namespace {

/** Extend @p v (typed @p type) to @p width following its signedness. */
ApInt
extendTo(const ApInt &v, WireType type, unsigned width)
{
    return type.isSigned ? v.sextOrTrunc(width) : v.zextOrTrunc(width);
}

/** Fit a result computed at working width back to the result width. */
ApInt
fitResult(const ApInt &v, unsigned width)
{
    return v.zextOrTrunc(width);
}

} // namespace

std::optional<ApInt>
evaluate(const Operation &op, const std::vector<ApInt> &operands)
{
    if (!isPureComputation(op.kind()))
        return std::nullopt;
    if (operands.size() != op.numOperands())
        LN_PANIC("operand count mismatch evaluating ", op.name());

    const unsigned rw =
        op.numResults() ? op.result()->type.width : 0;
    auto otype = [&](unsigned i) { return op.operand(i)->type; };

    switch (op.kind()) {
      case OpKind::HwConstant:
      case OpKind::CombConstant:
        return op.apAttr("value");

      case OpKind::HwAdd:
      case OpKind::HwSub:
      case OpKind::HwMul:
      case OpKind::HwDiv:
      case OpKind::HwRem: {
        // Work at a width that can hold any intermediate value.
        unsigned cw = std::max({rw, otype(0).width + 1,
                                otype(1).width + 1});
        if (op.kind() == OpKind::HwMul)
            cw = std::max(cw, otype(0).width + otype(1).width);
        ApInt a = extendTo(operands[0], otype(0), cw);
        ApInt b = extendTo(operands[1], otype(1), cw);
        bool any_signed = otype(0).isSigned || otype(1).isSigned;
        switch (op.kind()) {
          case OpKind::HwAdd: return fitResult(a + b, rw);
          case OpKind::HwSub: return fitResult(a - b, rw);
          case OpKind::HwMul: return fitResult(a * b, rw);
          case OpKind::HwDiv:
            if (b.isZero())
                return std::nullopt;
            return fitResult(any_signed ? a.sdiv(b) : a.udiv(b), rw);
          case OpKind::HwRem:
            if (b.isZero())
                return std::nullopt;
            return fitResult(any_signed ? a.srem(b) : a.urem(b), rw);
          default: break;
        }
        LN_PANIC("unreachable");
      }

      case OpKind::HwShl:
      case OpKind::HwShr: {
        ApInt v = operands[0];
        uint64_t raw_amount = operands[1].activeBits() > 32
                                  ? v.width()
                                  : operands[1].toUint64();
        unsigned amount = unsigned(
            std::min<uint64_t>(raw_amount, v.width()));
        if (op.kind() == OpKind::HwShl)
            return fitResult(v.shl(amount), rw);
        return fitResult(otype(0).isSigned ? v.ashr(amount)
                                           : v.lshr(amount), rw);
      }

      case OpKind::HwAnd:
      case OpKind::HwOr:
      case OpKind::HwXor: {
        ApInt a = extendTo(operands[0], otype(0), rw);
        ApInt b = extendTo(operands[1], otype(1), rw);
        if (op.kind() == OpKind::HwAnd)
            return a & b;
        if (op.kind() == OpKind::HwOr)
            return a | b;
        return a ^ b;
      }

      case OpKind::HwNot:
        return ~operands[0];

      case OpKind::HwICmp: {
        unsigned cw = std::max(otype(0).width, otype(1).width) + 1;
        ApInt a = extendTo(operands[0], otype(0), cw);
        ApInt b = extendTo(operands[1], otype(1), cw);
        auto pred = static_cast<ICmpPred>(op.intAttr("pred"));
        return ApInt(1, applyICmp(pred, a, b));
      }

      case OpKind::HwMux:
      case OpKind::CombMux:
        return operands[0].isZero() ? operands[2] : operands[1];

      case OpKind::CoredslCast:
        return extendTo(operands[0], otype(0), rw);

      case OpKind::CoredslConcat:
      case OpKind::CombConcat:
        return operands[0].concat(operands[1]);

      case OpKind::CoredslExtract:
      case OpKind::CombExtract:
        return operands[0].extract(unsigned(op.intAttr("lo")), rw);

      case OpKind::CoredslRom:
      case OpKind::CombRom: {
        const auto &values = op.romAttr("values");
        uint64_t index = op.numOperands()
                             ? (operands[0].activeBits() > 63
                                    ? values.size()
                                    : operands[0].toUint64())
                             : 0;
        if (index >= values.size())
            return ApInt(rw, 0);
        return values[index].zextOrTrunc(rw);
      }

      case OpKind::CombAdd:
        return operands[0] + operands[1];
      case OpKind::CombSub:
        return operands[0] - operands[1];
      case OpKind::CombMul:
        return operands[0] * operands[1];
      case OpKind::CombDivU:
        if (operands[1].isZero())
            return std::nullopt;
        return operands[0].udiv(operands[1]);
      case OpKind::CombDivS:
        if (operands[1].isZero())
            return std::nullopt;
        return operands[0].sdiv(operands[1]);
      case OpKind::CombModU:
        if (operands[1].isZero())
            return std::nullopt;
        return operands[0].urem(operands[1]);
      case OpKind::CombModS:
        if (operands[1].isZero())
            return std::nullopt;
        return operands[0].srem(operands[1]);
      case OpKind::CombAnd:
        return operands[0] & operands[1];
      case OpKind::CombOr:
        return operands[0] | operands[1];
      case OpKind::CombXor:
        return operands[0] ^ operands[1];
      case OpKind::CombShl:
      case OpKind::CombShrU:
      case OpKind::CombShrS: {
        uint64_t raw_amount = operands[1].activeBits() > 32
                                  ? operands[0].width()
                                  : operands[1].toUint64();
        unsigned amount = unsigned(std::min<uint64_t>(
            raw_amount, operands[0].width()));
        if (op.kind() == OpKind::CombShl)
            return operands[0].shl(amount);
        if (op.kind() == OpKind::CombShrU)
            return operands[0].lshr(amount);
        return operands[0].ashr(amount);
      }
      case OpKind::CombICmp: {
        auto pred = static_cast<ICmpPred>(op.intAttr("pred"));
        return ApInt(1, applyICmp(pred, operands[0], operands[1]));
      }
      case OpKind::CombReplicate: {
        ApInt out(rw, 0);
        if (!operands[0].isZero())
            out = ApInt::allOnes(rw);
        return out;
      }

      default:
        return std::nullopt;
    }
}

} // namespace ir
} // namespace longnail
