#include "driver/isax_catalog.hh"

namespace longnail {
namespace catalog {

namespace {

// Opcode map (all on the RISC-V custom-0/custom-1 opcodes):
//   custom-0 (0001011): dotp (f3=000, f7=0), setup_zol (f3=101)
//   custom-1 (0101011): setup_autoinc (f3=000), lw_autoinc (001),
//                       sw_autoinc (010), ijmp (011), sbox (100),
//                       alzette_x (101), alzette_y (110), sqrt (111)
// The disjoint encodings allow arbitrary ISAX combinations.

const char *dotpSource = R"(
import "RV32I.core_desc"

InstructionSet X_DOTP extends RV32I {
    instructions {
        dotp {
            encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] ::
                      3'd0 :: rd[4:0] :: 7'b0001011;
            behavior: {
                signed<32> res = 0;
                for (int i = 0; i < 32; i += 8) {
                    signed<16> prod = (signed) X[rs1][i+7:i] *
                                      (signed) X[rs2][i+7:i];
                    res += prod;
                }
                X[rd] = (unsigned) res;
            }
        }
    }
}
)";

const char *autoincSource = R"(
import "RV32I.core_desc"

InstructionSet autoinc extends RV32I {
    architectural_state {
        // Tracks the current address across load/store instructions.
        register unsigned<32> ADDR;
    }
    instructions {
        setup_autoinc {
            encoding: 12'd0 :: rs1[4:0] :: 3'b000 :: 5'b00000
                      :: 7'b0101011;
            behavior: {
                ADDR = X[rs1];
            }
        }
        lw_autoinc {
            encoding: 12'd0 :: 5'b00000 :: 3'b001 :: rd[4:0]
                      :: 7'b0101011;
            behavior: {
                unsigned<32> a = ADDR;
                X[rd] = MEM[a+3:a];
                ADDR = (unsigned<32>)(a + 4);
            }
        }
        sw_autoinc {
            encoding: 7'd0 :: rs2[4:0] :: 5'b00000 :: 3'b010
                      :: 5'b00000 :: 7'b0101011;
            behavior: {
                unsigned<32> a = ADDR;
                MEM[a+3:a] = X[rs2];
                ADDR = (unsigned<32>)(a + 4);
            }
        }
    }
}
)";

const char *ijmpSource = R"(
import "RV32I.core_desc"

InstructionSet ijmp extends RV32I {
    instructions {
        ijmp {
            encoding: 12'd0 :: rs1[4:0] :: 3'b011 :: 5'b00000
                      :: 7'b0101011;
            behavior: {
                unsigned<32> a = X[rs1];
                PC = MEM[a+3:a];
            }
        }
    }
}
)";

const char *sboxSource = R"(
import "RV32I.core_desc"

InstructionSet sbox extends RV32I {
    architectural_state {
        register const unsigned<8> SBOX[256] = {
            0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
            0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
            0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
            0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
            0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
            0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
            0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
            0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
            0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
            0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
            0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
            0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
            0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
            0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
            0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
            0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
            0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
            0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
            0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
            0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
            0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
            0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
            0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
            0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
            0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
            0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
            0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
            0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
            0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
            0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
            0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
            0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16
        };
    }
    instructions {
        sbox_lookup {
            encoding: 12'd0 :: rs1[4:0] :: 3'b100 :: rd[4:0]
                      :: 7'b0101011;
            behavior: {
                unsigned<8> idx = X[rs1][7:0];
                X[rd] = SBOX[idx];
            }
        }
    }
}
)";

const char *sparkleSource = R"(
import "RV32I.core_desc"

InstructionSet sparkle extends RV32I {
    architectural_state {
        // SPARKLE round constants (Alzette c inputs).
        register const unsigned<32> RCON[8] = {
            0xB7E15162, 0xBF715880, 0x38B4DA56, 0x324E7738,
            0xBB1185EB, 0x4F7C7B57, 0xCFBFA1C8, 0xC2B3293D
        };
    }
    functions {
        unsigned<32> ror(unsigned<32> x, unsigned<5> n) {
            return (unsigned<32>)((x >> n) | (x << (unsigned<5>)(32 - n)));
        }
        unsigned<32> alzette_x(unsigned<32> xi, unsigned<32> yi,
                               unsigned<32> c) {
            unsigned<32> x = xi;
            unsigned<32> y = yi;
            x += ror(y, 31); y ^= ror(x, 24); x ^= c;
            x += ror(y, 17); y ^= ror(x, 17); x ^= c;
            x += y;          y ^= ror(x, 31); x ^= c;
            x += ror(y, 24); y ^= ror(x, 16); x ^= c;
            return x;
        }
        unsigned<32> alzette_y(unsigned<32> xi, unsigned<32> yi,
                               unsigned<32> c) {
            unsigned<32> x = xi;
            unsigned<32> y = yi;
            x += ror(y, 31); y ^= ror(x, 24); x ^= c;
            x += ror(y, 17); y ^= ror(x, 17); x ^= c;
            x += y;          y ^= ror(x, 31); x ^= c;
            x += ror(y, 24); y ^= ror(x, 16); x ^= c;
            return y;
        }
    }
    instructions {
        alzette_x {
            encoding: 4'd0 :: rc[2:0] :: rs2[4:0] :: rs1[4:0]
                      :: 3'b101 :: rd[4:0] :: 7'b0101011;
            behavior: {
                X[rd] = alzette_x(X[rs1], X[rs2], RCON[rc]);
            }
        }
        alzette_y {
            encoding: 4'd0 :: rc[2:0] :: rs2[4:0] :: rs1[4:0]
                      :: 3'b110 :: rd[4:0] :: 7'b0101011;
            behavior: {
                X[rd] = alzette_y(X[rs1], X[rs2], RCON[rc]);
            }
        }
    }
}
)";

// 32 unrolled iterations of a bit-serial fixed-point square root:
// computes floor(sqrt(X[rs1]) * 2^16), i.e. a Q16.16 result.
const char *sqrtTightlySource = R"(
import "RV32I.core_desc"

InstructionSet sqrt_tightly extends RV32I {
    instructions {
        sqrt {
            encoding: 12'd0 :: rs1[4:0] :: 3'b111 :: rd[4:0]
                      :: 7'b0101011;
            behavior: {
                unsigned<64> v = ((unsigned<64>) X[rs1]) << 32;
                unsigned<64> rem = 0;
                unsigned<64> root = 0;
                for (int i = 0; i < 32; i += 1) {
                    root = (unsigned<64>)(root << 1);
                    rem = (rem << 2) | (v >> 62);
                    v = (unsigned<64>)(v << 2);
                    if (rem >= root + 1) {
                        rem -= root + 1;
                        root += 2;
                    }
                }
                X[rd] = (unsigned<32>) (root >> 1);
            }
        }
    }
}
)";

const char *sqrtDecoupledSource = R"(
import "RV32I.core_desc"

InstructionSet sqrt_decoupled extends RV32I {
    instructions {
        sqrt {
            encoding: 12'd0 :: rs1[4:0] :: 3'b111 :: rd[4:0]
                      :: 7'b0101011;
            behavior: {
                // The operand is retrieved in-order with the fetched
                // instruction; the long-running computation executes
                // decoupled from the base pipeline.
                unsigned<32> arg = X[rs1];
                spawn {
                    unsigned<64> v = ((unsigned<64>) arg) << 32;
                    unsigned<64> rem = 0;
                    unsigned<64> root = 0;
                    for (int i = 0; i < 32; i += 1) {
                        root = (unsigned<64>)(root << 1);
                        rem = (rem << 2) | (v >> 62);
                        v = (unsigned<64>)(v << 2);
                        if (rem >= root + 1) {
                            rem -= root + 1;
                            root += 2;
                        }
                    }
                    X[rd] = (unsigned<32>) (root >> 1);
                }
            }
        }
    }
}
)";

const char *zolSource = R"(
import "RV32I.core_desc"

InstructionSet zol extends RV32I {
    architectural_state {
        register unsigned<32> START_PC;
        register unsigned<32> END_PC;
        register unsigned<32> COUNT;
    }
    instructions {
        setup_zol {
            encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b101
                      :: 5'b00000 :: 7'b0001011;
            behavior:
            {
                START_PC = (unsigned<32>) (PC + 4);
                END_PC = (unsigned<32>) (PC + (uimmS :: 1'b0));
                COUNT = uimmL;
            }
        }
    }
    always {
        zol {
            // Program counter (`PC`) defined in RV32I.
            if (COUNT != 0 && END_PC == PC) {
                PC = START_PC;
                --COUNT;
            }
        }
    }
}
)";

// Extension beyond the paper's Table 3: a bit-manipulation unit whose
// operation is selected by an immediate via a switch statement, using
// helper functions with for-loops over single bits. Exercises the
// while/switch language extensions end-to-end.
const char *bitmanipSource = R"(
import "RV32I.core_desc"

InstructionSet bitmanip extends RV32I {
    functions {
        unsigned<6> clz32(unsigned<32> x) {
            unsigned<6> n = 32;
            for (int i = 0; i < 32; i += 1) {
                if (x[i] == 1) {
                    n = (unsigned<6>)(31 - i);
                }
            }
            return n;
        }
        unsigned<6> popcount32(unsigned<32> x) {
            unsigned<6> n = 0;
            for (int i = 0; i < 32; i += 1) {
                n += x[i];
            }
            return n;
        }
    }
    instructions {
        bitop {
            encoding: 5'd0 :: op[1:0] :: rs2[4:0] :: rs1[4:0]
                      :: 3'b111 :: rd[4:0] :: 7'b1011011;
            behavior: {
                unsigned<32> x = X[rs1];
                unsigned<32> out = 0;
                switch (op) {
                    case 0:
                        out = clz32(x);
                        break;
                    case 1:
                        out = popcount32(x);
                        break;
                    case 2:
                        out = x[7:0] :: x[15:8] :: x[23:16] :: x[31:24];
                        break;
                    default:
                        out = ~x;
                        break;
                }
                X[rd] = out;
            }
        }
    }
}
)";

// Extension: a ring buffer held in a SCAIE-V-managed custom register
// *file* (Sec. 3.1: "Custom register files are accessed with an index
// that is explicitly computed inside an instruction's behavior").
const char *ringbufSource = R"(
import "RV32I.core_desc"

InstructionSet ringbuf extends RV32I {
    architectural_state {
        register unsigned<32> RING[8];
        register unsigned<32> HEAD;
    }
    instructions {
        ring_push {
            encoding: 12'd0 :: rs1[4:0] :: 3'b010 :: 5'b00000
                      :: 7'b1111011;
            behavior: {
                unsigned<3> idx = HEAD[2:0];
                RING[idx] = X[rs1];
                HEAD = (unsigned<32>)(HEAD + 1);
            }
        }
        ring_read {
            encoding: 12'd0 :: rs1[4:0] :: 3'b011 :: rd[4:0]
                      :: 7'b1111011;
            behavior: {
                unsigned<3> idx = X[rs1][2:0];
                X[rd] = RING[idx];
            }
        }
    }
}
)";

/** autoinc + zol combined, as used for the Sec. 5.5 case study. */
const std::string autoincZolSource = []() {
    std::string src = autoincSource;
    // Append the zol set (without its duplicate import) and a core
    // definition providing both.
    std::string zol = zolSource;
    auto pos = zol.find("InstructionSet");
    src += zol.substr(pos);
    src += "\nCore autoinc_zol provides autoinc, zol { }\n";
    return src;
}();

const std::vector<IsaxEntry> entries = {
    {"autoinc", "autoinc", autoincSource,
     "Auto-incrementing load / store instructions and setup, using a "
     "custom register to track the current address"},
    {"dotp", "X_DOTP", dotpSource, "4x8bit dot product (Fig. 1)"},
    {"ijmp", "ijmp", ijmpSource, "Read next PC from memory"},
    {"sbox", "sbox", sboxSource, "Lookup from AES S-Box"},
    {"sparkle", "sparkle", sparkleSource,
     "Lightweight post-quantum cryptography (Alzette ARX-box)"},
    {"sqrt_tightly", "sqrt_tightly", sqrtTightlySource,
     "CORDIC-style fix-point square root (tightly-coupled)"},
    {"sqrt_decoupled", "sqrt_decoupled", sqrtDecoupledSource,
     "CORDIC-style fix-point square root (decoupled, spawn)"},
    {"zol", "zol", zolSource,
     "Zero-overhead loop inspired by PULP extensions"},
    {"autoinc_zol", "autoinc_zol", autoincZolSource,
     "Combination of autoinc and zol (Sec. 5.5 case study)"},
    {"bitmanip", "bitmanip", bitmanipSource,
     "Extension: switch-selected bit-manipulation unit (clz, popcount, "
     "bswap, not)"},
    {"ringbuf", "ringbuf", ringbufSource,
     "Extension: ring buffer in an indexed custom register file"},
};

} // namespace

const std::vector<IsaxEntry> &
allIsaxes()
{
    return entries;
}

const IsaxEntry *
findIsax(const std::string &name)
{
    for (const auto &entry : entries)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

} // namespace catalog
} // namespace longnail
