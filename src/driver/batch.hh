/**
 * @file
 * Parallel batch compilation (docs/batch-compilation.md).
 *
 * compileBatch() compiles independent ISAX x core units across a
 * work-stealing thread pool (support/threadpool.hh), with a
 * content-addressed artifact cache (driver/cache.hh) underneath and
 * shared read-only inputs -- parsed datasheets, the technology
 * characterization -- memoized once per batch instead of once per
 * unit.
 *
 * Determinism guarantee: the result vector is sorted by unit name and
 * each unit's outcome (summary, diagnostics, artifacts) depends only
 * on its own inputs, never on scheduling order. A batch run with any
 * `jobs` value produces byte-identical artifacts and diagnostic
 * streams. Wall-clock metrics are the only nondeterministic output,
 * and they are kept out of CompileSummary by construction.
 */

#ifndef LONGNAIL_DRIVER_BATCH_HH
#define LONGNAIL_DRIVER_BATCH_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/cache.hh"
#include "driver/longnail.hh"

namespace longnail {
namespace driver {

/** One independent compilation unit of a batch. */
struct BatchRequest
{
    /** Unique display/sort key, e.g. "dotp@VexRiscv". */
    std::string unitName;
    std::string source;
    std::string target;
    CompileOptions options;
};

/** Batch-wide knobs. */
struct BatchOptions
{
    /** Worker threads; 0 = one per hardware thread, 1 = inline
     * (no pool). */
    unsigned jobs = 1;
    /** Artifact cache directory; empty disables caching. */
    std::string cacheDir;
    /** LRU eviction limit for the cache; 0 = unlimited. */
    size_t cacheMaxEntries = 0;
    /**
     * Cooperative cancellation (Ctrl-C, server drain): units not yet
     * started are skipped with an LN3011 outcome, in-flight compiles
     * stop at their next phase boundary. Null = never cancelled.
     */
    const CancelToken *cancel = nullptr;
};

/** Outcome of one unit. */
struct BatchUnitOutcome
{
    std::string unitName;
    bool ok = false;
    bool fromCache = false;
    /** Cache bookkeeping for stats (deterministic aggregation). */
    bool cacheCorrupt = false;
    bool cacheInjected = false;
    bool cacheStored = false;
    /** The deterministic compile essence; always populated. Both fresh
     * and replayed units render their output from this alone. */
    CompileSummary summary;
    /** The full compile result; null when replayed from the cache. */
    std::shared_ptr<CompiledIsax> full;
};

struct BatchStats
{
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0; ///< includes corrupt/injected lookups
    uint64_t cacheStores = 0;
    uint64_t cacheCorrupt = 0;
    double wallMs = 0.0;
};

struct BatchResult
{
    /** Sorted by unitName, independent of jobs and execution order. */
    std::vector<BatchUnitOutcome> units;
    BatchStats stats;

    bool allOk() const;
    size_t okCount() const;
};

/**
 * Compile every request, cache-aware and in parallel. Never throws;
 * per-unit failures land in the respective outcome. Safe to call from
 * one thread at a time (the underlying compiles run concurrently).
 *
 * Caveat (docs/failure-model.md): armed failpoints with transient
 * counters keep process-global state, so fault-injection runs should
 * use jobs = 1.
 */
BatchResult compileBatch(std::vector<BatchRequest> requests,
                         const BatchOptions &options = {});

/**
 * The full evaluation matrix: every catalog ISAX crossed with
 * @p cores, named "<isax>@<core>". @p base supplies all options except
 * coreName.
 */
std::vector<BatchRequest>
catalogBatchRequests(const std::vector<std::string> &cores,
                     const CompileOptions &base = {});

/** The four built-in evaluation cores (Table 2 order). */
const std::vector<std::string> &builtinCores();

/**
 * Batch-scoped memoization of shared read-only inputs. Thread-safe;
 * the returned pointers stay valid for the SharedInputs lifetime.
 */
class SharedInputs
{
  public:
    /** Datasheet for @p core (built-in registry); null if unknown. */
    std::shared_ptr<const scaiev::Datasheet>
    datasheetFor(const std::string &core);

    /** One TechLibrary per timing mode, constructed on first use. */
    std::shared_ptr<const sched::TechLibrary>
    techlibFor(sched::TimingMode mode);

  private:
    std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const scaiev::Datasheet>>
        sheets_;
    std::map<int, std::shared_ptr<const sched::TechLibrary>> techs_;
};

} // namespace driver
} // namespace longnail

#endif // LONGNAIL_DRIVER_BATCH_HH
