#include "driver/longnail.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <thread>

#include "analysis/lint.hh"
#include "analysis/tv/tv.hh"
#include "analysis/verifier.hh"
#include "driver/isax_catalog.hh"
#include "hir/transforms.hh"
#include "ir/ir.hh"
#include "obs/flightrec.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "passes/passes.hh"
#include "rtl/sim.hh"
#include "rtl/verilog.hh"
#include "support/failpoint.hh"
#include "support/hash.hh"
#include "support/logging.hh"

namespace longnail {
namespace driver {

using coredsl::ElaboratedIsa;
using coredsl::InstrInfo;
using coredsl::StateInfo;
using scaiev::Datasheet;
using scaiev::SubInterface;

// ---------------------------------------------------------------------------
// PhaseReport
// ---------------------------------------------------------------------------

double
PhaseReport::totalWallMs() const
{
    double total = 0.0;
    for (const Entry &entry : phases)
        total += entry.wallMs;
    return total;
}

const PhaseReport::Entry *
PhaseReport::findPhase(const std::string &name) const
{
    for (const Entry &entry : phases)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

void
PhaseReport::addTime(const std::string &name, double ms)
{
    for (Entry &entry : phases) {
        if (entry.name == name) {
            entry.wallMs += ms;
            return;
        }
    }
    phases.push_back({name, ms});
}

namespace {

/**
 * Times one pipeline phase into a PhaseReport entry and, when obs is
 * enabled, opens a trace span and records the per-phase wall-time
 * histogram plus the peak-RSS gauge for the phase.
 */
class PhaseTimer
{
  public:
    PhaseTimer(PhaseReport &report, std::string name)
        : report_(report), name_(std::move(name)), span_(name_),
          start_(std::chrono::steady_clock::now())
    {}

    ~PhaseTimer()
    {
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
        report_.addTime(name_, ms);
        if (obs::enabled()) {
            obs::observe(("phase." + name_ + ".ms").c_str(), ms);
            obs::gaugeMax(("rss.peak_kb." + name_).c_str(),
                          double(obs::peakRssKb()));
        }
        if (obs::EventLog::instance().active()) {
            char ms_text[32];
            std::snprintf(ms_text, sizeof(ms_text), "%.3f", ms);
            obs::logEvent(obs::LogLevel::Debug, "phase",
                          {{"name", name_}, {"ms", ms_text}});
        }
        obs::flightrec::note("phase", name_);
    }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

    obs::TraceSpan &span() { return span_; }

  private:
    PhaseReport &report_;
    std::string name_;
    obs::TraceSpan span_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Cooperative cancellation checkpoint (docs/compile-server.md): polled
 * after every pipeline phase. When the options carry a stop-requested
 * token, fail the compile with LN3011 naming the boundary and the
 * reason ("deadline exceeded" vs "cancelled") and tell the caller to
 * return. The check is one relaxed atomic load (plus a clock read for
 * deadline tokens) when a token is present, nothing when not.
 */
bool
cancelRequested(const CompileOptions &options, DiagnosticEngine &diags,
                const char *boundary)
{
    if (!options.cancel || !options.cancel->stopRequested())
        return false;
    DiagnosticEngine::ContextScope scope(diags, Phase::Driver,
                                         "LN3011");
    diags.error({}, "LN3011",
                std::string("compile ") + options.cancel->reason() +
                    " at phase boundary '" + boundary + "'");
    obs::count("driver.cancelled_compiles");
    obs::logEvent(obs::LogLevel::Warn, "compile.cancelled",
                  {{"boundary", boundary},
                   {"reason", options.cancel->reason()}});
    obs::flightrec::note("cancel", std::string(options.cancel->reason()) +
                                       " at " + boundary);
    if (options.cancel->deadlineExpired()) {
        obs::count("driver.deadline_misses");
        // A deadline firing mid-pipeline is exactly the moment the
        // flight recorder exists for: capture the lead-up while the
        // rings still hold it.
        obs::flightrec::writePostmortem("deadline");
    }
    return true;
}

/** Dialect prefix of an operation name ("lil.read_rs1" -> "lil"). */
std::string
dialectOf(ir::OpKind kind)
{
    std::string name = ir::opKindName(kind);
    size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

/** Count top-level ops of @p graph into @p total / @p by_dialect and
 * (when obs is enabled) the per-dialect counter family
 * "<counter_prefix>.<dialect>". */
void
countIrOps(const ir::Graph &graph, size_t &total,
           std::map<std::string, size_t> &by_dialect,
           const char *counter_prefix)
{
    bool obs_on = obs::enabled();
    for (const auto &op : graph.ops()) {
        ++total;
        std::string dialect = dialectOf(op->kind());
        if (obs_on)
            obs::count(
                (std::string(counter_prefix) + "." + dialect).c_str());
        ++by_dialect[std::move(dialect)];
    }
}

} // namespace

const CompiledUnit *
CompiledIsax::findUnit(const std::string &unit_name) const
{
    for (const auto &unit : units)
        if (unit.name == unit_name)
            return &unit;
    return nullptr;
}

std::string
CompiledIsax::emitAllVerilog() const
{
    std::string out;
    for (const auto &unit : units) {
        out += unit.systemVerilog;
        out += "\n";
    }
    return out;
}

std::shared_ptr<cores::IsaxBundle>
CompiledIsax::makeBundle() const
{
    auto bundle = std::make_shared<cores::IsaxBundle>();
    bundle->name = name;
    for (const auto &unit : units) {
        if (unit.isAlways) {
            bundle->alwaysBlocks.push_back(unit.module);
            continue;
        }
        const InstrInfo *info = isa->findInstruction(unit.name);
        cores::IsaxInstrUnit instr_unit;
        instr_unit.name = unit.name;
        instr_unit.mask = info->mask;
        instr_unit.match = info->match;
        instr_unit.module = unit.module;
        bundle->instructions.push_back(std::move(instr_unit));
    }
    for (const auto &state : isa->state) {
        if (state.isCoreState || state.isConst ||
            state.kind != StateInfo::Kind::Register)
            continue;
        bundle->customRegs.push_back({state.name,
                                      state.elementType.width,
                                      state.numElements});
    }
    return bundle;
}

namespace {

/** Inverse of sched::scheduleQualityName() for the worst-of compare. */
sched::ScheduleQuality
worstQuality(const std::string &name)
{
    if (name == "fallback-relaxed")
        return sched::ScheduleQuality::FallbackRelaxed;
    if (name == "fallback")
        return sched::ScheduleQuality::Fallback;
    return sched::ScheduleQuality::Optimal;
}

/**
 * The Fig. 9 flow; returns early on the first failing phase, leaving
 * the failure in @p diags. Split out of compile() so every exit path
 * shares the diagnostics rendering there.
 */
void
compileInto(CompiledIsax &result, DiagnosticEngine &diags,
            const std::string &source, const std::string &target,
            const CompileOptions &options)
{
    const Datasheet *sheet = options.datasheet;
    if (!sheet) {
        sheet = Datasheet::findCore(options.coreName);
        if (!sheet) {
            std::string known;
            for (const std::string &core : Datasheet::knownCores())
                known += (known.empty() ? "" : ", ") + core;
            DiagnosticEngine::ContextScope scope(diags, Phase::Scaiev,
                                                 "LN3005");
            diags.error({}, "LN3005",
                        "unknown core '" + options.coreName +
                            "'; available cores: " + known);
            return;
        }
    }

    // A request whose deadline already passed (queued too long behind
    // other work) must not burn a full compile before noticing.
    if (cancelRequested(options, diags, "start"))
        return;

    {
        PhaseTimer timer(result.report, "sema");
        coredsl::SemaOptions sema_options;
        sema_options.baseSetName = options.baseSetName;
        coredsl::Sema sema(diags, coredsl::builtinSourceProvider(),
                           sema_options);
        result.isa = sema.analyze(source, target);
    }
    if (!result.isa)
        return;
    result.name = result.isa->name;
    if (cancelRequested(options, diags, "sema"))
        return;

    {
        PhaseTimer timer(result.report, "astlower");
        result.hirModule = hir::lowerToHir(*result.isa, diags);
    }
    if (!result.hirModule)
        return;
    if (cancelRequested(options, diags, "astlower"))
        return;
    for (const auto &instr : result.hirModule->instructions)
        countIrOps(instr->body, result.report.hirOps,
                   result.report.hirOpsByDialect, "ir.nodes.hir");
    for (const auto &blk : result.hirModule->alwaysBlocks)
        countIrOps(blk->body, result.report.hirOps,
                   result.report.hirOpsByDialect, "ir.nodes.hir");

    // Static-analysis phase, part 1 (docs/static-analysis.md): verify
    // the freshly lowered HIR and run the HIR-level dataflow lints
    // before canonicalization folds their evidence away.
    {
        PhaseTimer timer(result.report, "analysis");
        DiagnosticEngine::ContextScope scope(diags, Phase::Analysis,
                                             "LN4001");
        if (failpoint::fire("analysis") != failpoint::Mode::Off) {
            diags.error({}, "LN4901",
                        "injected fault at failpoint 'analysis'");
            return;
        }
        analysis::verifyHirModule(*result.hirModule, diags);
        analysis::checkHirModule(*result.hirModule, diags);
        if (diags.hasErrors())
            return;
    }

    {
        PhaseTimer timer(result.report, "canonicalize");
        for (auto &instr : result.hirModule->instructions)
            hir::canonicalize(instr->body);
        for (auto &blk : result.hirModule->alwaysBlocks)
            hir::canonicalize(blk->body);
    }

    {
        PhaseTimer timer(result.report, "lil");
        result.lilModule = lil::lowerToLil(*result.hirModule, diags);
    }
    if (!result.lilModule)
        return;
    if (cancelRequested(options, diags, "lil"))
        return;
    for (const auto &graph : result.lilModule->graphs)
        countIrOps(graph->graph, result.report.lilOps,
                   result.report.lilOpsByDialect, "ir.nodes.lil");

    // Static-analysis phase, part 2: verify the LIL, then run the
    // LIL-level dataflow lints and the cross-instruction checks
    // (encoding overlaps, pre-schedule datasheet violations).
    {
        PhaseTimer timer(result.report, "analysis");
        DiagnosticEngine::ContextScope scope(diags, Phase::Analysis,
                                             "LN4001");
        analysis::verifyLilModule(*result.lilModule, diags);
        if (!diags.hasErrors())
            analysis::checkLilModule(*result.lilModule, *sheet, diags);
        if (diags.hasErrors())
            return;
    }
    if (cancelRequested(options, diags, "analysis"))
        return;
    if (options.lintOnly)
        return;

    // Optimization pipeline (docs/pass-pipeline.md): -O1 runs the
    // verified passes over every LIL graph before any scheduling —
    // spawn graphs included when the effect summaries prove isolation
    // (analysis/effects.hh); each application is re-proved under
    // --validate (refutations surface as LN4501 errors and abort the
    // compile).
    if (options.optLevel >= 1) {
        PhaseTimer timer(result.report, "passes");
        DiagnosticEngine::ContextScope scope(diags, Phase::Validate,
                                             "LN4501");
        passes::PipelineOptions popts;
        popts.validate = options.validate;
        passes::PipelineResult pres =
            passes::runPipeline(*result.lilModule, popts, diags);
        result.report.passRewrites = pres.totalRewrites;
        result.report.passProved = pres.proved;
        result.report.passCosimAgreed = pres.cosimAgreed;
        result.report.spawnGraphsOptimized = pres.spawnOptimized;
        result.report.spawnGraphsSkipped = pres.spawnSkipped;
        result.report.spawnRewritesByUnit = pres.spawnGraphRewrites;
        obs::count("passes.rewrites", pres.totalRewrites);
        if (pres.refuted || diags.hasErrors())
            return;
    }
    for (const auto &graph : result.lilModule->graphs) {
        std::map<std::string, size_t> unused;
        countIrOps(graph->graph, result.report.lilOpsOptimized, unused,
                   "ir.nodes.lil_opt");
    }
    if (cancelRequested(options, diags, "passes"))
        return;

    // Analysis-state dump (debug aid; deliberately after the passes so
    // the states describe the module that scheduling will consume).
    if (!options.dumpAnalysisFile.empty()) {
        std::ofstream dump(options.dumpAnalysisFile);
        if (!dump) {
            diags.error({}, "LN3012",
                        "cannot write --dump-analysis file '" +
                            options.dumpAnalysisFile + "'");
            return;
        }
        passes::writeAnalysisDump(*result.lilModule, dump);
    }

    // Schedule and generate hardware per functionality. The technology
    // characterization is shared across a batch when the caller
    // memoized one (CompileOptions::techlib); it is read-only here.
    std::optional<sched::TechLibrary> local_tech;
    if (!options.techlib)
        local_tech.emplace(options.timingMode);
    const sched::TechLibrary &tech =
        options.techlib ? *options.techlib : *local_tech;
    result.config.isaxName = result.name;
    result.config.coreName = options.coreName;

    for (const auto &graph : result.lilModule->graphs) {
        // Per-unit checkpoint: multi-unit ISAXes hit this once per
        // instruction/always-block, bounding overshoot past a deadline
        // to one unit's sched+hwgen work.
        if (cancelRequested(options, diags, "sched"))
            return;
        DiagnosticEngine::ContextScope sched_scope(diags, Phase::Sched,
                                                   "LN2001");
        sched::ScheduleOutcome outcome;
        sched::BuiltProblem built;
        {
            PhaseTimer timer(result.report, "sched");
            timer.span().arg("graph", graph->name);
            if (failpoint::fire("sched") != failpoint::Mode::Off) {
                diags.error({}, "LN2901",
                            "injected fault at failpoint 'sched'");
                return;
            }
            built = sched::buildProblem(*graph, *sheet, tech,
                                        options.cycleTimeNs);
            sched::computeChainBreakers(built.problem);
            outcome = sched::scheduleWithFallback(built.problem,
                                                  options.schedBudget);
        }
        result.report.lpWorkUnits += outcome.lpWorkUnits;
        if (!outcome.ok()) {
            diags.error({}, "LN2002", graph->name + ": " +
                                          outcome.error);
            return;
        }
        if (outcome.quality != sched::ScheduleQuality::Optimal) {
            ++result.report.fallbackEvents;
            diags.warning({}, "LN2001",
                          graph->name +
                              ": optimal scheduler unavailable (" +
                              outcome.fallbackReason + "); using " +
                              sched::scheduleQualityName(
                                  outcome.quality) +
                              " schedule");
        }
        // Record the worst quality across units as the compile's
        // chosen scheduler (satellite of ISSUE 3: the fallback chain
        // outcome must be programmatically observable).
        const char *quality_name =
            sched::scheduleQualityName(outcome.quality);
        if (result.report.chosenScheduler.empty() ||
            int(outcome.quality) >
                int(worstQuality(result.report.chosenScheduler)))
            result.report.chosenScheduler = quality_name;
        sched::sinkZeroDelayOps(built.problem);
        std::string verify_err = built.problem.verify();
        // Chains whose single-operation delay exceeds the cycle time
        // cannot be broken (Sec. 5.4); they reduce fmax in the ASIC
        // analysis but are not compile errors. The relaxed fallback
        // scheduler trades chain breaking for feasibility the same way.
        if (!verify_err.empty() &&
            verify_err.find("cycle time") == std::string::npos &&
            verify_err.find("chaining") == std::string::npos)
            LN_PANIC("invalid schedule for ", graph->name, ": ",
                     verify_err);
        // The scheduling rewrites (chain breaking, zero-delay-op
        // sinking) must leave the LIL graph itself untouched; re-run
        // the IR verifier here under LONGNAIL_VERIFY_IR to close the
        // verifier gap between LIL lowering and hardware generation.
        analysis::verifyAfterTransform(graph->graph, "sched");

        CompiledUnit unit;
        unit.name = graph->name;
        unit.isAlways = graph->isAlways;
        unit.lilGraph = graph.get();
        unit.makespan = built.problem.makespan();
        unit.objective = built.problem.objectiveValue();
        unit.quality = outcome.quality;
        unit.fallbackReason = outcome.fallbackReason;
        unit.lpWorkUnits = outcome.lpWorkUnits;

        DiagnosticEngine::ContextScope hwgen_scope(diags, Phase::HwGen,
                                                   "LN3001");
        {
            PhaseTimer timer(result.report, "hwgen");
            timer.span().arg("graph", graph->name);
            if (failpoint::fire("hwgen") != failpoint::Mode::Off) {
                diags.error({}, "LN3901",
                            "injected fault at failpoint 'hwgen'");
                return;
            }
            unit.module = hwgen::generateModule(*graph, built, *sheet,
                                                *result.isa);
            unit.systemVerilog = rtl::emitVerilog(unit.module.module);
        }

        DiagnosticEngine::ContextScope cfg_scope(diags, Phase::Scaiev,
                                                 "LN3002");
        {
            PhaseTimer timer(result.report, "scaiev-config");
            if (failpoint::fire("scaiev-config") !=
                failpoint::Mode::Off) {
                diags.error({}, "LN3902", "injected fault at "
                                          "failpoint 'scaiev-config'");
                return;
            }
            scaiev::ConfigFunctionality fn;
            fn.name = graph->name;
            fn.isAlways = graph->isAlways;
            fn.mask = graph->maskString;
            fn.schedule = hwgen::scheduleEntries(unit.module);
            result.config.functionality.push_back(std::move(fn));
        }

        // Translation validation (docs/translation-validation.md):
        // independently re-check the schedule against the datasheet
        // rules, lint the generated netlist, and prove it equivalent
        // to the LIL graph it was generated from.
        if (options.validate) {
            DiagnosticEngine::ContextScope tv_scope(
                diags, Phase::Validate, "LN4501");
            PhaseTimer timer(result.report, "validate");
            timer.span().arg("graph", graph->name);
            if (failpoint::fire("validate") != failpoint::Mode::Off) {
                diags.error({}, "LN4902",
                            "injected fault at failpoint 'validate'");
                return;
            }
            analysis::tv::UnitResult tv = analysis::tv::validateUnit(
                *graph, built, unit.module, *sheet, tech,
                outcome.quality, *result.isa, diags);
            ++result.report.tvUnitsChecked;
            if (tv.proved())
                ++result.report.tvProved;
            if (!tv.ok())
                ++result.report.tvRefuted;
            result.report.tvCexCycles += tv.equiv.cexCycles;
            obs::count("tv.units_checked");
            if (tv.proved())
                obs::count("tv.proved");
            if (!tv.ok()) {
                obs::count("tv.refuted");
                obs::logEvent(obs::LogLevel::Error, "tv.refuted",
                              {{"unit", graph->name}});
                obs::flightrec::note("tv-refuted", graph->name);
                obs::flightrec::writePostmortem("tv-refuted");
            }
            obs::count("tv.cex_cycles", tv.equiv.cexCycles);
            if (diags.hasErrors())
                return;
        }

        result.units.push_back(std::move(unit));
    }

    // Custom registers requested from SCAIE-V (Fig. 8, line 1).
    for (const auto &state : result.isa->state) {
        if (state.isCoreState || state.isConst ||
            state.kind != StateInfo::Kind::Register)
            continue;
        result.config.registers.push_back(
            {state.name, state.elementType.width, state.numElements});
    }
}

} // namespace

CompiledIsax
compile(const std::string &source, const std::string &target,
        const CompileOptions &options)
{
    CompiledIsax result;
    result.coreName = options.coreName;
    DiagnosticEngine diags;
    diags.setErrorLimit(options.maxErrors);
    diags.setWarningsAsErrors(options.warningsAsErrors);
    for (const auto &code : options.warningsAsErrorCodes)
        diags.addWarningAsError(code);
    for (const auto &code : options.suppressedWarningCodes)
        diags.addSuppressedWarning(code);
    std::optional<analysis::ScopedVerifyIr> verify_scope;
    if (options.verifyIr)
        verify_scope.emplace(true);
    // Per-thread counter delta: the compile's own increments land in
    // report.counters (only when obs is on; compiles stay zero-cost
    // otherwise). Thread-confined, so concurrent compiles in a batch
    // cannot pollute each other's report the way a global registry
    // before/after snapshot would.
    // Simulation stats are thread-local, so a before/after snapshot
    // isolates this compile's share even in a concurrent batch.
    rtl::simjit::SimStats sim_before = rtl::simjit::tlsSimStats();
    {
        obs::ScopedCounterDelta delta_scope;
        {
            obs::TraceSpan compile_span("compile");
            compile_span.arg("core", options.coreName);
            try {
                compileInto(result, diags, source, target, options);
            } catch (const std::exception &e) {
                DiagnosticEngine::ContextScope scope(diags, Phase::Driver,
                                                     "LN3009");
                diags.error({}, "LN3009",
                            std::string("internal error: ") + e.what());
            }
            compile_span.arg("isax", result.name);
            compile_span.arg("status",
                             diags.hasErrors() ? "error" : "ok");
        }
        if (obs::enabled()) {
            obs::count("driver.compiles");
            if (diags.hasErrors())
                obs::count("driver.compile_errors");
            result.report.counters = delta_scope.deltas();
        }
    }
    const rtl::simjit::SimStats &sim_after = rtl::simjit::tlsSimStats();
    result.report.simEngine = rtl::simEngineName(rtl::defaultSimEngine());
    result.report.simCompiles = sim_after.compiles - sim_before.compiles;
    result.report.simProgramOps =
        sim_after.programOps - sim_before.programOps;
    result.report.simCompileMs =
        sim_after.compileMs - sim_before.compileMs;
    result.report.simCycles = sim_after.cycles - sim_before.cycles;
    if (diags.hasErrors())
        result.errors = diags.str();
    result.diags = std::move(diags);
    return result;
}

/**
 * Backoff before retry attempt @p next_attempt (2-based): capped
 * exponential with deterministic jitter. The jitter is derived from
 * the input digest and the attempt number, so identical inputs back
 * off identically run to run (no RNG -- determinism is a project
 * invariant) while distinct inputs retried in parallel still spread
 * out instead of thundering in lockstep.
 */
double
retryBackoffMs(const std::string &source, unsigned next_attempt,
               const CompileOptions &options)
{
    if (options.retryBaseDelayMs <= 0.0)
        return 0.0;
    double delay = options.retryBaseDelayMs;
    for (unsigned i = 2; i < next_attempt; ++i) {
        delay *= 2.0;
        if (delay >= options.retryMaxDelayMs)
            break;
    }
    delay = std::min(delay, options.retryMaxDelayMs);
    // Up to +50% jitter from the first 8 hex digits of the digest.
    hash::Sha256 h;
    h.updateField(source);
    h.updateField(std::to_string(next_attempt));
    uint32_t bits =
        uint32_t(std::stoul(h.hexDigest().substr(0, 8), nullptr, 16));
    double jitter = delay * 0.5 * (double(bits) / 4294967295.0);
    return delay + jitter;
}

CompiledIsax
compileWithRetry(const std::string &source, const std::string &target,
                 const CompileOptions &options, unsigned max_attempts)
{
    if (max_attempts == 0)
        max_attempts = options.retryMaxAttempts;
    if (max_attempts == 0)
        max_attempts = 1;
    CompiledIsax result;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        if (attempt > 1) {
            double backoff_ms =
                retryBackoffMs(source, attempt, options);
            if (backoff_ms > 0.0) {
                obs::count("driver.retry_backoff_ms",
                           uint64_t(backoff_ms));
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        backoff_ms));
            }
            obs::count("driver.retries");
        }
        failpoint::clearTransientFired();
        result = compile(source, target, options);
        result.attempts = attempt;
        result.retryable = failpoint::transientFired();
        if (result.ok() || !result.retryable)
            break;
        // A cancelled caller must not sit out the remaining backoff
        // schedule (Ctrl-C during a retry loop, server drain).
        if (options.cancel && options.cancel->stopRequested())
            break;
    }
    return result;
}

CompiledIsax
compileCatalogIsax(const std::string &isax_name,
                   const CompileOptions &options)
{
    const catalog::IsaxEntry *entry = catalog::findIsax(isax_name);
    if (!entry) {
        CompiledIsax result;
        result.coreName = options.coreName;
        DiagnosticEngine::ContextScope scope(result.diags,
                                             Phase::Driver, "LN3006");
        result.diags.error({}, "LN3006",
                           "unknown catalog ISAX '" + isax_name + "'");
        result.errors = result.diags.str();
        return result;
    }
    CompiledIsax result = compile(entry->source, entry->target, options);
    return result;
}

// ---------------------------------------------------------------------------
// Assembler integration
// ---------------------------------------------------------------------------

namespace {

/** Insert @p value into @p word at the field's encoding slices. */
uint32_t
placeField(uint32_t word, const coredsl::FieldInfo &field,
           uint32_t value)
{
    for (const auto &slice : field.slices) {
        uint32_t bits = (value >> slice.fieldLsb) &
                        ((slice.count >= 32 ? 0u : (1u << slice.count)) -
                         1u);
        word |= bits << slice.instrLsb;
    }
    return word;
}

bool
isGprField(const coredsl::FieldInfo &field, unsigned instr_lsb)
{
    return field.width == 5 && field.slices.size() == 1 &&
           field.slices[0].instrLsb == instr_lsb &&
           field.slices[0].count == 5;
}

} // namespace

void
registerIsaxMnemonics(rvasm::Assembler &assembler,
                      const ElaboratedIsa &isa)
{
    for (const auto &instr : isa.instructions) {
        if (instr.fromBase)
            continue;
        // Operand plan: rd, rs1, rs2 (if present at the standard
        // positions), then remaining fields alphabetically.
        struct OperandSpec
        {
            std::string field;
            bool isRegister;
        };
        std::vector<OperandSpec> plan;
        std::vector<std::string> immediates;
        const coredsl::FieldInfo *rd = nullptr, *rs1 = nullptr,
                                 *rs2 = nullptr;
        // Only conventionally named fields at the standard positions
        // are register operands; anything else (e.g. an immediate that
        // happens to sit at the rs1 bits, like setup_zol's uimmS) is
        // encoded as an immediate.
        for (const auto &[fname, field] : instr.fields) {
            if (fname == "rd" && isGprField(field, 7))
                rd = &field;
            else if (fname == "rs1" && isGprField(field, 15))
                rs1 = &field;
            else if (fname == "rs2" && isGprField(field, 20))
                rs2 = &field;
            else
                immediates.push_back(fname);
        }
        if (rd)
            plan.push_back({"rd", true});
        if (rs1)
            plan.push_back({"rs1", true});
        if (rs2)
            plan.push_back({"rs2", true});
        for (const std::string &imm : immediates)
            plan.push_back({imm, false});

        const InstrInfo *info = &instr;
        std::vector<OperandSpec> plan_copy = plan;
        assembler.addCustomMnemonic(
            instr.name,
            [info, plan_copy](const std::vector<std::string> &operands,
                              std::string &error)
                -> std::optional<uint32_t> {
                if (operands.size() != plan_copy.size()) {
                    error = "expected " +
                            std::to_string(plan_copy.size()) +
                            " operands";
                    return std::nullopt;
                }
                uint32_t word = info->match;
                for (size_t i = 0; i < operands.size(); ++i) {
                    const OperandSpec &spec = plan_copy[i];
                    uint32_t value;
                    if (spec.isRegister) {
                        int reg = rvasm::Assembler::parseRegister(
                            operands[i]);
                        if (reg < 0) {
                            error = "bad register '" + operands[i] +
                                    "'";
                            return std::nullopt;
                        }
                        value = uint32_t(reg);
                    } else {
                        try {
                            value = uint32_t(
                                std::stoll(operands[i], nullptr, 0));
                        } catch (const std::exception &) {
                            error = "bad immediate '" + operands[i] +
                                    "'";
                            return std::nullopt;
                        }
                    }
                    std::string fname = spec.isRegister
                                            ? spec.field
                                            : spec.field;
                    // Registers map onto the rd/rs1/rs2 positions; the
                    // actual field names may differ.
                    const coredsl::FieldInfo *field = nullptr;
                    for (const auto &[n, f] : info->fields) {
                        if (spec.isRegister) {
                            unsigned lsb = spec.field == "rd" ? 7
                                           : spec.field == "rs1"
                                               ? 15
                                               : 20;
                            if (isGprField(f, lsb)) {
                                field = &f;
                                break;
                            }
                        } else if (n == spec.field) {
                            field = &f;
                            break;
                        }
                    }
                    if (!field) {
                        error = "internal: field not found";
                        return std::nullopt;
                    }
                    word = placeField(word, *field, value);
                }
                return word;
            });
    }
}

// ---------------------------------------------------------------------------
// Golden model
// ---------------------------------------------------------------------------

GoldenModel::GoldenModel(const CompiledIsax &compiled)
    : compiled_(compiled)
{
    for (const auto &state : compiled.isa->state) {
        if (state.isCoreState || state.isConst ||
            state.kind != StateInfo::Kind::Register)
            continue;
        customRegs_[state.name].assign(
            state.numElements, ApInt(state.elementType.width, 0));
    }
}

void
GoldenModel::loadProgram(const std::vector<uint32_t> &words,
                         uint32_t base)
{
    for (size_t i = 0; i < words.size(); ++i)
        memory_.writeWord(base + uint32_t(i) * 4, words[i]);
    state_.pc = base;
}

const ApInt &
GoldenModel::customReg(const std::string &name, uint64_t index) const
{
    return customRegs_.at(name).at(index);
}

void
GoldenModel::setCustomReg(const std::string &name, uint64_t index,
                          const ApInt &value)
{
    ApInt &slot = customRegs_.at(name).at(index);
    slot = value.zextOrTrunc(slot.width());
}

lil::InterpInput
GoldenModel::makeInput(uint32_t instr_word, uint32_t pc)
{
    lil::InterpInput input;
    cores::DecodedInstr d = cores::decode(instr_word);
    input.instrWord = ApInt(32, instr_word);
    input.rs1 = ApInt(32, state_.reg(d.rs1));
    input.rs2 = ApInt(32, state_.reg(d.rs2));
    input.pc = ApInt(32, pc);
    input.custRegs = customRegs_;
    input.readMem = [this](const ApInt &addr) {
        return ApInt(32,
                     memory_.readWord(uint32_t(addr.toUint64())));
    };
    return input;
}

void
GoldenModel::applyEffects(const lil::InterpResult &result, unsigned rd,
                          bool &pc_written)
{
    if (result.rd.enabled)
        state_.setReg(rd, uint32_t(result.rd.value.toUint64()));
    if (result.mem.enabled)
        memory_.writeWord(uint32_t(result.mem.addr.toUint64()),
                          uint32_t(result.mem.value.toUint64()));
    for (const auto &[reg, write] : result.custWrites) {
        if (!write.enabled)
            continue;
        auto &storage = customRegs_.at(reg);
        uint64_t index = write.index.toUint64();
        if (index < storage.size())
            storage[index] = write.value.zextOrTrunc(
                storage[index].width());
    }
    if (result.pcWrite.enabled) {
        state_.pc = uint32_t(result.pcWrite.value.toUint64());
        pc_written = true;
    }
}

bool
GoldenModel::handleCustom(const cores::DecodedInstr &instr)
{
    for (const auto &unit : compiled_.units) {
        if (unit.isAlways)
            continue;
        const InstrInfo *info =
            compiled_.isa->findInstruction(unit.name);
        if ((instr.raw & info->mask) != info->match)
            continue;
        lil::InterpInput input = makeInput(instr.raw, state_.pc);
        lil::InterpResult result = lil::interpret(*unit.lilGraph,
                                                  input);
        bool pc_written = false;
        applyEffects(result, instr.rd, pc_written);
        if (!pc_written)
            state_.pc += 4;
        return true;
    }
    return false;
}

void
GoldenModel::runAlwaysBlocks(uint32_t executed_pc)
{
    for (const auto &unit : compiled_.units) {
        if (!unit.isAlways)
            continue;
        lil::InterpInput input;
        input.pc = ApInt(32, executed_pc);
        input.custRegs = customRegs_;
        lil::InterpResult result = lil::interpret(*unit.lilGraph,
                                                  input);
        bool pc_written = false;
        applyEffects(result, 0, pc_written);
    }
}

uint64_t
GoldenModel::run(uint64_t max_steps)
{
    uint64_t steps = 0;
    while (steps < max_steps) {
        ++steps;
        uint32_t pc_before = state_.pc;
        uint32_t word = memory_.readWord(pc_before);
        cores::DecodedInstr d = cores::decode(word);
        if (d.opcode == cores::Opcode::System)
            break;
        if (d.opcode == cores::Opcode::Custom) {
            if (!handleCustom(d))
                break; // illegal instruction
        } else {
            cores::Iss iss(state_, memory_);
            if (iss.step() != cores::StepResult::Ok)
                break;
        }
        // Always-blocks observe the PC of the executed instruction and
        // may override the next PC (ZOL semantics).
        runAlwaysBlocks(pc_before);
    }
    obs::count("golden.instructions_retired", steps);
    return steps;
}

} // namespace driver
} // namespace longnail
