/**
 * @file
 * The Longnail public API: one call compiles a CoreDSL description for
 * a target core into SystemVerilog modules plus the SCAIE-V
 * configuration file (the complete flow of Fig. 9), and helpers
 * integrate the result into the cycle-level core models for RTL
 * simulation.
 */

#ifndef LONGNAIL_DRIVER_LONGNAIL_HH
#define LONGNAIL_DRIVER_LONGNAIL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coredsl/sema.hh"
#include "cores/core.hh"
#include "hir/astlower.hh"
#include "hwgen/hwgen.hh"
#include "lil/interp.hh"
#include "lil/lil.hh"
#include "rvasm/assembler.hh"
#include "scaiev/config.hh"
#include "scaiev/datasheet.hh"
#include "sched/scheduler.hh"
#include "support/cancel.hh"

namespace longnail {
namespace driver {

/** Compilation options. */
struct CompileOptions
{
    std::string coreName = "VexRiscv";
    /** Overrides the built-in datasheet for coreName when non-null
     * (e.g. loaded from a YAML file for a custom core). */
    const scaiev::Datasheet *datasheet = nullptr;
    sched::TimingMode timingMode = sched::TimingMode::Uniform;
    /** Overrides the per-compile TechLibrary construction when
     * non-null (batch compilation shares one parsed library across
     * units; must match timingMode). */
    const sched::TechLibrary *techlib = nullptr;
    /** Target cycle time for chain breaking; 0 = the core's native
     * clock. */
    double cycleTimeNs = 0.0;
    /** Base instruction set provided by the host core. */
    std::string baseSetName = "RV32I";
    /** Cap on reported errors (0 = unlimited); error recovery stops
     * once the cap is reached. */
    size_t maxErrors = 0;
    /** Budget for the optimal scheduler; exhausting it falls back to
     * the heuristic scheduler (see docs/failure-model.md). */
    sched::ScheduleBudget schedBudget;

    /**
     * Optimization level (CLI: -O0/-O1). 0 compiles the LIL exactly as
     * lowered; 1 runs the verified pass pipeline (simplify, CSE,
     * bitwidth narrowing, DCE — docs/pass-pipeline.md) over every
     * graph before scheduling. Spawn graphs participate only when
     * the effect summaries (analysis/effects.hh) prove the decoupled
     * partition cannot interfere with the in-order partition;
     * otherwise they compile as lowered. Part of the cache key.
     */
    unsigned optLevel = 0;
    /**
     * When non-empty, write a YAML dump of the per-value range and
     * demanded-bits states of every LIL graph to this file (CLI:
     * --dump-analysis=FILE). Debug-only: not part of the cache key, so
     * it is only honored on fresh (non-cache-replayed) compiles.
     */
    std::string dumpAnalysisFile;

    /** Stop after the static-analysis phase (CLI: --lint); the result
     * carries the elaborated ISA, HIR/LIL modules and all lint
     * diagnostics, but no schedule or hardware. */
    bool lintOnly = false;
    /** Re-run the IR verifier after every HIR transform, in addition
     * to the analysis phase (also: LONGNAIL_VERIFY_IR). */
    bool verifyIr = false;
    /** Run per-unit translation validation (CLI: --validate): schedule
     * legality re-checking, LIL<->netlist equivalence and netlist
     * lints (docs/translation-validation.md). */
    bool validate = false;
    /** Promote all warnings to errors (CLI: --Werror). */
    bool warningsAsErrors = false;
    /** Promote only these LN codes to errors (CLI: --Werror=CODE). */
    std::vector<std::string> warningsAsErrorCodes;
    /** Drop warnings with these LN codes (CLI: --no-warn=CODE). */
    std::vector<std::string> suppressedWarningCodes;

    /**
     * Cooperative cancellation (Ctrl-C, server drain, per-request
     * deadlines): polled at every phase boundary. A stop request makes
     * the compile fail with LN3011 ("deadline exceeded" or
     * "cancelled") at the next boundary instead of running to
     * completion. Not part of the cache key -- it can only turn a
     * compile into a failure, and failures are never cached.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Retry policy for compileWithRetry() (docs/failure-model.md):
     * up to retryMaxAttempts attempts with capped exponential backoff
     * between them -- attempt k sleeps
     * min(retryBaseDelayMs * 2^(k-1), retryMaxDelayMs) plus a
     * deterministic jitter derived from the input hash (no RNG: two
     * runs of the same input back off identically). The default base
     * of 0 keeps retries immediate, matching the pre-backoff
     * behavior.
     */
    unsigned retryMaxAttempts = 3;
    double retryBaseDelayMs = 0.0;
    double retryMaxDelayMs = 100.0;
};

/**
 * Structured per-compile observability (docs/observability.md): phase
 * wall times, IR sizes and the scheduler outcome. Always populated by
 * compile() -- the bookkeeping is a handful of clock reads -- so
 * library users and tests can assert on it without enabling the global
 * obs instrumentation. The `counters` snapshot is the one field that
 * additionally requires obs::enabled().
 */
struct PhaseReport
{
    /** Wall time of one pipeline phase (merged across per-unit loop
     * iterations for sched/hwgen/scaiev-config). */
    struct Entry
    {
        std::string name;
        double wallMs = 0.0;
    };
    /** Phases in pipeline order (Fig. 9). */
    std::vector<Entry> phases;

    /** Top-level IR operation counts after lowering. */
    size_t hirOps = 0;
    size_t lilOps = 0;
    /** The same, keyed by dialect ("coredsl", "hwarith", "comb",
     * "lil"). */
    std::map<std::string, size_t> hirOpsByDialect;
    std::map<std::string, size_t> lilOpsByDialect;

    /** Worst schedule quality across units ("optimal", "fallback",
     * "fallback-relaxed"; empty before scheduling ran). */
    std::string chosenScheduler;
    /** Total LP work units the optimal scheduler consumed (its budget
     * consumption across all units). */
    uint64_t lpWorkUnits = 0;
    /** Times the scheduler fallback chain degraded one step. */
    unsigned fallbackEvents = 0;

    /** Pass-pipeline tallies (populated when CompileOptions::optLevel
     * >= 1; see docs/pass-pipeline.md). */
    uint64_t passRewrites = 0;
    /** Pass applications proved equal by the canonical term checker. */
    unsigned passProved = 0;
    /** Pass applications accepted by co-simulation agreement only. */
    unsigned passCosimAgreed = 0;
    /** Spawn graphs the pipeline optimized under the proved
     * MUST-not-interfere verdict (analysis/effects.hh). */
    unsigned spawnGraphsOptimized = 0;
    /** Spawn graphs skipped because isolation could not be proved. */
    unsigned spawnGraphsSkipped = 0;
    /** Per-graph rewrite counts of the optimized spawn graphs, in
     * module order (CLI: --report). */
    std::vector<std::pair<std::string, uint64_t>> spawnRewritesByUnit;
    /** Top-level LIL op count after the pass pipeline (equals lilOps
     * at -O0 or when no pass fired). */
    size_t lilOpsOptimized = 0;

    /** Translation-validation tallies (populated when
     * CompileOptions::validate is set; see
     * docs/translation-validation.md). */
    unsigned tvUnitsChecked = 0;
    /** Units whose netlist was symbolically proved equivalent. */
    unsigned tvProved = 0;
    /** Units refuted (counterexample or legality violation). */
    unsigned tvRefuted = 0;
    /** Simulated cycles spent on co-simulation counterexample search. */
    uint64_t tvCexCycles = 0;

    /** Simulation tallies over this compile (docs/simulation.md):
     * the active engine, bytecode programs compiled, ops emitted,
     * compile wall time, and clock edges simulated on this thread
     * (TV co-simulation and pass-cosim checks). Always populated,
     * independent of obs::enabled(). */
    std::string simEngine;
    uint64_t simCompiles = 0;
    uint64_t simProgramOps = 0;
    double simCompileMs = 0.0;
    uint64_t simCycles = 0;

    /** Delta of the global obs counter registry over this compile;
     * empty unless obs::enabled() was set. */
    std::map<std::string, uint64_t> counters;

    double totalWallMs() const;
    const Entry *findPhase(const std::string &name) const;
    /** Merge @p ms into the entry for @p name (appending if new). */
    void addTime(const std::string &name, double ms);
};

/** One synthesized instruction or always-block. */
struct CompiledUnit
{
    std::string name;
    bool isAlways = false;
    const lil::LilGraph *lilGraph = nullptr; ///< owned by CompiledIsax
    hwgen::GeneratedModule module;
    std::string systemVerilog;
    /** Schedule quality indicators. */
    int makespan = 0;
    double objective = 0.0;
    /** Which scheduler in the fallback chain produced the schedule. */
    sched::ScheduleQuality quality = sched::ScheduleQuality::Optimal;
    /** Why the optimal scheduler was abandoned (non-Optimal quality). */
    std::string fallbackReason;
    /** LP work units the optimal-scheduler attempt consumed for this
     * unit (budget consumption, also on a failed attempt). */
    uint64_t lpWorkUnits = 0;
};

/** The complete result of compiling one ISAX for one core. */
struct CompiledIsax
{
    std::string name;
    std::string coreName;
    std::string errors; ///< empty on success
    /** Structured diagnostics (errors + warnings) with phase tags and
     * stable LN codes; `errors` above is its rendered form. */
    DiagnosticEngine diags;
    /** True when the failure involved a transient injected fault; see
     * compileWithRetry(). */
    bool retryable = false;
    /** Number of compile attempts made (>1 only via compileWithRetry). */
    unsigned attempts = 1;

    std::unique_ptr<coredsl::ElaboratedIsa> isa;
    std::unique_ptr<hir::HirModule> hirModule;
    std::unique_ptr<lil::LilModule> lilModule;
    std::vector<CompiledUnit> units;
    scaiev::ScaievConfig config;
    /** Phase timings, IR sizes and scheduler outcome of this compile. */
    PhaseReport report;

    bool ok() const { return errors.empty(); }
    const CompiledUnit *findUnit(const std::string &unit_name) const;

    /** All generated SystemVerilog, one module per unit. */
    std::string emitAllVerilog() const;

    /** Package the modules for Core::attachIsax(). */
    std::shared_ptr<cores::IsaxBundle> makeBundle() const;
};

/**
 * Compile @p source (targeting definition @p target, default: last)
 * for the selected host core. Never throws; check result.ok().
 */
CompiledIsax compile(const std::string &source,
                     const std::string &target = "",
                     const CompileOptions &options = {});

/**
 * Like compile(), but retry when the failure was caused by a transient
 * injected fault (failpoint mode "transient:N"); permanent failures
 * are returned immediately. Attempt count and inter-attempt backoff
 * come from the options (retryMaxAttempts / retryBaseDelayMs /
 * retryMaxDelayMs); a non-zero @p max_attempts overrides
 * options.retryMaxAttempts for callers of the pre-backoff API. The
 * result's `attempts` field records how many tries were made, and the
 * total backoff slept is exported as the `driver.retry_backoff_ms`
 * metric.
 */
CompiledIsax compileWithRetry(const std::string &source,
                              const std::string &target = "",
                              const CompileOptions &options = {},
                              unsigned max_attempts = 0);

/** Compile one of the bundled benchmark ISAXes (Table 3). */
CompiledIsax compileCatalogIsax(const std::string &isax_name,
                                const CompileOptions &options = {});

/**
 * Register assembler mnemonics for every non-base instruction of
 * @p isa. Operand order: rd, rs1, rs2 (those present as encoding
 * fields at the standard positions), then the remaining fields in
 * alphabetical order as immediates.
 */
void registerIsaxMnemonics(rvasm::Assembler &assembler,
                           const coredsl::ElaboratedIsa &isa);

/**
 * Architectural golden model: the RV32I ISS plus the LIL interpreter
 * for ISAX instructions and always-blocks. The cycle-level Core with
 * integrated RTL modules must produce the same final state.
 */
class GoldenModel
{
  public:
    explicit GoldenModel(const CompiledIsax &compiled);

    void loadProgram(const std::vector<uint32_t> &words, uint32_t base);
    /** @return executed instruction count. */
    uint64_t run(uint64_t max_steps = 1'000'000);

    uint32_t reg(unsigned i) const { return state_.reg(i); }
    void setReg(unsigned i, uint32_t v) { state_.setReg(i, v); }
    cores::Memory &memory() { return memory_; }
    const ApInt &customReg(const std::string &name,
                           uint64_t index = 0) const;
    void setCustomReg(const std::string &name, uint64_t index,
                      const ApInt &value);

  private:
    bool handleCustom(const cores::DecodedInstr &instr);
    void runAlwaysBlocks(uint32_t executed_pc);
    lil::InterpInput makeInput(uint32_t instr_word, uint32_t pc);
    void applyEffects(const lil::InterpResult &result, unsigned rd,
                      bool &pc_written);

    const CompiledIsax &compiled_;
    cores::ArchState state_;
    cores::Memory memory_;
    std::map<std::string, std::vector<ApInt>> customRegs_;
};

} // namespace driver
} // namespace longnail

#endif // LONGNAIL_DRIVER_LONGNAIL_HH
