/**
 * @file
 * Content-addressed compilation cache (docs/batch-compilation.md).
 *
 * A compile is keyed by the SHA-256 digest of its complete input
 * closure: compiler version, CoreDSL source, target definition, the
 * virtual datasheet (serialized), the technology-library mode and
 * every CompileOptions field that can influence artifacts or
 * diagnostics. Two compiles share an entry exactly when they are
 * guaranteed to produce byte-identical outputs, so replaying a cached
 * entry is indistinguishable from recompiling -- the determinism
 * guarantee the `-j1` vs `-j8` byte-equality tests rely on.
 *
 * Entries store the deterministic essence of a successful compile (a
 * CompileSummary): the SystemVerilog per unit, the SCAIE-V YAML, the
 * rendered warnings, and the deterministic PhaseReport fields
 * (scheduler choice, LP work, stage spans, register counts). Wall
 * times are deliberately not cached -- they are not deterministic and
 * must never leak into compared output.
 *
 * Failure handling is fail-soft: a corrupted or truncated entry is
 * reported as CacheLookup::Corrupt (the caller warns with LN3010 and
 * recompiles), and the `cache` failpoint lets the fault-injection
 * harness force lookup failures (LN3903). Stores are atomic
 * (tmp + rename), so readers never observe a half-written entry.
 */

#ifndef LONGNAIL_DRIVER_CACHE_HH
#define LONGNAIL_DRIVER_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/longnail.hh"

namespace longnail {
namespace driver {

/**
 * The deterministic, cache-storable essence of one compile. Both the
 * fresh-compile and the cache-replay paths of batch compilation render
 * their user-visible output from this structure alone, which is what
 * makes a warm `-j8` run byte-identical to a cold `-j1` run.
 */
struct CompileSummary
{
    std::string isaxName;
    std::string coreName;
    bool ok = false;

    /** One rendered diagnostic (warnings/notes of successful compiles;
     * all diagnostics of failed ones). */
    struct DiagLine
    {
        Severity severity = Severity::Warning;
        std::string code;
        std::string rendered; ///< Diagnostic::str() output
    };
    std::vector<DiagLine> diags;
    /** Rendered error block (CompiledIsax::errors; empty when ok). */
    std::string errorsText;

    // Deterministic PhaseReport fields.
    std::string chosenScheduler;
    uint64_t lpWorkUnits = 0;
    unsigned fallbackEvents = 0;

    struct UnitSummary
    {
        std::string name;
        bool isAlways = false;
        int makespan = 0;
        double objective = 0.0;
        std::string quality; ///< sched::scheduleQualityName()
        std::string fallbackReason;
        uint64_t lpWorkUnits = 0;
        int firstStage = 0;
        int lastStage = 0;
        unsigned numRegisters = 0;
        std::string systemVerilog;
    };
    std::vector<UnitSummary> units;

    /** The emitted SCAIE-V configuration YAML. */
    std::string configYaml;
};

/** Extract the deterministic summary of @p compiled. */
CompileSummary summarize(const CompiledIsax &compiled);

/**
 * Version string folded into every cache key; bump whenever a compiler
 * change can alter artifacts without any input changing.
 */
std::string compilerVersion();

/**
 * Cache key of compiling @p source/@p target under @p options: 64 hex
 * chars, covering the full input closure (see file comment). The
 * datasheet is resolved exactly like compile() resolves it
 * (options.datasheet, else the built-in sheet for options.coreName).
 */
std::string cacheKey(const std::string &source, const std::string &target,
                     const CompileOptions &options);

enum class CacheLookup
{
    Hit,      ///< summary replayed from the cache
    Miss,     ///< no entry (or caching disabled)
    Corrupt,  ///< entry existed but failed to parse; caller recompiles
    Injected, ///< `cache` failpoint fired; treated as a miss
};

/**
 * Look up @p key in @p dir. On Hit fills @p out and refreshes the
 * entry's mtime (the eviction clock). Never throws. Reports Miss
 * unconditionally while any failpoint other than `cache` is armed:
 * fault-injected runs can produce degraded fail-soft artifacts, so
 * they never read (or write, see cacheStore) the cache.
 */
CacheLookup cacheLoad(const std::string &dir, const std::string &key,
                      CompileSummary &out);

/**
 * Atomically store @p summary under @p key, then -- when
 * @p max_entries > 0 -- evict least-recently-used entries (by mtime)
 * down to the limit. Only successful compiles should be stored.
 * A no-op while any failpoint other than `cache` is armed (see
 * cacheLoad).
 * @return false on I/O failure (non-fatal; the batch continues).
 */
bool cacheStore(const std::string &dir, const std::string &key,
                const CompileSummary &summary, size_t max_entries = 0);

/** Number of entries currently in @p dir (for tests/diagnostics). */
size_t cacheEntryCount(const std::string &dir);

/**
 * Remove in-progress `*.tmp*` store files from @p dir. Interrupted
 * runs (Ctrl-C mid-cacheStore, a crashed worker) can strand temp
 * files that atomic rename never published; the CLI signal path and
 * the server drain path sweep them so an aborted run leaves the cache
 * directory exactly as a completed one would.
 * @return the number of files removed.
 */
size_t cacheCleanupTmp(const std::string &dir);

} // namespace driver
} // namespace longnail

#endif // LONGNAIL_DRIVER_CACHE_HH
