#include "driver/batch.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "driver/isax_catalog.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "support/threadpool.hh"

namespace longnail {
namespace driver {

namespace {

/** Render a cache-event advisory in the standard diagnostic format
 * (a scratch engine keeps the formatting in one place). Cache events
 * are environment-dependent, so they bypass the unit's --Werror
 * policy: a flaky disk must never fail a --Werror build. */
CompileSummary::DiagLine
cacheEventWarning(const std::string &code, const std::string &message)
{
    DiagnosticEngine engine;
    DiagnosticEngine::ContextScope scope(engine, Phase::Driver, code);
    engine.warning({}, code, message);
    return {Severity::Warning, code, engine.all().front().str()};
}

} // namespace

bool
BatchResult::allOk() const
{
    return okCount() == units.size();
}

size_t
BatchResult::okCount() const
{
    size_t n = 0;
    for (const auto &unit : units)
        if (unit.ok)
            ++n;
    return n;
}

std::shared_ptr<const scaiev::Datasheet>
SharedInputs::datasheetFor(const std::string &core)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sheets_.find(core);
    if (it != sheets_.end())
        return it->second;
    // The built-in registry owns the sheet; the shared_ptr only shares
    // the lookup, not ownership.
    const scaiev::Datasheet *sheet = scaiev::Datasheet::findCore(core);
    auto shared = std::shared_ptr<const scaiev::Datasheet>(
        sheet, [](const scaiev::Datasheet *) {});
    if (!sheet)
        shared = nullptr;
    sheets_.emplace(core, shared);
    return shared;
}

std::shared_ptr<const sched::TechLibrary>
SharedInputs::techlibFor(sched::TimingMode mode)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = techs_.find(int(mode));
    if (it != techs_.end())
        return it->second;
    auto tech = std::make_shared<const sched::TechLibrary>(mode);
    techs_.emplace(int(mode), tech);
    return tech;
}

const std::vector<std::string> &
builtinCores()
{
    static const std::vector<std::string> cores = {
        "ORCA", "Piccolo", "PicoRV32", "VexRiscv"};
    return cores;
}

std::vector<BatchRequest>
catalogBatchRequests(const std::vector<std::string> &cores,
                     const CompileOptions &base)
{
    std::vector<BatchRequest> requests;
    for (const auto &isax : catalog::allIsaxes()) {
        for (const auto &core : cores) {
            BatchRequest req;
            req.unitName = isax.name + "@" + core;
            req.source = isax.source;
            req.target = isax.target;
            req.options = base;
            req.options.coreName = core;
            requests.push_back(std::move(req));
        }
    }
    return requests;
}

BatchResult
compileBatch(std::vector<BatchRequest> requests,
             const BatchOptions &options)
{
    auto batch_start = std::chrono::steady_clock::now();
    obs::TraceSpan batch_span("batch");

    // Deterministic processing and result order: sort by unit name up
    // front (stable, so duplicate names keep their submission order).
    // Every worker writes only its own pre-sized slot; the final
    // vector is identical for any jobs value.
    std::stable_sort(requests.begin(), requests.end(),
                     [](const BatchRequest &a, const BatchRequest &b) {
                         return a.unitName < b.unitName;
                     });

    BatchResult result;
    result.units.resize(requests.size());
    SharedInputs shared;

    auto compile_one = [&](size_t i) {
        const BatchRequest &req = requests[i];
        BatchUnitOutcome &out = result.units[i];
        out.unitName = req.unitName;

        // Request id per sorted slot: "r1" is the first unit in name
        // order no matter which worker runs it or how many jobs there
        // are, so log records correlate deterministically across runs.
        obs::RequestScope rid_scope("r" + std::to_string(i + 1));
        obs::logEvent(obs::LogLevel::Info, "batch.unit",
                      {{"name", req.unitName}});
        struct DoneLog
        {
            const BatchUnitOutcome &out;
            ~DoneLog()
            {
                if (!obs::EventLog::instance().active())
                    return;
                obs::logEvent(
                    obs::LogLevel::Info, "batch.unit.done",
                    {{"name", out.unitName},
                     {"outcome", out.ok ? "ok" : "compile-error"},
                     {"fromCache", out.fromCache ? "yes" : "no"}});
            }
        } done_log{out};

        // Cancellation (Ctrl-C / drain): units that have not started
        // yet are settled with a deterministic LN3011 outcome instead
        // of compiling -- every unit still gets exactly one outcome.
        if (options.cancel && options.cancel->stopRequested()) {
            DiagnosticEngine engine;
            DiagnosticEngine::ContextScope scope(engine, Phase::Driver,
                                                 "LN3011");
            engine.error({}, "LN3011",
                         std::string("batch unit ") +
                             options.cancel->reason() +
                             " before compilation started");
            out.summary.isaxName = req.unitName;
            out.summary.ok = false;
            for (const auto &d : engine.all())
                out.summary.diags.push_back(
                    {d.severity, d.code, d.str()});
            out.summary.errorsText = engine.str();
            return;
        }

        std::string key;
        if (!options.cacheDir.empty()) {
            key = cacheKey(req.source, req.target, req.options);
            CompileSummary cached;
            switch (cacheLoad(options.cacheDir, key, cached)) {
            case CacheLookup::Hit:
                out.summary = std::move(cached);
                out.ok = out.summary.ok;
                out.fromCache = true;
                return;
            case CacheLookup::Miss:
                break;
            case CacheLookup::Corrupt:
                out.cacheCorrupt = true;
                break;
            case CacheLookup::Injected:
                out.cacheInjected = true;
                break;
            }
        }

        // Shared read-only inputs, parsed/constructed once per batch.
        CompileOptions opts = req.options;
        if (options.cancel && !opts.cancel)
            opts.cancel = options.cancel;
        auto tech = shared.techlibFor(opts.timingMode);
        opts.techlib = tech.get();
        std::shared_ptr<const scaiev::Datasheet> sheet;
        if (!opts.datasheet) {
            sheet = shared.datasheetFor(opts.coreName);
            if (sheet)
                opts.datasheet = sheet.get();
        }

        auto full = std::make_shared<CompiledIsax>(
            compile(req.source, req.target, opts));
        out.summary = summarize(*full);
        out.ok = full->ok();
        out.full = std::move(full);

        // Store before decorating: cache events describe THIS run's
        // lookup, so they must never be replayed from the cache.
        if (out.ok && !options.cacheDir.empty())
            out.cacheStored = cacheStore(options.cacheDir, key,
                                         out.summary,
                                         options.cacheMaxEntries);

        // Fail-soft cache events surface as LN-coded advisories at the
        // front of the unit's diagnostics (they happened first).
        if (out.cacheCorrupt)
            out.summary.diags.insert(
                out.summary.diags.begin(),
                cacheEventWarning(
                    "LN3010", "corrupted cache entry for '" +
                                  req.unitName + "': recompiled"));
        if (out.cacheInjected)
            out.summary.diags.insert(
                out.summary.diags.begin(),
                cacheEventWarning(
                    "LN3903", "injected fault at failpoint 'cache': "
                              "treated as a miss for '" +
                                  req.unitName + "'"));
    };

    unsigned jobs = options.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    jobs = unsigned(std::min<size_t>(jobs, std::max<size_t>(
                                               requests.size(), 1)));

    if (jobs <= 1) {
        for (size_t i = 0; i < requests.size(); ++i)
            compile_one(i);
    } else {
        ThreadPool pool(jobs);
        for (size_t i = 0; i < requests.size(); ++i)
            pool.submit([&compile_one, i] { compile_one(i); });
        pool.wait();
    }

    // Deterministic stats, aggregated from the outcomes after the
    // join (no racy increments during the run).
    for (const auto &unit : result.units) {
        if (unit.fromCache) {
            ++result.stats.cacheHits;
        } else if (!options.cacheDir.empty()) {
            ++result.stats.cacheMisses;
            if (unit.cacheCorrupt)
                ++result.stats.cacheCorrupt;
        }
        if (unit.cacheStored)
            ++result.stats.cacheStores;
    }
    result.stats.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - batch_start)
            .count();

    if (obs::enabled()) {
        obs::count("batch.units", result.units.size());
        obs::gauge("batch.jobs", double(jobs));
        obs::count("cache.hits", result.stats.cacheHits);
        obs::count("cache.misses", result.stats.cacheMisses);
        obs::count("cache.stores", result.stats.cacheStores);
        obs::count("cache.corrupt", result.stats.cacheCorrupt);
    }
    batch_span.arg("units", std::to_string(result.units.size()));
    batch_span.arg("jobs", std::to_string(jobs));
    return result;
}

} // namespace driver
} // namespace longnail
