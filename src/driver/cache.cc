#include "driver/cache.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/failpoint.hh"
#include "support/hash.hh"

namespace longnail {
namespace driver {

namespace fs = std::filesystem;

namespace {

constexpr const char *entryMagic = "LNCACHE 1";
constexpr const char *entrySuffix = ".lnc";

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

// --- entry serialization ---------------------------------------------------
//
// Line-oriented tags with length-prefixed byte blobs for free-form
// strings: `tag <len>\n<len bytes>\n`. Field order is fixed; any
// deviation while reading classifies the entry as corrupt.

void
putNum(std::ostream &os, const char *tag, uint64_t v)
{
    os << tag << ' ' << v << '\n';
}

void
putInt(std::ostream &os, const char *tag, int64_t v)
{
    os << tag << ' ' << v << '\n';
}

void
putBlob(std::ostream &os, const char *tag, const std::string &s)
{
    os << tag << ' ' << s.size() << '\n';
    os.write(s.data(), std::streamsize(s.size()));
    os << '\n';
}

/** Strict sequential reader over one entry's bytes. */
class EntryReader
{
  public:
    explicit EntryReader(std::string bytes) : bytes_(std::move(bytes)) {}

    bool failed() const { return failed_; }

    /** Consume one "<tag> <value>\n" line; empty string on mismatch. */
    std::string
    line(const char *tag)
    {
        if (failed_)
            return "";
        size_t eol = bytes_.find('\n', pos_);
        if (eol == std::string::npos)
            return fail();
        std::string text = bytes_.substr(pos_, eol - pos_);
        std::string prefix = std::string(tag) + " ";
        if (text.rfind(prefix, 0) != 0)
            return fail();
        pos_ = eol + 1;
        return text.substr(prefix.size());
    }

    uint64_t
    num(const char *tag)
    {
        std::string v = line(tag);
        if (failed_)
            return 0;
        char *end = nullptr;
        uint64_t value = std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
            fail();
            return 0;
        }
        return value;
    }

    int64_t
    integer(const char *tag)
    {
        std::string v = line(tag);
        if (failed_)
            return 0;
        char *end = nullptr;
        int64_t value = std::strtoll(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
            fail();
            return 0;
        }
        return value;
    }

    double
    real(const char *tag)
    {
        std::string v = line(tag);
        if (failed_)
            return 0.0;
        char *end = nullptr;
        double value = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') {
            fail();
            return 0.0;
        }
        return value;
    }

    std::string
    blob(const char *tag)
    {
        uint64_t len = num(tag);
        if (failed_)
            return "";
        // len comes from the (possibly corrupt) entry, so the naive
        // check `pos_ + len + 1 > size` can wrap around; compare
        // against the remaining bytes instead.
        if (pos_ >= bytes_.size() || len > bytes_.size() - pos_ - 1)
            return fail();
        std::string data = bytes_.substr(pos_, size_t(len));
        pos_ += size_t(len);
        if (bytes_[pos_] != '\n')
            return fail();
        ++pos_;
        return data;
    }

    /** Consume a bare "<text>\n" line (the magic header / END). */
    bool
    expect(const char *text)
    {
        if (failed_)
            return false;
        std::string want = std::string(text) + "\n";
        if (bytes_.compare(pos_, want.size(), want) != 0) {
            fail();
            return false;
        }
        pos_ += want.size();
        return true;
    }

    bool
    atEnd() const
    {
        return pos_ == bytes_.size();
    }

  private:
    std::string
    fail()
    {
        failed_ = true;
        return "";
    }

    std::string bytes_;
    size_t pos_ = 0;
    bool failed_ = false;
};

std::string
serializeSummary(const CompileSummary &summary)
{
    std::ostringstream os;
    os << entryMagic << '\n';
    putBlob(os, "isax", summary.isaxName);
    putBlob(os, "core", summary.coreName);
    putNum(os, "ok", summary.ok ? 1 : 0);
    putBlob(os, "errors", summary.errorsText);
    putBlob(os, "scheduler", summary.chosenScheduler);
    putNum(os, "lp_work", summary.lpWorkUnits);
    putNum(os, "fallback_events", summary.fallbackEvents);
    putNum(os, "ndiags", summary.diags.size());
    for (const auto &d : summary.diags) {
        putNum(os, "dsev", uint64_t(d.severity));
        putBlob(os, "dcode", d.code);
        putBlob(os, "dtext", d.rendered);
    }
    putNum(os, "nunits", summary.units.size());
    for (const auto &u : summary.units) {
        putBlob(os, "uname", u.name);
        putNum(os, "ualways", u.isAlways ? 1 : 0);
        putInt(os, "umakespan", u.makespan);
        putBlob(os, "uobjective", formatDouble(u.objective));
        putBlob(os, "uquality", u.quality);
        putBlob(os, "ufallback", u.fallbackReason);
        putNum(os, "ulpwork", u.lpWorkUnits);
        putInt(os, "ufirst", u.firstStage);
        putInt(os, "ulast", u.lastStage);
        putNum(os, "uregs", u.numRegisters);
        putBlob(os, "usv", u.systemVerilog);
    }
    putBlob(os, "config", summary.configYaml);
    os << "END\n";
    return os.str();
}

bool
deserializeSummary(std::string bytes, CompileSummary &out)
{
    EntryReader r(std::move(bytes));
    if (!r.expect(entryMagic))
        return false;
    out = CompileSummary();
    out.isaxName = r.blob("isax");
    out.coreName = r.blob("core");
    out.ok = r.num("ok") != 0;
    out.errorsText = r.blob("errors");
    out.chosenScheduler = r.blob("scheduler");
    out.lpWorkUnits = r.num("lp_work");
    out.fallbackEvents = unsigned(r.num("fallback_events"));
    uint64_t ndiags = r.num("ndiags");
    if (r.failed() || ndiags > 1'000'000)
        return false;
    out.diags.reserve(size_t(ndiags));
    for (uint64_t i = 0; i < ndiags && !r.failed(); ++i) {
        CompileSummary::DiagLine d;
        uint64_t sev = r.num("dsev");
        if (sev > uint64_t(Severity::Error))
            return false;
        d.severity = Severity(sev);
        d.code = r.blob("dcode");
        d.rendered = r.blob("dtext");
        out.diags.push_back(std::move(d));
    }
    uint64_t nunits = r.num("nunits");
    if (r.failed() || nunits > 1'000'000)
        return false;
    out.units.reserve(size_t(nunits));
    for (uint64_t i = 0; i < nunits && !r.failed(); ++i) {
        CompileSummary::UnitSummary u;
        u.name = r.blob("uname");
        u.isAlways = r.num("ualways") != 0;
        u.makespan = int(r.integer("umakespan"));
        {
            std::string text = r.blob("uobjective");
            char *end = nullptr;
            u.objective = std::strtod(text.c_str(), &end);
            if (!r.failed() && (end == text.c_str() || *end != '\0'))
                return false;
        }
        u.quality = r.blob("uquality");
        u.fallbackReason = r.blob("ufallback");
        u.lpWorkUnits = r.num("ulpwork");
        u.firstStage = int(r.integer("ufirst"));
        u.lastStage = int(r.integer("ulast"));
        u.numRegisters = unsigned(r.num("uregs"));
        u.systemVerilog = r.blob("usv");
        out.units.push_back(std::move(u));
    }
    out.configYaml = r.blob("config");
    if (!r.expect("END"))
        return false;
    return !r.failed() && r.atEnd();
}

fs::path
entryPath(const std::string &dir, const std::string &key)
{
    return fs::path(dir) / (key + entrySuffix);
}

/**
 * True when any failpoint other than the cache harness's own "cache"
 * site is armed. Such compiles may succeed fail-soft with degraded
 * artifacts (e.g. a fallback schedule), which must neither be stored
 * nor replayed: a later clean run would silently get the degraded
 * SystemVerilog (and vice versa), breaking the byte-identical-artifacts
 * guarantee (docs/batch-compilation.md).
 */
bool
faultInjectionActive()
{
    for (const std::string &name : failpoint::armedNames())
        if (name != "cache")
            return true;
    return false;
}

/** Remove least-recently-used entries until at most @p max remain. */
void
evictLRU(const std::string &dir, size_t max)
{
    if (max == 0)
        return;
    std::vector<std::pair<fs::file_time_type, fs::path>> entries;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        if (de.path().extension() != entrySuffix)
            continue;
        entries.emplace_back(de.last_write_time(ec), de.path());
    }
    if (entries.size() <= max)
        return;
    // Oldest first; ties broken by path for determinism.
    std::sort(entries.begin(), entries.end());
    for (size_t i = 0; i + max < entries.size(); ++i)
        fs::remove(entries[i].second, ec);
}

} // namespace

CompileSummary
summarize(const CompiledIsax &compiled)
{
    CompileSummary summary;
    summary.isaxName = compiled.name;
    summary.coreName = compiled.coreName;
    summary.ok = compiled.ok();
    summary.errorsText = compiled.errors;
    for (const auto &d : compiled.diags.all())
        summary.diags.push_back({d.severity, d.code, d.str()});
    summary.chosenScheduler = compiled.report.chosenScheduler;
    summary.lpWorkUnits = compiled.report.lpWorkUnits;
    summary.fallbackEvents = compiled.report.fallbackEvents;
    for (const auto &unit : compiled.units) {
        CompileSummary::UnitSummary u;
        u.name = unit.name;
        u.isAlways = unit.isAlways;
        u.makespan = unit.makespan;
        u.objective = unit.objective;
        u.quality = sched::scheduleQualityName(unit.quality);
        u.fallbackReason = unit.fallbackReason;
        u.lpWorkUnits = unit.lpWorkUnits;
        u.firstStage = unit.module.firstStage;
        u.lastStage = unit.module.lastStage;
        u.numRegisters = unit.module.module.numRegisters();
        u.systemVerilog = unit.systemVerilog;
        summary.units.push_back(std::move(u));
    }
    if (summary.ok)
        summary.configYaml = compiled.config.emit();
    return summary;
}

std::string
compilerVersion()
{
    // Bump on every change that can alter artifacts for unchanged
    // inputs (scheduler tweaks, codegen changes, diagnostics wording).
    return "longnail-pr7";
}

std::string
cacheKey(const std::string &source, const std::string &target,
         const CompileOptions &options)
{
    hash::Sha256 h;
    h.updateField(compilerVersion());
    h.updateField(source);
    h.updateField(target);
    h.updateField(options.coreName);
    // Resolve the datasheet exactly like compile() does; an unknown
    // core hashes an empty sheet (the compile fails and is not cached).
    const scaiev::Datasheet *sheet = options.datasheet;
    if (!sheet)
        sheet = scaiev::Datasheet::findCore(options.coreName);
    h.updateField(sheet ? sheet->toYaml().emit() : std::string());
    h.updateField(options.timingMode == sched::TimingMode::Library
                      ? "library"
                      : "uniform");
    h.updateField(formatDouble(options.cycleTimeNs));
    h.updateField(options.baseSetName);
    h.updateField(std::to_string(options.maxErrors));
    h.updateField(std::to_string(options.schedBudget.lpWorkLimit));
    std::string flags;
    flags += options.lintOnly ? '1' : '0';
    flags += options.verifyIr ? '1' : '0';
    flags += options.validate ? '1' : '0';
    flags += options.warningsAsErrors ? '1' : '0';
    h.updateField(flags);
    // -O0 and -O1 produce different artifacts for the same source
    // (dumpAnalysisFile deliberately stays out: a debug dump must not
    // fragment the cache).
    h.updateField(std::to_string(options.optLevel));
    auto sorted = [](std::vector<std::string> v) {
        std::sort(v.begin(), v.end());
        return v;
    };
    for (const auto &code : sorted(options.warningsAsErrorCodes))
        h.updateField("werror=" + code);
    for (const auto &code : sorted(options.suppressedWarningCodes))
        h.updateField("nowarn=" + code);
    return h.hexDigest();
}

CacheLookup
cacheLoad(const std::string &dir, const std::string &key,
          CompileSummary &out)
{
    if (dir.empty() || faultInjectionActive())
        return CacheLookup::Miss;
    if (failpoint::fire("cache") != failpoint::Mode::Off)
        return CacheLookup::Injected;

    fs::path path = entryPath(dir, key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return CacheLookup::Miss;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof())
        return CacheLookup::Corrupt;
    if (!deserializeSummary(buffer.str(), out))
        return CacheLookup::Corrupt;

    // Refresh the eviction clock; best-effort.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return CacheLookup::Hit;
}

bool
cacheStore(const std::string &dir, const std::string &key,
           const CompileSummary &summary, size_t max_entries)
{
    if (dir.empty() || faultInjectionActive())
        return false;
    std::error_code ec;
    fs::create_directories(dir, ec);

    // Unique tmp name per store so concurrent workers writing the same
    // key cannot interleave; the final rename is atomic.
    static std::atomic<uint64_t> storeCounter{0};
    uint64_t serial = storeCounter.fetch_add(1);
    fs::path tmp = fs::path(dir) /
                   (key + ".tmp" + std::to_string(serial));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        std::string bytes = serializeSummary(summary);
        out.write(bytes.data(), std::streamsize(bytes.size()));
        if (!out.good()) {
            out.close();
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, entryPath(dir, key), ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    evictLRU(dir, max_entries);
    return true;
}

size_t
cacheCleanupTmp(const std::string &dir)
{
    size_t removed = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        // Store temps are named "<key>.tmp<serial>" (see cacheStore).
        if (de.path().filename().string().find(".tmp") ==
            std::string::npos)
            continue;
        if (fs::remove(de.path(), ec))
            ++removed;
    }
    return removed;
}

size_t
cacheEntryCount(const std::string &dir)
{
    size_t count = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec))
        if (de.is_regular_file(ec) && de.path().extension() == entrySuffix)
            ++count;
    return count;
}

} // namespace driver
} // namespace longnail
