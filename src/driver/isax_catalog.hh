/**
 * @file
 * The benchmark ISAXes of the paper's evaluation (Table 3), written in
 * CoreDSL:
 *
 *  - autoinc        auto-incrementing load/store + setup (custom reg +
 *                   main memory access)
 *  - dotp           4x8 bit SIMD dot product (Fig. 1)
 *  - ijmp           read the next PC from memory (PC + memory access)
 *  - sbox           AES S-Box lookup (constant custom register / ROM)
 *  - sparkle        SPARKLE/Alzette ARX-box (R-type, bit manipulation,
 *                   helper functions)
 *  - sqrt_tightly   32-iteration fixed-point square root, unrolled
 *                   (tightly-coupled interfaces)
 *  - sqrt_decoupled same computation in a spawn block (decoupled)
 *  - zol            zero-overhead loop (Fig. 3; always-block, PC and
 *                   custom register access)
 *  - autoinc_zol    combination used in the Sec. 5.5 case study
 */

#ifndef LONGNAIL_DRIVER_ISAX_CATALOG_HH
#define LONGNAIL_DRIVER_ISAX_CATALOG_HH

#include <string>
#include <vector>

namespace longnail {
namespace catalog {

/** One benchmark ISAX: CoreDSL source plus the definition to target. */
struct IsaxEntry
{
    std::string name;       ///< catalog key, e.g. "dotp"
    std::string target;     ///< InstructionSet/Core name inside source
    std::string source;     ///< CoreDSL text
    std::string description;///< Table 3 description
};

/** All benchmark ISAXes, in Table 3 order (plus autoinc_zol). */
const std::vector<IsaxEntry> &allIsaxes();

/** Lookup by catalog key; nullptr if unknown. */
const IsaxEntry *findIsax(const std::string &name);

} // namespace catalog
} // namespace longnail

#endif // LONGNAIL_DRIVER_ISAX_CATALOG_HH
