/**
 * @file
 * Compiler-wide observability, part 2: the metrics registry.
 *
 * Named counters (monotonic totals: LP work units, fallback events,
 * diagnostics by severity, failpoint trips, IR node counts), gauges
 * (last/peak values: RSS per phase) and histograms (distributions:
 * per-solve LP work, per-phase wall time) live in one process-global
 * Registry. Dumped via `longnail --stats=FILE` as YAML, or as a human
 * table for `--stats=-` (see docs/observability.md for the catalog).
 *
 * The free helpers count()/gauge()/gaugeMax()/observe() are the
 * instrumentation entry points: each is a no-op after one relaxed
 * atomic load when obs::enabled() is off, so instrumented hot paths
 * stay at near-zero cost when observability is disabled.
 *
 * Metric *values* that do not derive from wall time (counters, IR
 * sizes) are deterministic for a fixed input: two identical compiles
 * yield identical counter snapshots, which the golden --stats tests
 * rely on.
 */

#ifndef LONGNAIL_OBS_METRICS_HH
#define LONGNAIL_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hh"

namespace longnail {
namespace obs {

/** Aggregated distribution statistics of one histogram. */
struct HistogramStats
{
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /** Retained raw observations, capped at sampleCapacity (after
     * which new observations still update count/sum/min/max but are
     * not stored; quantiles then describe the first N samples). */
    std::vector<double> samples;

    static constexpr size_t sampleCapacity = 4096;

    double mean() const { return count ? sum / double(count) : 0.0; }

    /**
     * Nearest-rank quantile over the retained samples: the smallest
     * value v such that at least ceil(p * n) samples are <= v. p is
     * clamped to [0, 1]; 0 when no samples are retained.
     */
    double quantile(double p) const;
};

/** Process-global metrics store; all methods are thread-safe. */
class Registry
{
  public:
    static Registry &instance();

    void addCounter(const std::string &name, uint64_t delta);
    void setGauge(const std::string &name, double value);
    /** Keep the maximum of the current and the new value. */
    void maxGauge(const std::string &name, double value);
    void observe(const std::string &name, double value);

    /** Snapshots (sorted by name, copied under the lock). */
    std::map<std::string, uint64_t> counters() const;
    std::map<std::string, double> gauges() const;
    std::map<std::string, HistogramStats> histograms() const;

    /** One counter's current value (0 when never touched). */
    uint64_t counter(const std::string &name) const;

    /**
     * Serialize the registry as a YAML document with `counters:`,
     * `gauges:` and `histograms:` mappings (keys sorted; parseable by
     * yaml::parse and stable across runs for deterministic metrics).
     */
    std::string toYaml() const;

    /** Human-readable summary table (for `--stats=-`). */
    std::string toTable() const;

    /**
     * Serialize as one compact JSON object with `counters`, `gauges`
     * and `histograms` members (keys sorted) -- the compile server's
     * `stats` reply body. Hand-emitted like toYaml(), for the same
     * layering reason.
     */
    std::string toJson() const;

    /**
     * Serialize as Prometheus text exposition format (version 0.0.4):
     * counters as `longnail_<name>_total`, gauges as gauges, and
     * histograms as summaries (quantile="0.5/0.95/0.99" series plus
     * `_sum`/`_count`). Dotted metric names are sanitized to the
     * Prometheus charset (`phase.sema.ms` -> `longnail_phase_sema_ms`).
     */
    std::string toPrometheus() const;

    void clear();

  private:
    Registry() = default;
    mutable std::mutex mutex_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, HistogramStats> histograms_;
};

/**
 * Captures the counter increments made by the *current thread* while
 * the object is in scope (they still reach the global Registry too).
 *
 * This is how per-compile counter deltas stay correct under parallel
 * batch compilation: each worker wraps its compile in a scope, so a
 * PhaseReport only sees the increments of its own thread instead of a
 * global before/after snapshot polluted by concurrent compiles.
 * Scopes nest (inner increments propagate to enclosing scopes on the
 * same thread) and must be destroyed on the thread that created them,
 * in LIFO order -- the natural stack discipline.
 */
class ScopedCounterDelta
{
  public:
    ScopedCounterDelta();
    ~ScopedCounterDelta();
    ScopedCounterDelta(const ScopedCounterDelta &) = delete;
    ScopedCounterDelta &operator=(const ScopedCounterDelta &) = delete;

    /** Increments recorded by this thread so far, by counter name. */
    const std::map<std::string, uint64_t> &deltas() const
    {
        return deltas_;
    }

    /** Called by Registry::addCounter: credit @p delta to every scope
     * active on the calling thread. */
    static void recordOnThread(const std::string &name, uint64_t delta);

  private:
    std::map<std::string, uint64_t> deltas_;
    ScopedCounterDelta *prev_ = nullptr;
};

/** Increment a counter by @p delta (no-op when obs is disabled). */
inline void
count(const char *name, uint64_t delta = 1)
{
    if (enabled())
        Registry::instance().addCounter(name, delta);
}

/** Set a gauge (no-op when obs is disabled). */
inline void
gauge(const char *name, double value)
{
    if (enabled())
        Registry::instance().setGauge(name, value);
}

/** Raise a peak gauge (no-op when obs is disabled). */
inline void
gaugeMax(const char *name, double value)
{
    if (enabled())
        Registry::instance().maxGauge(name, value);
}

/** Record one histogram observation (no-op when obs is disabled). */
inline void
observe(const char *name, double value)
{
    if (enabled())
        Registry::instance().observe(name, value);
}

} // namespace obs
} // namespace longnail

#endif // LONGNAIL_OBS_METRICS_HH
