/**
 * @file
 * Compiler-wide observability, part 1: hierarchical phase tracing.
 *
 * A TraceSpan is an RAII region ("the sema phase", "one ILP solve").
 * Spans nest naturally per thread; every completed span is recorded in
 * the process-global Tracer, which can export the run as Chrome
 * trace-event JSON (open in Perfetto or chrome://tracing; see
 * docs/observability.md).
 *
 * All instrumentation is gated on the process-wide obs::enabled() flag
 * (set by `longnail --trace-json/--stats`, tests, or benches). When the
 * flag is off a TraceSpan construction is a single relaxed atomic load
 * and the span records nothing, so instrumented code paths stay at
 * near-zero cost -- bench_compile_time guards this property.
 */

#ifndef LONGNAIL_OBS_OBS_HH
#define LONGNAIL_OBS_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace longnail {
namespace obs {

namespace detail {
extern std::atomic<bool> enabledFlag;
} // namespace detail

/** Process-wide instrumentation switch; default off. */
inline bool
enabled()
{
    return detail::enabledFlag.load(std::memory_order_relaxed);
}

void setEnabled(bool on);

/** RAII enable/restore for tests and benches. */
class ScopedEnable
{
  public:
    explicit ScopedEnable(bool on = true) : prev_(enabled())
    {
        setEnabled(on);
    }
    ~ScopedEnable() { setEnabled(prev_); }
    ScopedEnable(const ScopedEnable &) = delete;
    ScopedEnable &operator=(const ScopedEnable &) = delete;

  private:
    bool prev_;
};

/** Escape @p s for inclusion in a double-quoted JSON string. */
std::string escapeJson(const std::string &s);

/** Peak resident set size of this process in KiB (0 if unavailable). */
uint64_t peakRssKb();

/** Microseconds since the process trace epoch (the first steady_clock
 * reading any instrumentation took). One shared epoch makes timestamps
 * from different threads directly comparable -- the serve trace relies
 * on that to nest request spans over worker-thread phase spans. */
double traceNowUs();
double traceTimeUs(std::chrono::steady_clock::time_point tp);

/** Small dense id of the calling thread (1 = first observing thread);
 * the `tid` that TraceSpan records. Exposed so synthetic events (the
 * server's queue-wait span) land on the recording thread's track. */
uint32_t traceThreadId();

/**
 * Request identity of the current thread (docs/observability.md).
 *
 * `rid` is the end-to-end request id: minted by the one-shot CLI
 * ("r1"), per sorted batch slot ("r<n>", deterministic under any
 * --jobs value), by a --connect client ("c<pid>-<n>") or by the
 * server for requests that arrived without one ("s<n>"). `traceId` /
 * `parentSpan` carry a client-minted trace context across the wire so
 * server-side spans can point back at the client span that caused
 * them.
 */
struct RequestContext
{
    std::string rid;
    std::string traceId;
    std::string parentSpan;
};

/** The calling thread's current request context (empty by default). */
const RequestContext &currentRequest();

/** The current thread's request id ("" outside any RequestScope). */
const std::string &currentRid();

/**
 * RAII request-context scope. Every TraceSpan completed, log record
 * written and flight-recorder note taken on this thread while the
 * scope is alive is tagged with the scope's rid -- that is how one
 * `grep rid=...` reconstructs a request across handler and worker
 * threads. Scopes nest (LIFO, per thread); a worker task re-enters
 * the handler's scope by constructing one with the same ids.
 */
class RequestScope
{
  public:
    explicit RequestScope(std::string rid, std::string trace_id = "",
                          std::string parent_span = "");
    ~RequestScope();
    RequestScope(const RequestScope &) = delete;
    RequestScope &operator=(const RequestScope &) = delete;

  private:
    RequestContext prev_;
};

/** One completed span. */
struct TraceEvent
{
    std::string name;
    /** Microseconds since the process trace epoch. */
    double startUs = 0.0;
    double durUs = 0.0;
    /** Small dense thread id (1 = first tracing thread). */
    uint32_t tid = 0;
    /** Nesting depth at the time the span was open (0 = top level). */
    int depth = 0;
    /** Extra key/value annotations ("args" in the trace viewer). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Process-global span collector. Thread-safe: spans from concurrent
 * compiles interleave by thread id. Completed children are recorded
 * before their parent (the parent's destructor runs last), which the
 * Chrome trace format represents naturally via ts/dur containment.
 */
class Tracer
{
  public:
    static Tracer &instance();

    void record(TraceEvent event);
    void clear();
    /** Snapshot of all completed spans so far. */
    std::vector<TraceEvent> events() const;

    /**
     * Serialize all completed spans as a Chrome trace-event JSON
     * document ({"traceEvents": [...]}, "X" complete events, ts/dur in
     * microseconds).
     */
    std::string toChromeJson() const;

  private:
    Tracer() = default;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * RAII trace region. Construction is a no-op unless obs::enabled();
 * destruction records the completed span into Tracer::instance().
 */
class TraceSpan
{
  public:
    explicit TraceSpan(std::string name);
    ~TraceSpan();
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a key/value annotation (no-op on inactive spans). */
    void arg(const std::string &key, const std::string &value);

    bool active() const { return active_; }

  private:
    bool active_ = false;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    int depth_ = 0;
    std::vector<std::pair<std::string, std::string>> args_;
};

} // namespace obs
} // namespace longnail

#endif // LONGNAIL_OBS_OBS_HH
