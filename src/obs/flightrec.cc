#include "obs/flightrec.hh"

#include "obs/obs.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace longnail {
namespace obs {
namespace flightrec {

namespace {

/** One thread's ring. Heap-allocated, registered globally, and kept
 * alive past thread exit (shared_ptr in the registry) so a postmortem
 * can still include what a finished worker saw. */
struct ThreadBuf
{
    std::mutex mutex;
    Event ring[ringCapacity];
    size_t next = 0;    ///< slot the next event goes into
    size_t filled = 0;  ///< min(events recorded, ringCapacity)
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuf>> buffers;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: dtor order vs threads
    return *r;
}

std::atomic<uint64_t> nextSeq{1};

ThreadBuf &
threadBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf = [] {
        auto b = std::make_shared<ThreadBuf>();
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void
copyField(char *dst, size_t cap, const char *src)
{
    std::strncpy(dst, src, cap - 1);
    dst[cap - 1] = '\0';
}

struct PostmortemState
{
    std::mutex mutex;
    std::string dir;
    std::map<std::string, int> perReason;
    int total = 0;
};

PostmortemState &
postmortemState()
{
    static PostmortemState *s = new PostmortemState;
    return *s;
}

constexpr int maxPerReason = 4;
constexpr int maxTotal = 64;

} // namespace

void
note(const char *kind, const std::string &msg)
{
    ThreadBuf &buf = threadBuf();
    Event event;
    event.seq = nextSeq.fetch_add(1, std::memory_order_relaxed);
    event.tUs = traceNowUs();
    event.tid = traceThreadId();
    copyField(event.kind, sizeof(event.kind), kind ? kind : "");
    copyField(event.rid, sizeof(event.rid), currentRid().c_str());
    copyField(event.msg, sizeof(event.msg), msg.c_str());
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.ring[buf.next] = event;
    buf.next = (buf.next + 1) % ringCapacity;
    if (buf.filled < ringCapacity)
        ++buf.filled;
}

std::vector<Event>
snapshot()
{
    std::vector<std::shared_ptr<ThreadBuf>> buffers;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        buffers = r.buffers;
    }
    std::vector<Event> events;
    for (const auto &buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        for (size_t i = 0; i < buf->filled; ++i)
            events.push_back(buf->ring[i]);
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) { return a.seq < b.seq; });
    return events;
}

std::string
renderEvents(const std::vector<Event> &events)
{
    std::string out;
    out.reserve(events.size() * 96);
    char buf[256];
    for (const Event &e : events) {
        std::snprintf(buf, sizeof(buf),
                      "#%llu t=%.0fus tid=%u [%s]%s%s %s\n",
                      (unsigned long long)e.seq, e.tUs, e.tid, e.kind,
                      e.rid[0] ? " rid=" : "", e.rid, e.msg);
        out += buf;
    }
    return out;
}

void
setPostmortemDir(const std::string &dir)
{
    PostmortemState &s = postmortemState();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.dir = dir;
}

std::string
postmortemDir()
{
    PostmortemState &s = postmortemState();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.dir;
}

std::string
writePostmortem(const std::string &reason)
{
    PostmortemState &s = postmortemState();
    std::string path;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.dir.empty())
            return "";
        int &count = s.perReason[reason];
        if (count >= maxPerReason || s.total >= maxTotal)
            return "";
        ++count;
        ++s.total;
        char name[160];
        long pid =
#if defined(__unix__) || defined(__APPLE__)
            long(getpid());
#else
            0;
#endif
        std::snprintf(name, sizeof(name),
                      "/longnail-postmortem-%s-%010.0f-%ld-%d.log",
                      reason.c_str(), traceNowUs(), pid, s.total);
        path = s.dir + name;
    }
    std::vector<Event> events = snapshot();
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return "";
    std::fprintf(file, "# longnail flight-recorder postmortem\n");
    std::fprintf(file, "# reason: %s\n", reason.c_str());
    const std::string &rid = currentRid();
    if (!rid.empty())
        std::fprintf(file, "# rid: %s\n", rid.c_str());
    std::fprintf(file, "# t: %.0fus since trace epoch\n", traceNowUs());
    std::fprintf(file, "# events: %zu\n", events.size());
    std::string body = renderEvents(events);
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    return path;
}

namespace {

std::atomic<bool> crashHandlerInstalled{false};

extern "C" void
crashDump(int sig)
{
    // Async-signal-safety is deliberately traded for diagnostics here:
    // the process is already dying on a fatal signal, and a rare
    // deadlock in the handler only loses the dump we would otherwise
    // not have at all. Re-raise with default disposition either way.
    std::signal(sig, SIG_DFL);
    writePostmortem("crash");
    std::raise(sig);
}

} // namespace

void
installCrashHandler()
{
    if (crashHandlerInstalled.exchange(true))
        return;
    std::signal(SIGSEGV, crashDump);
    std::signal(SIGBUS, crashDump);
    std::signal(SIGFPE, crashDump);
    std::signal(SIGILL, crashDump);
    std::signal(SIGABRT, crashDump);
}

void
resetForTests()
{
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (const auto &buf : r.buffers) {
            std::lock_guard<std::mutex> buf_lock(buf->mutex);
            buf->next = 0;
            buf->filled = 0;
        }
    }
    PostmortemState &s = postmortemState();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.perReason.clear();
    s.total = 0;
}

} // namespace flightrec
} // namespace obs
} // namespace longnail
