#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace longnail {
namespace obs {

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::addCounter(const std::string &name, uint64_t delta)
{
    ScopedCounterDelta::recordOnThread(name, delta);
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

namespace {
// Innermost active delta scope of this thread (scopes chain via prev_).
thread_local ScopedCounterDelta *activeDeltaScope = nullptr;
} // namespace

ScopedCounterDelta::ScopedCounterDelta() : prev_(activeDeltaScope)
{
    activeDeltaScope = this;
}

ScopedCounterDelta::~ScopedCounterDelta()
{
    activeDeltaScope = prev_;
}

void
ScopedCounterDelta::recordOnThread(const std::string &name, uint64_t delta)
{
    for (ScopedCounterDelta *s = activeDeltaScope; s; s = s->prev_)
        s->deltas_[name] += delta;
}

void
Registry::setGauge(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
Registry::maxGauge(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted)
        it->second = std::max(it->second, value);
}

void
Registry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    HistogramStats &h = histograms_[name];
    if (h.count == 0) {
        h.min = h.max = value;
    } else {
        h.min = std::min(h.min, value);
        h.max = std::max(h.max, value);
    }
    ++h.count;
    h.sum += value;
    if (h.samples.size() < HistogramStats::sampleCapacity)
        h.samples.push_back(value);
}

double
HistogramStats::quantile(double p) const
{
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    p = std::min(1.0, std::max(0.0, p));
    // Nearest-rank: 1-based rank ceil(p*n), clamped to [1, n].
    size_t rank = size_t(std::max(1.0, std::ceil(p * double(sorted.size()))));
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

std::map<std::string, uint64_t>
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::map<std::string, double>
Registry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_;
}

std::map<std::string, HistogramStats>
Registry::histograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return histograms_;
}

uint64_t
Registry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

namespace {

/** Trim trailing zeros off a fixed-point rendering ("4.500" -> "4.5"). */
std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    std::string s = buf;
    s.erase(s.find_last_not_of('0') + 1);
    if (!s.empty() && s.back() == '.')
        s.pop_back();
    return s;
}

} // namespace

std::string
Registry::toYaml() const
{
    // Hand-emitted (instead of via support/yaml) so the obs library has
    // no dependencies and can be linked into ln_support itself. Metric
    // names contain only [A-Za-z0-9._-], so plain scalars suffice.
    auto counters = this->counters();
    auto gauges = this->gauges();
    auto histograms = this->histograms();

    std::ostringstream os;
    os << "counters:\n";
    for (const auto &[name, value] : counters)
        os << "  " << name << ": " << value << "\n";
    os << "gauges:\n";
    for (const auto &[name, value] : gauges)
        os << "  " << name << ": " << formatDouble(value) << "\n";
    os << "histograms:\n";
    for (const auto &[name, h] : histograms) {
        os << "  " << name << ": {count: " << h.count
           << ", sum: " << formatDouble(h.sum)
           << ", min: " << formatDouble(h.min)
           << ", max: " << formatDouble(h.max)
           << ", mean: " << formatDouble(h.mean())
           << ", p50: " << formatDouble(h.quantile(0.5))
           << ", p95: " << formatDouble(h.quantile(0.95))
           << ", p99: " << formatDouble(h.quantile(0.99)) << "}\n";
    }
    return os.str();
}

std::string
Registry::toJson() const
{
    auto counters = this->counters();
    auto gauges = this->gauges();
    auto histograms = this->histograms();

    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        os << (first ? "" : ",") << '"' << escapeJson(name)
           << "\":" << value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        os << (first ? "" : ",") << '"' << escapeJson(name)
           << "\":" << formatDouble(value);
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        os << (first ? "" : ",") << '"' << escapeJson(name)
           << "\":{\"count\":" << h.count
           << ",\"sum\":" << formatDouble(h.sum)
           << ",\"min\":" << formatDouble(h.min)
           << ",\"max\":" << formatDouble(h.max)
           << ",\"mean\":" << formatDouble(h.mean())
           << ",\"p50\":" << formatDouble(h.quantile(0.5))
           << ",\"p95\":" << formatDouble(h.quantile(0.95))
           << ",\"p99\":" << formatDouble(h.quantile(0.99)) << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

namespace {

/** Map a dotted metric name onto the Prometheus charset. */
std::string
promName(const std::string &name)
{
    std::string out = "longnail_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

std::string
Registry::toPrometheus() const
{
    auto counters = this->counters();
    auto gauges = this->gauges();
    auto histograms = this->histograms();

    std::ostringstream os;
    for (const auto &[name, value] : counters) {
        std::string prom = promName(name) + "_total";
        os << "# TYPE " << prom << " counter\n";
        os << prom << " " << value << "\n";
    }
    for (const auto &[name, value] : gauges) {
        std::string prom = promName(name);
        os << "# TYPE " << prom << " gauge\n";
        os << prom << " " << formatDouble(value) << "\n";
    }
    for (const auto &[name, h] : histograms) {
        std::string prom = promName(name);
        os << "# TYPE " << prom << " summary\n";
        os << prom << "{quantile=\"0.5\"} "
           << formatDouble(h.quantile(0.5)) << "\n";
        os << prom << "{quantile=\"0.95\"} "
           << formatDouble(h.quantile(0.95)) << "\n";
        os << prom << "{quantile=\"0.99\"} "
           << formatDouble(h.quantile(0.99)) << "\n";
        os << prom << "_sum " << formatDouble(h.sum) << "\n";
        os << prom << "_count " << h.count << "\n";
    }
    return os.str();
}

std::string
Registry::toTable() const
{
    auto counters = this->counters();
    auto gauges = this->gauges();
    auto histograms = this->histograms();

    std::ostringstream os;
    char buf[160];
    if (!counters.empty()) {
        os << "counters\n";
        for (const auto &[name, value] : counters) {
            std::snprintf(buf, sizeof(buf), "  %-44s %12llu\n",
                          name.c_str(),
                          static_cast<unsigned long long>(value));
            os << buf;
        }
    }
    if (!gauges.empty()) {
        os << "gauges\n";
        for (const auto &[name, value] : gauges) {
            std::snprintf(buf, sizeof(buf), "  %-44s %12s\n",
                          name.c_str(), formatDouble(value).c_str());
            os << buf;
        }
    }
    if (!histograms.empty()) {
        os << "histograms"
              "                                      count"
              "         mean          p50          p95"
              "          p99          max\n";
        for (const auto &[name, h] : histograms) {
            std::snprintf(buf, sizeof(buf),
                          "  %-44s %6llu %12s %12s %12s %12s %12s\n",
                          name.c_str(),
                          static_cast<unsigned long long>(h.count),
                          formatDouble(h.mean()).c_str(),
                          formatDouble(h.quantile(0.5)).c_str(),
                          formatDouble(h.quantile(0.95)).c_str(),
                          formatDouble(h.quantile(0.99)).c_str(),
                          formatDouble(h.max).c_str());
            os << buf;
        }
    }
    if (os.str().empty())
        return "(no metrics recorded)\n";
    return os.str();
}

} // namespace obs
} // namespace longnail
