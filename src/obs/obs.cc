#include "obs/obs.hh"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace longnail {
namespace obs {

namespace detail {
std::atomic<bool> enabledFlag{false};
} // namespace detail

void
setEnabled(bool on)
{
    detail::enabledFlag.store(on, std::memory_order_relaxed);
}

namespace {

/** Per-thread span nesting depth (top level = 0). */
thread_local int spanDepth = 0;

/** Small dense per-thread id, assigned on first tracing use. */
uint32_t
threadId()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t id = next.fetch_add(1);
    return id;
}

/** Process-wide trace epoch: the first steady_clock reading taken. */
std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

double
microsSince(std::chrono::steady_clock::time_point from,
            std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

/** The calling thread's request context (mutable backing store). */
RequestContext &
threadRequest()
{
    thread_local RequestContext context;
    return context;
}

} // namespace

double
traceNowUs()
{
    return microsSince(traceEpoch(), std::chrono::steady_clock::now());
}

double
traceTimeUs(std::chrono::steady_clock::time_point tp)
{
    return microsSince(traceEpoch(), tp);
}

uint32_t
traceThreadId()
{
    return threadId();
}

const RequestContext &
currentRequest()
{
    return threadRequest();
}

const std::string &
currentRid()
{
    return threadRequest().rid;
}

RequestScope::RequestScope(std::string rid, std::string trace_id,
                           std::string parent_span)
    : prev_(threadRequest())
{
    RequestContext &context = threadRequest();
    context.rid = std::move(rid);
    context.traceId = std::move(trace_id);
    context.parentSpan = std::move(parent_span);
}

RequestScope::~RequestScope()
{
    threadRequest() = std::move(prev_);
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

uint64_t
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return uint64_t(usage.ru_maxrss) / 1024; // bytes on macOS
#else
    return uint64_t(usage.ru_maxrss); // KiB on Linux
#endif
#else
    return 0;
#endif
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::string
Tracer::toChromeJson() const
{
    std::vector<TraceEvent> snapshot = events();
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    char buf[64];
    for (const TraceEvent &e : snapshot) {
        if (!first)
            out += ",";
        first = false;
        out += "\n  {\"name\": \"" + escapeJson(e.name) + "\"";
        out += ", \"ph\": \"X\", \"cat\": \"longnail\"";
        std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f", e.startUs);
        out += buf;
        std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f", e.durUs);
        out += buf;
        std::snprintf(buf, sizeof(buf),
                      ", \"pid\": 1, \"tid\": %u", e.tid);
        out += buf;
        if (!e.args.empty()) {
            out += ", \"args\": {";
            bool first_arg = true;
            for (const auto &[key, value] : e.args) {
                if (!first_arg)
                    out += ", ";
                first_arg = false;
                out += "\"" + escapeJson(key) + "\": \"" +
                       escapeJson(value) + "\"";
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

TraceSpan::TraceSpan(std::string name)
{
    if (!enabled())
        return;
    active_ = true;
    name_ = std::move(name);
    depth_ = spanDepth++;
    (void)traceEpoch(); // pin the epoch before taking the start stamp
    start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    auto end = std::chrono::steady_clock::now();
    --spanDepth;
    TraceEvent event;
    event.name = std::move(name_);
    event.startUs = microsSince(traceEpoch(), start_);
    event.durUs = microsSince(start_, end);
    event.tid = threadId();
    event.depth = depth_;
    event.args = std::move(args_);
    // Tag the span with the active request id so spans from the
    // handler thread and the worker that ran the compile correlate.
    const std::string &rid = threadRequest().rid;
    if (!rid.empty())
        event.args.emplace_back("rid", rid);
    Tracer::instance().record(std::move(event));
}

void
TraceSpan::arg(const std::string &key, const std::string &value)
{
    if (active_)
        args_.emplace_back(key, value);
}

} // namespace obs
} // namespace longnail
