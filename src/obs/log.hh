/**
 * @file
 * Compiler-wide observability, part 3: the structured event log.
 *
 * One process-global EventLog writes leveled JSONL records -- one JSON
 * object per line -- to a file (or stderr for `--log=-`). Every record
 * carries a monotone timestamp (microseconds since the process trace
 * epoch, the same clock the Tracer uses), a level, an event name, and
 * the request id of the calling thread's obs::RequestScope, so
 *
 *   grep '"rid":"c4711-1"' serve.log
 *
 * reconstructs one request end to end: client send, server dispatch,
 * admission, cache tier, every pipeline phase, reply outcome.
 *
 * Records are rate-limited per event name (a 1-second window; excess
 * records are counted and surfaced as one `log.suppressed` record when
 * the window rolls) so a pathological client cannot turn the log into
 * a disk-filling amplifier. logEvent() is one relaxed atomic load when
 * no log is open -- the default -- so instrumented paths stay at
 * near-zero cost, mirroring the obs::enabled() discipline.
 *
 * Log output is advisory: it is never part of the deterministic
 * artifact surface (timestamps and thread interleavings vary run to
 * run), which is why the determinism suites diff artifacts and stdout
 * but not log files.
 */

#ifndef LONGNAIL_OBS_LOG_HH
#define LONGNAIL_OBS_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace longnail {
namespace obs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char *logLevelName(LogLevel level);

/** One key/value field of a log record (values are logged as JSON
 * strings; callers format numbers themselves). */
using LogField = std::pair<std::string, std::string>;

class EventLog
{
  public:
    static EventLog &instance();

    /**
     * Open the log sink: a file path, or "-" for stderr. Honors
     * $LONGNAIL_LOG_LEVEL (debug|info|warn|error; default info).
     * @return false with @p error set when the file cannot be opened.
     */
    bool open(const std::string &path, std::string &error);

    /** Flush and close; logEvent() becomes a no-op again. */
    void close();

    /** True when a sink is open (one relaxed atomic load). */
    bool active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    void setLevel(LogLevel level);
    LogLevel level() const;

    /** Per-event-name records allowed per one-second window;
     * 0 = unlimited. Default 1000. */
    void setRateLimit(uint64_t max_per_sec);

    /** Write one record (drops below-level and rate-limited ones). */
    void write(LogLevel level, const std::string &event,
               const std::vector<LogField> &fields);

    uint64_t linesWritten() const;
    uint64_t linesSuppressed() const;

  private:
    EventLog() = default;

    /** Per-event-name rate-limit window. */
    struct Window
    {
        int64_t startSec = -1;
        uint64_t count = 0;
        uint64_t suppressed = 0;
    };

    void emitLocked(LogLevel level, const std::string &event,
                    const std::vector<LogField> &fields);

    std::atomic<bool> active_{false};
    std::atomic<int> level_{int(LogLevel::Info)};
    mutable std::mutex mutex_;
    std::FILE *file_ = nullptr; // owned unless == stderr
    uint64_t rateLimit_ = 1000;
    std::map<std::string, Window> windows_;
    uint64_t written_ = 0;
    uint64_t suppressed_ = 0;
};

/**
 * Instrumentation entry point: write one structured record to the
 * process event log. The current thread's request id (obs::currentRid)
 * is attached automatically. A no-op (one atomic load) when no log is
 * open.
 */
void logEvent(LogLevel level, const char *event,
              std::initializer_list<LogField> fields = {});

} // namespace obs
} // namespace longnail

#endif // LONGNAIL_OBS_LOG_HH
