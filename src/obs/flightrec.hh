/**
 * @file
 * Compiler-wide observability, part 4: the always-on flight recorder.
 *
 * A crash, a deadline cancellation, or a TV refutation in a long-lived
 * `--serve` process needs context that the event log may not have (the
 * log is opt-in and leveled); the flight recorder always has the last
 * few hundred interesting moments per thread. Each thread owns a
 * fixed-size ring buffer of small POD events; note() stamps one in a
 * few instructions plus an uncontended per-thread lock. Nothing ever
 * leaves the rings in steady state -- only a postmortem dump (crash
 * signal, LN3011 deadline cancellation, failpoint trip, LN4501 TV
 * refutation, or an explicit `dump` serve request) merges them into a
 * timestamped report.
 *
 * Why a per-thread mutex instead of a pure lock-free ring: the writer
 * is the owning thread and essentially never blocks (the lock is
 * contended only during a snapshot, which is rare and slow anyway),
 * and it keeps the recorder exact under tsan, which gates the serve
 * and obs suites. The fast path is the same shape either way: bump a
 * slot index, memcpy ~160 bytes.
 *
 * Postmortem files land in the configured directory (unset = disabled)
 * as `longnail-postmortem-<reason>-<stamp>-<pid>-<n>.log`, capped per
 * reason and in total so a crash loop cannot fill a disk.
 */

#ifndef LONGNAIL_OBS_FLIGHTREC_HH
#define LONGNAIL_OBS_FLIGHTREC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace longnail {
namespace obs {
namespace flightrec {

/** One recorded moment. POD; fixed-width fields so a ring slot is one
 * struct assignment and a crash-time dump needs no allocation. */
struct Event
{
    uint64_t seq = 0;   ///< global order of recording (1 = first)
    double tUs = 0.0;   ///< microseconds since the process trace epoch
    uint32_t tid = 0;   ///< obs::traceThreadId() of the recording thread
    char kind[24] = {}; ///< short category ("phase", "deadline", ...)
    char rid[24] = {};  ///< request id active on the thread, if any
    char msg[104] = {}; ///< free-form detail (truncated to fit)
};

/** Events retained per thread (oldest overwritten first). */
constexpr size_t ringCapacity = 256;

/** Record one event on the calling thread's ring. Always on. */
void note(const char *kind, const std::string &msg);

/** All retained events across every thread, oldest first (by seq). */
std::vector<Event> snapshot();

/** Render @p events as the postmortem text format (one line per
 * event: `#<seq> t=<us> tid=<n> [<kind>] rid=<rid> <msg>`). */
std::string renderEvents(const std::vector<Event> &events);

/**
 * Directory postmortem files are written to; "" (the default)
 * disables writing -- note() keeps recording either way.
 */
void setPostmortemDir(const std::string &dir);
std::string postmortemDir();

/**
 * Dump the current snapshot to a new postmortem file.
 * @param reason short slug naming the trigger ("crash", "deadline",
 *        "failpoint", "tv-refuted", "dump"); becomes part of the file
 *        name and the header.
 * @return the file path, or "" when disabled, capped out, or failed.
 */
std::string writePostmortem(const std::string &reason);

/**
 * Install best-effort crash handlers (SIGSEGV, SIGBUS, SIGFPE,
 * SIGILL, SIGABRT) that dump a "crash" postmortem before re-raising
 * with default disposition. Idempotent.
 */
void installCrashHandler();

/** Test hook: clear every ring and the postmortem file counters. */
void resetForTests();

} // namespace flightrec
} // namespace obs
} // namespace longnail

#endif // LONGNAIL_OBS_FLIGHTREC_HH
