#include "obs/log.hh"

#include "obs/obs.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace longnail {
namespace obs {

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "info";
}

namespace {

/** Parse a $LONGNAIL_LOG_LEVEL value; default Info. */
LogLevel
parseLevel(const char *text)
{
    if (!text)
        return LogLevel::Info;
    if (std::strcmp(text, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(text, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(text, "error") == 0)
        return LogLevel::Error;
    return LogLevel::Info;
}

} // namespace

EventLog &
EventLog::instance()
{
    static EventLog log;
    return log;
}

bool
EventLog::open(const std::string &path, std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_) {
        if (file_ != stderr)
            std::fclose(file_);
        file_ = nullptr;
        active_.store(false, std::memory_order_relaxed);
    }
    if (path == "-") {
        file_ = stderr;
    } else {
        file_ = std::fopen(path.c_str(), "w");
        if (!file_) {
            error = "cannot open log file '" + path +
                    "': " + std::strerror(errno);
            return false;
        }
    }
    level_.store(int(parseLevel(std::getenv("LONGNAIL_LOG_LEVEL"))),
                 std::memory_order_relaxed);
    windows_.clear();
    // Publish last: writers check active() before taking the mutex.
    active_.store(true, std::memory_order_release);
    return true;
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    active_.store(false, std::memory_order_relaxed);
    if (!file_)
        return;
    // Surface any counts still pending in open rate-limit windows.
    for (auto &[event, window] : windows_) {
        if (window.suppressed == 0)
            continue;
        std::fprintf(file_,
                     "{\"ts\":%.0f,\"lvl\":\"warn\","
                     "\"ev\":\"log.suppressed\",\"event\":\"%s\","
                     "\"dropped\":%llu}\n",
                     traceNowUs(), escapeJson(event).c_str(),
                     (unsigned long long)window.suppressed);
        ++written_;
    }
    windows_.clear();
    std::fflush(file_);
    if (file_ != stderr)
        std::fclose(file_);
    file_ = nullptr;
}

void
EventLog::setLevel(LogLevel level)
{
    level_.store(int(level), std::memory_order_relaxed);
}

LogLevel
EventLog::level() const
{
    return LogLevel(level_.load(std::memory_order_relaxed));
}

void
EventLog::setRateLimit(uint64_t max_per_sec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rateLimit_ = max_per_sec;
}

void
EventLog::write(LogLevel level, const std::string &event,
                const std::vector<LogField> &fields)
{
    if (!active())
        return;
    if (int(level) < level_.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    if (rateLimit_ > 0) {
        Window &window = windows_[event];
        int64_t now_sec = int64_t(traceNowUs() / 1e6);
        if (now_sec != window.startSec) {
            // Window rolled: report what the old one dropped.
            if (window.suppressed > 0) {
                std::fprintf(file_,
                             "{\"ts\":%.0f,\"lvl\":\"warn\","
                             "\"ev\":\"log.suppressed\",\"event\":\"%s\","
                             "\"dropped\":%llu}\n",
                             traceNowUs(), escapeJson(event).c_str(),
                             (unsigned long long)window.suppressed);
                ++written_;
            }
            window.startSec = now_sec;
            window.count = 0;
            window.suppressed = 0;
        }
        if (window.count >= rateLimit_) {
            ++window.suppressed;
            ++suppressed_;
            return;
        }
        ++window.count;
    }
    emitLocked(level, event, fields);
}

void
EventLog::emitLocked(LogLevel level, const std::string &event,
                     const std::vector<LogField> &fields)
{
    std::string line;
    line.reserve(96);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "{\"ts\":%.0f", traceNowUs());
    line += buf;
    line += ",\"lvl\":\"";
    line += logLevelName(level);
    line += "\",\"ev\":\"";
    line += escapeJson(event);
    line += "\"";
    const std::string &rid = currentRid();
    if (!rid.empty()) {
        line += ",\"rid\":\"";
        line += escapeJson(rid);
        line += "\"";
    }
    for (const LogField &field : fields) {
        line += ",\"";
        line += escapeJson(field.first);
        line += "\":\"";
        line += escapeJson(field.second);
        line += "\"";
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
    ++written_;
}

uint64_t
EventLog::linesWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return written_;
}

uint64_t
EventLog::linesSuppressed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return suppressed_;
}

void
logEvent(LogLevel level, const char *event,
         std::initializer_list<LogField> fields)
{
    EventLog &log = EventLog::instance();
    if (!log.active())
        return;
    log.write(level, event, std::vector<LogField>(fields));
}

} // namespace obs
} // namespace longnail
