#include "passes/sigcheck.hh"

#include <random>

#include "lil/interp.hh"
#include "support/logging.hh"

namespace longnail {
namespace passes {

using analysis::tv::TermBuilder;
using analysis::tv::TermId;
using analysis::tv::TermKind;
using analysis::tv::invalidTerm;
using ir::OpKind;

namespace {

TermKind
termKindOfComb(OpKind kind)
{
    switch (kind) {
      case OpKind::CombAdd: return TermKind::Add;
      case OpKind::CombSub: return TermKind::Sub;
      case OpKind::CombMul: return TermKind::Mul;
      case OpKind::CombDivU: return TermKind::DivU;
      case OpKind::CombDivS: return TermKind::DivS;
      case OpKind::CombModU: return TermKind::ModU;
      case OpKind::CombModS: return TermKind::ModS;
      case OpKind::CombAnd: return TermKind::And;
      case OpKind::CombOr: return TermKind::Or;
      case OpKind::CombXor: return TermKind::Xor;
      case OpKind::CombShl: return TermKind::Shl;
      case OpKind::CombShrU: return TermKind::ShrU;
      case OpKind::CombShrS: return TermKind::ShrS;
      case OpKind::CombMux: return TermKind::Mux;
      case OpKind::CombConcat: return TermKind::Concat;
      case OpKind::CombReplicate: return TermKind::Replicate;
      default:
        return TermKind::Var; // caller treats as "not a comb op"
    }
}

std::string
hex(const ApInt &v)
{
    return "0x" + v.toStringUnsigned(16);
}

/** Deterministic memory contents: the same pure address hash the
 * netlist co-simulation uses (analysis/tv/equiv.cc). */
ApInt
hashMemWord(const ApInt &addr)
{
    uint64_t x = addr.toUint64() ^ 0x5bd1e995u;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return ApInt(32, uint32_t(x));
}

lil::InterpInput
cosimInput(const lil::LilGraph &graph,
           const coredsl::ElaboratedIsa *isa, unsigned trial,
           std::mt19937 &rng)
{
    auto word = [&]() -> uint32_t {
        if (trial == 0)
            return 0;
        if (trial == 1)
            return ~0u;
        return rng();
    };
    lil::InterpInput input;
    uint32_t raw = word();
    input.instrWord =
        ApInt(32, graph.instr
                      ? (graph.instr->match | (raw & ~graph.instr->mask))
                      : raw);
    input.rs1 = ApInt(32, word());
    input.rs2 = ApInt(32, word());
    input.pc = ApInt(32, word() & ~3u);
    input.readMem = hashMemWord;
    if (!isa)
        return input;
    for (const auto &state : isa->state) {
        if (state.isCoreState || state.isConst ||
            state.kind != coredsl::StateInfo::Kind::Register)
            continue;
        std::vector<ApInt> contents;
        for (uint64_t i = 0; i < state.numElements; ++i)
            contents.push_back(
                ApInt(state.elementType.width,
                      trial == 0 ? 0
                      : trial == 1
                          ? ~0ull
                          : (uint64_t(rng()) << 32 | rng())));
        input.custRegs[state.name] = contents;
    }
    return input;
}

std::string
describeInput(const lil::InterpInput &input)
{
    return "instr_word=" + hex(input.instrWord) +
           " rs1=" + hex(input.rs1) + " rs2=" + hex(input.rs2) +
           " pc=" + hex(input.pc);
}

/** First difference between the pre-pass and post-pass effects; empty
 * when they agree (mirrors tv/equiv.cc diffEffects). */
std::string
diffResults(const lil::InterpResult &want, const lil::InterpResult &got)
{
    auto scalar = [](const char *what, const lil::InterpWrite &w,
                     const lil::InterpWrite &g) -> std::string {
        if (w.enabled != g.enabled)
            return std::string(what) + " valid: before=" +
                   (w.enabled ? "1" : "0") +
                   " after=" + (g.enabled ? "1" : "0");
        if (w.enabled && !(w.value == g.value))
            return std::string(what) + ": before=" + hex(w.value) +
                   " after=" + hex(g.value);
        return "";
    };
    std::string d = scalar("WrRD", want.rd, got.rd);
    if (d.empty())
        d = scalar("WrPC", want.pcWrite, got.pcWrite);
    if (!d.empty())
        return d;
    if (want.mem.enabled != got.mem.enabled)
        return std::string("WrMem valid: before=") +
               (want.mem.enabled ? "1" : "0") +
               " after=" + (got.mem.enabled ? "1" : "0");
    if (want.mem.enabled &&
        (!(want.mem.addr == got.mem.addr) ||
         !(want.mem.value == got.mem.value)))
        return "WrMem: before=[" + hex(want.mem.addr) + "]<-" +
               hex(want.mem.value) + " after=[" + hex(got.mem.addr) +
               "]<-" + hex(got.mem.value);
    if (want.memReadUsed != got.memReadUsed)
        return std::string("RdMem valid: before=") +
               (want.memReadUsed ? "1" : "0") +
               " after=" + (got.memReadUsed ? "1" : "0");
    if (want.memReadUsed && !(want.memReadAddr == got.memReadAddr))
        return "RdMem addr: before=" + hex(want.memReadAddr) +
               " after=" + hex(got.memReadAddr);
    for (const auto &[reg, w] : want.custWrites) {
        auto it = got.custWrites.find(reg);
        bool got_enabled =
            it != got.custWrites.end() && it->second.enabled;
        if (w.enabled != got_enabled)
            return "Wr" + reg + " valid: before=" +
                   (w.enabled ? "1" : "0") +
                   " after=" + (got_enabled ? "1" : "0");
        if (w.enabled && (!(w.value == it->second.value) ||
                          !(w.index == it->second.index)))
            return "Wr" + reg + ": before=[" + hex(w.index) + "]<-" +
                   hex(w.value) + " after=[" + hex(it->second.index) +
                   "]<-" + hex(it->second.value);
    }
    for (const auto &[reg, g] : got.custWrites) {
        if (g.enabled && !want.custWrites.count(reg))
            return "Wr" + reg + " valid: before=0 after=1";
    }
    return "";
}

} // namespace

SignatureChecker::SignatureChecker(const coredsl::ElaboratedIsa *isa,
                                   unsigned trials)
    : isa_(isa), trials_(trials)
{}

Signature
SignatureChecker::buildSignature(const lil::LilGraph &graph)
{
    TermBuilder &b = builder_;
    const TermId zero1 = b.constant(ApInt(1, 0));
    const TermId one1 = b.constant(ApInt(1, 1));

    // Pending-index terms are widened to 64 bits so chains with
    // different source widths still mux; lil operand widths are
    // pass-invariant, so the widening never hides a real width change.
    auto widen = [&](TermId t) -> TermId {
        unsigned w = b.term(t).width;
        if (w >= 64)
            return t;
        return b.make(TermKind::Concat, 64,
                      {b.constant(ApInt(64 - w, 0)), t});
    };

    Signature sig;
    std::map<const ir::Value *, TermId> values;
    auto get = [&](const ir::Value *v) { return values.at(v); };
    auto predOf = [&](const ir::Operation &op, unsigned idx) {
        return op.numOperands() > idx ? get(op.operand(idx)) : one1;
    };
    // Last-enabled-wins accumulation, exactly lil::interpret():
    // valid |= pred, payload_i = mux(pred, new_i, payload_i).
    auto accumulate = [&](EffectSig &eff, TermId pred,
                          std::vector<TermId> payload,
                          const std::vector<unsigned> &widths) {
        if (eff.valid == invalidTerm) {
            eff.valid = zero1;
            for (unsigned w : widths)
                eff.payload.push_back(b.constant(ApInt(w, 0)));
        }
        eff.valid = b.make(TermKind::Or, 1, {eff.valid, pred});
        for (size_t i = 0; i < payload.size(); ++i)
            eff.payload[i] =
                b.make(TermKind::Mux, widths[i],
                       {pred, payload[i], eff.payload[i]});
    };

    std::map<std::string, TermId> pending; // custom write index, widened

    for (const auto &op : graph.graph.ops()) {
        unsigned rw = op->numResults() ? op->result()->type.width : 1;
        OpKind kind = op->kind();
        switch (kind) {
          case OpKind::CombConstant:
            values[op->result()] =
                b.constant(op->apAttr("value"));
            break;
          case OpKind::CombExtract:
            values[op->result()] = b.extract(
                get(op->operand(0)), unsigned(op->intAttr("lo")), rw);
            break;
          case OpKind::CombICmp:
            values[op->result()] = b.icmp(
                static_cast<ir::ICmpPred>(op->intAttr("pred")),
                get(op->operand(0)), get(op->operand(1)));
            break;
          case OpKind::CombRom:
            values[op->result()] = b.rom(
                op->romAttr("values"), rw, get(op->operand(0)));
            break;
          case OpKind::LilInstrWord:
            values[op->result()] = b.var("instr_word", rw);
            break;
          case OpKind::LilReadRs1:
            values[op->result()] = b.var("rs1", rw);
            break;
          case OpKind::LilReadRs2:
            values[op->result()] = b.var("rs2", rw);
            break;
          case OpKind::LilReadPC:
            values[op->result()] = b.var("pc", rw);
            break;
          case OpKind::LilReadMem: {
            // Memory is a pure function of the address (hashMemWord in
            // co-simulation), so the data variable is keyed by the
            // canonical address term; the result is guarded exactly
            // like lil::interpret() (predicated-off reads yield 0 and
            // leave mem_read_used untouched).
            TermId addr = get(op->operand(0));
            TermId pred = predOf(*op, 1);
            accumulate(sig.memRead, pred, {addr}, {32});
            TermId data = b.var(
                "rdmem_data@" + std::to_string(addr), rw);
            values[op->result()] = b.make(
                TermKind::Mux, rw,
                {pred, data, b.constant(ApInt(rw, 0))});
            break;
          }
          case OpKind::LilReadCustReg: {
            // Keyed by register and canonical index term: reads at
            // provably equal indices share a symbol, anything else
            // stays distinct (and falls back to co-simulation).
            TermId index = get(op->operand(0));
            values[op->result()] = b.var(
                "rdreg_data:" + op->strAttr("reg") + "@" +
                    std::to_string(index), rw);
            break;
          }
          case OpKind::LilWriteRd:
            accumulate(sig.rd, predOf(*op, 1), {get(op->operand(0))},
                       {op->operand(0)->type.width});
            break;
          case OpKind::LilWritePC:
            accumulate(sig.pc, predOf(*op, 1), {get(op->operand(0))},
                       {op->operand(0)->type.width});
            break;
          case OpKind::LilWriteMem:
            accumulate(sig.mem, predOf(*op, 2),
                       {get(op->operand(0)), get(op->operand(1))},
                       {op->operand(0)->type.width,
                        op->operand(1)->type.width});
            break;
          case OpKind::LilWriteCustRegAddr:
            pending[op->strAttr("reg")] = widen(get(op->operand(0)));
            break;
          case OpKind::LilWriteCustRegData: {
            const std::string &reg = op->strAttr("reg");
            auto pit = pending.find(reg);
            TermId index = pit != pending.end()
                               ? pit->second
                               : widen(zero1);
            accumulate(sig.cust[reg], predOf(*op, 1),
                       {get(op->operand(0)), index},
                       {op->operand(0)->type.width, 64});
            break;
          }
          case OpKind::LilSink:
            break;
          default:
            if (termKindOfComb(kind) != TermKind::Var) {
                std::vector<TermId> operands;
                for (unsigned i = 0; i < op->numOperands(); ++i)
                    operands.push_back(get(op->operand(i)));
                values[op->result()] = b.make(
                    termKindOfComb(kind), rw, std::move(operands));
            } else if (op->numResults()) {
                // Unmodeled: a fresh opaque can never prove equal, so
                // the check degrades to co-simulation, never to a
                // false proof.
                values[op->result()] = b.opaque(rw);
            }
            break;
        }
    }
    return sig;
}

bool
SignatureChecker::signaturesEqual(const Signature &a,
                                  const Signature &b) const
{
    // constant() hash-conses, so the const-0 valid of an absent or
    // fully-disabled effect always interns to one id per builder. The
    // builder is non-const only because constant() may intern; use the
    // ids already present instead.
    auto effectEqual = [&](const EffectSig &x, const EffectSig &y) {
        TermId xv = x.valid;
        TermId yv = y.valid;
        if (xv == yv) {
            // Same chain (or both absent): payloads can only differ if
            // present, and then element-for-element.
            if (x.payload.size() != y.payload.size())
                return xv == invalidTerm;
            for (size_t i = 0; i < x.payload.size(); ++i)
                if (x.payload[i] != y.payload[i])
                    return false;
            return true;
        }
        // One side absent: equal iff the other side's valid folded to
        // the constant 0 (its payload is then unobservable).
        auto isConstFalse = [&](TermId t) {
            return t != invalidTerm &&
                   builder_.term(t).kind == TermKind::Const &&
                   builder_.term(t).cval.isZero();
        };
        if (xv == invalidTerm)
            return isConstFalse(yv);
        if (yv == invalidTerm)
            return isConstFalse(xv);
        return false;
    };

    if (!effectEqual(a.rd, b.rd) || !effectEqual(a.pc, b.pc) ||
        !effectEqual(a.mem, b.mem) ||
        !effectEqual(a.memRead, b.memRead))
        return false;
    for (const auto &[reg, eff] : a.cust) {
        auto it = b.cust.find(reg);
        if (!effectEqual(eff, it != b.cust.end() ? it->second
                                                 : EffectSig{}))
            return false;
    }
    for (const auto &[reg, eff] : b.cust)
        if (!a.cust.count(reg) && !effectEqual(EffectSig{}, eff))
            return false;
    return true;
}

GraphCapture
SignatureChecker::capture(const lil::LilGraph &graph)
{
    GraphCapture cap;
    cap.sig = buildSignature(graph);
    std::mt19937 rng(0x4c4e5456u); // deterministic: "LNTV"
    for (unsigned trial = 0; trial < trials_; ++trial) {
        cap.inputs.push_back(cosimInput(graph, isa_, trial, rng));
        cap.results.push_back(
            lil::interpret(graph, cap.inputs.back()));
    }
    return cap;
}

SignatureChecker::Outcome
SignatureChecker::check(const lil::LilGraph &graph,
                        const GraphCapture &before, std::string &detail)
{
    Signature after = buildSignature(graph);
    if (signaturesEqual(before.sig, after))
        return Outcome::Proved;

    for (size_t i = 0; i < before.inputs.size(); ++i) {
        lil::InterpResult got =
            lil::interpret(graph, before.inputs[i]);
        std::string diff = diffResults(before.results[i], got);
        if (diff.empty())
            continue;
        detail = "counterexample (trial " + std::to_string(i) +
                 "): " + describeInput(before.inputs[i]) + ": " + diff;
        return Outcome::Refuted;
    }
    return Outcome::CosimAgreed;
}

} // namespace passes
} // namespace longnail
