/**
 * @file
 * The -O1 optimization pipeline over LIL graphs
 * (docs/pass-pipeline.md): analysis-driven rewrites in which every
 * pass application is re-proved against the graph it transformed.
 *
 * Four passes run in order, iterated to a fixpoint:
 *
 *   simplify   constant folding via the range lattice, identity
 *              rewrites and power-of-two strength reduction
 *   cse        common-subexpression elimination keyed by the same
 *              structural discipline as the hash-consed term DAG
 *   narrow     bitwidth narrowing where range ∧ demanded-bits proves
 *              the high bits are dead
 *   dce        deletion of interface ops with constant-false
 *              predicates (the LN4104 findings) and of unused pure
 *              computations
 *
 * When validation is enabled, the pass manager captures the graph's
 * observable signature — the guarded rd/pc/mem/custom-register
 * effects, mirroring lil::interpret() — as canonical terms before
 * each pass, and compares after: term-equal signatures are a symbolic
 * proof; otherwise the golden interpreter re-runs a deterministic
 * input battery, and any divergence refutes the pass (LN4501) and
 * aborts the compile.
 */

#ifndef LONGNAIL_PASSES_PASSES_HH
#define LONGNAIL_PASSES_PASSES_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "lil/lil.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace passes {

/** Pipeline configuration. */
struct PipelineOptions
{
    /** Re-prove every pass application (set from --validate). */
    bool validate = false;
    /** Fixpoint cap: full pass-order sweeps per graph. */
    unsigned maxIterations = 4;
    /** Golden-interpreter trials when a symbolic proof falls through. */
    unsigned cosimTrials = 6;
};

/** Aggregate outcome of one pipeline run over a module. */
struct PipelineResult
{
    uint64_t totalRewrites = 0;
    /** Pass applications proved equal by the term checker. */
    unsigned proved = 0;
    /** Pass applications accepted by co-simulation agreement only. */
    unsigned cosimAgreed = 0;
    /** A pass application changed observable behavior (LN4501). */
    bool refuted = false;
    /** Spawn graphs optimized under the MUST-not-interfere verdict
     * (analysis/effects.hh: spawnIsolated()). */
    unsigned spawnOptimized = 0;
    /** Spawn graphs skipped because isolation could not be proved. */
    unsigned spawnSkipped = 0;
    /** Per-graph rewrite counts of the optimized spawn graphs, in
     * module order (PhaseReport/--report surface these). */
    std::vector<std::pair<std::string, uint64_t>> spawnGraphRewrites;
};

/**
 * Run the -O1 pipeline over every LIL graph of @p mod. Spawn graphs
 * participate only when their effect summaries prove the decoupled
 * partition cannot interfere with the in-order partition
 * (analysis/effects.hh); otherwise they compile as lowered. Diagnostics
 * (the LN4501 refutation) go to @p diags; on refutation the pipeline
 * stops immediately, leaving the module in its last-verified state
 * only up to the offending pass.
 */
PipelineResult runPipeline(lil::LilModule &mod,
                           const PipelineOptions &options,
                           DiagnosticEngine &diags);

// Individual passes, exposed for the idempotence tests. Each returns
// the number of rewrites applied.
unsigned runSimplify(lil::LilGraph &graph);
unsigned runCse(lil::LilGraph &graph);
unsigned runNarrow(lil::LilGraph &graph);
unsigned runDce(lil::LilGraph &graph);

/**
 * Write a YAML dump of the per-value range and demanded-bits states
 * of every graph in @p mod (CLI: --dump-analysis=FILE). Ordering is
 * stable: graphs in module order, values by ascending id.
 */
void writeAnalysisDump(const lil::LilModule &mod, std::ostream &os);

} // namespace passes
} // namespace longnail

#endif // LONGNAIL_PASSES_PASSES_HH
