/**
 * @file
 * simplify: range-lattice constant folding, local identity rewrites
 * and power-of-two strength reduction over one LIL graph
 * (docs/pass-pipeline.md). Every rewrite mirrors a canonicalization
 * of the term DAG (src/analysis/tv/terms.cc), so the per-pass
 * signature check proves them symbolically.
 */

#include <vector>

#include "analysis/dataflow.hh"
#include "ir/eval.hh"
#include "passes/internal.hh"
#include "passes/passes.hh"
#include "support/failpoint.hh"

namespace longnail {
namespace passes {

using ir::OpKind;

namespace {

/**
 * The deliberate miscompile behind the "passes" failpoint: XOR the
 * value of the graph's first interface write (rd, PC, memory or
 * custom register) with 1. The seeded-bug test arms the failpoint
 * and expects the per-pass check to refute the pipeline (LN4501).
 */
unsigned
injectMiscompile(ir::Graph &graph)
{
    // Snapshot: insertBefore invalidates deque iterators.
    ir::Operation *target = nullptr;
    unsigned data_index = 0;
    for (const auto &op : graph.ops()) {
        switch (op->kind()) {
          case OpKind::LilWriteRd:
          case OpKind::LilWritePC:
          case OpKind::LilWriteCustRegData:
            data_index = 0;
            break;
          case OpKind::LilWriteMem:
            data_index = 1;
            break;
          default:
            continue;
        }
        if (op->numOperands() > data_index) {
            target = op.get();
            break;
        }
    }
    if (!target)
        return 0;
    ir::Value *data = target->operand(data_index);
    unsigned w = data->type.width;
    ir::Operation *one = graph.insertBefore(
        target, OpKind::CombConstant, {}, {ir::WireType(w)});
    one->setAttr("value", ApInt(w, 1));
    ir::Operation *flipped = graph.insertBefore(
        target, OpKind::CombXor, {data, one->result()},
        {ir::WireType(w)});
    target->setOperand(data_index, flipped->result());
    return 1;
}

/** One full sweep; @return the number of rewrites applied. */
unsigned
simplifySweep(ir::Graph &graph)
{
    unsigned rewrites = 0;
    auto ranges = analysis::computeRanges(graph);
    auto used = detail::usedValues(graph);

    // Iterate a snapshot: the strength-reduction lambda inserts new
    // ops, and deque insertion invalidates live iterators. Operation
    // pointers themselves stay valid across insertions.
    std::vector<ir::Operation *> snapshot;
    snapshot.reserve(graph.ops().size());
    for (const auto &op : graph.ops())
        snapshot.push_back(op.get());

    for (ir::Operation *op : snapshot) {
        if (op->numResults() != 1 || !detail::isCombKind(op->kind()))
            continue;
        OpKind k = op->kind();
        if (k == OpKind::CombConstant || !ir::isPureComputation(k))
            continue;
        ir::Value *res = op->result();
        // Dead results are DCE's job; skipping them keeps each rewrite
        // from being recounted on a second run (idempotence).
        if (!used.count(res))
            continue;
        unsigned w = res->type.width;

        // Range-proved constants (covers all-constant folding, decided
        // comparisons, overshifts, ROM reads, ...).
        auto rit = ranges.find(res);
        if (rit != ranges.end() && rit->second.constant) {
            op->morphToConstant(*rit->second.constant, true);
            ++rewrites;
            continue;
        }

        auto constAt = [&](unsigned i) -> const ApInt * {
            return i < op->numOperands()
                       ? detail::definingConstant(op->operand(i))
                       : nullptr;
        };
        auto replaceWith = [&](ir::Value *v) {
            detail::replaceAllUses(graph, res, v);
            ++rewrites;
        };
        auto toConst = [&](const ApInt &v) {
            op->morphToConstant(v, true);
            ++rewrites;
        };
        // Strength reduction: rewrite in place to new_kind with a
        // fresh constant second operand.
        auto strength = [&](OpKind new_kind, ir::Value *data,
                            const ApInt &amount) {
            ir::Operation *c = graph.insertBefore(
                op, OpKind::CombConstant, {}, {ir::WireType(w)});
            c->setAttr("value", amount.zextOrTrunc(w));
            op->morph(new_kind, {data, c->result()});
            ++rewrites;
        };

        const ApInt *c0 = constAt(0);
        const ApInt *c1 = constAt(1);
        switch (k) {
          case OpKind::CombAdd:
            if (c0 && c0->isZero())
                replaceWith(op->operand(1));
            else if (c1 && c1->isZero())
                replaceWith(op->operand(0));
            break;
          case OpKind::CombSub:
            if (c1 && c1->isZero())
                replaceWith(op->operand(0));
            else if (op->operand(0) == op->operand(1))
                toConst(ApInt(w, 0));
            break;
          case OpKind::CombMul: {
            if ((c0 && c0->isZero()) || (c1 && c1->isZero())) {
                toConst(ApInt(w, 0));
                break;
            }
            if (c0 && *c0 == ApInt(c0->width(), 1)) {
                replaceWith(op->operand(1));
                break;
            }
            if (c1 && *c1 == ApInt(c1->width(), 1)) {
                replaceWith(op->operand(0));
                break;
            }
            for (unsigned i = 0; i < 2; ++i) {
                const ApInt *c = i == 0 ? c0 : c1;
                if (!c)
                    continue;
                if (auto s = detail::log2OfPowerOfTwo(*c)) {
                    strength(OpKind::CombShl, op->operand(1 - i),
                             ApInt(w, *s));
                    break;
                }
            }
            break;
          }
          case OpKind::CombAnd:
            if ((c0 && c0->isZero()) || (c1 && c1->isZero()))
                toConst(ApInt(w, 0));
            else if (c0 && c0->isAllOnes())
                replaceWith(op->operand(1));
            else if (c1 && c1->isAllOnes())
                replaceWith(op->operand(0));
            else if (op->operand(0) == op->operand(1))
                replaceWith(op->operand(0));
            break;
          case OpKind::CombOr:
            if ((c0 && c0->isAllOnes()) || (c1 && c1->isAllOnes()))
                toConst(ApInt::allOnes(w));
            else if (c0 && c0->isZero())
                replaceWith(op->operand(1));
            else if (c1 && c1->isZero())
                replaceWith(op->operand(0));
            else if (op->operand(0) == op->operand(1))
                replaceWith(op->operand(0));
            break;
          case OpKind::CombXor:
            if (c0 && c0->isZero())
                replaceWith(op->operand(1));
            else if (c1 && c1->isZero())
                replaceWith(op->operand(0));
            else if (op->operand(0) == op->operand(1))
                toConst(ApInt(w, 0));
            break;
          case OpKind::CombShl:
          case OpKind::CombShrU:
          case OpKind::CombShrS:
            if (!c1)
                break;
            if (detail::clampedShiftAmount(*c1, w) == 0) {
                replaceWith(op->operand(0));
            } else if (k != OpKind::CombShrS &&
                       detail::clampedShiftAmount(*c1, w) >= w) {
                // Overshift discards every data bit (shrs keeps the
                // sign fill, so it stays untouched).
                toConst(ApInt(w, 0));
            }
            break;
          case OpKind::CombMux:
            if (op->numOperands() != 3)
                break;
            if (c0)
                replaceWith(c0->isZero() ? op->operand(2)
                                         : op->operand(1));
            else if (op->operand(1) == op->operand(2))
                replaceWith(op->operand(1));
            break;
          case OpKind::CombDivU:
            if (!c1)
                break;
            if (*c1 == ApInt(c1->width(), 1)) {
                replaceWith(op->operand(0));
            } else if (auto s = detail::log2OfPowerOfTwo(*c1)) {
                strength(OpKind::CombShrU, op->operand(0),
                         ApInt(w, *s));
            }
            break;
          case OpKind::CombModU:
            if (!c1)
                break;
            if (*c1 == ApInt(c1->width(), 1)) {
                toConst(ApInt(w, 0));
            } else if (auto s = detail::log2OfPowerOfTwo(*c1)) {
                // x mod 2^s == x & (2^s - 1)
                strength(OpKind::CombAnd, op->operand(0),
                         ApInt::allOnes(*s).zext(w));
            }
            break;
          case OpKind::CombReplicate:
            if (w == 1 && op->numOperands() == 1)
                replaceWith(op->operand(0));
            break;
          default:
            break;
        }
    }
    return rewrites;
}

} // namespace

unsigned
runSimplify(lil::LilGraph &graph)
{
    unsigned total = 0;
    if (failpoint::fire("passes") != failpoint::Mode::Off)
        total += injectMiscompile(graph.graph);

    // Sweep to a local fixpoint: a folded value can decide a
    // comparison that folds the next value, and idempotence
    // (run(run(g)) == run(g)) requires finishing the chain here.
    for (;;) {
        unsigned n = simplifySweep(graph.graph);
        total += n;
        if (!n)
            break;
    }
    return total;
}

} // namespace passes
} // namespace longnail
