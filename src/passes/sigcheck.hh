/**
 * @file
 * Per-pass translation validation for the -O1 pipeline
 * (docs/pass-pipeline.md).
 *
 * A LIL graph's *observable signature* is the set of guarded
 * architectural effects lil::interpret() produces — rd/pc/mem writes
 * with their last-enabled-wins mux chains, the memory-read address
 * strobe and the per-register custom-state writes — captured as
 * canonical terms in a shared tv::TermBuilder. The checker captures
 * the signature (plus a battery of concrete interpreter runs) before
 * a pass mutates the graph, rebuilds it afterwards, and decides:
 *
 *   Proved       every signature component reduced to the same term
 *   CosimAgreed  terms differ, but the interpreter battery agrees on
 *                every trial (symbolic gap, no behavioral evidence)
 *   Refuted      some trial diverges: the pass changed architecture-
 *                visible behavior (reported as LN4501)
 */

#ifndef LONGNAIL_PASSES_SIGCHECK_HH
#define LONGNAIL_PASSES_SIGCHECK_HH

#include <map>
#include <string>
#include <vector>

#include "analysis/tv/terms.hh"
#include "coredsl/sema.hh"
#include "lil/interp.hh"
#include "lil/lil.hh"

namespace longnail {
namespace passes {

/** One predicated effect chain: or-of-preds valid + muxed payloads. */
struct EffectSig
{
    analysis::tv::TermId valid = analysis::tv::invalidTerm;
    std::vector<analysis::tv::TermId> payload;
};

/** The full observable signature of one LIL graph. */
struct Signature
{
    EffectSig rd;      ///< payload: value
    EffectSig pc;      ///< payload: value
    EffectSig mem;     ///< payload: addr, value
    EffectSig memRead; ///< payload: addr (valid = mem_read_used)
    /** Per custom register; payload: value, index (widened). */
    std::map<std::string, EffectSig> cust;
};

/** Everything recorded about a graph before a pass ran. */
struct GraphCapture
{
    Signature sig;
    std::vector<lil::InterpInput> inputs;
    std::vector<lil::InterpResult> results;
};

class SignatureChecker
{
  public:
    enum class Outcome
    {
        Proved,
        CosimAgreed,
        Refuted,
    };

    /** @p isa may be null (no custom-register state is populated). */
    SignatureChecker(const coredsl::ElaboratedIsa *isa, unsigned trials);

    GraphCapture capture(const lil::LilGraph &graph);

    /**
     * Compare @p graph (post-pass) against @p before. On Refuted,
     * @p detail describes the first divergence for the LN4501 text.
     */
    Outcome check(const lil::LilGraph &graph, const GraphCapture &before,
                  std::string &detail);

  private:
    Signature buildSignature(const lil::LilGraph &graph);
    bool signaturesEqual(const Signature &a, const Signature &b) const;

    const coredsl::ElaboratedIsa *isa_;
    unsigned trials_;
    /** Shared across before/after so equal semantics intern to equal
     * ids (tv hash-consing discipline). */
    analysis::tv::TermBuilder builder_;
};

} // namespace passes
} // namespace longnail

#endif // LONGNAIL_PASSES_SIGCHECK_HH
