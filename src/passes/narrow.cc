/**
 * @file
 * narrow: bitwidth narrowing driven by the meet of the range lattice
 * (forward: the value is provably small) and the demanded-bits lattice
 * (backward: nobody looks at the high bits). A W-bit op whose
 * effective width k is smaller is rewritten to
 *
 *     concat(0_{W-k}, op_k(extract(a, 0, k), extract(b, 0, k)))
 *
 * keeping the original W-bit result value so users are untouched. The
 * candidate kinds are exactly those whose low k result bits depend
 * only on the low k operand bits (ripple-carry arithmetic, bitwise
 * logic, mux, and left shift — which feeds zeros from below).
 */

#include <vector>

#include "analysis/dataflow.hh"
#include "passes/internal.hh"
#include "passes/passes.hh"

namespace longnail {
namespace passes {

using ir::OpKind;

namespace {

ApInt
lowMask(unsigned width, unsigned k)
{
    if (k == 0)
        return ApInt(width, 0);
    if (k >= width)
        return ApInt::allOnes(width);
    return ApInt::allOnes(k).zext(width);
}

/** Bits needed to represent every value the range allows. */
unsigned
rangeBits(const analysis::ValueRange &range, unsigned width)
{
    if (range.umax >= analysis::ValueRange::maxFor(width))
        return width;
    return ApInt(64, range.umax).activeBits();
}

unsigned
narrowSweep(ir::Graph &graph)
{
    unsigned rewrites = 0;
    auto ranges = analysis::computeRanges(graph);
    auto demanded = analysis::computeDemandedBits(graph);

    // Iterate a snapshot: the extract/concat scaffolding is inserted
    // mid-sweep, and deque insertion invalidates live iterators.
    std::vector<ir::Operation *> snapshot;
    snapshot.reserve(graph.ops().size());
    for (const auto &op : graph.ops())
        snapshot.push_back(op.get());

    for (ir::Operation *op : snapshot) {
        OpKind k = op->kind();
        bool is_shift = k == OpKind::CombShl;
        bool is_mux = k == OpKind::CombMux;
        bool candidate =
            k == OpKind::CombAdd || k == OpKind::CombSub ||
            k == OpKind::CombMul || k == OpKind::CombAnd ||
            k == OpKind::CombOr || k == OpKind::CombXor || is_shift ||
            is_mux;
        if (!candidate || op->numResults() != 1)
            continue;
        ir::Value *res = op->result();
        unsigned w = res->type.width;
        if (w <= 1)
            continue;

        auto dit = demanded.find(res);
        if (dit == demanded.end() || !dit->second.anyDemanded())
            continue; // dead or unanalyzed: DCE's job, not ours
        ApInt need = dit->second.mask;
        auto rit = ranges.find(res);
        if (rit != ranges.end())
            need = need & lowMask(w, rangeBits(rit->second, w));
        unsigned eff = need.activeBits();
        if (eff == 0 || eff >= w)
            continue;

        // Data operands get low-k extracts; the mux condition and the
        // shift amount keep their own widths (the amount clamps to the
        // value width at either width, and an overshift zeroes the low
        // k bits on both sides).
        std::vector<ir::Value *> narrow_operands;
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            ir::Value *v = op->operand(i);
            bool passthrough = (is_mux && i == 0) || (is_shift && i == 1);
            if (passthrough) {
                narrow_operands.push_back(v);
                continue;
            }
            ir::Operation *ex = graph.insertBefore(
                op, OpKind::CombExtract, {v},
                {ir::WireType(eff)});
            ex->setAttr("lo", int64_t(0));
            narrow_operands.push_back(ex->result());
        }
        ir::Operation *narrow_op = graph.insertBefore(
            op, k, std::move(narrow_operands),
            {ir::WireType(eff)});
        ir::Operation *zero = graph.insertBefore(
            op, OpKind::CombConstant, {},
            {ir::WireType(w - eff)});
        zero->setAttr("value", ApInt(w - eff, 0));
        op->morph(OpKind::CombConcat,
                  {zero->result(), narrow_op->result()});
        ++rewrites;
    }
    return rewrites;
}

} // namespace

unsigned
runNarrow(lil::LilGraph &graph)
{
    // Fixpoint: a narrowed op can sharpen the range of its users (the
    // concat's high part is now a known zero), enabling further
    // narrowing. Widths strictly decrease, so this terminates.
    unsigned total = 0;
    for (;;) {
        unsigned n = narrowSweep(graph.graph);
        total += n;
        if (!n)
            break;
    }
    return total;
}

} // namespace passes
} // namespace longnail
