/**
 * @file
 * The pass manager: runs simplify -> cse -> narrow -> dce over every
 * non-spawn LIL graph until a full sweep applies no rewrite (bounded
 * by PipelineOptions::maxIterations). Each pass application gets a
 * trace span, a passes.<name>.rewrites counter, a LONGNAIL_VERIFY_IR
 * re-verification, and — under --validate — a signature check that
 * re-proves the transform (docs/pass-pipeline.md).
 */

#include <memory>

#include "analysis/verifier.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "passes/passes.hh"
#include "passes/sigcheck.hh"

namespace longnail {
namespace passes {

namespace {

struct PassEntry
{
    const char *name;
    unsigned (*run)(lil::LilGraph &);
};

constexpr PassEntry pipelineOrder[] = {
    {"simplify", runSimplify},
    {"cse", runCse},
    {"narrow", runNarrow},
    {"dce", runDce},
};

} // namespace

PipelineResult
runPipeline(lil::LilModule &mod, const PipelineOptions &options,
            DiagnosticEngine &diags)
{
    PipelineResult res;
    std::unique_ptr<SignatureChecker> checker;
    if (options.validate)
        checker = std::make_unique<SignatureChecker>(
            mod.isa, options.cosimTrials);

    for (auto &graph_ptr : mod.graphs) {
        lil::LilGraph &graph = *graph_ptr;
        if (graph.hasSpawnOps()) {
            // Spawn semantics decouple from the parent instruction;
            // the interpreter-backed signature does not model that
            // timing split, so these graphs compile as lowered.
            obs::count("passes.skipped_spawn");
            continue;
        }

        for (unsigned iter = 0; iter < options.maxIterations; ++iter) {
            unsigned sweep_rewrites = 0;
            for (const PassEntry &pass : pipelineOrder) {
                obs::TraceSpan span(std::string("pass.") + pass.name);
                span.arg("graph", graph.name);

                GraphCapture before;
                if (checker)
                    before = checker->capture(graph);

                unsigned n = pass.run(graph);
                if (n)
                    obs::count(
                        (std::string("passes.") + pass.name +
                         ".rewrites").c_str(), n);
                analysis::verifyAfterTransform(
                    graph.graph,
                    (std::string("pass.") + pass.name).c_str());
                sweep_rewrites += n;
                if (!n || !checker)
                    continue;

                std::string detail;
                switch (checker->check(graph, before, detail)) {
                  case SignatureChecker::Outcome::Proved:
                    ++res.proved;
                    break;
                  case SignatureChecker::Outcome::CosimAgreed:
                    // Deliberately silent (no LN4502 here): the
                    // end-to-end netlist proof still covers the
                    // optimized graph, and the catalog compiles with
                    // --Werror.
                    ++res.cosimAgreed;
                    obs::count("passes.cosim_agreed");
                    break;
                  case SignatureChecker::Outcome::Refuted:
                    diags.error(
                        SourceLoc{}, "LN4501",
                        "'" + graph.name + "': pass '" + pass.name +
                            "' changed observable behavior; " + detail);
                    res.refuted = true;
                    res.totalRewrites += sweep_rewrites;
                    return res;
                }
            }
            res.totalRewrites += sweep_rewrites;
            if (!sweep_rewrites)
                break;
        }
    }
    return res;
}

} // namespace passes
} // namespace longnail
