/**
 * @file
 * The pass manager: runs simplify -> cse -> narrow -> dce over every
 * LIL graph until a full sweep applies no rewrite (bounded by
 * PipelineOptions::maxIterations). Spawn graphs participate only when
 * the effect summaries (analysis/effects.hh) prove the decoupled
 * partition cannot interfere with the in-order partition; otherwise
 * they compile as lowered. Each pass application gets a
 * trace span, a passes.<name>.rewrites counter, a LONGNAIL_VERIFY_IR
 * re-verification, and — under --validate — a signature check that
 * re-proves the transform (docs/pass-pipeline.md).
 */

#include <memory>

#include "analysis/effects.hh"
#include "analysis/verifier.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "passes/passes.hh"
#include "passes/sigcheck.hh"

namespace longnail {
namespace passes {

namespace {

struct PassEntry
{
    const char *name;
    unsigned (*run)(lil::LilGraph &);
};

constexpr PassEntry pipelineOrder[] = {
    {"simplify", runSimplify},
    {"cse", runCse},
    {"narrow", runNarrow},
    {"dce", runDce},
};

} // namespace

PipelineResult
runPipeline(lil::LilModule &mod, const PipelineOptions &options,
            DiagnosticEngine &diags)
{
    PipelineResult res;
    std::unique_ptr<SignatureChecker> checker;
    if (options.validate)
        checker = std::make_unique<SignatureChecker>(
            mod.isa, options.cosimTrials);

    for (auto &graph_ptr : mod.graphs) {
        lil::LilGraph &graph = *graph_ptr;
        bool spawn_graph = graph.hasSpawnOps();
        if (spawn_graph) {
            // Spawn semantics decouple from the parent instruction —
            // a timing split the interpreter-backed signature does
            // not model. When the effect summaries prove the
            // decoupled partition cannot interfere with the in-order
            // partition (MUST-not-interfere, analysis/effects.hh),
            // the untimed signature is faithful again and the passes
            // may run; otherwise the graph compiles as lowered.
            analysis::GraphEffects fx =
                analysis::summarizeGraph(graph.graph);
            if (!analysis::spawnIsolated(fx)) {
                obs::count("passes.skipped_spawn");
                ++res.spawnSkipped;
                continue;
            }
            obs::count("passes.spawn_optimized");
            ++res.spawnOptimized;
        }
        uint64_t graph_rewrites = 0;

        for (unsigned iter = 0; iter < options.maxIterations; ++iter) {
            unsigned sweep_rewrites = 0;
            for (const PassEntry &pass : pipelineOrder) {
                obs::TraceSpan span(std::string("pass.") + pass.name);
                span.arg("graph", graph.name);

                GraphCapture before;
                if (checker)
                    before = checker->capture(graph);

                unsigned n = pass.run(graph);
                if (n)
                    obs::count(
                        (std::string("passes.") + pass.name +
                         ".rewrites").c_str(), n);
                analysis::verifyAfterTransform(
                    graph.graph,
                    (std::string("pass.") + pass.name).c_str());
                sweep_rewrites += n;
                if (!n || !checker)
                    continue;

                std::string detail;
                switch (checker->check(graph, before, detail)) {
                  case SignatureChecker::Outcome::Proved:
                    ++res.proved;
                    break;
                  case SignatureChecker::Outcome::CosimAgreed:
                    // Deliberately silent (no LN4502 here): the
                    // end-to-end netlist proof still covers the
                    // optimized graph, and the catalog compiles with
                    // --Werror.
                    ++res.cosimAgreed;
                    obs::count("passes.cosim_agreed");
                    break;
                  case SignatureChecker::Outcome::Refuted:
                    diags.error(
                        SourceLoc{}, "LN4501",
                        "'" + graph.name + "': pass '" + pass.name +
                            "' changed observable behavior; " + detail);
                    res.refuted = true;
                    res.totalRewrites += sweep_rewrites;
                    return res;
                }
            }
            res.totalRewrites += sweep_rewrites;
            graph_rewrites += sweep_rewrites;
            if (!sweep_rewrites)
                break;
        }
        if (spawn_graph)
            res.spawnGraphRewrites.emplace_back(graph.name,
                                                graph_rewrites);
    }
    return res;
}

} // namespace passes
} // namespace longnail
