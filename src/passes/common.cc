#include "passes/internal.hh"

#include <algorithm>

namespace longnail {
namespace passes {
namespace detail {

using ir::OpKind;

void
replaceAllUses(ir::Graph &graph, ir::Value *from, ir::Value *to)
{
    for (const auto &op : graph.ops()) {
        op->replaceUsesOf(from, to);
        if (op->subgraph())
            replaceAllUses(*op->subgraph(), from, to);
    }
}

namespace {

void
collectUsed(const ir::Graph &graph, std::set<const ir::Value *> &used)
{
    for (const auto &op : graph.ops()) {
        for (const ir::Value *v : op->operands())
            used.insert(v);
        if (op->subgraph())
            collectUsed(*op->subgraph(), used);
    }
}

} // namespace

std::set<const ir::Value *>
usedValues(const ir::Graph &graph)
{
    std::set<const ir::Value *> used;
    collectUsed(graph, used);
    return used;
}

const ApInt *
definingConstant(const ir::Value *v)
{
    const ir::Operation *def = v->owner;
    if (def &&
        (def->kind() == OpKind::CombConstant ||
         def->kind() == OpKind::HwConstant) &&
        def->hasAttr("value"))
        return &def->apAttr("value");
    return nullptr;
}

std::optional<unsigned>
log2OfPowerOfTwo(const ApInt &value)
{
    unsigned k = value.activeBits();
    if (k == 0 || value != ApInt::oneBit(value.width(), k - 1))
        return std::nullopt;
    return k - 1;
}

bool
isCombKind(ir::OpKind kind)
{
    switch (kind) {
      case OpKind::CombConstant:
      case OpKind::CombAdd:
      case OpKind::CombSub:
      case OpKind::CombMul:
      case OpKind::CombDivU:
      case OpKind::CombDivS:
      case OpKind::CombModU:
      case OpKind::CombModS:
      case OpKind::CombAnd:
      case OpKind::CombOr:
      case OpKind::CombXor:
      case OpKind::CombShl:
      case OpKind::CombShrU:
      case OpKind::CombShrS:
      case OpKind::CombICmp:
      case OpKind::CombMux:
      case OpKind::CombExtract:
      case OpKind::CombConcat:
      case OpKind::CombReplicate:
      case OpKind::CombRom:
        return true;
      default:
        return false;
    }
}

unsigned
clampedShiftAmount(const ApInt &amount, unsigned value_width)
{
    uint64_t raw = amount.activeBits() > 32
                       ? value_width
                       : amount.zextOrTrunc(64).toUint64();
    return unsigned(std::min<uint64_t>(raw, value_width));
}

} // namespace detail
} // namespace passes
} // namespace longnail
