/**
 * @file
 * --dump-analysis=FILE: a YAML dump of the per-value static-analysis
 * states (range lattice + demanded-bits lattice) of every LIL graph.
 * Ordering is stable — graphs in module order, values by ascending
 * id — so dumps diff cleanly across runs and cores.
 */

#include <map>
#include <ostream>
#include <vector>

#include "analysis/dataflow.hh"
#include "passes/passes.hh"

namespace longnail {
namespace passes {

namespace {

void
dumpGraph(const lil::LilGraph &graph, std::ostream &os)
{
    auto ranges = analysis::computeRanges(graph.graph);
    auto demanded = analysis::computeDemandedBits(graph.graph);

    // Values by ascending id; ids are assigned in creation order and
    // unique per graph.
    std::map<unsigned, std::pair<const ir::Value *, const char *>> rows;
    for (const auto &op : graph.graph.ops())
        for (unsigned r = 0; r < op->numResults(); ++r)
            rows[op->result(r)->id] = {op->result(r), op->name()};

    os << "  - graph: \"" << graph.name << "\"\n";
    os << "    values:\n";
    if (rows.empty())
        os << "      []\n";
    for (const auto &[id, row] : rows) {
        const ir::Value *v = row.first;
        unsigned width = v->type.width;
        os << "      - id: " << id << "\n";
        os << "        op: \"" << row.second << "\"\n";
        os << "        width: " << width << "\n";

        analysis::ValueRange range = analysis::ValueRange::full(width);
        if (auto it = ranges.find(v); it != ranges.end())
            range = it->second;
        os << "        range: {umin: " << range.umin
           << ", umax: " << range.umax << "}\n";
        if (range.constant)
            os << "        const: 0x"
               << range.constant->toStringUnsigned(16) << "\n";

        ApInt mask = ApInt(width, 0);
        if (auto it = demanded.find(v); it != demanded.end())
            mask = it->second.mask;
        os << "        demanded: 0x" << mask.toStringUnsigned(16)
           << "\n";
    }
}

} // namespace

void
writeAnalysisDump(const lil::LilModule &mod, std::ostream &os)
{
    os << "# longnail --dump-analysis: per-value range and\n";
    os << "# demanded-bits states (docs/pass-pipeline.md)\n";
    os << "analysis:\n";
    if (mod.graphs.empty())
        os << "  []\n";
    for (const auto &graph : mod.graphs)
        dumpGraph(*graph, os);
}

} // namespace passes
} // namespace longnail
