/**
 * @file
 * --dump-analysis=FILE: a YAML dump of the per-value static-analysis
 * states (range lattice + demanded-bits lattice) and the per-graph
 * effect summaries (analysis/effects.hh) of every LIL graph.
 * Ordering is stable — graphs in module order, values by ascending
 * id, effect rows by key order — so dumps diff cleanly across runs
 * and cores.
 */

#include <map>
#include <ostream>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/effects.hh"
#include "passes/passes.hh"

namespace longnail {
namespace passes {

namespace {

void
dumpGraph(const lil::LilGraph &graph, std::ostream &os)
{
    auto ranges = analysis::computeRanges(graph.graph);
    auto demanded = analysis::computeDemandedBits(graph.graph);

    // Values by ascending id; ids are assigned in creation order and
    // unique per graph.
    std::map<unsigned, std::pair<const ir::Value *, const char *>> rows;
    for (const auto &op : graph.graph.ops())
        for (unsigned r = 0; r < op->numResults(); ++r)
            rows[op->result(r)->id] = {op->result(r), op->name()};

    os << "  - graph: \"" << graph.name << "\"\n";
    os << "    values:\n";
    if (rows.empty())
        os << "      []\n";
    for (const auto &[id, row] : rows) {
        const ir::Value *v = row.first;
        unsigned width = v->type.width;
        os << "      - id: " << id << "\n";
        os << "        op: \"" << row.second << "\"\n";
        os << "        width: " << width << "\n";

        analysis::ValueRange range = analysis::ValueRange::full(width);
        if (auto it = ranges.find(v); it != ranges.end())
            range = it->second;
        os << "        range: {umin: " << range.umin
           << ", umax: " << range.umax << "}\n";
        if (range.constant)
            os << "        const: 0x"
               << range.constant->toStringUnsigned(16) << "\n";

        ApInt mask = ApInt(width, 0);
        if (auto it = demanded.find(v); it != demanded.end())
            mask = it->second.mask;
        os << "        demanded: 0x" << mask.toStringUnsigned(16)
           << "\n";
    }
}

const char *
boolStr(bool b)
{
    return b ? "true" : "false";
}

void
dumpEffectMap(const std::map<std::string, analysis::Effect> &m,
              const char *key, const char *field, std::ostream &os)
{
    if (m.empty())
        return;
    os << "        " << key << ":\n";
    for (const auto &[name, fx] : m)
        os << "          - {" << field << ": \"" << name
           << "\", may: " << boolStr(fx.may)
           << ", must: " << boolStr(fx.must) << "}\n";
}

void
dumpMemEffects(const std::vector<analysis::MemEffect> &v,
               const char *key, std::ostream &os)
{
    if (v.empty())
        return;
    os << "        " << key << ":\n";
    for (const auto &m : v)
        os << "          - {lo: " << m.lo << ", hi: " << m.hi
           << ", may: " << boolStr(m.may)
           << ", must: " << boolStr(m.must) << "}\n";
}

void
dumpSummary(const analysis::EffectSummary &s, const char *partition,
            std::ostream &os)
{
    os << "      " << partition << ":\n";
    if (s.regsRead.empty() && s.regsWritten.empty() &&
        s.memReads.empty() && s.memWrites.empty() &&
        s.ifaceReads.empty() && s.ifaceWrites.empty()) {
        os << "        {}\n";
        return;
    }
    dumpEffectMap(s.regsRead, "regs_read", "reg", os);
    dumpEffectMap(s.regsWritten, "regs_written", "reg", os);
    dumpMemEffects(s.memReads, "mem_reads", os);
    dumpMemEffects(s.memWrites, "mem_writes", os);
    dumpEffectMap(s.ifaceReads, "iface_reads", "port", os);
    dumpEffectMap(s.ifaceWrites, "iface_writes", "port", os);
}

void
dumpEffects(const lil::LilGraph &graph, std::ostream &os)
{
    analysis::GraphEffects fx = analysis::summarizeGraph(graph.graph);
    os << "    effects:\n";
    os << "      has_spawn: " << boolStr(fx.hasSpawn) << "\n";
    if (fx.hasSpawn)
        os << "      spawn_isolated: "
           << boolStr(analysis::spawnIsolated(fx)) << "\n";
    dumpSummary(fx.main, "main", os);
    if (fx.hasSpawn)
        dumpSummary(fx.spawn, "spawn", os);
}

} // namespace

void
writeAnalysisDump(const lil::LilModule &mod, std::ostream &os)
{
    os << "# longnail --dump-analysis: per-value range and\n";
    os << "# demanded-bits states (docs/pass-pipeline.md)\n";
    os << "analysis:\n";
    if (mod.graphs.empty())
        os << "  []\n";
    for (const auto &graph : mod.graphs) {
        dumpGraph(*graph, os);
        dumpEffects(*graph, os);
    }
}

} // namespace passes
} // namespace longnail
