/**
 * @file
 * dce: dead-code elimination over one LIL graph. Three cooperating
 * steps, iterated to a fixpoint:
 *
 *  - interface writes whose predicate is provably constant-false (the
 *    LN4104 lint findings) are deleted outright — lil::interpret()
 *    never applies them;
 *  - a lil.read_mem whose predicate is constant-false becomes the
 *    constant 0 its interpretation already is (the read itself is
 *    observable through mem_read_used, so only the provably-disabled
 *    form may disappear);
 *  - pure computations and input/register reads with no remaining
 *    users are swept, including lil.write_cust_reg_addr ops whose
 *    register has lost every data write.
 *
 * customRegsRead/Written are recomputed at the end so the scheduler
 * and the core's hazard logic see the post-DCE interface.
 */

#include <set>
#include <string>

#include "analysis/dataflow.hh"
#include "ir/eval.hh"
#include "passes/internal.hh"
#include "passes/passes.hh"

namespace longnail {
namespace passes {

using ir::OpKind;

namespace {

/** Index of the predicate operand of an interface op, or -1. */
int
predOperandIndex(const ir::Operation &op)
{
    switch (op.kind()) {
      case OpKind::LilWriteRd:
      case OpKind::LilWritePC:
      case OpKind::LilWriteCustRegData:
        return op.numOperands() == 2 ? 1 : -1;
      case OpKind::LilWriteMem:
        return op.numOperands() == 3 ? 2 : -1;
      case OpKind::LilReadMem:
        return op.numOperands() == 2 ? 1 : -1;
      default:
        return -1;
    }
}

/** True for result-producing ops that are removable when unused. */
bool
isRemovableWhenUnused(OpKind kind)
{
    if (ir::isPureComputation(kind))
        return true;
    switch (kind) {
      // Reading an input or a custom register has no observable
      // effect in lil::interpret(); lil.read_mem does (mem_read_used)
      // and must survive.
      case OpKind::LilInstrWord:
      case OpKind::LilReadRs1:
      case OpKind::LilReadRs2:
      case OpKind::LilReadPC:
      case OpKind::LilReadCustReg:
        return true;
      default:
        return false;
    }
}

unsigned
dceSweep(ir::Graph &graph)
{
    unsigned removed = 0;
    auto ranges = analysis::computeRanges(graph);

    // Disabled interface ops first: writes disappear, reads become
    // the 0 they already evaluate to. Collect before mutating: the
    // removal below invalidates the op list being walked.
    std::set<const ir::Operation *> disabled_writes;
    for (const auto &op : graph.ops()) {
        int pi = predOperandIndex(*op);
        if (pi < 0)
            continue;
        auto rit = ranges.find(op->operand(unsigned(pi)));
        if (rit == ranges.end() || !rit->second.isConstZero())
            continue;
        if (op->kind() == OpKind::LilReadMem)
            op->morphToConstant(ApInt(op->result()->type.width, 0),
                                true);
        else
            disabled_writes.insert(op.get());
        ++removed;
    }
    graph.removeIf([&](const ir::Operation &o) {
        return disabled_writes.count(&o) != 0;
    });

    // Address writes for registers that no longer have any data write
    // are unobservable (the pending index only matters to a write).
    std::set<std::string> data_written;
    for (const auto &op : graph.ops())
        if (op->kind() == OpKind::LilWriteCustRegData)
            data_written.insert(op->strAttr("reg"));
    graph.removeIf([&](const ir::Operation &o) {
        bool dead = o.kind() == OpKind::LilWriteCustRegAddr &&
                    !data_written.count(o.strAttr("reg"));
        removed += dead;
        return dead;
    });

    // Unused pure computations and reads, innermost-first via
    // iteration (removing a user can free its operands' defs).
    for (;;) {
        auto used = detail::usedValues(graph);
        unsigned swept = 0;
        graph.removeIf([&](const ir::Operation &o) {
            if (!isRemovableWhenUnused(o.kind()))
                return false;
            for (unsigned r = 0; r < o.numResults(); ++r)
                if (used.count(o.result(r)))
                    return false;
            ++swept;
            return true;
        });
        if (!swept)
            break;
        removed += swept;
    }
    return removed;
}

} // namespace

unsigned
runDce(lil::LilGraph &graph)
{
    unsigned total = 0;
    for (;;) {
        unsigned n = dceSweep(graph.graph);
        total += n;
        if (!n)
            break;
    }

    // Keep the cross-layer register interface honest after removals.
    std::set<std::string> reads, writes;
    for (const auto &op : graph.graph.ops()) {
        if (op->kind() == OpKind::LilReadCustReg)
            reads.insert(op->strAttr("reg"));
        if (op->kind() == OpKind::LilWriteCustRegData)
            writes.insert(op->strAttr("reg"));
    }
    graph.customRegsRead.assign(reads.begin(), reads.end());
    graph.customRegsWritten.assign(writes.begin(), writes.end());
    return total;
}

} // namespace passes
} // namespace longnail
