/**
 * @file
 * Helpers shared by the pass implementations (not part of the public
 * passes.hh surface).
 */

#ifndef LONGNAIL_PASSES_INTERNAL_HH
#define LONGNAIL_PASSES_INTERNAL_HH

#include <optional>
#include <set>

#include "ir/ir.hh"
#include "support/apint.hh"

namespace longnail {
namespace passes {
namespace detail {

/** Rewrite every use of @p from (including in subgraphs) to @p to. */
void replaceAllUses(ir::Graph &graph, ir::Value *from, ir::Value *to);

/** Every value appearing as an operand somewhere in @p graph. */
std::set<const ir::Value *> usedValues(const ir::Graph &graph);

/** The constant @p v is defined by, if its defining op is one. */
const ApInt *definingConstant(const ir::Value *v);

/** log2 of a power-of-two constant, nullopt otherwise. */
std::optional<unsigned> log2OfPowerOfTwo(const ApInt &value);

/** True for comb.* dialect kinds. */
bool isCombKind(ir::OpKind kind);

/**
 * The effective shift amount of a constant, clamped the way
 * rtl/sim.cc and ir/eval.cc clamp it (amounts with more than 32
 * active bits saturate to the value width; never exceeds the width).
 */
unsigned clampedShiftAmount(const ApInt &amount, unsigned value_width);

} // namespace detail
} // namespace passes
} // namespace longnail

#endif // LONGNAIL_PASSES_INTERNAL_HH
