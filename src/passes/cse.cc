/**
 * @file
 * cse: common-subexpression elimination over the pure comb ops of one
 * LIL graph. The structural key follows the same discipline as the
 * hash-consed term DAG (src/analysis/tv/terms.cc): kind, attributes,
 * operand identity — with the operands of commutative kinds sorted —
 * and the result width. A single in-order sweep with immediate
 * replacement reaches the value-numbering fixpoint on the straight-line
 * graphs LIL produces, so the pass is idempotent by construction.
 */

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ir/eval.hh"
#include "passes/internal.hh"
#include "passes/passes.hh"

namespace longnail {
namespace passes {

using ir::OpKind;

namespace {

bool
isCommutative(OpKind kind)
{
    switch (kind) {
      case OpKind::CombAdd:
      case OpKind::CombMul:
      case OpKind::CombAnd:
      case OpKind::CombOr:
      case OpKind::CombXor:
        return true;
      default:
        return false;
    }
}

void
appendAttr(std::ostringstream &os, const std::string &key,
           const ir::Attr &attr)
{
    os << '|' << key << '=';
    if (const auto *i = std::get_if<int64_t>(&attr)) {
        os << 'i' << *i;
    } else if (const auto *s = std::get_if<std::string>(&attr)) {
        os << 's' << *s;
    } else if (const auto *a = std::get_if<ApInt>(&attr)) {
        os << 'a' << a->width() << ':' << a->toStringUnsigned(16);
    } else if (const auto *v = std::get_if<std::vector<ApInt>>(&attr)) {
        os << 'v';
        for (const ApInt &e : *v)
            os << e.width() << ':' << e.toStringUnsigned(16) << ',';
    }
}

std::string
structuralKey(const ir::Operation &op)
{
    std::ostringstream os;
    os << op.name() << '#' << op.result()->type.width;
    for (const auto &[key, attr] : op.attrs())
        appendAttr(os, key, attr);
    std::vector<unsigned> ids;
    ids.reserve(op.numOperands());
    for (const ir::Value *v : op.operands())
        ids.push_back(v->id);
    if (isCommutative(op.kind()))
        std::sort(ids.begin(), ids.end());
    os << '@';
    for (unsigned id : ids)
        os << id << ',';
    return os.str();
}

} // namespace

unsigned
runCse(lil::LilGraph &graph)
{
    unsigned rewrites = 0;
    std::map<std::string, ir::Value *> leaders;
    auto used = detail::usedValues(graph.graph);

    for (const auto &op : graph.graph.ops()) {
        if (op->numResults() != 1 || op->subgraph() ||
            !detail::isCombKind(op->kind()) ||
            !ir::isPureComputation(op->kind()))
            continue;
        // Replaced duplicates linger as dead ops until DCE runs; the
        // use-gate keeps a second CSE run from re-counting them
        // (idempotence). Uses only shrink during the sweep, so the
        // snapshot taken above stays conservative.
        if (!used.count(op->result()))
            continue;
        std::string key = structuralKey(*op);
        auto [it, inserted] = leaders.emplace(key, op->result());
        if (inserted)
            continue;
        // Immediate replacement: later ops keying on this result see
        // the leader's id, so chains collapse in one sweep.
        detail::replaceAllUses(graph.graph, op->result(), it->second);
        ++rewrites;
    }
    return rewrites;
}

} // namespace passes
} // namespace longnail
