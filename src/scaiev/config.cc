#include "scaiev/config.hh"

#include <stdexcept>

#include "support/strings.hh"

namespace longnail {
namespace scaiev {

std::string
ScheduledUse::displayName() const
{
    switch (iface) {
      case SubInterface::RdCustReg:
        return "Rd" + reg;
      case SubInterface::WrCustRegAddr:
        return "Wr" + reg + ".addr";
      case SubInterface::WrCustRegData:
        return "Wr" + reg + ".data";
      default:
        return subInterfaceName(iface);
    }
}

yaml::Node
ScaievConfig::toYaml() const
{
    yaml::Node root = yaml::Node::makeMapping();
    root.set("isax", yaml::Node(isaxName));
    root.set("core", yaml::Node(coreName));

    yaml::Node state = yaml::Node::makeSequence();
    for (const auto &reg : registers) {
        yaml::Node entry = yaml::Node::makeMapping();
        entry.set("register", yaml::Node(reg.name));
        entry.set("width", yaml::Node(int64_t(reg.width)));
        entry.set("elements", yaml::Node(int64_t(reg.elements)));
        state.push(entry);
    }
    root.set("state", state);

    yaml::Node funcs = yaml::Node::makeSequence();
    for (const auto &fn : functionality) {
        yaml::Node entry = yaml::Node::makeMapping();
        entry.set(fn.isAlways ? "always" : "instruction",
                  yaml::Node(fn.name));
        if (!fn.isAlways)
            entry.set("mask", yaml::Node(fn.mask));
        yaml::Node sched = yaml::Node::makeSequence();
        for (const auto &use : fn.schedule) {
            yaml::Node op = yaml::Node::makeMapping();
            op.set("interface", yaml::Node(use.displayName()));
            op.set("stage", yaml::Node(int64_t(use.stage)));
            if (use.hasValid)
                op.set("has valid", yaml::Node(int64_t(1)));
            if (use.mode != ExecutionMode::InPipeline)
                op.set("mode", yaml::Node(executionModeName(use.mode)));
            sched.push(op);
        }
        entry.set("schedule", sched);
        funcs.push(entry);
    }
    root.set("functionality", funcs);
    return root;
}

namespace {

/** Inverse of ScheduledUse::displayName(). */
void
parseInterfaceName(const std::string &text, ScheduledUse &use)
{
    static const std::map<std::string, SubInterface> plain = {
        {"RdInstr", SubInterface::RdInstr},
        {"RdRS1", SubInterface::RdRS1},
        {"RdRS2", SubInterface::RdRS2},
        {"RdPC", SubInterface::RdPC},
        {"RdMem", SubInterface::RdMem},
        {"WrRD", SubInterface::WrRD},
        {"WrPC", SubInterface::WrPC},
        {"WrMem", SubInterface::WrMem},
    };
    auto it = plain.find(text);
    if (it != plain.end()) {
        use.iface = it->second;
        return;
    }
    if (startsWith(text, "Rd")) {
        use.iface = SubInterface::RdCustReg;
        use.reg = text.substr(2);
        return;
    }
    if (startsWith(text, "Wr") && endsWith(text, ".addr")) {
        use.iface = SubInterface::WrCustRegAddr;
        use.reg = text.substr(2, text.size() - 7);
        return;
    }
    if (startsWith(text, "Wr") && endsWith(text, ".data")) {
        use.iface = SubInterface::WrCustRegData;
        use.reg = text.substr(2, text.size() - 7);
        return;
    }
    throw std::runtime_error("unknown interface name '" + text + "'");
}

ExecutionMode
parseMode(const std::string &text)
{
    if (text == "in-pipeline")
        return ExecutionMode::InPipeline;
    if (text == "tightly-coupled")
        return ExecutionMode::TightlyCoupled;
    if (text == "decoupled")
        return ExecutionMode::Decoupled;
    if (text == "always")
        return ExecutionMode::Always;
    throw std::runtime_error("unknown execution mode '" + text + "'");
}

} // namespace

ScaievConfig
ScaievConfig::fromYaml(const yaml::Node &node)
{
    ScaievConfig config;
    config.isaxName = node.at("isax").scalar();
    config.coreName = node.at("core").scalar();
    for (const auto &entry : node.at("state").items()) {
        ConfigRegister reg;
        reg.name = entry.at("register").scalar();
        reg.width = unsigned(entry.at("width").asInt());
        reg.elements = uint64_t(entry.at("elements").asInt());
        config.registers.push_back(reg);
    }
    for (const auto &entry : node.at("functionality").items()) {
        ConfigFunctionality fn;
        fn.isAlways = entry.has("always");
        fn.name = entry.at(fn.isAlways ? "always" : "instruction")
                      .scalar();
        if (entry.has("mask"))
            fn.mask = entry.at("mask").scalar();
        for (const auto &op : entry.at("schedule").items()) {
            ScheduledUse use;
            parseInterfaceName(op.at("interface").scalar(), use);
            use.stage = int(op.at("stage").asInt());
            use.hasValid = op.has("has valid") &&
                           op.at("has valid").asInt() != 0;
            if (op.has("mode"))
                use.mode = parseMode(op.at("mode").scalar());
            fn.schedule.push_back(use);
        }
        config.functionality.push_back(std::move(fn));
    }
    return config;
}

std::optional<ScaievConfig>
ScaievConfig::fromYaml(const yaml::Node &node, DiagnosticEngine &diags)
{
    DiagnosticEngine::ContextScope scope(diags, Phase::Scaiev,
                                         "LN3004");
    try {
        return fromYaml(node);
    } catch (const std::exception &e) {
        diags.error({}, "LN3004",
                    std::string("malformed SCAIE-V config: ") +
                        e.what());
        return std::nullopt;
    }
}

const ConfigFunctionality *
ScaievConfig::find(const std::string &name) const
{
    for (const auto &fn : functionality)
        if (fn.name == name)
            return &fn;
    return nullptr;
}

} // namespace scaiev
} // namespace longnail
