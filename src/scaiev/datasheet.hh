/**
 * @file
 * SCAIE-V virtual datasheets (Sec. 3.1, Fig. 9): the vendor-neutral
 * characterization of a host core's microarchitecture that Longnail's
 * scheduler consumes. A datasheet gives, per sub-interface, the
 * earliest and latest pipeline stage (relative to time step 0 = fetch)
 * in which the interface may be used, plus the operation latency.
 *
 * Built-in datasheets model the paper's four evaluation cores:
 * ORCA (5-stage), Piccolo (3-stage), PicoRV32 (multi-cycle FSM) and
 * VexRiscv (5-stage). Anchors from the paper: VexRiscv offers the
 * instruction word in stages 1..4 and the register file in stages 2..4
 * (Sec. 4.2 / Fig. 9); ORCA reads operands in stage 3 and expects the
 * writeback in the following stage, with a forwarding path from the
 * last stage (Sec. 5.4); baseline area/frequency are Table 4's values.
 */

#ifndef LONGNAIL_SCAIEV_DATASHEET_HH
#define LONGNAIL_SCAIEV_DATASHEET_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "scaiev/interface.hh"
#include "support/diagnostics.hh"
#include "support/yaml.hh"

namespace longnail {
namespace scaiev {

/** Availability window and latency of one sub-interface. */
struct InterfaceTiming
{
    int earliest = 0;
    int latest = 0; ///< native latest stage (inclusive)
    unsigned latency = 0;
};

/** Virtual datasheet of one host core. */
struct Datasheet
{
    std::string coreName;
    unsigned numStages = 5;
    /** False for FSM-sequenced cores (PicoRV32). */
    bool pipelined = true;
    /**
     * True if the core forwards results from the last stage into the
     * operand-read stage (ORCA); late-scheduled ISAX logic then joins
     * the forwarding path and stretches the critical path (Sec. 5.4).
     */
    bool forwardsFromLastStage = false;
    /** Operand-read stage (target of the forwarding path). */
    unsigned operandStage = 2;
    /** Memory-access stage. */
    unsigned memoryStage = 3;

    /** Baseline ASIC results (Table 4). */
    double baseAreaUm2 = 0.0;
    double baseFreqMhz = 0.0;

    std::map<SubInterface, InterfaceTiming> timings;

    double cycleTimeNs() const { return 1000.0 / baseFreqMhz; }

    const InterfaceTiming &timing(SubInterface iface) const;

    /** Serialize to the YAML format of Fig. 9. */
    yaml::Node toYaml() const;
    /** Parse from YAML; throws std::runtime_error on malformed input. */
    static Datasheet fromYaml(const yaml::Node &node);
    /**
     * Fail-soft variant: malformed input becomes an LN3003 diagnostic
     * (with the YAML line number when available) instead of a throw.
     */
    static std::optional<Datasheet> fromYaml(const yaml::Node &node,
                                             DiagnosticEngine &diags);

    /** Built-in datasheet for one of the four evaluation cores;
     * exits via fatal() when @p name is unknown. */
    static const Datasheet &forCore(const std::string &name);
    /** Non-fatal lookup: nullptr when @p name is not a built-in core. */
    static const Datasheet *findCore(const std::string &name);
    /** Names of all built-in cores. */
    static std::vector<std::string> knownCores();
};

} // namespace scaiev
} // namespace longnail

#endif // LONGNAIL_SCAIEV_DATASHEET_HH
