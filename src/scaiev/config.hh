/**
 * @file
 * The SCAIE-V configuration file (Figs. 8/9): Longnail's output
 * metadata telling SCAIE-V which ISAX-internal state to instantiate,
 * the instruction encodings, and the computed interface schedule.
 */

#ifndef LONGNAIL_SCAIEV_CONFIG_HH
#define LONGNAIL_SCAIEV_CONFIG_HH

#include <optional>
#include <string>
#include <vector>

#include "scaiev/interface.hh"
#include "support/diagnostics.hh"
#include "support/yaml.hh"

namespace longnail {
namespace scaiev {

/** Request for a SCAIE-V-managed custom register (file). */
struct ConfigRegister
{
    std::string name;
    unsigned width = 32;
    uint64_t elements = 1;
};

/** One scheduled sub-interface use of a functionality. */
struct ScheduledUse
{
    SubInterface iface = SubInterface::RdInstr;
    /** Custom register name for the RdCustReg/WrCustReg interfaces. */
    std::string reg;
    int stage = 0;
    bool hasValid = false;
    ExecutionMode mode = ExecutionMode::InPipeline;

    /** Fig. 8 display name, e.g. "RdCOUNT" or "WrCOUNT.addr". */
    std::string displayName() const;
};

/** One instruction or always-block. */
struct ConfigFunctionality
{
    std::string name;
    bool isAlways = false;
    /** 32-char encoding pattern; empty for always-blocks. */
    std::string mask;
    std::vector<ScheduledUse> schedule;
};

/** A complete configuration file. */
struct ScaievConfig
{
    std::string isaxName;
    std::string coreName;
    std::vector<ConfigRegister> registers;
    std::vector<ConfigFunctionality> functionality;

    yaml::Node toYaml() const;
    std::string emit() const { return toYaml().emit(); }
    static ScaievConfig fromYaml(const yaml::Node &node);
    /**
     * Fail-soft variant: malformed input becomes an LN3004 diagnostic
     * (with the YAML line number when available) instead of a throw.
     */
    static std::optional<ScaievConfig>
    fromYaml(const yaml::Node &node, DiagnosticEngine &diags);

    const ConfigFunctionality *find(const std::string &name) const;
};

} // namespace scaiev
} // namespace longnail

#endif // LONGNAIL_SCAIEV_CONFIG_HH
