#include "scaiev/interface.hh"

namespace longnail {
namespace scaiev {

const char *
subInterfaceName(SubInterface iface)
{
    switch (iface) {
      case SubInterface::RdInstr: return "RdInstr";
      case SubInterface::RdRS1: return "RdRS1";
      case SubInterface::RdRS2: return "RdRS2";
      case SubInterface::RdCustReg: return "RdCustReg";
      case SubInterface::RdPC: return "RdPC";
      case SubInterface::RdMem: return "RdMem";
      case SubInterface::WrRD: return "WrRD";
      case SubInterface::WrCustRegAddr: return "WrCustReg.addr";
      case SubInterface::WrCustRegData: return "WrCustReg.data";
      case SubInterface::WrPC: return "WrPC";
      case SubInterface::WrMem: return "WrMem";
    }
    return "?";
}

std::optional<SubInterface>
subInterfaceFor(ir::OpKind kind)
{
    using ir::OpKind;
    switch (kind) {
      case OpKind::LilInstrWord: return SubInterface::RdInstr;
      case OpKind::LilReadRs1: return SubInterface::RdRS1;
      case OpKind::LilReadRs2: return SubInterface::RdRS2;
      case OpKind::LilReadPC: return SubInterface::RdPC;
      case OpKind::LilReadMem: return SubInterface::RdMem;
      case OpKind::LilWriteRd: return SubInterface::WrRD;
      case OpKind::LilWritePC: return SubInterface::WrPC;
      case OpKind::LilWriteMem: return SubInterface::WrMem;
      case OpKind::LilReadCustReg: return SubInterface::RdCustReg;
      case OpKind::LilWriteCustRegAddr:
        return SubInterface::WrCustRegAddr;
      case OpKind::LilWriteCustRegData:
        return SubInterface::WrCustRegData;
      default: return std::nullopt;
    }
}

bool
isWriteInterface(SubInterface iface)
{
    switch (iface) {
      case SubInterface::WrRD:
      case SubInterface::WrCustRegAddr:
      case SubInterface::WrCustRegData:
      case SubInterface::WrPC:
      case SubInterface::WrMem:
        return true;
      default:
        return false;
    }
}

const char *
executionModeName(ExecutionMode mode)
{
    switch (mode) {
      case ExecutionMode::InPipeline: return "in-pipeline";
      case ExecutionMode::TightlyCoupled: return "tightly-coupled";
      case ExecutionMode::Decoupled: return "decoupled";
      case ExecutionMode::Always: return "always";
    }
    return "?";
}

bool
supportsLateVariants(SubInterface iface)
{
    return iface == SubInterface::WrRD || iface == SubInterface::RdMem ||
           iface == SubInterface::WrMem;
}

} // namespace scaiev
} // namespace longnail
