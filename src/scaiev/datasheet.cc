#include "scaiev/datasheet.hh"

#include <stdexcept>

#include "support/logging.hh"

namespace longnail {
namespace scaiev {

const InterfaceTiming &
Datasheet::timing(SubInterface iface) const
{
    auto it = timings.find(iface);
    if (it == timings.end())
        LN_PANIC("datasheet for ", coreName, " lacks sub-interface ",
                 subInterfaceName(iface));
    return it->second;
}

yaml::Node
Datasheet::toYaml() const
{
    yaml::Node root = yaml::Node::makeMapping();
    root.set("core", yaml::Node(coreName));
    root.set("stages", yaml::Node(int64_t(numStages)));
    root.set("pipelined", yaml::Node(pipelined ? "true" : "false"));
    root.set("forwards from last stage",
             yaml::Node(forwardsFromLastStage ? "true" : "false"));
    root.set("operand stage", yaml::Node(int64_t(operandStage)));
    root.set("memory stage", yaml::Node(int64_t(memoryStage)));
    root.set("base area um2", yaml::Node(int64_t(baseAreaUm2)));
    root.set("base freq mhz", yaml::Node(int64_t(baseFreqMhz)));
    yaml::Node ifaces = yaml::Node::makeMapping();
    for (const auto &[iface, t] : timings) {
        yaml::Node entry = yaml::Node::makeMapping();
        entry.set("earliest", yaml::Node(int64_t(t.earliest)));
        entry.set("latest", yaml::Node(int64_t(t.latest)));
        entry.set("latency", yaml::Node(int64_t(t.latency)));
        ifaces.set(subInterfaceName(iface), entry);
    }
    root.set("interfaces", ifaces);
    return root;
}

namespace {

SubInterface
subInterfaceByName(const std::string &name)
{
    static const std::map<std::string, SubInterface> table = {
        {"RdInstr", SubInterface::RdInstr},
        {"RdRS1", SubInterface::RdRS1},
        {"RdRS2", SubInterface::RdRS2},
        {"RdCustReg", SubInterface::RdCustReg},
        {"RdPC", SubInterface::RdPC},
        {"RdMem", SubInterface::RdMem},
        {"WrRD", SubInterface::WrRD},
        {"WrCustReg.addr", SubInterface::WrCustRegAddr},
        {"WrCustReg.data", SubInterface::WrCustRegData},
        {"WrPC", SubInterface::WrPC},
        {"WrMem", SubInterface::WrMem},
    };
    auto it = table.find(name);
    if (it == table.end())
        throw std::runtime_error("unknown sub-interface '" + name + "'");
    return it->second;
}

} // namespace

Datasheet
Datasheet::fromYaml(const yaml::Node &node)
{
    Datasheet sheet;
    sheet.coreName = node.at("core").scalar();
    sheet.numStages = unsigned(node.at("stages").asInt());
    sheet.pipelined = node.at("pipelined").asBool();
    sheet.forwardsFromLastStage =
        node.at("forwards from last stage").asBool();
    sheet.operandStage = unsigned(node.at("operand stage").asInt());
    sheet.memoryStage = unsigned(node.at("memory stage").asInt());
    sheet.baseAreaUm2 = double(node.at("base area um2").asInt());
    sheet.baseFreqMhz = double(node.at("base freq mhz").asInt());
    for (const auto &[name, entry] : node.at("interfaces").entries()) {
        InterfaceTiming t;
        t.earliest = int(entry.at("earliest").asInt());
        t.latest = int(entry.at("latest").asInt());
        t.latency = unsigned(entry.at("latency").asInt());
        sheet.timings[subInterfaceByName(name)] = t;
    }
    return sheet;
}

std::optional<Datasheet>
Datasheet::fromYaml(const yaml::Node &node, DiagnosticEngine &diags)
{
    DiagnosticEngine::ContextScope scope(diags, Phase::Scaiev,
                                         "LN3003");
    try {
        return fromYaml(node);
    } catch (const std::exception &e) {
        diags.error({}, "LN3003",
                    std::string("malformed datasheet: ") + e.what());
        return std::nullopt;
    }
}

namespace {

Datasheet
makeVexRiscv()
{
    // 5-stage: 0 fetch, 1 decode, 2 execute, 3 memory, 4 writeback.
    Datasheet d;
    d.coreName = "VexRiscv";
    d.numStages = 5;
    d.pipelined = true;
    d.forwardsFromLastStage = false;
    d.operandStage = 2;
    d.memoryStage = 3;
    d.baseAreaUm2 = 9052.0;
    d.baseFreqMhz = 701.0;
    d.timings = {
        {SubInterface::RdInstr, {1, 4, 0}},
        {SubInterface::RdRS1, {2, 4, 0}},
        {SubInterface::RdRS2, {2, 4, 0}},
        {SubInterface::RdPC, {0, 4, 0}},
        {SubInterface::RdMem, {3, 3, 1}},
        {SubInterface::WrRD, {2, 4, 0}},
        {SubInterface::WrPC, {1, 4, 0}},
        {SubInterface::WrMem, {3, 3, 1}},
        {SubInterface::RdCustReg, {2, 4, 0}},
        {SubInterface::WrCustRegAddr, {2, 4, 0}},
        {SubInterface::WrCustRegData, {2, 4, 0}},
    };
    return d;
}

Datasheet
makeOrca()
{
    // 5-stage; operands are read late (stage 3) and the writeback is
    // expected in the following stage, fed back through a forwarding
    // path from the last stage (Sec. 5.4).
    Datasheet d;
    d.coreName = "ORCA";
    d.numStages = 5;
    d.pipelined = true;
    d.forwardsFromLastStage = true;
    d.operandStage = 3;
    d.memoryStage = 3;
    d.baseAreaUm2 = 6612.0;
    d.baseFreqMhz = 996.0;
    d.timings = {
        {SubInterface::RdInstr, {1, 4, 0}},
        {SubInterface::RdRS1, {3, 3, 0}},
        {SubInterface::RdRS2, {3, 3, 0}},
        {SubInterface::RdPC, {0, 4, 0}},
        {SubInterface::RdMem, {3, 3, 1}},
        {SubInterface::WrRD, {4, 4, 0}},
        {SubInterface::WrPC, {1, 4, 0}},
        {SubInterface::WrMem, {3, 3, 1}},
        {SubInterface::RdCustReg, {3, 4, 0}},
        {SubInterface::WrCustRegAddr, {3, 4, 0}},
        {SubInterface::WrCustRegData, {3, 4, 0}},
    };
    return d;
}

Datasheet
makePiccolo()
{
    // 3-stage: 0 fetch, 1 decode/execute, 2 writeback.
    Datasheet d;
    d.coreName = "Piccolo";
    d.numStages = 3;
    d.pipelined = true;
    d.forwardsFromLastStage = false;
    d.operandStage = 1;
    d.memoryStage = 1;
    d.baseAreaUm2 = 26098.0;
    d.baseFreqMhz = 420.0;
    d.timings = {
        {SubInterface::RdInstr, {1, 2, 0}},
        {SubInterface::RdRS1, {1, 2, 0}},
        {SubInterface::RdRS2, {1, 2, 0}},
        {SubInterface::RdPC, {0, 2, 0}},
        {SubInterface::RdMem, {1, 1, 1}},
        {SubInterface::WrRD, {1, 2, 0}},
        {SubInterface::WrPC, {1, 2, 0}},
        {SubInterface::WrMem, {1, 1, 1}},
        {SubInterface::RdCustReg, {1, 2, 0}},
        {SubInterface::WrCustRegAddr, {1, 2, 0}},
        {SubInterface::WrCustRegData, {1, 2, 0}},
    };
    return d;
}

Datasheet
makePicoRV32()
{
    // Non-pipelined FSM core; "stages" are the FSM states of one
    // instruction: 0 fetch, 1 decode, 2 execute, 3 memory, 4 writeback.
    Datasheet d;
    d.coreName = "PicoRV32";
    d.numStages = 5;
    d.pipelined = false;
    d.forwardsFromLastStage = false;
    d.operandStage = 2;
    d.memoryStage = 3;
    d.baseAreaUm2 = 4745.0;
    d.baseFreqMhz = 1278.0;
    d.timings = {
        {SubInterface::RdInstr, {1, 4, 0}},
        {SubInterface::RdRS1, {2, 4, 0}},
        {SubInterface::RdRS2, {2, 4, 0}},
        {SubInterface::RdPC, {0, 4, 0}},
        {SubInterface::RdMem, {3, 3, 1}},
        {SubInterface::WrRD, {2, 4, 0}},
        {SubInterface::WrPC, {2, 4, 0}},
        {SubInterface::WrMem, {3, 3, 1}},
        {SubInterface::RdCustReg, {2, 4, 0}},
        {SubInterface::WrCustRegAddr, {2, 4, 0}},
        {SubInterface::WrCustRegData, {2, 4, 0}},
    };
    return d;
}

} // namespace

const Datasheet *
Datasheet::findCore(const std::string &name)
{
    static const std::map<std::string, Datasheet> cores = {
        {"ORCA", makeOrca()},
        {"Piccolo", makePiccolo()},
        {"PicoRV32", makePicoRV32()},
        {"VexRiscv", makeVexRiscv()},
    };
    auto it = cores.find(name);
    return it == cores.end() ? nullptr : &it->second;
}

const Datasheet &
Datasheet::forCore(const std::string &name)
{
    const Datasheet *sheet = findCore(name);
    if (!sheet)
        fatal("unknown core '", name, "'; available cores: ORCA, "
              "Piccolo, PicoRV32, VexRiscv");
    return *sheet;
}

std::vector<std::string>
Datasheet::knownCores()
{
    return {"ORCA", "Piccolo", "PicoRV32", "VexRiscv"};
}

} // namespace scaiev
} // namespace longnail
