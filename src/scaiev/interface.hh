/**
 * @file
 * SCAIE-V sub-interface definitions (Table 1 of the paper) and the
 * execution modes of Sec. 3.2.
 */

#ifndef LONGNAIL_SCAIEV_INTERFACE_HH
#define LONGNAIL_SCAIEV_INTERFACE_HH

#include <optional>
#include <string>

#include "ir/ir.hh"

namespace longnail {
namespace scaiev {

/**
 * The sub-interface operations a SCAIE-V-enabled core offers
 * (Table 1). Custom-register interfaces are instantiated per register
 * on demand; stall/flush signals are per-stage and managed by the
 * integration layer, not scheduled by Longnail.
 */
enum class SubInterface
{
    RdInstr,
    RdRS1,
    RdRS2,
    RdCustReg,
    RdPC,
    RdMem,
    WrRD,
    WrCustRegAddr,
    WrCustRegData,
    WrPC,
    WrMem,
};

const char *subInterfaceName(SubInterface iface);

/** The sub-interface exercised by a lil.* operation, if any. */
std::optional<SubInterface> subInterfaceFor(ir::OpKind kind);

/** True for the interfaces that update architectural state. */
bool isWriteInterface(SubInterface iface);

/**
 * Execution modes (Sec. 3.2). In-pipeline and always are available for
 * all sub-interfaces; tightly-coupled and decoupled only for WrRD,
 * RdMem and WrMem.
 */
enum class ExecutionMode
{
    InPipeline,
    TightlyCoupled,
    Decoupled,
    Always,
};

const char *executionModeName(ExecutionMode mode);

/** True if @p iface supports the tightly-coupled/decoupled variants. */
bool supportsLateVariants(SubInterface iface);

} // namespace scaiev
} // namespace longnail

#endif // LONGNAIL_SCAIEV_INTERFACE_HH
