/**
 * @file
 * Canonicalization passes shared by the HIR and LIL levels: constant
 * folding, algebraic simplification and dead-code elimination.
 */

#ifndef LONGNAIL_HIR_TRANSFORMS_HH
#define LONGNAIL_HIR_TRANSFORMS_HH

#include "ir/ir.hh"

namespace longnail {
namespace hir {

/**
 * Fold constants, simplify muxes/logic with constant inputs, and remove
 * dead pure operations (recursing into spawn subgraphs). Runs to a
 * fixpoint.
 * @return the number of operations removed or rewritten.
 */
unsigned canonicalize(ir::Graph &graph);

/** Replace every use of @p from with @p to, including subgraphs. */
void replaceAllUses(ir::Graph &graph, ir::Value *from, ir::Value *to);

/** Remove unused pure operations (one pass, recursive). */
unsigned eliminateDeadCode(ir::Graph &graph);

} // namespace hir
} // namespace longnail

#endif // LONGNAIL_HIR_TRANSFORMS_HH
