/**
 * @file
 * The high-level IR (HIR) of the Longnail flow: the equivalent of the
 * paper's coredsl+hwarith dialect mix (Fig. 5b).
 *
 * A HIR behavior graph is straight-line SSA: the AST lowering performs
 * function inlining, loop unrolling and if-conversion, so control flow
 * is already expressed with hwarith.mux and predicated coredsl.set /
 * set_mem operations. Spawn blocks remain structured as nested graphs.
 */

#ifndef LONGNAIL_HIR_HIR_HH
#define LONGNAIL_HIR_HIR_HH

#include <memory>
#include <string>
#include <vector>

#include "coredsl/module.hh"
#include "ir/ir.hh"

namespace longnail {
namespace hir {

/** Lowered behavior of one instruction. */
struct HirInstruction
{
    std::string name;
    const coredsl::InstrInfo *info = nullptr;
    ir::Graph body;
};

/** Lowered behavior of one always-block. */
struct HirAlways
{
    std::string name;
    const coredsl::AlwaysInfo *info = nullptr;
    ir::Graph body;
};

/** The HIR view of an elaborated ISA. */
struct HirModule
{
    const coredsl::ElaboratedIsa *isa = nullptr;
    std::vector<std::unique_ptr<HirInstruction>> instructions;
    std::vector<std::unique_ptr<HirAlways>> alwaysBlocks;

    const HirInstruction *findInstruction(const std::string &name) const;
    const HirAlways *findAlways(const std::string &name) const;

    /** Printed form of all graphs, for tests and documentation. */
    std::string print() const;
};

/** Convert a coredsl::Type to the IR wire type. */
inline ir::WireType
wireType(coredsl::Type t)
{
    return ir::WireType(t.width, t.isSigned);
}

} // namespace hir
} // namespace longnail

#endif // LONGNAIL_HIR_HIR_HH
