/**
 * @file
 * AST -> HIR lowering (step (a)->(b) of Fig. 5 in the paper).
 *
 * The lowering performs, in one pass:
 *  - loop unrolling for loops with compile-time trip counts,
 *  - inlining of (non-recursive) helper functions,
 *  - if-conversion: branches become hwarith.mux selections and
 *    predicates on state-updating operations,
 *  - sequential-semantics resolution: reads observe earlier writes in
 *    the same behavior, and each state element receives at most one
 *    coredsl.set per behavior (matching SCAIE-V's one-use-per-
 *    sub-interface rule),
 *  - spawn blocks become coredsl.spawn operations with nested graphs.
 */

#ifndef LONGNAIL_HIR_ASTLOWER_HH
#define LONGNAIL_HIR_ASTLOWER_HH

#include <memory>

#include "coredsl/module.hh"
#include "hir/hir.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace hir {

/** Limits guarding the compile-time interpretation of loops. */
struct LowerOptions
{
    unsigned maxUnrollIterations = 4096;
};

/**
 * Lower all non-base instructions and always-blocks of @p isa.
 * @return the module, or nullptr if diagnostics were reported.
 *
 * Base (core-provided) instructions are skipped by default; callers can
 * lower them explicitly with lowerInstruction().
 */
std::unique_ptr<HirModule> lowerToHir(const coredsl::ElaboratedIsa &isa,
                                      DiagnosticEngine &diags,
                                      LowerOptions options = {});

/** Lower a single instruction (including base instructions). */
std::unique_ptr<HirInstruction>
lowerInstruction(const coredsl::ElaboratedIsa &isa,
                 const coredsl::InstrInfo &instr, DiagnosticEngine &diags,
                 LowerOptions options = {});

/** Lower a single always-block. */
std::unique_ptr<HirAlways>
lowerAlways(const coredsl::ElaboratedIsa &isa,
            const coredsl::AlwaysInfo &always, DiagnosticEngine &diags,
            LowerOptions options = {});

} // namespace hir
} // namespace longnail

#endif // LONGNAIL_HIR_ASTLOWER_HH
