#include "hir/transforms.hh"

#include <map>
#include <set>

#include "analysis/verifier.hh"
#include "ir/eval.hh"

namespace longnail {
namespace hir {

using longnail::ApInt;
using ir::Graph;
using ir::Operation;
using ir::OpKind;
using ir::Value;

namespace {

bool
isCombLevel(OpKind kind)
{
    switch (kind) {
      case OpKind::CombConstant:
      case OpKind::CombAdd:
      case OpKind::CombSub:
      case OpKind::CombMul:
      case OpKind::CombDivU:
      case OpKind::CombDivS:
      case OpKind::CombModU:
      case OpKind::CombModS:
      case OpKind::CombAnd:
      case OpKind::CombOr:
      case OpKind::CombXor:
      case OpKind::CombShl:
      case OpKind::CombShrU:
      case OpKind::CombShrS:
      case OpKind::CombICmp:
      case OpKind::CombMux:
      case OpKind::CombExtract:
      case OpKind::CombConcat:
      case OpKind::CombReplicate:
      case OpKind::CombRom:
        return true;
      default:
        return false;
    }
}

bool
isConstantOp(OpKind kind)
{
    return kind == OpKind::HwConstant || kind == OpKind::CombConstant;
}

/** True for operations that may be deleted when their results are
 * unused. */
bool
isRemovableWhenDead(OpKind kind)
{
    if (ir::isPureComputation(kind))
        return true;
    switch (kind) {
      case OpKind::CoredslField:
      case OpKind::CoredslGet:
      case OpKind::CoredslGetMem:
      case OpKind::LilInstrWord:
      case OpKind::LilReadRs1:
      case OpKind::LilReadRs2:
      case OpKind::LilReadPC:
      case OpKind::LilReadMem:
      case OpKind::LilReadCustReg:
        return true;
      default:
        return false;
    }
}

void
replaceUsesRec(Graph &graph, Value *from, Value *to)
{
    for (const auto &op : graph.ops()) {
        op->replaceUsesOf(from, to);
        if (op->subgraph())
            replaceUsesRec(*op->subgraph(), from, to);
    }
}

/** One fold/simplify sweep; returns the number of rewrites. */
unsigned
foldOnce(Graph &root, Graph &graph,
         std::map<const Value *, ApInt> &constants)
{
    unsigned changed = 0;
    for (const auto &op : graph.ops()) {
        if (op->subgraph()) {
            changed += foldOnce(root, *op->subgraph(), constants);
            continue;
        }
        if (isConstantOp(op->kind())) {
            constants.emplace(op->result(), op->apAttr("value"));
            continue;
        }

        // Mux with a constant condition or equal arms selects directly.
        if (op->kind() == OpKind::HwMux ||
            op->kind() == OpKind::CombMux) {
            Value *cond = op->operand(0);
            auto it = constants.find(cond);
            if (it != constants.end()) {
                Value *chosen = it->second.isZero() ? op->operand(2)
                                                    : op->operand(1);
                replaceUsesRec(root, op->result(), chosen);
                ++changed;
                continue;
            }
            if (op->operand(1) == op->operand(2)) {
                replaceUsesRec(root, op->result(), op->operand(1));
                ++changed;
                continue;
            }
        }

        // 1-bit and/or with a constant operand.
        if ((op->kind() == OpKind::HwAnd || op->kind() == OpKind::HwOr ||
             op->kind() == OpKind::CombAnd ||
             op->kind() == OpKind::CombOr) &&
            op->result()->type.width == 1) {
            bool is_and = op->kind() == OpKind::HwAnd ||
                          op->kind() == OpKind::CombAnd;
            for (unsigned i = 0; i < 2; ++i) {
                auto it = constants.find(op->operand(i));
                if (it == constants.end())
                    continue;
                bool bit = !it->second.isZero();
                Value *other = op->operand(1 - i);
                if (other->type.width != 1)
                    break;
                if (is_and && bit) { // x & 1 = x
                    replaceUsesRec(root, op->result(), other);
                    ++changed;
                } else if (!is_and && !bit) { // x | 0 = x
                    replaceUsesRec(root, op->result(), other);
                    ++changed;
                } else { // x & 0 / x | 1
                    op->morphToConstant(ApInt(1, is_and ? 0 : 1),
                                        isCombLevel(op->kind()));
                    constants.emplace(op->result(),
                                      op->apAttr("value"));
                    ++changed;
                }
                break;
            }
            if (isConstantOp(op->kind()))
                continue;
        }

        if (!ir::isPureComputation(op->kind()))
            continue;

        // General constant folding.
        std::vector<ApInt> operand_values;
        bool all_const = true;
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            auto it = constants.find(op->operand(i));
            if (it == constants.end()) {
                all_const = false;
                break;
            }
            operand_values.push_back(it->second);
        }
        if (!all_const || op->numResults() != 1)
            continue;
        auto result = ir::evaluate(*op, operand_values);
        if (!result)
            continue;
        op->morphToConstant(*result, isCombLevel(op->kind()));
        constants.emplace(op->result(), op->apAttr("value"));
        ++changed;
    }
    return changed;
}

void
collectUses(const Graph &graph, std::set<const Value *> &used)
{
    for (const auto &op : graph.ops()) {
        for (unsigned i = 0; i < op->numOperands(); ++i)
            used.insert(op->operand(i));
        if (op->subgraph())
            collectUses(*op->subgraph(), used);
    }
}

unsigned
removeDead(Graph &graph, const std::set<const Value *> &used)
{
    unsigned removed = 0;
    // Recurse first so nested removals are counted.
    for (const auto &op : graph.ops())
        if (op->subgraph())
            removed += removeDead(*op->subgraph(), used);
    graph.removeIf([&](const Operation &op) {
        if (!isRemovableWhenDead(op.kind()) || op.numResults() == 0)
            return false;
        for (unsigned i = 0; i < op.numResults(); ++i)
            if (used.count(op.result(i)))
                return false;
        ++removed;
        return true;
    });
    return removed;
}

} // namespace

void
replaceAllUses(Graph &graph, Value *from, Value *to)
{
    replaceUsesRec(graph, from, to);
}

unsigned
eliminateDeadCode(Graph &graph)
{
    unsigned total = 0;
    while (true) {
        std::set<const Value *> used;
        collectUses(graph, used);
        unsigned removed = removeDead(graph, used);
        total += removed;
        if (removed == 0)
            break;
    }
    analysis::verifyAfterTransform(graph, "eliminateDeadCode");
    return total;
}

unsigned
canonicalize(Graph &graph)
{
    unsigned total = 0;
    for (int iteration = 0; iteration < 16; ++iteration) {
        std::map<const Value *, ApInt> constants;
        unsigned changed = foldOnce(graph, graph, constants);
        // eliminateDeadCode verifies the graph (when enabled) at the
        // end of every iteration, so a corrupting fold is pinned to
        // the iteration that introduced it.
        changed += eliminateDeadCode(graph);
        total += changed;
        if (changed == 0)
            break;
    }
    return total;
}

} // namespace hir
} // namespace longnail
