#include "hir/astlower.hh"

#include <map>
#include <set>

#include "coredsl/sema.hh"
#include "ir/eval.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

namespace longnail {
namespace hir {

using coredsl::AlwaysInfo;
using coredsl::AssignExpr;
using coredsl::BinaryExpr;
using coredsl::BinOp;
using coredsl::BlockStmt;
using coredsl::CallExpr;
using coredsl::CastExpr;
using coredsl::ConcatExpr;
using coredsl::ConditionalExpr;
using coredsl::ElaboratedIsa;
using coredsl::Expr;
using coredsl::ExprStmt;
using coredsl::ForStmt;
using coredsl::FunctionInfo;
using coredsl::IfStmt;
using coredsl::IndexExpr;
using coredsl::InstrInfo;
using coredsl::IntLitExpr;
using coredsl::RangeIndexExpr;
using coredsl::RefExpr;
using coredsl::ReturnStmt;
using coredsl::SpawnStmt;
using coredsl::StateInfo;
using coredsl::Stmt;
using coredsl::Type;
using coredsl::TypedConst;
using coredsl::UnaryExpr;
using coredsl::VarDeclStmt;
using ir::Graph;
using ir::ICmpPred;
using ir::Operation;
using ir::OpKind;
using ir::Value;
using ir::WireType;

const HirInstruction *
HirModule::findInstruction(const std::string &name) const
{
    for (const auto &i : instructions)
        if (i->name == name)
            return i.get();
    return nullptr;
}

const HirAlways *
HirModule::findAlways(const std::string &name) const
{
    for (const auto &a : alwaysBlocks)
        if (a->name == name)
            return a.get();
    return nullptr;
}

std::string
HirModule::print() const
{
    std::string out;
    for (const auto &i : instructions) {
        out += "instruction @" + i->name + " {\n";
        out += i->body.print();
        out += "}\n";
    }
    for (const auto &a : alwaysBlocks) {
        out += "always @" + a->name + " {\n";
        out += a->body.print();
        out += "}\n";
    }
    return out;
}

namespace {

/** Signals an already-diagnosed lowering failure. */
struct LowerError {};

class Lowerer
{
  public:
    Lowerer(const ElaboratedIsa &isa, DiagnosticEngine &diags,
            LowerOptions options)
        : isa_(isa), diags_(diags), options_(options)
    {}

    bool
    lowerBehavior(const Stmt &behavior, const InstrInfo *instr, Graph &out)
    {
        instr_ = instr;
        graphStack_ = {&out};
        frame_ = Frame{};
        fieldCache_.clear();
        getCache_.clear();
        spawnSeen_ = false;
        curPred_ = nullptr;
        try {
            lowerStmt(behavior);
            flushStateWrites(frame_, out);
            out.append(OpKind::CoredslEnd, {}, {});
        } catch (const LowerError &) {
            return false;
        }
        return !diags_.hasErrors();
    }

  private:
    // ------------------------------------------------------------------
    // Environment
    // ------------------------------------------------------------------

    /** A pending, coalesced write to one state element. */
    struct StateWrite
    {
        Value *value = nullptr;
        Value *pred = nullptr;  ///< i1, never null
        Value *index = nullptr; ///< for register files / MEM addresses
        SourceLoc loc;
    };

    /** Value environment; copied at control-flow splits. */
    struct Frame
    {
        std::map<std::string, Value *> vars;
        std::map<std::string, TypedConst> consts;
        /** Compile-time known values of runtime locals; powers
         * while-loop unrolling and switch resolution. */
        std::map<std::string, TypedConst> shadows;
        /** Current (possibly written) value of scalar state. */
        std::map<std::string, Value *> stateValues;
        std::map<std::string, StateWrite> stateWrites;
    };

    Graph &g() { return *graphStack_.back(); }

    [[noreturn]] void
    error(SourceLoc loc, const std::string &msg)
    {
        diags_.error(loc, msg);
        throw LowerError{};
    }

    std::map<std::string, TypedConst>
    constEnv() const
    {
        std::map<std::string, TypedConst> env = isa_.parameters;
        for (const auto &[k, v] : frame_.shadows)
            env[k] = v;
        for (const auto &[k, v] : frame_.consts)
            env[k] = v;
        return env;
    }

    /** Compile-time value of an IR value, if derivable (bounded). */
    std::optional<TypedConst>
    tryConstOf(Value *value, int depth = 8) const
    {
        if (!value || depth == 0)
            return std::nullopt;
        const ir::Operation *op = value->owner;
        if (op->kind() == OpKind::HwConstant) {
            TypedConst c;
            c.type = Type(value->type.isSigned, value->type.width);
            c.value = op->apAttr("value");
            return c;
        }
        if (!ir::isPureComputation(op->kind()) || op->numResults() != 1)
            return std::nullopt;
        std::vector<ApInt> operands;
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            auto c = tryConstOf(op->operand(i), depth - 1);
            if (!c)
                return std::nullopt;
            operands.push_back(c->value);
        }
        auto result = ir::evaluate(*op, operands);
        if (!result)
            return std::nullopt;
        TypedConst c;
        c.type = Type(value->type.isSigned, value->type.width);
        c.value = *result;
        return c;
    }

    /** Track the compile-time shadow of local @p name. */
    void
    updateShadow(const std::string &name, Value *value)
    {
        auto c = tryConstOf(value);
        if (c)
            frame_.shadows[name] = *c;
        else
            frame_.shadows.erase(name);
    }

    // ------------------------------------------------------------------
    // Small IR helpers
    // ------------------------------------------------------------------

    Value *
    constant(const ApInt &value, Type type)
    {
        Operation *op = g().append(OpKind::HwConstant, {},
                                   {wireType(type)});
        ApInt adjusted = type.isSigned
                             ? value.sextOrTrunc(type.width)
                             : value.zextOrTrunc(type.width);
        op->setAttr("value", adjusted);
        return op->result();
    }

    Value *constTrue() { return constant(ApInt(1, 1), Type::makeBool()); }
    Value *constFalse() { return constant(ApInt(1, 0), Type::makeBool()); }

    Value *
    cast(Value *v, Type type)
    {
        if (v->type == wireType(type))
            return v;
        Operation *op = g().append(OpKind::CoredslCast, {v},
                                   {wireType(type)});
        return op->result();
    }

    /** Convert an arbitrary integer value to an i1 truth value. */
    Value *
    toBool(Value *v)
    {
        if (v->type.width == 1 && !v->type.isSigned)
            return v;
        Value *zero = constant(ApInt(v->type.width, 0),
                               Type(v->type.isSigned, v->type.width));
        Operation *op = g().append(OpKind::HwICmp, {v, zero},
                                   {WireType(1, false)});
        op->setAttr("pred", int64_t(ICmpPred::Ne));
        return op->result();
    }

    Value *
    predAnd(Value *a, Value *b)
    {
        if (!a)
            return b;
        if (!b)
            return a;
        return g().append(OpKind::HwAnd, {a, b}, {WireType(1)})->result();
    }

    Value *
    predNot(Value *a)
    {
        return g().append(OpKind::HwNot, {a}, {WireType(1)})->result();
    }

    Value *
    mux(Value *cond, Value *if_true, Value *if_false)
    {
        if (if_true == if_false)
            return if_true;
        if (if_true->type != if_false->type)
            LN_PANIC("mux arm type mismatch: ", if_true->type.str(),
                     " vs ", if_false->type.str());
        return g().append(OpKind::HwMux, {cond, if_true, if_false},
                          {if_true->type})->result();
    }

    /** Current predicate as an explicit i1 (constant true if none). */
    Value *
    predValue()
    {
        return curPred_ ? curPred_ : constTrue();
    }

    // ------------------------------------------------------------------
    // State access
    // ------------------------------------------------------------------

    const StateInfo *
    stateOf(const std::string &name, SourceLoc loc)
    {
        const StateInfo *s = isa_.findState(name);
        if (!s)
            error(loc, "unknown state element '" + name + "'");
        return s;
    }

    /** Architectural (pre-write) value of a state element. */
    Value *
    readStateRaw(const StateInfo &state, Value *index)
    {
        auto key = std::make_pair(state.name, index);
        auto it = getCache_.find(key);
        if (it != getCache_.end())
            return it->second;
        Operation *op;
        if (state.isConst) {
            std::vector<Value *> rom_operands;
            if (index)
                rom_operands.push_back(index);
            op = g().append(OpKind::CoredslRom, std::move(rom_operands),
                            {wireType(state.elementType)});
            op->setAttr("state", state.name);
            std::vector<ApInt> values = state.constValues;
            op->setAttr("values", std::move(values));
        } else {
            std::vector<Value *> operands;
            if (index)
                operands.push_back(index);
            op = g().append(OpKind::CoredslGet, operands,
                            {wireType(state.elementType)});
            op->setAttr("state", state.name);
        }
        getCache_[key] = op->result();
        return op->result();
    }

    /** Current value of scalar state, honoring earlier writes. */
    Value *
    readScalarState(const StateInfo &state)
    {
        auto it = frame_.stateValues.find(state.name);
        if (it != frame_.stateValues.end())
            return it->second;
        Value *v = readStateRaw(state, nullptr);
        frame_.stateValues[state.name] = v;
        return v;
    }

    void
    recordWrite(const StateInfo &state, Value *index, Value *value,
                SourceLoc loc)
    {
        if (state.isConst)
            error(loc, "cannot write constant register '" + state.name +
                           "'");
        Value *pred = predValue();
        auto it = frame_.stateWrites.find(state.name);
        if (it == frame_.stateWrites.end()) {
            frame_.stateWrites[state.name] = {value, pred, index, loc};
        } else {
            StateWrite &w = it->second;
            // Later write wins when its predicate holds.
            if (curPred_) {
                w.value = mux(curPred_, value, w.value);
                if (index && w.index && index != w.index)
                    w.index = mux(curPred_, index, w.index);
                else if (index)
                    w.index = index;
                w.pred = g().append(OpKind::HwOr, {w.pred, pred},
                                    {WireType(1)})->result();
            } else {
                w.value = value;
                w.index = index;
                w.pred = pred;
            }
            w.loc = loc;
        }
        // Subsequent reads of scalar state observe the merged value.
        if (!state.isArray() &&
            state.kind == StateInfo::Kind::Register) {
            if (curPred_) {
                Value *old = frame_.stateValues.count(state.name)
                                 ? frame_.stateValues[state.name]
                                 : readStateRaw(state, nullptr);
                frame_.stateValues[state.name] = mux(curPred_, value,
                                                     old);
            } else {
                frame_.stateValues[state.name] = value;
            }
        }
    }

    /** Emit the coalesced coredsl.set / set_mem ops of @p frame. */
    void
    flushStateWrites(Frame &frame, Graph &target)
    {
        // Note: emission order follows the map (name) order; the ops are
        // dataflow nodes whose timing is decided by the scheduler.
        for (auto &[name, w] : frame.stateWrites) {
            target.setDefaultLoc(w.loc);
            if (name == "MEM") {
                Operation *op = target.append(
                    OpKind::CoredslSetMem, {w.index, w.value, w.pred},
                    {});
                op->setAttr("state", name);
                op->setAttr("bytes",
                            int64_t(w.value->type.width / 8));
                continue;
            }
            const StateInfo *state = isa_.findState(name);
            std::vector<Value *> operands;
            if (state && state->isArray())
                operands.push_back(w.index);
            operands.push_back(w.value);
            operands.push_back(w.pred);
            Operation *op = target.append(OpKind::CoredslSet, operands,
                                          {});
            op->setAttr("state", name);
            if (state && state->isArray())
                op->setAttr("indexed", int64_t(1));
        }
        frame.stateWrites.clear();
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    void
    lowerStmt(const Stmt &stmt)
    {
        g().setDefaultLoc(stmt.loc);
        switch (stmt.kind) {
          case Stmt::Kind::Block: {
            const auto &block = static_cast<const BlockStmt &>(stmt);
            // Names declared in the block go out of scope afterwards;
            // assignments to outer variables persist.
            std::set<std::string> var_names, const_names;
            for (const auto &[k, v] : frame_.vars)
                var_names.insert(k);
            for (const auto &[k, v] : frame_.consts)
                const_names.insert(k);
            for (const auto &s : block.stmts)
                lowerStmt(*s);
            std::erase_if(frame_.vars, [&](const auto &kv) {
                return !var_names.count(kv.first);
            });
            std::erase_if(frame_.consts, [&](const auto &kv) {
                return !const_names.count(kv.first);
            });
            std::erase_if(frame_.shadows, [&](const auto &kv) {
                return var_names.count(kv.first) ||
                       const_names.count(kv.first)
                           ? false
                           : true;
            });
            break;
          }
          case Stmt::Kind::VarDecl: {
            const auto &decl = static_cast<const VarDeclStmt &>(stmt);
            Value *init;
            if (decl.init) {
                init = cast(lowerExpr(*decl.init), decl.resolvedType);
            } else {
                init = constant(ApInt(decl.resolvedType.width, 0),
                                decl.resolvedType);
            }
            frame_.vars[decl.name] = init;
            updateShadow(decl.name, init);
            break;
          }
          case Stmt::Kind::ExprStmt:
            lowerExpr(*static_cast<const ExprStmt &>(stmt).expr);
            break;
          case Stmt::Kind::If:
            lowerIf(static_cast<const IfStmt &>(stmt));
            break;
          case Stmt::Kind::For:
            lowerFor(static_cast<const ForStmt &>(stmt));
            break;
          case Stmt::Kind::While:
            lowerWhile(static_cast<const coredsl::WhileStmt &>(stmt));
            break;
          case Stmt::Kind::Switch:
            lowerSwitch(static_cast<const coredsl::SwitchStmt &>(stmt));
            break;
          case Stmt::Kind::Break:
            error(stmt.loc, "'break' outside of a switch");
            break;
          case Stmt::Kind::Return: {
            const auto &ret = static_cast<const ReturnStmt &>(stmt);
            if (inlineDepth_ == 0)
                error(ret.loc, "'return' outside of a function");
            if (returnValue_)
                error(ret.loc, "only a single trailing 'return' is "
                               "supported per function");
            returnValue_ = ret.value ? lowerExpr(*ret.value)
                                     : constFalse();
            break;
          }
          case Stmt::Kind::Spawn:
            lowerSpawn(static_cast<const SpawnStmt &>(stmt));
            break;
        }
    }

    void
    lowerIf(const IfStmt &stmt)
    {
        // Attempt compile-time resolution first (used in unrolled
        // loops with iteration-dependent conditions).
        if (auto c = evalConst(*stmt.cond, constEnv())) {
            if (!c->value.isZero())
                lowerStmt(*stmt.thenStmt);
            else if (stmt.elseStmt)
                lowerStmt(*stmt.elseStmt);
            return;
        }

        Value *cond = toBool(lowerExpr(*stmt.cond));

        Frame original = frame_;
        Value *saved_pred = curPred_;

        curPred_ = predAnd(saved_pred, cond);
        lowerStmt(*stmt.thenStmt);
        Frame then_frame = std::move(frame_);

        frame_ = original;
        Frame else_frame;
        curPred_ = predAnd(saved_pred, predNot(cond));
        if (stmt.elseStmt)
            lowerStmt(*stmt.elseStmt);
        else_frame = std::move(frame_);

        curPred_ = saved_pred;
        frame_ = mergeFrames(original, cond, then_frame, else_frame,
                             stmt.loc);
    }

    Frame
    mergeFrames(const Frame &original, Value *cond, Frame &then_frame,
                Frame &else_frame, SourceLoc loc)
    {
        Frame merged;
        // Compile-time constants must not diverge across branches.
        for (const auto &[k, v] : original.consts) {
            auto t = then_frame.consts.find(k);
            auto e = else_frame.consts.find(k);
            if (t == then_frame.consts.end() ||
                e == else_frame.consts.end() ||
                !(t->second.value == e->second.value))
                error(loc, "loop induction variable '" + k +
                               "' may not be modified in a branch");
            merged.consts[k] = v;
        }
        // Runtime variables: mux differing values.
        for (const auto &[k, v] : original.vars) {
            Value *tv = then_frame.vars.at(k);
            Value *ev = else_frame.vars.at(k);
            merged.vars[k] = (tv == ev) ? tv : mux(cond, tv, ev);
            auto ts = then_frame.shadows.find(k);
            auto es = else_frame.shadows.find(k);
            if (ts != then_frame.shadows.end() &&
                es != else_frame.shadows.end() &&
                ts->second.value == es->second.value &&
                ts->second.type == es->second.type)
                merged.shadows[k] = ts->second;
        }
        // Current state values.
        std::set<std::string> state_keys;
        for (const auto &[k, v] : then_frame.stateValues)
            state_keys.insert(k);
        for (const auto &[k, v] : else_frame.stateValues)
            state_keys.insert(k);
        for (const std::string &k : state_keys) {
            Value *tv = lookupStateValue(then_frame, k, loc);
            Value *ev = lookupStateValue(else_frame, k, loc);
            merged.stateValues[k] = (tv == ev) ? tv : mux(cond, tv, ev);
        }
        // Pending writes. Per-branch predicates already include the
        // branch condition, so a simple mux/or merge is sound.
        std::set<std::string> write_keys;
        for (const auto &[k, w] : then_frame.stateWrites)
            write_keys.insert(k);
        for (const auto &[k, w] : else_frame.stateWrites)
            write_keys.insert(k);
        for (const std::string &k : write_keys) {
            auto t = then_frame.stateWrites.find(k);
            auto e = else_frame.stateWrites.find(k);
            if (t != then_frame.stateWrites.end() &&
                e != else_frame.stateWrites.end()) {
                StateWrite w;
                w.value = mux(cond, t->second.value, e->second.value);
                w.pred = mux(cond, t->second.pred, e->second.pred);
                if (t->second.index && e->second.index) {
                    w.index = (t->second.index == e->second.index)
                                  ? t->second.index
                                  : mux(cond, t->second.index,
                                        e->second.index);
                }
                w.loc = t->second.loc;
                merged.stateWrites[k] = w;
            } else if (t != then_frame.stateWrites.end()) {
                merged.stateWrites[k] = t->second;
            } else {
                merged.stateWrites[k] = e->second;
            }
        }
        return merged;
    }

    Value *
    lookupStateValue(Frame &frame, const std::string &name, SourceLoc loc)
    {
        auto it = frame.stateValues.find(name);
        if (it != frame.stateValues.end())
            return it->second;
        const StateInfo *state = stateOf(name, loc);
        return readStateRaw(*state, nullptr);
    }

    void
    lowerFor(const ForStmt &stmt)
    {
        // Loops are interpreted at compile time and fully unrolled
        // (Sec. 2.4: "loops with known trip counts").
        if (!stmt.init || stmt.init->kind != Stmt::Kind::VarDecl)
            error(stmt.loc, "for-loops must declare their induction "
                            "variable in the init clause");
        const auto &decl = static_cast<const VarDeclStmt &>(*stmt.init);
        if (!decl.init)
            error(decl.loc, "loop induction variable needs a "
                            "compile-time initializer");
        auto init = evalConst(*decl.init, constEnv());
        if (!init)
            error(decl.loc, "loop bounds must be compile-time constants");

        TypedConst iv;
        iv.type = decl.resolvedType;
        iv.value = init->type.isSigned
                       ? init->value.sextOrTrunc(iv.type.width)
                       : init->value.zextOrTrunc(iv.type.width);

        bool shadowed = frame_.consts.count(decl.name) > 0;
        TypedConst shadowed_value;
        if (shadowed)
            shadowed_value = frame_.consts[decl.name];

        unsigned iterations = 0;
        while (true) {
            frame_.consts[decl.name] = iv;
            auto cond = evalConst(*stmt.cond, constEnv());
            if (!cond)
                error(stmt.loc,
                      "loop condition is not compile-time evaluable");
            if (cond->value.isZero())
                break;
            if (++iterations > options_.maxUnrollIterations)
                error(stmt.loc, "loop exceeds the unroll limit of " +
                                    std::to_string(
                                        options_.maxUnrollIterations) +
                                    " iterations");
            lowerStmt(*stmt.body);
            // The body must not disturb the induction variable.
            if (!(frame_.consts.at(decl.name).value == iv.value))
                error(stmt.loc, "loop body may not modify the induction "
                                "variable");
            if (!stmt.step)
                error(stmt.loc, "for-loops require a step expression");
            iv = evalStep(*stmt.step, decl.name, iv);
        }

        if (shadowed)
            frame_.consts[decl.name] = shadowed_value;
        else
            frame_.consts.erase(decl.name);
    }

    /** Interpret i += c, i -= c, ++i, i++, --i, i--, i = expr. */
    TypedConst
    evalStep(const Expr &step, const std::string &name, TypedConst iv)
    {
        auto env = constEnv();
        env[name] = iv;
        if (step.kind == Expr::Kind::Assign) {
            const auto &assign = static_cast<const AssignExpr &>(step);
            if (assign.lhs->kind != Expr::Kind::Ref ||
                static_cast<const RefExpr &>(*assign.lhs).name != name)
                error(step.loc, "loop step must update the induction "
                                "variable");
            auto rhs = evalConst(*assign.rhs, env);
            if (!rhs)
                error(step.loc, "loop step is not compile-time "
                                "evaluable");
            TypedConst next;
            next.type = iv.type;
            if (assign.compoundOp) {
                // Compound steps: compute iv op rhs, wrapped to iv.type.
                next.value = applyBinOp(*assign.compoundOp, iv, *rhs);
            } else {
                next.value = rhs->type.isSigned
                                 ? rhs->value.sextOrTrunc(iv.type.width)
                                 : rhs->value.zextOrTrunc(iv.type.width);
            }
            return next;
        }
        if (step.kind == Expr::Kind::Unary) {
            const auto &unary = static_cast<const UnaryExpr &>(step);
            bool inc = unary.op == UnaryExpr::Op::PreInc ||
                       unary.op == UnaryExpr::Op::PostInc;
            bool dec = unary.op == UnaryExpr::Op::PreDec ||
                       unary.op == UnaryExpr::Op::PostDec;
            if ((inc || dec) &&
                unary.operand->kind == Expr::Kind::Ref &&
                static_cast<const RefExpr &>(*unary.operand).name ==
                    name) {
                ApInt one(iv.type.width, 1);
                TypedConst next;
                next.type = iv.type;
                next.value = inc ? iv.value + one : iv.value - one;
                return next;
            }
        }
        error(step.loc, "unsupported loop step expression");
    }

    /** iv op rhs, wrapped back to iv's type (compound semantics). */
    ApInt
    applyBinOp(BinOp op, const TypedConst &iv, const TypedConst &rhs)
    {
        unsigned w = std::max(iv.type.width, rhs.type.width) + 2;
        ApInt a = iv.type.isSigned ? iv.value.sextOrTrunc(w)
                                   : iv.value.zextOrTrunc(w);
        ApInt b = rhs.type.isSigned ? rhs.value.sextOrTrunc(w)
                                    : rhs.value.zextOrTrunc(w);
        ApInt r(w);
        switch (op) {
          case BinOp::Add: r = a + b; break;
          case BinOp::Sub: r = a - b; break;
          case BinOp::Mul: r = a * b; break;
          case BinOp::Shl: r = a.shl(unsigned(b.toUint64())); break;
          case BinOp::Shr:
            r = iv.type.isSigned ? a.ashr(unsigned(b.toUint64()))
                                 : a.lshr(unsigned(b.toUint64()));
            break;
          default:
            LN_PANIC("unsupported compound step operator");
        }
        return r.trunc(iv.type.width);
    }

    static ApInt
    adjustTo(const TypedConst &c, Type target)
    {
        return c.type.isSigned ? c.value.sextOrTrunc(target.width)
                               : c.value.zextOrTrunc(target.width);
    }

    void
    lowerWhile(const coredsl::WhileStmt &stmt)
    {
        // While-loops are interpreted at compile time like for-loops;
        // the condition must stay compile-time evaluable, which the
        // local shadow tracking provides for straight-line updates
        // (e.g. "i = i + 1").
        unsigned iterations = 0;
        while (true) {
            auto cond = evalConst(*stmt.cond, constEnv());
            if (!cond)
                error(stmt.loc,
                      "while-loop condition is not compile-time "
                      "evaluable (loops need known trip counts)");
            if (cond->value.isZero())
                break;
            if (++iterations > options_.maxUnrollIterations)
                error(stmt.loc, "loop exceeds the unroll limit of " +
                                    std::to_string(
                                        options_.maxUnrollIterations) +
                                    " iterations");
            lowerStmt(*stmt.body);
        }
    }

    /** Lower a statement list with block scoping. */
    void
    lowerScopedList(const std::vector<coredsl::StmtPtr> &stmts)
    {
        std::set<std::string> var_names, const_names;
        for (const auto &[k, v] : frame_.vars)
            var_names.insert(k);
        for (const auto &[k, v] : frame_.consts)
            const_names.insert(k);
        for (const auto &s : stmts)
            lowerStmt(*s);
        std::erase_if(frame_.vars, [&](const auto &kv) {
            return !var_names.count(kv.first);
        });
        std::erase_if(frame_.consts, [&](const auto &kv) {
            return !const_names.count(kv.first);
        });
        std::erase_if(frame_.shadows, [&](const auto &kv) {
            return !var_names.count(kv.first) &&
                   !const_names.count(kv.first);
        });
    }

    void
    lowerSwitch(const coredsl::SwitchStmt &stmt)
    {
        const coredsl::SwitchCase *default_arm = nullptr;
        std::vector<const coredsl::SwitchCase *> valued;
        for (const auto &arm : stmt.cases) {
            if (arm.values.empty())
                default_arm = &arm;
            else
                valued.push_back(&arm);
        }

        // Compile-time subject: select the arm statically.
        if (auto subject = evalConst(*stmt.subject, constEnv())) {
            for (const auto *arm : valued) {
                for (const auto &value : arm->values) {
                    auto c = evalConst(*value, constEnv());
                    if (c &&
                        adjustTo(*c, subject->type) == subject->value) {
                        lowerScopedList(arm->body);
                        return;
                    }
                }
            }
            if (default_arm)
                lowerScopedList(default_arm->body);
            return;
        }

        Value *subject = lowerExpr(*stmt.subject);
        lowerSwitchChain(subject, *stmt.subject, valued, 0, default_arm);
    }

    void
    lowerSwitchChain(Value *subject, const Expr &subject_expr,
                     const std::vector<const coredsl::SwitchCase *> &arms,
                     size_t index, const coredsl::SwitchCase *default_arm)
    {
        if (index == arms.size()) {
            if (default_arm)
                lowerScopedList(default_arm->body);
            return;
        }
        const coredsl::SwitchCase &arm = *arms[index];
        // cond = (subject == v0) | (subject == v1) | ...
        Value *cond = nullptr;
        for (const auto &value : arm.values) {
            Value *v = lowerExpr(*value);
            Value *eq = applyBinary(BinOp::Eq, subject, v,
                                    Type::makeBool());
            cond = cond ? g().append(OpKind::HwOr, {cond, eq},
                                     {ir::WireType(1)})->result()
                        : eq;
        }

        Frame original = frame_;
        Value *saved_pred = curPred_;

        curPred_ = predAnd(saved_pred, cond);
        lowerScopedList(arm.body);
        Frame then_frame = std::move(frame_);

        frame_ = original;
        curPred_ = predAnd(saved_pred, predNot(cond));
        lowerSwitchChain(subject, subject_expr, arms, index + 1,
                         default_arm);
        Frame else_frame = std::move(frame_);

        curPred_ = saved_pred;
        frame_ = mergeFrames(original, cond, then_frame, else_frame,
                             arm.loc);
    }

    void
    lowerSpawn(const SpawnStmt &stmt)
    {
        if (graphStack_.size() != 1)
            error(stmt.loc, "nested 'spawn' blocks are not supported");
        if (spawnSeen_)
            error(stmt.loc, "at most one 'spawn' block per instruction");
        if (curPred_)
            error(stmt.loc, "'spawn' may not appear under a condition");
        spawnSeen_ = true;

        // Writes before the spawn commit in-pipeline; flush them first.
        flushStateWrites(frame_, g());

        // Values created inside the spawn subgraph must not leak into
        // operations appended to the outer graph afterwards.
        auto saved_get_cache = getCache_;
        auto saved_state_values = frame_.stateValues;

        Operation *spawn = g().appendWithSubgraph(OpKind::CoredslSpawn);
        graphStack_.push_back(spawn->subgraph());
        lowerStmt(*stmt.body);
        flushStateWrites(frame_, *spawn->subgraph());
        graphStack_.pop_back();

        getCache_ = std::move(saved_get_cache);
        frame_.stateValues = std::move(saved_state_values);
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    Value *
    lowerExpr(const Expr &expr)
    {
        g().setDefaultLoc(expr.loc);
        // Anything that folds at compile time becomes a constant.
        if (expr.kind != Expr::Kind::Assign &&
            expr.kind != Expr::Kind::Unary) {
            if (auto c = evalConst(expr, constEnv()))
                return constant(c->value, expr.type);
        }
        switch (expr.kind) {
          case Expr::Kind::IntLit: {
            const auto &lit = static_cast<const IntLitExpr &>(expr);
            return constant(lit.value, expr.type);
          }
          case Expr::Kind::Ref:
            return lowerRef(static_cast<const RefExpr &>(expr));
          case Expr::Kind::Index:
            return lowerIndex(static_cast<const IndexExpr &>(expr));
          case Expr::Kind::RangeIndex:
            return lowerRangeIndex(
                static_cast<const RangeIndexExpr &>(expr));
          case Expr::Kind::Call:
            return lowerCall(static_cast<const CallExpr &>(expr));
          case Expr::Kind::Unary:
            return lowerUnary(static_cast<const UnaryExpr &>(expr));
          case Expr::Kind::Binary:
            return lowerBinary(static_cast<const BinaryExpr &>(expr));
          case Expr::Kind::Assign:
            return lowerAssign(static_cast<const AssignExpr &>(expr));
          case Expr::Kind::Conditional: {
            const auto &cond =
                static_cast<const ConditionalExpr &>(expr);
            Value *c = toBool(lowerExpr(*cond.cond));
            Value *t = cast(lowerExpr(*cond.thenExpr), expr.type);
            Value *f = cast(lowerExpr(*cond.elseExpr), expr.type);
            return mux(c, t, f);
          }
          case Expr::Kind::Cast: {
            const auto &c = static_cast<const CastExpr &>(expr);
            return cast(lowerExpr(*c.operand), expr.type);
          }
          case Expr::Kind::Concat: {
            const auto &cc = static_cast<const ConcatExpr &>(expr);
            Value *hi = lowerExpr(*cc.lhs);
            Value *lo = lowerExpr(*cc.rhs);
            return g().append(OpKind::CoredslConcat, {hi, lo},
                              {wireType(expr.type)})->result();
          }
        }
        LN_PANIC("unhandled expression kind");
    }

    Value *
    lowerRef(const RefExpr &ref)
    {
        auto var = frame_.vars.find(ref.name);
        if (var != frame_.vars.end())
            return var->second;
        if (instr_ && inlineDepth_ == 0) {
            auto field = instr_->fields.find(ref.name);
            if (field != instr_->fields.end())
                return fieldValue(ref.name, field->second.width);
        }
        if (const StateInfo *state = isa_.findState(ref.name)) {
            if (state->isConst)
                return readStateRaw(*state, nullptr);
            return readScalarState(*state);
        }
        error(ref.loc, "cannot lower reference to '" + ref.name + "'");
    }

    Value *
    fieldValue(const std::string &name, unsigned width)
    {
        auto it = fieldCache_.find(name);
        if (it != fieldCache_.end())
            return it->second;
        // Field ops live in the outermost graph so spawn bodies can use
        // them as well.
        Operation *op = graphStack_.front()->append(
            OpKind::CoredslField, {}, {WireType(width, false)});
        op->setAttr("field", name);
        fieldCache_[name] = op->result();
        return op->result();
    }

    Value *
    lowerIndex(const IndexExpr &index)
    {
        if (index.base->kind == Expr::Kind::Ref) {
            const auto &ref = static_cast<const RefExpr &>(*index.base);
            if (const StateInfo *state = isa_.findState(ref.name)) {
                if (state->kind == StateInfo::Kind::AddressSpace) {
                    Value *addr = cast(lowerExpr(*index.index),
                                       Type::makeUnsigned(32));
                    return readMem(addr, 1, index.loc);
                }
                Value *idx = lowerExpr(*index.index);
                return readStateRaw(*state, idx);
            }
        }
        // Single-bit select on a scalar value.
        Value *base = lowerExpr(*index.base);
        return extractDynamic(base, *index.index, 1, index.loc);
    }

    Value *
    lowerRangeIndex(const RangeIndexExpr &range)
    {
        unsigned span = range.type.width; // result width (bits)
        if (range.base->kind == Expr::Kind::Ref) {
            const auto &ref = static_cast<const RefExpr &>(*range.base);
            const StateInfo *state = isa_.findState(ref.name);
            if (state && state->kind == StateInfo::Kind::AddressSpace) {
                unsigned bytes = range.type.width /
                                 state->elementType.width;
                Value *addr = cast(lowerLowBound(*range.to),
                                   Type::makeUnsigned(32));
                return readMem(addr, bytes, range.loc);
            }
        }
        Value *base = lowerExpr(*range.base);
        return extractDynamic(base, *range.to, span, range.loc);
    }

    Value *
    lowerLowBound(const Expr &to)
    {
        return lowerExpr(to);
    }

    /** base[lo + span - 1 : lo] with possibly dynamic lo. */
    Value *
    extractDynamic(Value *base, const Expr &lo_expr, unsigned span,
                   SourceLoc loc)
    {
        if (auto lo = evalConst(lo_expr, constEnv())) {
            unsigned lo_bit = unsigned(lo->value.toUint64());
            if (lo_bit + span > base->type.width)
                error(loc, "bit range out of bounds");
            Operation *op = g().append(OpKind::CoredslExtract, {base},
                                       {WireType(span, false)});
            op->setAttr("lo", int64_t(lo_bit));
            return op->result();
        }
        // Dynamic low bound: shift right, then truncate.
        Value *amount = lowerExpr(lo_expr);
        // hwarith.shr keeps the lhs type; make the base unsigned first
        // so the shift is logical.
        Value *ubase = cast(base, Type::makeUnsigned(base->type.width));
        Value *shifted = g().append(OpKind::HwShr, {ubase, amount},
                                    {ubase->type})->result();
        return cast(shifted, Type::makeUnsigned(span));
    }

    Value *
    readMem(Value *addr, unsigned bytes, SourceLoc loc)
    {
        if (bytes > 4)
            error(loc, "memory reads wider than one 32-bit word are not "
                       "supported by the RdMem sub-interface");
        Operation *op = g().append(OpKind::CoredslGetMem,
                                   {addr, predValue()},
                                   {WireType(bytes * 8, false)});
        op->setAttr("state", std::string("MEM"));
        op->setAttr("bytes", int64_t(bytes));
        return op->result();
    }

    Value *
    lowerCall(const CallExpr &call)
    {
        const FunctionInfo *fn = isa_.findFunction(call.callee);
        if (!fn)
            error(call.loc, "call to unknown function '" + call.callee +
                                "'");
        if (inlineStack_.count(call.callee))
            error(call.loc, "recursive call to '" + call.callee +
                                "' cannot be synthesized");

        std::vector<Value *> args;
        for (size_t i = 0; i < call.args.size(); ++i) {
            Value *a = lowerExpr(*call.args[i]);
            args.push_back(cast(a, fn->paramTypes[i]));
        }

        // Inline: fresh local scope, shared state environment.
        auto saved_vars = std::move(frame_.vars);
        auto saved_consts = std::move(frame_.consts);
        frame_.vars.clear();
        frame_.consts.clear();
        for (size_t i = 0; i < args.size(); ++i)
            frame_.vars[fn->ast->params[i].name] = args[i];

        inlineStack_.insert(call.callee);
        ++inlineDepth_;
        Value *saved_return = returnValue_;
        returnValue_ = nullptr;

        lowerStmt(*fn->ast->body);

        Value *result = returnValue_;
        returnValue_ = saved_return;
        --inlineDepth_;
        inlineStack_.erase(call.callee);
        frame_.vars = std::move(saved_vars);
        frame_.consts = std::move(saved_consts);

        if (fn->returnType.isValid()) {
            if (!result)
                error(call.loc, "function '" + call.callee +
                                    "' did not return a value");
            return result;
        }
        return constFalse(); // void call used as a statement
    }

    Value *
    lowerUnary(const UnaryExpr &unary)
    {
        switch (unary.op) {
          case UnaryExpr::Op::Neg: {
            Value *operand = lowerExpr(*unary.operand);
            Value *widened =
                cast(operand, Type(unary.type.isSigned,
                                   unary.type.width));
            Value *zero = constant(ApInt(unary.type.width, 0),
                                   unary.type);
            return g().append(OpKind::HwSub, {zero, widened},
                              {wireType(unary.type)})->result();
          }
          case UnaryExpr::Op::BitNot: {
            Value *operand = lowerExpr(*unary.operand);
            return g().append(OpKind::HwNot, {operand},
                              {operand->type})->result();
          }
          case UnaryExpr::Op::LogicalNot: {
            Value *operand = lowerExpr(*unary.operand);
            return predNot(toBool(operand));
          }
          case UnaryExpr::Op::PreInc:
          case UnaryExpr::Op::PreDec:
          case UnaryExpr::Op::PostInc:
          case UnaryExpr::Op::PostDec: {
            bool inc = unary.op == UnaryExpr::Op::PreInc ||
                       unary.op == UnaryExpr::Op::PostInc;
            bool pre = unary.op == UnaryExpr::Op::PreInc ||
                       unary.op == UnaryExpr::Op::PreDec;
            Value *old = lowerExpr(*unary.operand);
            Value *one = constant(ApInt(old->type.width, 1),
                                  Type(old->type.isSigned,
                                       old->type.width));
            OpKind op = inc ? OpKind::HwAdd : OpKind::HwSub;
            WireType wide(old->type.width + 1, true);
            Value *next_wide =
                g().append(op, {old, one}, {wide})->result();
            Value *next = cast(next_wide, Type(old->type.isSigned,
                                               old->type.width));
            storeTo(*unary.operand, next, unary.loc);
            return pre ? next : old;
          }
        }
        LN_PANIC("unhandled unary operator");
    }

    Value *
    lowerBinary(const BinaryExpr &bin)
    {
        Value *lhs = lowerExpr(*bin.lhs);
        Value *rhs = lowerExpr(*bin.rhs);
        return applyBinary(bin.op, lhs, rhs, bin.type);
    }

    Value *
    applyBinary(BinOp op, Value *lhs, Value *rhs, Type result)
    {
        switch (op) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
          case BinOp::Div:
          case BinOp::Rem: {
            OpKind kind = op == BinOp::Add   ? OpKind::HwAdd
                          : op == BinOp::Sub ? OpKind::HwSub
                          : op == BinOp::Mul ? OpKind::HwMul
                          : op == BinOp::Div ? OpKind::HwDiv
                                             : OpKind::HwRem;
            return g().append(kind, {lhs, rhs},
                              {wireType(result)})->result();
          }
          case BinOp::Shl:
          case BinOp::Shr: {
            OpKind kind = op == BinOp::Shl ? OpKind::HwShl
                                           : OpKind::HwShr;
            Value *v = g().append(kind, {lhs, rhs},
                                  {lhs->type})->result();
            return cast(v, result);
          }
          case BinOp::And:
          case BinOp::Or:
          case BinOp::Xor: {
            OpKind kind = op == BinOp::And  ? OpKind::HwAnd
                          : op == BinOp::Or ? OpKind::HwOr
                                            : OpKind::HwXor;
            return g().append(kind, {lhs, rhs},
                              {wireType(result)})->result();
          }
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge:
          case BinOp::Eq:
          case BinOp::Ne: {
            bool any_signed = lhs->type.isSigned || rhs->type.isSigned;
            ICmpPred pred;
            switch (op) {
              case BinOp::Lt:
                pred = any_signed ? ICmpPred::Slt : ICmpPred::Ult;
                break;
              case BinOp::Le:
                pred = any_signed ? ICmpPred::Sle : ICmpPred::Ule;
                break;
              case BinOp::Gt:
                pred = any_signed ? ICmpPred::Sgt : ICmpPred::Ugt;
                break;
              case BinOp::Ge:
                pred = any_signed ? ICmpPred::Sge : ICmpPred::Uge;
                break;
              case BinOp::Eq: pred = ICmpPred::Eq; break;
              default: pred = ICmpPred::Ne; break;
            }
            Operation *cmp = g().append(OpKind::HwICmp, {lhs, rhs},
                                        {WireType(1, false)});
            cmp->setAttr("pred", int64_t(pred));
            return cmp->result();
          }
          case BinOp::LogicalAnd:
            return g().append(OpKind::HwAnd,
                              {toBool(lhs), toBool(rhs)},
                              {WireType(1)})->result();
          case BinOp::LogicalOr:
            return g().append(OpKind::HwOr,
                              {toBool(lhs), toBool(rhs)},
                              {WireType(1)})->result();
        }
        LN_PANIC("unhandled binary operator");
    }

    Value *
    lowerAssign(const AssignExpr &assign)
    {
        Value *rhs = lowerExpr(*assign.rhs);
        Value *value;
        if (assign.compoundOp) {
            Value *old = lowerExpr(*assign.lhs);
            Type op_type = resultType(*assign.compoundOp,
                                      assign.lhs->type,
                                      assign.rhs->type);
            Value *combined =
                applyBinary(*assign.compoundOp, old, rhs, op_type);
            value = cast(combined, assign.lhs->type); // wrap semantics
        } else {
            value = cast(rhs, assign.lhs->type);
        }
        storeTo(*assign.lhs, value, assign.loc);
        return value;
    }

    void
    storeTo(const Expr &lhs, Value *value, SourceLoc loc)
    {
        switch (lhs.kind) {
          case Expr::Kind::Ref: {
            const auto &ref = static_cast<const RefExpr &>(lhs);
            auto var = frame_.vars.find(ref.name);
            if (var != frame_.vars.end()) {
                var->second = value;
                if (curPred_)
                    frame_.shadows.erase(ref.name);
                else
                    updateShadow(ref.name, value);
                return;
            }
            const StateInfo *state = stateOf(ref.name, loc);
            recordWrite(*state, nullptr, value, loc);
            return;
          }
          case Expr::Kind::Index: {
            const auto &index = static_cast<const IndexExpr &>(lhs);
            const auto &ref =
                static_cast<const RefExpr &>(*index.base);
            const StateInfo *state = stateOf(ref.name, loc);
            if (state->kind == StateInfo::Kind::AddressSpace)
                error(loc, "single-byte memory stores are not supported "
                           "by the WrMem sub-interface; store a full "
                           "word");
            Value *idx = lowerExpr(*index.index);
            recordWrite(*state, idx, value, loc);
            return;
          }
          case Expr::Kind::RangeIndex: {
            const auto &range =
                static_cast<const RangeIndexExpr &>(lhs);
            const auto &ref =
                static_cast<const RefExpr &>(*range.base);
            const StateInfo *state = stateOf(ref.name, loc);
            if (state->kind != StateInfo::Kind::AddressSpace)
                error(loc, "bit-range assignment is only supported for "
                           "address spaces");
            unsigned bytes = value->type.width / 8;
            if (bytes != 4)
                error(loc, "memory stores must write exactly one 32-bit "
                           "word (WrMem sub-interface)");
            Value *addr = cast(lowerLowBound(*range.to),
                               Type::makeUnsigned(32));
            recordWrite(*state, addr, value, loc);
            return;
          }
          default:
            error(loc, "unsupported assignment target");
        }
    }

    // ------------------------------------------------------------------

    const ElaboratedIsa &isa_;
    DiagnosticEngine &diags_;
    LowerOptions options_;

    const InstrInfo *instr_ = nullptr;
    std::vector<Graph *> graphStack_;
    Frame frame_;
    Value *curPred_ = nullptr;
    bool spawnSeen_ = false;

    std::map<std::string, Value *> fieldCache_;
    std::map<std::pair<std::string, Value *>, Value *> getCache_;

    unsigned inlineDepth_ = 0;
    std::set<std::string> inlineStack_;
    Value *returnValue_ = nullptr;
};

} // namespace

std::unique_ptr<HirInstruction>
lowerInstruction(const ElaboratedIsa &isa, const InstrInfo &instr,
                 DiagnosticEngine &diags, LowerOptions options)
{
    auto out = std::make_unique<HirInstruction>();
    out->name = instr.name;
    out->info = &instr;
    Lowerer lowerer(isa, diags, options);
    if (!lowerer.lowerBehavior(*instr.ast->behavior, &instr, out->body))
        return nullptr;
    std::string err = out->body.verify();
    if (!err.empty())
        LN_PANIC("HIR verification failed for ", instr.name, ": ", err);
    return out;
}

std::unique_ptr<HirAlways>
lowerAlways(const ElaboratedIsa &isa, const AlwaysInfo &always,
            DiagnosticEngine &diags, LowerOptions options)
{
    auto out = std::make_unique<HirAlways>();
    out->name = always.name;
    out->info = &always;
    Lowerer lowerer(isa, diags, options);
    if (!lowerer.lowerBehavior(*always.ast->behavior, nullptr, out->body))
        return nullptr;
    std::string err = out->body.verify();
    if (!err.empty())
        LN_PANIC("HIR verification failed for ", always.name, ": ", err);
    return out;
}

std::unique_ptr<HirModule>
lowerToHir(const ElaboratedIsa &isa, DiagnosticEngine &diags,
           LowerOptions options)
{
    DiagnosticEngine::ContextScope scope(diags, Phase::AstLower,
                                         "LN1003");
    if (failpoint::fire("astlower") != failpoint::Mode::Off) {
        diags.error({}, "LN1903",
                    "injected fault at failpoint 'astlower'");
        return nullptr;
    }
    auto mod = std::make_unique<HirModule>();
    mod->isa = &isa;
    for (const auto &instr : isa.instructions) {
        if (instr.fromBase)
            continue;
        auto lowered = lowerInstruction(isa, instr, diags, options);
        if (!lowered)
            return nullptr;
        mod->instructions.push_back(std::move(lowered));
    }
    for (const auto &always : isa.alwaysBlocks) {
        if (always.fromBase)
            continue;
        auto lowered = lowerAlways(isa, always, diags, options);
        if (!lowered)
            return nullptr;
        mod->alwaysBlocks.push_back(std::move(lowered));
    }
    return mod;
}

} // namespace hir
} // namespace longnail
