/**
 * @file
 * Token definitions for the CoreDSL lexer.
 */

#ifndef LONGNAIL_COREDSL_TOKEN_HH
#define LONGNAIL_COREDSL_TOKEN_HH

#include <string>

#include "support/apint.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace coredsl {

/** All token kinds produced by the lexer. */
enum class TokenKind
{
    Eof,
    Identifier,
    IntLiteral,     ///< C-style literal: width inferred from the value.
    SizedLiteral,   ///< Verilog-style literal: 7'd0, 3'b111.
    StringLiteral,

    // Keywords.
    KwImport,
    KwInstructionSet,
    KwCore,
    KwExtends,
    KwProvides,
    KwArchitecturalState,
    KwInstructions,
    KwEncoding,
    KwBehavior,
    KwAlways,
    KwFunctions,
    KwRegister,
    KwExtern,
    KwConst,
    KwSigned,
    KwUnsigned,
    KwBool,
    KwVoid,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwReturn,
    KwSpawn,

    // Punctuation and operators.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Colon,
    ColonColon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,
    Shr,
    Less,
    Greater,
    LessEq,
    GreaterEq,
    EqEq,
    NotEq,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Not,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    ShlAssign,
    ShrAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    PlusPlus,
    MinusMinus,
};

/** Human-readable token kind name, for diagnostics. */
const char *tokenKindName(TokenKind kind);

/** One lexed token. */
struct Token
{
    TokenKind kind = TokenKind::Eof;
    SourceLoc loc;
    std::string text;      ///< Identifier spelling or string contents.
    ApInt value{1};        ///< Value for integer literals.
    unsigned sizedWidth = 0; ///< Declared width for SizedLiteral tokens.

    bool is(TokenKind k) const { return kind == k; }
};

} // namespace coredsl
} // namespace longnail

#endif // LONGNAIL_COREDSL_TOKEN_HH
