/**
 * @file
 * The elaborated CoreDSL model produced by semantic analysis.
 *
 * An ElaboratedIsa is the fully resolved view of one InstructionSet or
 * Core: inheritance flattened, parameters evaluated, types resolved, and
 * instruction encodings turned into mask/match patterns plus field
 * layouts. It is the input to the Longnail HIR lowering.
 */

#ifndef LONGNAIL_COREDSL_MODULE_HH
#define LONGNAIL_COREDSL_MODULE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coredsl/ast.hh"
#include "coredsl/types.hh"
#include "support/apint.hh"

namespace longnail {
namespace coredsl {

/** A compile-time constant with its CoreDSL type. */
struct TypedConst
{
    ApInt value{1};
    Type type;
};

/** A resolved architectural state element. */
struct StateInfo
{
    enum class Kind
    {
        Register,     ///< architectural register (scalar or file)
        AddressSpace, ///< 'extern' declaration, e.g. main memory
    };

    Kind kind = Kind::Register;
    std::string name;
    Type elementType;
    uint64_t numElements = 1; ///< 1 for scalars
    bool isConst = false;     ///< constant register file, i.e. a ROM
    std::vector<ApInt> constValues; ///< ROM contents
    /**
     * True for state provided by the host core (the base ISA's X, PC and
     * MEM); false for ISAX-internal state that SCAIE-V must instantiate.
     */
    bool isCoreState = false;

    bool isArray() const { return numElements > 1; }
    /** Bits needed to index this element, at least 1. */
    unsigned indexWidth() const;
};

/** Where field bits land in the instruction word. */
struct FieldSlice
{
    unsigned instrLsb = 0; ///< lowest instruction-word bit of the slice
    unsigned fieldLsb = 0; ///< lowest field bit of the slice
    unsigned count = 0;    ///< number of bits
};

/** An encoding field (e.g. rs1, uimmL) of one instruction. */
struct FieldInfo
{
    unsigned width = 0; ///< total field width (max msb + 1)
    std::vector<FieldSlice> slices;
};

/** A resolved instruction. */
struct InstrInfo
{
    const Instruction *ast = nullptr;
    std::string name;
    uint32_t mask = 0;  ///< 1-bits where the encoding is a literal
    uint32_t match = 0; ///< literal bit values under the mask
    /** 32-char pattern, index 0 = bit 31; '-' marks field bits. */
    std::string maskString;
    std::map<std::string, FieldInfo> fields;
    /** True if declared by the base set (not synthesized into hardware). */
    bool fromBase = false;
};

/** A resolved always-block. */
struct AlwaysInfo
{
    const AlwaysBlock *ast = nullptr;
    std::string name;
    bool fromBase = false;
};

/** A resolved helper function. */
struct FunctionInfo
{
    const FunctionDef *ast = nullptr;
    std::string name;
    Type returnType; ///< invalid (width 0) for void
    std::vector<Type> paramTypes;
};

/** Fully elaborated view of one InstructionSet or Core. */
struct ElaboratedIsa
{
    std::string name;
    std::vector<StateInfo> state;
    std::vector<InstrInfo> instructions;
    std::vector<AlwaysInfo> alwaysBlocks;
    std::vector<FunctionInfo> functions;
    std::map<std::string, TypedConst> parameters;

    /** Keeps the decorated ASTs alive. */
    std::vector<std::unique_ptr<Description>> ownedAsts;

    const StateInfo *findState(const std::string &name) const;
    const FunctionInfo *findFunction(const std::string &name) const;
    const InstrInfo *findInstruction(const std::string &name) const;
};

} // namespace coredsl
} // namespace longnail

#endif // LONGNAIL_COREDSL_MODULE_HH
