#include "coredsl/types.hh"

#include <algorithm>

#include "support/logging.hh"

namespace longnail {
namespace coredsl {

std::string
Type::str() const
{
    return (isSigned ? "signed<" : "unsigned<") + std::to_string(width) +
           ">";
}

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "+";
      case BinOp::Sub: return "-";
      case BinOp::Mul: return "*";
      case BinOp::Div: return "/";
      case BinOp::Rem: return "%";
      case BinOp::Shl: return "<<";
      case BinOp::Shr: return ">>";
      case BinOp::Lt: return "<";
      case BinOp::Le: return "<=";
      case BinOp::Gt: return ">";
      case BinOp::Ge: return ">=";
      case BinOp::Eq: return "==";
      case BinOp::Ne: return "!=";
      case BinOp::And: return "&";
      case BinOp::Or: return "|";
      case BinOp::Xor: return "^";
      case BinOp::LogicalAnd: return "&&";
      case BinOp::LogicalOr: return "||";
    }
    return "?";
}

namespace {

/**
 * Widths of both operands after aligning signedness: when exactly one
 * operand is signed, the unsigned one needs an extra (sign) bit to be
 * embedded in the signed domain.
 */
struct Aligned
{
    bool isSigned;
    unsigned lhsWidth;
    unsigned rhsWidth;
};

Aligned
alignSignedness(Type lhs, Type rhs)
{
    Aligned a;
    a.isSigned = lhs.isSigned || rhs.isSigned;
    a.lhsWidth = lhs.width;
    a.rhsWidth = rhs.width;
    if (a.isSigned && !lhs.isSigned)
        ++a.lhsWidth;
    if (a.isSigned && !rhs.isSigned)
        ++a.rhsWidth;
    return a;
}

} // namespace

Type
unionType(Type a, Type b)
{
    Aligned al = alignSignedness(a, b);
    return {al.isSigned, std::max(al.lhsWidth, al.rhsWidth)};
}

Type
resultType(BinOp op, Type lhs, Type rhs)
{
    if (!lhs.isValid() || !rhs.isValid())
        LN_PANIC("resultType on invalid type");
    switch (op) {
      case BinOp::Add:
      case BinOp::Sub: {
        // One growth bit captures the carry/borrow; subtraction of
        // unsigned operands can go negative, so it is always signed.
        Aligned al = alignSignedness(lhs, rhs);
        bool is_signed = al.isSigned || op == BinOp::Sub;
        unsigned w = std::max(al.lhsWidth, al.rhsWidth) + 1;
        if (op == BinOp::Sub && !al.isSigned)
            w = std::max(lhs.width, rhs.width) + 1;
        return {is_signed, w};
      }
      case BinOp::Mul: {
        // Product width is the sum of the operand widths.
        bool is_signed = lhs.isSigned || rhs.isSigned;
        return {is_signed, lhs.width + rhs.width};
      }
      case BinOp::Div: {
        // |quotient| <= |lhs|; signed division of the most negative
        // value by -1 needs one extra bit.
        bool is_signed = lhs.isSigned || rhs.isSigned;
        unsigned w = lhs.width + (lhs.isSigned && rhs.isSigned ? 1 : 0);
        if (is_signed && !lhs.isSigned)
            ++w;
        return {is_signed, w};
      }
      case BinOp::Rem: {
        // |remainder| < |rhs| and the sign follows the dividend.
        unsigned w = std::min(lhs.width, rhs.width);
        if (lhs.isSigned)
            return {true, w + (rhs.isSigned ? 0 : 1)};
        if (rhs.isSigned && w == rhs.width)
            w = std::max(1u, w - 1);
        return {false, w};
      }
      case BinOp::Shl:
      case BinOp::Shr:
        // Per the CoreDSL specification, shifts keep the left operand's
        // type; widening shifts must be requested by casting first.
        return lhs;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne:
      case BinOp::LogicalAnd:
      case BinOp::LogicalOr:
        return Type::makeBool();
      case BinOp::And:
      case BinOp::Or:
      case BinOp::Xor:
        return unionType(lhs, rhs);
    }
    LN_PANIC("unhandled binary operator");
}

bool
isImplicitlyAssignable(Type to, Type from)
{
    if (to.isSigned == from.isSigned)
        return from.width <= to.width;
    if (to.isSigned && !from.isSigned)
        return from.width < to.width; // need room for the sign bit
    // signed -> unsigned always discards sign information
    return false;
}

} // namespace coredsl
} // namespace longnail
