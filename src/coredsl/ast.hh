/**
 * @file
 * Abstract syntax tree for CoreDSL (grammar in Fig. 2 of the paper).
 *
 * Nodes are tagged with a Kind enumerator and visited via switches;
 * ownership flows top-down through unique_ptr. Sema decorates
 * expressions with their CoreDSL type.
 */

#ifndef LONGNAIL_COREDSL_AST_HH
#define LONGNAIL_COREDSL_AST_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coredsl/types.hh"
#include "support/apint.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace coredsl {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** A parsed (unresolved) type: signed/unsigned<widthExpr>, bool, void. */
struct TypeSpec
{
    enum class Base { Signed, Unsigned, Bool, Void };

    Base base = Base::Unsigned;
    ExprPtr widthExpr; ///< null for bool/void and alias forms
    unsigned aliasWidth = 0; ///< e.g. 32 for 'int'; 0 if widthExpr is used
    SourceLoc loc;

    bool isVoid() const { return base == Base::Void; }
};

// -------------------------------------------------------------------------
// Expressions
// -------------------------------------------------------------------------

struct Expr
{
    enum class Kind
    {
        IntLit,
        Ref,
        Index,
        RangeIndex,
        Call,
        Unary,
        Binary,
        Assign,
        Conditional,
        Cast,
        Concat,
    };

    explicit Expr(Kind k, SourceLoc l) : kind(k), loc(l) {}
    virtual ~Expr() = default;

    Kind kind;
    SourceLoc loc;
    /** Filled in by semantic analysis. */
    Type type;
};

/** Integer literal, C-style or Verilog-sized. */
struct IntLitExpr : Expr
{
    IntLitExpr(SourceLoc l, ApInt v, bool is_sized, unsigned sized_width)
        : Expr(Kind::IntLit, l), value(std::move(v)), sized(is_sized),
          sizedWidth(sized_width)
    {}

    ApInt value;
    bool sized;
    unsigned sizedWidth;
};

/** Reference to a named entity (variable, state element, parameter). */
struct RefExpr : Expr
{
    RefExpr(SourceLoc l, std::string n)
        : Expr(Kind::Ref, l), name(std::move(n))
    {}

    std::string name;
};

/** base[index]: array-element access or single-bit select. */
struct IndexExpr : Expr
{
    IndexExpr(SourceLoc l, ExprPtr b, ExprPtr i)
        : Expr(Kind::Index, l), base(std::move(b)), index(std::move(i))
    {}

    ExprPtr base;
    ExprPtr index;
};

/** base[from:to]: bit-range select or multi-element address-space read. */
struct RangeIndexExpr : Expr
{
    RangeIndexExpr(SourceLoc l, ExprPtr b, ExprPtr f, ExprPtr t)
        : Expr(Kind::RangeIndex, l), base(std::move(b)), from(std::move(f)),
          to(std::move(t))
    {}

    ExprPtr base;
    ExprPtr from; ///< high bound (inclusive)
    ExprPtr to;   ///< low bound (inclusive)
};

/** Call of a helper function defined in a 'functions' section. */
struct CallExpr : Expr
{
    CallExpr(SourceLoc l, std::string c, std::vector<ExprPtr> a)
        : Expr(Kind::Call, l), callee(std::move(c)), args(std::move(a))
    {}

    std::string callee;
    std::vector<ExprPtr> args;
};

struct UnaryExpr : Expr
{
    enum class Op { Neg, BitNot, LogicalNot, PreInc, PreDec, PostInc,
                    PostDec };

    UnaryExpr(SourceLoc l, Op o, ExprPtr e)
        : Expr(Kind::Unary, l), op(o), operand(std::move(e))
    {}

    Op op;
    ExprPtr operand;
};

struct BinaryExpr : Expr
{
    BinaryExpr(SourceLoc l, BinOp o, ExprPtr a, ExprPtr b)
        : Expr(Kind::Binary, l), op(o), lhs(std::move(a)), rhs(std::move(b))
    {}

    BinOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

/** Plain or compound assignment. Compound forms wrap (see DESIGN.md). */
struct AssignExpr : Expr
{
    AssignExpr(SourceLoc l, std::optional<BinOp> c, ExprPtr a, ExprPtr b)
        : Expr(Kind::Assign, l), compoundOp(c), lhs(std::move(a)),
          rhs(std::move(b))
    {}

    std::optional<BinOp> compoundOp;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct ConditionalExpr : Expr
{
    ConditionalExpr(SourceLoc l, ExprPtr c, ExprPtr t, ExprPtr f)
        : Expr(Kind::Conditional, l), cond(std::move(c)),
          thenExpr(std::move(t)), elseExpr(std::move(f))
    {}

    ExprPtr cond;
    ExprPtr thenExpr;
    ExprPtr elseExpr;
};

/**
 * C-style cast. With an explicit width it may narrow; without one
 * ((signed)/(unsigned) e) it reinterprets at the operand's width.
 */
struct CastExpr : Expr
{
    CastExpr(SourceLoc l, TypeSpec t, bool keep_width, ExprPtr e)
        : Expr(Kind::Cast, l), targetType(std::move(t)),
          keepOperandWidth(keep_width), operand(std::move(e))
    {}

    TypeSpec targetType;
    bool keepOperandWidth;
    ExprPtr operand;
};

/** Concatenation a :: b; the left operand supplies the high bits. */
struct ConcatExpr : Expr
{
    ConcatExpr(SourceLoc l, ExprPtr a, ExprPtr b)
        : Expr(Kind::Concat, l), lhs(std::move(a)), rhs(std::move(b))
    {}

    ExprPtr lhs;
    ExprPtr rhs;
};

// -------------------------------------------------------------------------
// Statements
// -------------------------------------------------------------------------

struct Stmt
{
    enum class Kind { Block, VarDecl, ExprStmt, If, For, While, Switch,
                      Break, Return, Spawn };

    explicit Stmt(Kind k, SourceLoc l) : kind(k), loc(l) {}
    virtual ~Stmt() = default;

    Kind kind;
    SourceLoc loc;
};

struct BlockStmt : Stmt
{
    explicit BlockStmt(SourceLoc l) : Stmt(Kind::Block, l) {}

    std::vector<StmtPtr> stmts;
};

/** Local variable declaration inside a behavior or function body. */
struct VarDeclStmt : Stmt
{
    VarDeclStmt(SourceLoc l, TypeSpec t, std::string n, ExprPtr i)
        : Stmt(Kind::VarDecl, l), type(std::move(t)), name(std::move(n)),
          init(std::move(i))
    {}

    TypeSpec type;
    std::string name;
    ExprPtr init; ///< may be null

    /** Resolved by sema. */
    Type resolvedType;
};

struct ExprStmt : Stmt
{
    ExprStmt(SourceLoc l, ExprPtr e) : Stmt(Kind::ExprStmt, l),
                                       expr(std::move(e))
    {}

    ExprPtr expr;
};

struct IfStmt : Stmt
{
    IfStmt(SourceLoc l, ExprPtr c, StmtPtr t, StmtPtr e)
        : Stmt(Kind::If, l), cond(std::move(c)), thenStmt(std::move(t)),
          elseStmt(std::move(e))
    {}

    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null
};

struct ForStmt : Stmt
{
    explicit ForStmt(SourceLoc l) : Stmt(Kind::For, l) {}

    StmtPtr init;  ///< VarDecl or ExprStmt; may be null
    ExprPtr cond;  ///< may be null (treated as an error by sema)
    ExprPtr step;  ///< may be null
    StmtPtr body;
};

struct ReturnStmt : Stmt
{
    ReturnStmt(SourceLoc l, ExprPtr v)
        : Stmt(Kind::Return, l), value(std::move(v))
    {}

    ExprPtr value; ///< may be null
};

/** while-loop; must have a compile-time known trip count. */
struct WhileStmt : Stmt
{
    WhileStmt(SourceLoc l, ExprPtr c, StmtPtr b)
        : Stmt(Kind::While, l), cond(std::move(c)), body(std::move(b))
    {}

    ExprPtr cond;
    StmtPtr body;
};

/** One arm of a switch statement. */
struct SwitchCase
{
    std::vector<ExprPtr> values; ///< empty for 'default'
    std::vector<StmtPtr> body;   ///< without the trailing 'break'
    SourceLoc loc;
};

/**
 * C-style switch. Fallthrough is not supported: every non-final case
 * must end with 'break' (checked by the parser).
 */
struct SwitchStmt : Stmt
{
    SwitchStmt(SourceLoc l, ExprPtr s)
        : Stmt(Kind::Switch, l), subject(std::move(s))
    {}

    ExprPtr subject;
    std::vector<SwitchCase> cases;
};

/** 'break' inside a switch arm (consumed by the parser; kept for
 * diagnostics when it appears elsewhere). */
struct BreakStmt : Stmt
{
    explicit BreakStmt(SourceLoc l) : Stmt(Kind::Break, l) {}
};

/** Decoupled-execution block (Sec. 2.5). */
struct SpawnStmt : Stmt
{
    SpawnStmt(SourceLoc l, StmtPtr b) : Stmt(Kind::Spawn, l),
                                        body(std::move(b))
    {}

    StmtPtr body;
};

// -------------------------------------------------------------------------
// Top-level structure
// -------------------------------------------------------------------------

/** One element of an encoding specifier: a sized literal or a field. */
struct EncodingElem
{
    bool isLiteral = false;
    // Literal form.
    ApInt value{1};
    unsigned literalWidth = 0;
    // Field form: name[msb:lsb].
    std::string field;
    unsigned msb = 0;
    unsigned lsb = 0;
    SourceLoc loc;

    unsigned width() const { return isLiteral ? literalWidth
                                              : msb - lsb + 1; }
};

struct Instruction
{
    std::string name;
    std::vector<EncodingElem> encoding;
    StmtPtr behavior;
    SourceLoc loc;
};

/** Continuously executing behavior (Sec. 2.5). */
struct AlwaysBlock
{
    std::string name;
    StmtPtr behavior;
    SourceLoc loc;
};

/** Declaration in an architectural_state section. */
struct StateDecl
{
    /**
     * Storage class per Sec. 2.2: 'register' declares architectural
     * registers, 'extern' declares address spaces, declarations without
     * a storage class are parameters.
     */
    enum class Storage { Register, Extern, Param };

    Storage storage = Storage::Param;
    bool isConst = false; ///< constant register, i.e. a ROM
    TypeSpec type;
    std::string name;
    ExprPtr arraySize;            ///< null for scalars
    ExprPtr init;                 ///< scalar initializer, may be null
    std::vector<ExprPtr> initList; ///< array initializer list
    SourceLoc loc;
};

/** Core-definition parameter assignment: NAME = expr; */
struct ParamAssign
{
    std::string name;
    ExprPtr value;
    SourceLoc loc;
};

struct FunctionParam
{
    TypeSpec type;
    std::string name;
    SourceLoc loc;

    /** Resolved by sema. */
    Type resolvedType;
};

struct FunctionDef
{
    TypeSpec returnType;
    std::string name;
    std::vector<FunctionParam> params;
    StmtPtr body;
    SourceLoc loc;

    /** Resolved by sema; invalid for void functions. */
    Type resolvedReturnType;
};

/** InstructionSet or Core definition. */
struct IsaDef
{
    bool isCore = false;
    std::string name;
    /** 'extends' parent for instruction sets, 'provides' list for cores. */
    std::vector<std::string> parents;

    std::vector<StateDecl> state;
    std::vector<ParamAssign> paramAssigns;
    std::vector<Instruction> instructions;
    std::vector<AlwaysBlock> alwaysBlocks;
    std::vector<FunctionDef> functions;
    SourceLoc loc;
};

/** One parsed CoreDSL description file. */
struct Description
{
    std::vector<std::string> imports;
    std::vector<std::unique_ptr<IsaDef>> defs;
};

} // namespace coredsl
} // namespace longnail

#endif // LONGNAIL_COREDSL_AST_HH
