#include "coredsl/parser.hh"

#include "coredsl/lexer.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

namespace longnail {
namespace coredsl {

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine &diags)
    : tokens_(std::move(tokens)), diags_(diags)
{
    if (tokens_.empty() || !tokens_.back().is(TokenKind::Eof))
        LN_PANIC("token stream must end with Eof");
}

const Token &
Parser::peek(int ahead) const
{
    size_t p = pos_ + ahead;
    if (p >= tokens_.size())
        p = tokens_.size() - 1;
    return tokens_[p];
}

Token
Parser::consume()
{
    Token t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size())
        ++pos_;
    return t;
}

bool
Parser::accept(TokenKind kind)
{
    if (!check(kind))
        return false;
    consume();
    return true;
}

Token
Parser::expect(TokenKind kind, const char *context)
{
    if (!check(kind)) {
        diags_.error(current().loc,
                     std::string("expected ") + tokenKindName(kind) +
                         " " + context + ", but got " +
                         tokenKindName(current().kind));
        throw ParseError{};
    }
    return consume();
}

void
Parser::errorHere(const std::string &msg)
{
    diags_.error(current().loc, msg);
    throw ParseError{};
}

bool
Parser::atTopLevelKeyword() const
{
    switch (current().kind) {
      case TokenKind::KwImport:
      case TokenKind::KwInstructionSet:
      case TokenKind::KwCore:
        return true;
      default:
        return false;
    }
}

/** Skip to the next top-level definition (or Eof). */
void
Parser::syncToTopLevel()
{
    while (!check(TokenKind::Eof) && !atTopLevelKeyword())
        consume();
}

/**
 * Skip to the end of the current braced element: consumes tokens,
 * tracking '{'/'}' nesting relative to the sync start, until either
 * the '}' closing the enclosing element is consumed (error inside the
 * element's braces) or one balanced '{...}' group has been skipped
 * (error before the element's opening brace). Stops (without
 * consuming) at a top-level keyword -- the likely recovery point when
 * the closer is missing -- or at Eof.
 */
void
Parser::syncToBlockElement()
{
    int depth = 0;
    bool entered = false;
    while (!check(TokenKind::Eof)) {
        if (atTopLevelKeyword())
            return;
        TokenKind kind = current().kind;
        if (kind == TokenKind::LBrace) {
            ++depth;
            entered = true;
        } else if (kind == TokenKind::RBrace) {
            if (depth == 0) {
                consume();
                return;
            }
            --depth;
            if (depth == 0 && entered) {
                consume();
                return;
            }
        }
        consume();
    }
}

/**
 * Skip to the next statement boundary: past the next ';' at the
 * current nesting level, or up to (not past) a '}' closing the
 * enclosing block.
 */
void
Parser::syncToStatement()
{
    int depth = 0;
    while (!check(TokenKind::Eof)) {
        if (atTopLevelKeyword())
            return;
        TokenKind kind = current().kind;
        if (kind == TokenKind::LBrace) {
            ++depth;
        } else if (kind == TokenKind::RBrace) {
            if (depth == 0)
                return; // let the enclosing block consume it
            --depth;
        } else if (kind == TokenKind::Semicolon && depth == 0) {
            consume();
            return;
        }
        consume();
    }
}

Description
Parser::parseDescription()
{
    Description desc;
    try {
        while (accept(TokenKind::KwImport)) {
            Token name = expect(TokenKind::StringLiteral, "after 'import'");
            // The grammar asks for a ';', but the paper's own Fig. 1
            // omits it; accept both.
            accept(TokenKind::Semicolon);
            desc.imports.push_back(name.text);
        }
    } catch (const ParseError &) {
        syncToTopLevel();
    }
    while (!check(TokenKind::Eof) && !diags_.errorLimitReached()) {
        size_t before = pos_;
        try {
            desc.defs.push_back(parseIsaDef());
        } catch (const ParseError &) {
            // Diagnostics already recorded; resynchronize at the next
            // top-level definition and keep going so one run reports
            // every independent error.
            if (pos_ == before)
                consume(); // guarantee progress
            syncToTopLevel();
        }
    }
    return desc;
}

std::unique_ptr<IsaDef>
Parser::parseIsaDef()
{
    auto def = std::make_unique<IsaDef>();
    def->loc = current().loc;
    if (accept(TokenKind::KwInstructionSet)) {
        def->isCore = false;
        def->name = expect(TokenKind::Identifier,
                           "after 'InstructionSet'").text;
        if (accept(TokenKind::KwExtends))
            def->parents.push_back(
                expect(TokenKind::Identifier, "after 'extends'").text);
    } else if (accept(TokenKind::KwCore)) {
        def->isCore = true;
        def->name = expect(TokenKind::Identifier, "after 'Core'").text;
        if (accept(TokenKind::KwProvides)) {
            do {
                def->parents.push_back(
                    expect(TokenKind::Identifier, "after 'provides'").text);
            } while (accept(TokenKind::Comma));
        }
    } else {
        errorHere("expected 'InstructionSet' or 'Core'");
    }
    parseIsaBody(*def);
    return def;
}

void
Parser::parseIsaBody(IsaDef &def)
{
    expect(TokenKind::LBrace, "to open the definition body");
    while (!accept(TokenKind::RBrace)) {
        if (check(TokenKind::KwArchitecturalState)) {
            consume();
            parseArchitecturalState(def);
        } else if (check(TokenKind::KwInstructions)) {
            consume();
            parseInstructions(def);
        } else if (check(TokenKind::KwAlways)) {
            consume();
            parseAlwaysSection(def);
        } else if (check(TokenKind::KwFunctions)) {
            consume();
            parseFunctions(def);
        } else {
            errorHere("expected a section (architectural_state, "
                      "instructions, always, functions)");
        }
    }
}

void
Parser::parseArchitecturalState(IsaDef &def)
{
    expect(TokenKind::LBrace, "to open architectural_state");
    while (!accept(TokenKind::RBrace)) {
        if (check(TokenKind::Eof))
            errorHere("missing '}' to close architectural_state");
        size_t before = pos_;
        try {
            // Parameter assignment: ID = expr ;
            if (check(TokenKind::Identifier) &&
                peek(1).is(TokenKind::Assign)) {
                ParamAssign pa;
                pa.loc = current().loc;
                pa.name = consume().text;
                consume(); // '='
                pa.value = parseExpr();
                expect(TokenKind::Semicolon,
                       "after parameter assignment");
                def.paramAssigns.push_back(std::move(pa));
                continue;
            }
            bool has_register = false, has_extern = false,
                 has_const = false;
            while (true) {
                if (accept(TokenKind::KwRegister))
                    has_register = true;
                else if (accept(TokenKind::KwExtern))
                    has_extern = true;
                else if (accept(TokenKind::KwConst))
                    has_const = true;
                else
                    break;
            }
            def.state.push_back(
                parseStateDecl(has_register, has_extern, has_const));
        } catch (const ParseError &) {
            // Recover at the next declaration so one run reports every
            // malformed state element.
            if (diags_.errorLimitReached() || check(TokenKind::Eof) ||
                atTopLevelKeyword())
                throw;
            if (pos_ == before)
                consume(); // guarantee progress
            syncToStatement();
        }
    }
}

StateDecl
Parser::parseStateDecl(bool has_register, bool has_extern, bool has_const)
{
    StateDecl decl;
    decl.loc = current().loc;
    if (has_register && has_extern)
        errorHere("'register' and 'extern' are mutually exclusive");
    decl.storage = has_register ? StateDecl::Storage::Register
                   : has_extern ? StateDecl::Storage::Extern
                                : StateDecl::Storage::Param;
    decl.isConst = has_const;
    decl.type = parseTypeSpec();
    decl.name = expect(TokenKind::Identifier, "in state declaration").text;
    if (accept(TokenKind::LBracket)) {
        decl.arraySize = parseExpr();
        expect(TokenKind::RBracket, "after array size");
    }
    if (accept(TokenKind::Assign)) {
        if (accept(TokenKind::LBrace)) {
            if (!check(TokenKind::RBrace)) {
                do {
                    decl.initList.push_back(parseExpr());
                } while (accept(TokenKind::Comma));
            }
            expect(TokenKind::RBrace, "after initializer list");
        } else {
            decl.init = parseExpr();
        }
    }
    // Allow comma-separated declarator lists via recursion is complex;
    // instead we accept additional names sharing type and storage.
    expect(TokenKind::Semicolon, "after state declaration");
    return decl;
}

void
Parser::parseInstructions(IsaDef &def)
{
    expect(TokenKind::LBrace, "to open instructions");
    while (!accept(TokenKind::RBrace)) {
        if (check(TokenKind::Eof))
            errorHere("missing '}' to close instructions");
        size_t before = pos_;
        try {
            def.instructions.push_back(parseInstruction());
        } catch (const ParseError &) {
            // Recover at the next instruction so one run reports every
            // malformed instruction.
            if (diags_.errorLimitReached() || check(TokenKind::Eof) ||
                atTopLevelKeyword())
                throw;
            if (pos_ == before)
                consume(); // guarantee progress
            syncToBlockElement();
        }
    }
}

Instruction
Parser::parseInstruction()
{
    Instruction instr;
    instr.loc = current().loc;
    instr.name = expect(TokenKind::Identifier, "as instruction name").text;
    expect(TokenKind::LBrace, "to open the instruction");
    expect(TokenKind::KwEncoding, "in instruction");
    expect(TokenKind::Colon, "after 'encoding'");
    instr.encoding = parseEncoding();
    expect(TokenKind::KwBehavior, "in instruction");
    expect(TokenKind::Colon, "after 'behavior'");
    instr.behavior = parseStmt();
    expect(TokenKind::RBrace, "to close the instruction");
    return instr;
}

std::vector<EncodingElem>
Parser::parseEncoding()
{
    std::vector<EncodingElem> elems;
    do {
        EncodingElem e;
        e.loc = current().loc;
        if (check(TokenKind::SizedLiteral)) {
            Token t = consume();
            e.isLiteral = true;
            e.value = t.value;
            e.literalWidth = t.sizedWidth;
        } else if (check(TokenKind::Identifier)) {
            e.isLiteral = false;
            e.field = consume().text;
            expect(TokenKind::LBracket, "after encoding field name");
            Token msb = expect(TokenKind::IntLiteral,
                               "as field range bound");
            expect(TokenKind::Colon, "in field range");
            Token lsb = expect(TokenKind::IntLiteral,
                               "as field range bound");
            expect(TokenKind::RBracket, "after field range");
            e.msb = static_cast<unsigned>(msb.value.toUint64());
            e.lsb = static_cast<unsigned>(lsb.value.toUint64());
            if (e.msb < e.lsb)
                errorHere("field range must be [msb:lsb] with msb >= lsb");
        } else {
            errorHere("expected a sized literal or field in encoding");
        }
        elems.push_back(std::move(e));
    } while (accept(TokenKind::ColonColon));
    expect(TokenKind::Semicolon, "after encoding");
    return elems;
}

void
Parser::parseAlwaysSection(IsaDef &def)
{
    expect(TokenKind::LBrace, "to open always section");
    while (!accept(TokenKind::RBrace)) {
        if (check(TokenKind::Eof))
            errorHere("missing '}' to close always section");
        size_t before = pos_;
        try {
            AlwaysBlock blk;
            blk.loc = current().loc;
            blk.name = expect(TokenKind::Identifier,
                              "as always-block name")
                           .text;
            blk.behavior = parseBlock();
            def.alwaysBlocks.push_back(std::move(blk));
        } catch (const ParseError &) {
            if (diags_.errorLimitReached() || check(TokenKind::Eof) ||
                atTopLevelKeyword())
                throw;
            if (pos_ == before)
                consume(); // guarantee progress
            syncToBlockElement();
        }
    }
}

void
Parser::parseFunctions(IsaDef &def)
{
    expect(TokenKind::LBrace, "to open functions");
    while (!accept(TokenKind::RBrace)) {
        if (check(TokenKind::Eof))
            errorHere("missing '}' to close functions");
        size_t before = pos_;
        try {
            def.functions.push_back(parseFunction());
        } catch (const ParseError &) {
            if (diags_.errorLimitReached() || check(TokenKind::Eof) ||
                atTopLevelKeyword())
                throw;
            if (pos_ == before)
                consume(); // guarantee progress
            syncToBlockElement();
        }
    }
}

FunctionDef
Parser::parseFunction()
{
    FunctionDef fn;
    fn.loc = current().loc;
    fn.returnType = parseTypeSpec();
    fn.name = expect(TokenKind::Identifier, "as function name").text;
    expect(TokenKind::LParen, "after function name");
    if (!check(TokenKind::RParen)) {
        do {
            FunctionParam p;
            p.loc = current().loc;
            p.type = parseTypeSpec();
            p.name = expect(TokenKind::Identifier,
                            "as parameter name").text;
            fn.params.push_back(std::move(p));
        } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after parameters");
    fn.body = parseBlock();
    return fn;
}

bool
Parser::atTypeStart() const
{
    switch (current().kind) {
      case TokenKind::KwSigned:
      case TokenKind::KwUnsigned:
      case TokenKind::KwBool:
      case TokenKind::KwVoid:
        return true;
      case TokenKind::Identifier: {
        const std::string &n = current().text;
        return n == "int" || n == "char" || n == "short" || n == "long";
      }
      default:
        return false;
    }
}

TypeSpec
Parser::parseTypeSpec()
{
    TypeSpec spec;
    spec.loc = current().loc;
    if (accept(TokenKind::KwBool)) {
        spec.base = TypeSpec::Base::Bool;
        return spec;
    }
    if (accept(TokenKind::KwVoid)) {
        spec.base = TypeSpec::Base::Void;
        return spec;
    }
    if (check(TokenKind::Identifier)) {
        const std::string &n = current().text;
        if (n == "int") {
            spec.base = TypeSpec::Base::Signed;
            spec.aliasWidth = 32;
        } else if (n == "char") {
            spec.base = TypeSpec::Base::Signed;
            spec.aliasWidth = 8;
        } else if (n == "short") {
            spec.base = TypeSpec::Base::Signed;
            spec.aliasWidth = 16;
        } else if (n == "long") {
            spec.base = TypeSpec::Base::Signed;
            spec.aliasWidth = 64;
        } else {
            errorHere("expected a type");
        }
        consume();
        return spec;
    }
    if (accept(TokenKind::KwSigned))
        spec.base = TypeSpec::Base::Signed;
    else if (accept(TokenKind::KwUnsigned))
        spec.base = TypeSpec::Base::Unsigned;
    else
        errorHere("expected a type");
    if (accept(TokenKind::Less)) {
        // Additive-level grammar: the closing '>' must not be taken as a
        // relational operator. Wider expressions require parentheses.
        spec.widthExpr = parseAdditive();
        expect(TokenKind::Greater, "after type width");
    }
    return spec;
}

StmtPtr
Parser::parseStmt()
{
    switch (current().kind) {
      case TokenKind::LBrace:
        return parseBlock();
      case TokenKind::KwIf:
        return parseIf();
      case TokenKind::KwFor:
        return parseFor();
      case TokenKind::KwWhile:
        return parseWhile();
      case TokenKind::KwSwitch:
        return parseSwitch();
      case TokenKind::KwBreak: {
        SourceLoc loc = consume().loc;
        expect(TokenKind::Semicolon, "after 'break'");
        return std::make_unique<BreakStmt>(loc);
      }
      case TokenKind::KwReturn: {
        SourceLoc loc = consume().loc;
        ExprPtr value;
        if (!check(TokenKind::Semicolon))
            value = parseExpr();
        expect(TokenKind::Semicolon, "after return");
        return std::make_unique<ReturnStmt>(loc, std::move(value));
      }
      case TokenKind::KwSpawn: {
        SourceLoc loc = consume().loc;
        StmtPtr body = parseBlock();
        return std::make_unique<SpawnStmt>(loc, std::move(body));
      }
      default:
        break;
    }
    if (atTypeStart())
        return parseVarDecl();
    SourceLoc loc = current().loc;
    ExprPtr e = parseExpr();
    expect(TokenKind::Semicolon, "after expression");
    return std::make_unique<ExprStmt>(loc, std::move(e));
}

StmtPtr
Parser::parseBlock()
{
    SourceLoc loc = current().loc;
    expect(TokenKind::LBrace, "to open a block");
    auto block = std::make_unique<BlockStmt>(loc);
    while (!accept(TokenKind::RBrace)) {
        if (check(TokenKind::Eof))
            errorHere("missing '}' to close the block");
        size_t before = pos_;
        try {
            block->stmts.push_back(parseStmt());
        } catch (const ParseError &) {
            // Panic-mode recovery: skip past the next ';' (or up to
            // the enclosing '}') and continue with the next statement.
            if (diags_.errorLimitReached() || check(TokenKind::Eof) ||
                atTopLevelKeyword())
                throw;
            if (pos_ == before)
                consume(); // guarantee progress
            syncToStatement();
        }
    }
    return block;
}

StmtPtr
Parser::parseVarDecl()
{
    SourceLoc loc = current().loc;
    TypeSpec type = parseTypeSpec();
    std::string name = expect(TokenKind::Identifier,
                              "in declaration").text;
    ExprPtr init;
    if (accept(TokenKind::Assign))
        init = parseExpr();
    expect(TokenKind::Semicolon, "after declaration");
    return std::make_unique<VarDeclStmt>(loc, std::move(type),
                                         std::move(name), std::move(init));
}

StmtPtr
Parser::parseIf()
{
    SourceLoc loc = consume().loc; // 'if'
    expect(TokenKind::LParen, "after 'if'");
    ExprPtr cond = parseExpr();
    expect(TokenKind::RParen, "after if condition");
    StmtPtr then_stmt = parseStmt();
    StmtPtr else_stmt;
    if (accept(TokenKind::KwElse))
        else_stmt = parseStmt();
    return std::make_unique<IfStmt>(loc, std::move(cond),
                                    std::move(then_stmt),
                                    std::move(else_stmt));
}

StmtPtr
Parser::parseFor()
{
    SourceLoc loc = consume().loc; // 'for'
    auto stmt = std::make_unique<ForStmt>(loc);
    expect(TokenKind::LParen, "after 'for'");
    if (!accept(TokenKind::Semicolon)) {
        if (atTypeStart()) {
            stmt->init = parseVarDecl(); // consumes ';'
        } else {
            SourceLoc eloc = current().loc;
            ExprPtr e = parseExpr();
            expect(TokenKind::Semicolon, "after for-init");
            stmt->init = std::make_unique<ExprStmt>(eloc, std::move(e));
        }
    }
    if (!check(TokenKind::Semicolon))
        stmt->cond = parseExpr();
    expect(TokenKind::Semicolon, "after for-condition");
    if (!check(TokenKind::RParen))
        stmt->step = parseExpr();
    expect(TokenKind::RParen, "after for-step");
    stmt->body = parseStmt();
    return stmt;
}

StmtPtr
Parser::parseWhile()
{
    SourceLoc loc = consume().loc; // 'while'
    expect(TokenKind::LParen, "after 'while'");
    ExprPtr cond = parseExpr();
    expect(TokenKind::RParen, "after while condition");
    StmtPtr body = parseStmt();
    return std::make_unique<WhileStmt>(loc, std::move(cond),
                                       std::move(body));
}

StmtPtr
Parser::parseSwitch()
{
    SourceLoc loc = consume().loc; // 'switch'
    expect(TokenKind::LParen, "after 'switch'");
    auto stmt = std::make_unique<SwitchStmt>(loc, parseExpr());
    expect(TokenKind::RParen, "after switch subject");
    expect(TokenKind::LBrace, "to open the switch body");
    bool seen_default = false;
    while (!accept(TokenKind::RBrace)) {
        SwitchCase arm;
        arm.loc = current().loc;
        if (accept(TokenKind::KwDefault)) {
            if (seen_default)
                errorHere("duplicate 'default' label");
            seen_default = true;
            expect(TokenKind::Colon, "after 'default'");
        } else {
            expect(TokenKind::KwCase, "in switch body");
            arm.values.push_back(parseExpr());
            expect(TokenKind::Colon, "after case value");
            // Multiple consecutive labels share one arm.
            while (accept(TokenKind::KwCase)) {
                arm.values.push_back(parseExpr());
                expect(TokenKind::Colon, "after case value");
            }
        }
        // Statements up to the mandatory 'break' (or the end of the
        // switch for the final arm). Fallthrough is not supported.
        bool broke = false;
        while (!check(TokenKind::KwCase) &&
               !check(TokenKind::KwDefault) &&
               !check(TokenKind::RBrace)) {
            if (accept(TokenKind::KwBreak)) {
                expect(TokenKind::Semicolon, "after 'break'");
                broke = true;
                break;
            }
            arm.body.push_back(parseStmt());
        }
        if (!broke && !check(TokenKind::RBrace))
            errorHere("case must end with 'break' (fallthrough is not "
                      "supported)");
        stmt->cases.push_back(std::move(arm));
    }
    return stmt;
}

ExprPtr
Parser::parseExpr()
{
    return parseAssignment();
}

ExprPtr
Parser::parseAssignment()
{
    ExprPtr lhs = parseConditional();
    std::optional<BinOp> compound;
    switch (current().kind) {
      case TokenKind::Assign: break;
      case TokenKind::PlusAssign: compound = BinOp::Add; break;
      case TokenKind::MinusAssign: compound = BinOp::Sub; break;
      case TokenKind::StarAssign: compound = BinOp::Mul; break;
      case TokenKind::SlashAssign: compound = BinOp::Div; break;
      case TokenKind::PercentAssign: compound = BinOp::Rem; break;
      case TokenKind::ShlAssign: compound = BinOp::Shl; break;
      case TokenKind::ShrAssign: compound = BinOp::Shr; break;
      case TokenKind::AmpAssign: compound = BinOp::And; break;
      case TokenKind::PipeAssign: compound = BinOp::Or; break;
      case TokenKind::CaretAssign: compound = BinOp::Xor; break;
      default:
        return lhs;
    }
    SourceLoc loc = consume().loc;
    ExprPtr rhs = parseAssignment();
    return std::make_unique<AssignExpr>(loc, compound, std::move(lhs),
                                        std::move(rhs));
}

ExprPtr
Parser::parseConditional()
{
    ExprPtr cond = parseLogicalOr();
    if (!accept(TokenKind::Question))
        return cond;
    SourceLoc loc = cond->loc;
    ExprPtr then_expr = parseExpr();
    expect(TokenKind::Colon, "in conditional expression");
    ExprPtr else_expr = parseConditional();
    return std::make_unique<ConditionalExpr>(loc, std::move(cond),
                                             std::move(then_expr),
                                             std::move(else_expr));
}

ExprPtr
Parser::parseLogicalOr()
{
    ExprPtr lhs = parseLogicalAnd();
    while (check(TokenKind::PipePipe)) {
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseLogicalAnd();
        lhs = std::make_unique<BinaryExpr>(loc, BinOp::LogicalOr,
                                           std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseLogicalAnd()
{
    ExprPtr lhs = parseBitOr();
    while (check(TokenKind::AmpAmp)) {
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseBitOr();
        lhs = std::make_unique<BinaryExpr>(loc, BinOp::LogicalAnd,
                                           std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseBitOr()
{
    ExprPtr lhs = parseBitXor();
    while (check(TokenKind::Pipe)) {
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseBitXor();
        lhs = std::make_unique<BinaryExpr>(loc, BinOp::Or, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseBitXor()
{
    ExprPtr lhs = parseBitAnd();
    while (check(TokenKind::Caret)) {
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseBitAnd();
        lhs = std::make_unique<BinaryExpr>(loc, BinOp::Xor, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseBitAnd()
{
    ExprPtr lhs = parseEquality();
    while (check(TokenKind::Amp)) {
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseEquality();
        lhs = std::make_unique<BinaryExpr>(loc, BinOp::And, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseEquality()
{
    ExprPtr lhs = parseRelational();
    while (check(TokenKind::EqEq) || check(TokenKind::NotEq)) {
        BinOp op = check(TokenKind::EqEq) ? BinOp::Eq : BinOp::Ne;
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseRelational();
        lhs = std::make_unique<BinaryExpr>(loc, op, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseRelational()
{
    ExprPtr lhs = parseConcat();
    while (check(TokenKind::Less) || check(TokenKind::Greater) ||
           check(TokenKind::LessEq) || check(TokenKind::GreaterEq)) {
        BinOp op = check(TokenKind::Less)      ? BinOp::Lt
                   : check(TokenKind::Greater) ? BinOp::Gt
                   : check(TokenKind::LessEq)  ? BinOp::Le
                                               : BinOp::Ge;
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseConcat();
        lhs = std::make_unique<BinaryExpr>(loc, op, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseConcat()
{
    ExprPtr lhs = parseShift();
    while (check(TokenKind::ColonColon)) {
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseShift();
        lhs = std::make_unique<ConcatExpr>(loc, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseShift()
{
    ExprPtr lhs = parseAdditive();
    while (check(TokenKind::Shl) || check(TokenKind::Shr)) {
        BinOp op = check(TokenKind::Shl) ? BinOp::Shl : BinOp::Shr;
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseAdditive();
        lhs = std::make_unique<BinaryExpr>(loc, op, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseAdditive()
{
    ExprPtr lhs = parseMultiplicative();
    while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
        BinOp op = check(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseMultiplicative();
        lhs = std::make_unique<BinaryExpr>(loc, op, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseMultiplicative()
{
    ExprPtr lhs = parseUnary();
    while (check(TokenKind::Star) || check(TokenKind::Slash) ||
           check(TokenKind::Percent)) {
        BinOp op = check(TokenKind::Star)    ? BinOp::Mul
                   : check(TokenKind::Slash) ? BinOp::Div
                                             : BinOp::Rem;
        SourceLoc loc = consume().loc;
        ExprPtr rhs = parseUnary();
        lhs = std::make_unique<BinaryExpr>(loc, op, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseUnary()
{
    SourceLoc loc = current().loc;
    switch (current().kind) {
      case TokenKind::Minus:
        consume();
        return std::make_unique<UnaryExpr>(loc, UnaryExpr::Op::Neg,
                                           parseUnary());
      case TokenKind::Tilde:
        consume();
        return std::make_unique<UnaryExpr>(loc, UnaryExpr::Op::BitNot,
                                           parseUnary());
      case TokenKind::Not:
        consume();
        return std::make_unique<UnaryExpr>(loc, UnaryExpr::Op::LogicalNot,
                                           parseUnary());
      case TokenKind::PlusPlus:
        consume();
        return std::make_unique<UnaryExpr>(loc, UnaryExpr::Op::PreInc,
                                           parseUnary());
      case TokenKind::MinusMinus:
        consume();
        return std::make_unique<UnaryExpr>(loc, UnaryExpr::Op::PreDec,
                                           parseUnary());
      case TokenKind::LParen: {
        // Possible cast: '(' type ')' unary-expression.
        size_t save = pos_;
        consume(); // '('
        if (atTypeStart()) {
            try {
                TypeSpec spec = parseTypeSpec();
                expect(TokenKind::RParen, "after cast type");
                bool keep_width = !spec.widthExpr && spec.aliasWidth == 0 &&
                                  spec.base != TypeSpec::Base::Bool;
                ExprPtr operand = parseUnary();
                return std::make_unique<CastExpr>(loc, std::move(spec),
                                                  keep_width,
                                                  std::move(operand));
            } catch (const ParseError &) {
                // Not a cast after all; fall through to primary.
                pos_ = save;
            }
        } else {
            pos_ = save;
        }
        return parsePostfix();
      }
      default:
        return parsePostfix();
    }
}

ExprPtr
Parser::parsePostfix()
{
    ExprPtr expr = parsePrimary();
    while (true) {
        SourceLoc loc = current().loc;
        if (accept(TokenKind::LBracket)) {
            ExprPtr first = parseExpr();
            if (accept(TokenKind::Colon)) {
                ExprPtr second = parseExpr();
                expect(TokenKind::RBracket, "after range subscript");
                expr = std::make_unique<RangeIndexExpr>(loc,
                                                        std::move(expr),
                                                        std::move(first),
                                                        std::move(second));
            } else {
                expect(TokenKind::RBracket, "after subscript");
                expr = std::make_unique<IndexExpr>(loc, std::move(expr),
                                                   std::move(first));
            }
        } else if (check(TokenKind::LParen) &&
                   expr->kind == Expr::Kind::Ref) {
            consume();
            std::vector<ExprPtr> args;
            if (!check(TokenKind::RParen)) {
                do {
                    args.push_back(parseExpr());
                } while (accept(TokenKind::Comma));
            }
            expect(TokenKind::RParen, "after call arguments");
            std::string callee =
                static_cast<RefExpr *>(expr.get())->name;
            expr = std::make_unique<CallExpr>(loc, std::move(callee),
                                              std::move(args));
        } else if (accept(TokenKind::PlusPlus)) {
            expr = std::make_unique<UnaryExpr>(loc, UnaryExpr::Op::PostInc,
                                               std::move(expr));
        } else if (accept(TokenKind::MinusMinus)) {
            expr = std::make_unique<UnaryExpr>(loc, UnaryExpr::Op::PostDec,
                                               std::move(expr));
        } else {
            return expr;
        }
    }
}

ExprPtr
Parser::parsePrimary()
{
    SourceLoc loc = current().loc;
    switch (current().kind) {
      case TokenKind::IntLiteral: {
        Token t = consume();
        return std::make_unique<IntLitExpr>(loc, t.value, false, 0);
      }
      case TokenKind::SizedLiteral: {
        Token t = consume();
        return std::make_unique<IntLitExpr>(loc, t.value, true,
                                            t.sizedWidth);
      }
      case TokenKind::Identifier: {
        Token t = consume();
        return std::make_unique<RefExpr>(loc, t.text);
      }
      case TokenKind::LParen: {
        consume();
        ExprPtr inner = parseExpr();
        expect(TokenKind::RParen, "to close parenthesized expression");
        return inner;
      }
      default:
        errorHere(std::string("expected an expression, but got ") +
                  tokenKindName(current().kind));
    }
}

Description
parseString(const std::string &source, DiagnosticEngine &diags)
{
    DiagnosticEngine::ContextScope scope(diags, Phase::Parse, "LN1001");
    if (failpoint::fire("parse") != failpoint::Mode::Off) {
        diags.error({}, "LN1901",
                    "injected fault at failpoint 'parse'");
        return {};
    }
    Lexer lexer(source, diags);
    Parser parser(lexer.lexAll(), diags);
    return parser.parseDescription();
}

} // namespace coredsl
} // namespace longnail
