#include "coredsl/lexer.hh"

#include <cctype>
#include <unordered_map>

namespace longnail {
namespace coredsl {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Eof: return "end of input";
      case TokenKind::Identifier: return "identifier";
      case TokenKind::IntLiteral: return "integer literal";
      case TokenKind::SizedLiteral: return "sized literal";
      case TokenKind::StringLiteral: return "string literal";
      case TokenKind::KwImport: return "'import'";
      case TokenKind::KwInstructionSet: return "'InstructionSet'";
      case TokenKind::KwCore: return "'Core'";
      case TokenKind::KwExtends: return "'extends'";
      case TokenKind::KwProvides: return "'provides'";
      case TokenKind::KwArchitecturalState: return "'architectural_state'";
      case TokenKind::KwInstructions: return "'instructions'";
      case TokenKind::KwEncoding: return "'encoding'";
      case TokenKind::KwBehavior: return "'behavior'";
      case TokenKind::KwAlways: return "'always'";
      case TokenKind::KwFunctions: return "'functions'";
      case TokenKind::KwRegister: return "'register'";
      case TokenKind::KwExtern: return "'extern'";
      case TokenKind::KwConst: return "'const'";
      case TokenKind::KwSigned: return "'signed'";
      case TokenKind::KwUnsigned: return "'unsigned'";
      case TokenKind::KwBool: return "'bool'";
      case TokenKind::KwVoid: return "'void'";
      case TokenKind::KwIf: return "'if'";
      case TokenKind::KwElse: return "'else'";
      case TokenKind::KwFor: return "'for'";
      case TokenKind::KwWhile: return "'while'";
      case TokenKind::KwSwitch: return "'switch'";
      case TokenKind::KwCase: return "'case'";
      case TokenKind::KwDefault: return "'default'";
      case TokenKind::KwBreak: return "'break'";
      case TokenKind::KwReturn: return "'return'";
      case TokenKind::KwSpawn: return "'spawn'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Comma: return "','";
      case TokenKind::Colon: return "':'";
      case TokenKind::ColonColon: return "'::'";
      case TokenKind::Question: return "'?'";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::Shl: return "'<<'";
      case TokenKind::Shr: return "'>>'";
      case TokenKind::Less: return "'<'";
      case TokenKind::Greater: return "'>'";
      case TokenKind::LessEq: return "'<='";
      case TokenKind::GreaterEq: return "'>='";
      case TokenKind::EqEq: return "'=='";
      case TokenKind::NotEq: return "'!='";
      case TokenKind::Amp: return "'&'";
      case TokenKind::Pipe: return "'|'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::Tilde: return "'~'";
      case TokenKind::Not: return "'!'";
      case TokenKind::AmpAmp: return "'&&'";
      case TokenKind::PipePipe: return "'||'";
      case TokenKind::Assign: return "'='";
      case TokenKind::PlusAssign: return "'+='";
      case TokenKind::MinusAssign: return "'-='";
      case TokenKind::StarAssign: return "'*='";
      case TokenKind::SlashAssign: return "'/='";
      case TokenKind::PercentAssign: return "'%='";
      case TokenKind::ShlAssign: return "'<<='";
      case TokenKind::ShrAssign: return "'>>='";
      case TokenKind::AmpAssign: return "'&='";
      case TokenKind::PipeAssign: return "'|='";
      case TokenKind::CaretAssign: return "'^='";
      case TokenKind::PlusPlus: return "'++'";
      case TokenKind::MinusMinus: return "'--'";
    }
    return "<unknown>";
}

namespace {

/** Validate @p digits for @p radix ('_' separators allowed). */
bool
digitsValidFor(const std::string &digits, unsigned radix)
{
    if (digits.empty())
        return false;
    bool any = false;
    for (char c : digits) {
        if (c == '_')
            continue;
        unsigned value;
        if (c >= '0' && c <= '9')
            value = unsigned(c - '0');
        else if (c >= 'a' && c <= 'f')
            value = unsigned(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            value = unsigned(c - 'A') + 10;
        else
            return false;
        if (value >= radix)
            return false;
        any = true;
    }
    return any;
}

const std::unordered_map<std::string, TokenKind> &
keywordTable()
{
    static const std::unordered_map<std::string, TokenKind> table = {
        {"import", TokenKind::KwImport},
        {"InstructionSet", TokenKind::KwInstructionSet},
        {"Core", TokenKind::KwCore},
        {"extends", TokenKind::KwExtends},
        {"provides", TokenKind::KwProvides},
        {"architectural_state", TokenKind::KwArchitecturalState},
        {"instructions", TokenKind::KwInstructions},
        {"encoding", TokenKind::KwEncoding},
        {"behavior", TokenKind::KwBehavior},
        {"always", TokenKind::KwAlways},
        {"functions", TokenKind::KwFunctions},
        {"register", TokenKind::KwRegister},
        {"extern", TokenKind::KwExtern},
        {"const", TokenKind::KwConst},
        {"signed", TokenKind::KwSigned},
        {"unsigned", TokenKind::KwUnsigned},
        {"bool", TokenKind::KwBool},
        {"void", TokenKind::KwVoid},
        {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},
        {"for", TokenKind::KwFor},
        {"while", TokenKind::KwWhile},
        {"switch", TokenKind::KwSwitch},
        {"case", TokenKind::KwCase},
        {"default", TokenKind::KwDefault},
        {"break", TokenKind::KwBreak},
        {"return", TokenKind::KwReturn},
        {"spawn", TokenKind::KwSpawn},
    };
    return table;
}

} // namespace

Lexer::Lexer(std::string source, DiagnosticEngine &diags)
    : source_(std::move(source)), diags_(diags)
{
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> tokens;
    while (true) {
        Token t = next();
        bool done = t.is(TokenKind::Eof);
        tokens.push_back(std::move(t));
        if (done)
            break;
    }
    return tokens;
}

char
Lexer::peek(int ahead) const
{
    size_t p = pos_ + ahead;
    return p < source_.size() ? source_[p] : '\0';
}

char
Lexer::advance()
{
    char c = source_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (peek() != expected)
        return false;
    advance();
    return true;
}

void
Lexer::skipWhitespaceAndComments()
{
    while (pos_ < source_.size()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (pos_ < source_.size() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            SourceLoc start = here();
            advance();
            advance();
            while (pos_ < source_.size() &&
                   !(peek() == '*' && peek(1) == '/'))
                advance();
            if (pos_ >= source_.size()) {
                diags_.error(start, "unterminated block comment");
                return;
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token
Lexer::makeToken(TokenKind kind, SourceLoc loc)
{
    Token t;
    t.kind = kind;
    t.loc = loc;
    return t;
}

Token
Lexer::next()
{
    skipWhitespaceAndComments();
    SourceLoc loc = here();
    if (pos_ >= source_.size())
        return makeToken(TokenKind::Eof, loc);

    char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
        return lexIdentifierOrKeyword();
    if (c == '"')
        return lexString();

    advance();
    switch (c) {
      case '{': return makeToken(TokenKind::LBrace, loc);
      case '}': return makeToken(TokenKind::RBrace, loc);
      case '(': return makeToken(TokenKind::LParen, loc);
      case ')': return makeToken(TokenKind::RParen, loc);
      case '[': return makeToken(TokenKind::LBracket, loc);
      case ']': return makeToken(TokenKind::RBracket, loc);
      case ';': return makeToken(TokenKind::Semicolon, loc);
      case ',': return makeToken(TokenKind::Comma, loc);
      case '?': return makeToken(TokenKind::Question, loc);
      case '~': return makeToken(TokenKind::Tilde, loc);
      case ':':
        return makeToken(match(':') ? TokenKind::ColonColon
                                    : TokenKind::Colon, loc);
      case '+':
        if (match('+'))
            return makeToken(TokenKind::PlusPlus, loc);
        return makeToken(match('=') ? TokenKind::PlusAssign
                                    : TokenKind::Plus, loc);
      case '-':
        if (match('-'))
            return makeToken(TokenKind::MinusMinus, loc);
        return makeToken(match('=') ? TokenKind::MinusAssign
                                    : TokenKind::Minus, loc);
      case '*':
        return makeToken(match('=') ? TokenKind::StarAssign
                                    : TokenKind::Star, loc);
      case '/':
        return makeToken(match('=') ? TokenKind::SlashAssign
                                    : TokenKind::Slash, loc);
      case '%':
        return makeToken(match('=') ? TokenKind::PercentAssign
                                    : TokenKind::Percent, loc);
      case '<':
        if (match('<'))
            return makeToken(match('=') ? TokenKind::ShlAssign
                                        : TokenKind::Shl, loc);
        return makeToken(match('=') ? TokenKind::LessEq
                                    : TokenKind::Less, loc);
      case '>':
        if (match('>'))
            return makeToken(match('=') ? TokenKind::ShrAssign
                                        : TokenKind::Shr, loc);
        return makeToken(match('=') ? TokenKind::GreaterEq
                                    : TokenKind::Greater, loc);
      case '=':
        return makeToken(match('=') ? TokenKind::EqEq
                                    : TokenKind::Assign, loc);
      case '!':
        return makeToken(match('=') ? TokenKind::NotEq
                                    : TokenKind::Not, loc);
      case '&':
        if (match('&'))
            return makeToken(TokenKind::AmpAmp, loc);
        return makeToken(match('=') ? TokenKind::AmpAssign
                                    : TokenKind::Amp, loc);
      case '|':
        if (match('|'))
            return makeToken(TokenKind::PipePipe, loc);
        return makeToken(match('=') ? TokenKind::PipeAssign
                                    : TokenKind::Pipe, loc);
      case '^':
        return makeToken(match('=') ? TokenKind::CaretAssign
                                    : TokenKind::Caret, loc);
      default:
        diags_.error(loc, std::string("unexpected character '") + c + "'");
        return next();
    }
}

Token
Lexer::lexNumber()
{
    SourceLoc loc = here();
    std::string digits;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        digits += advance();

    // Verilog-style sized literal: <width>'<base><digits>.
    if (peek() == '\'') {
        advance(); // consume '
        char base = peek();
        unsigned radix = 0;
        switch (base) {
          case 'd': radix = 10; break;
          case 'b': radix = 2; break;
          case 'h': radix = 16; break;
          case 'o': radix = 8; break;
          default:
            diags_.error(here(), "expected literal base (d, b, h or o) "
                                 "after \"'\"");
            radix = 10;
        }
        if (radix)
            advance();
        std::string value_digits;
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_')
            value_digits += advance();

        Token t = makeToken(TokenKind::SizedLiteral, loc);
        if (!value_digits.empty() &&
            !digitsValidFor(value_digits, radix)) {
            diags_.error(loc, "invalid digits in sized literal");
            value_digits.clear();
        }
        unsigned width = 0;
        try {
            width = std::stoul(digits);
        } catch (const std::exception &) {
            diags_.error(loc, "invalid literal width '" + digits + "'");
            width = 1;
        }
        if (width == 0) {
            diags_.error(loc, "literal width must be positive");
            width = 1;
        }
        t.sizedWidth = width;
        ApInt value = ApInt::fromString(value_digits.empty() ? "0"
                                                             : value_digits,
                                        radix);
        if (value.activeBits() > width) {
            diags_.error(loc, "literal value does not fit in " +
                                  std::to_string(width) + " bits");
            value = value.trunc(width);
        }
        t.value = value.zextOrTrunc(width);
        return t;
    }

    // C-style literal.
    unsigned radix = 10;
    std::string body = digits;
    if (digits.size() > 1 && digits[0] == '0') {
        if (digits[1] == 'x' || digits[1] == 'X') {
            radix = 16;
            body = digits.substr(2);
        } else if (digits[1] == 'b' || digits[1] == 'B') {
            radix = 2;
            body = digits.substr(2);
        } else {
            radix = 8;
            body = digits.substr(1);
        }
    }
    Token t = makeToken(TokenKind::IntLiteral, loc);
    if (!body.empty() && !digitsValidFor(body, radix)) {
        diags_.error(loc, "invalid digits in integer literal");
        body.clear();
    }
    t.value = ApInt::fromString(body.empty() ? "0" : body, radix);
    return t;
}

Token
Lexer::lexIdentifierOrKeyword()
{
    SourceLoc loc = here();
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        text += advance();

    auto it = keywordTable().find(text);
    if (it != keywordTable().end())
        return makeToken(it->second, loc);

    Token t = makeToken(TokenKind::Identifier, loc);
    t.text = std::move(text);
    return t;
}

Token
Lexer::lexString()
{
    SourceLoc loc = here();
    advance(); // consume opening quote
    std::string text;
    while (pos_ < source_.size() && peek() != '"') {
        if (peek() == '\\' && pos_ + 1 < source_.size())
            advance();
        text += advance();
    }
    if (pos_ >= source_.size()) {
        diags_.error(loc, "unterminated string literal");
    } else {
        advance(); // consume closing quote
    }
    Token t = makeToken(TokenKind::StringLiteral, loc);
    t.text = std::move(text);
    return t;
}

} // namespace coredsl
} // namespace longnail
