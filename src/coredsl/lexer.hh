/**
 * @file
 * Hand-written lexer for CoreDSL.
 *
 * Supports C-style (42, 0xcafe, 0b101, 052) and Verilog-style (6'd42,
 * 3'b111, 8'hff) integer literals, line and block comments, and the
 * operator set of Sec. 2.4 of the paper, including '::'.
 */

#ifndef LONGNAIL_COREDSL_LEXER_HH
#define LONGNAIL_COREDSL_LEXER_HH

#include <string>
#include <vector>

#include "coredsl/token.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace coredsl {

class Lexer
{
  public:
    Lexer(std::string source, DiagnosticEngine &diags);

    /** Lex the whole input; the last token is always Eof. */
    std::vector<Token> lexAll();

  private:
    Token next();
    Token lexNumber();
    Token lexIdentifierOrKeyword();
    Token lexString();

    char peek(int ahead = 0) const;
    char advance();
    bool match(char expected);
    void skipWhitespaceAndComments();
    SourceLoc here() const { return {line_, column_}; }
    Token makeToken(TokenKind kind, SourceLoc loc);

    std::string source_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
    DiagnosticEngine &diags_;
};

} // namespace coredsl
} // namespace longnail

#endif // LONGNAIL_COREDSL_LEXER_HH
