/**
 * @file
 * The CoreDSL type system (Sec. 2.3 of the paper).
 *
 * Types are signed/unsigned integers of arbitrary width. Operators are
 * bitwidth-aware: results are wide enough to represent every possible
 * value, e.g. unsigned<5> + signed<4> yields signed<7>. Implicit
 * assignment never loses precision or sign information; narrowing
 * requires an explicit cast.
 */

#ifndef LONGNAIL_COREDSL_TYPES_HH
#define LONGNAIL_COREDSL_TYPES_HH

#include <string>

namespace longnail {
namespace coredsl {

/** An integer type: signedness plus bit width. */
struct Type
{
    bool isSigned = false;
    unsigned width = 0;

    Type() = default;
    Type(bool is_signed, unsigned w) : isSigned(is_signed), width(w) {}

    static Type makeUnsigned(unsigned w) { return {false, w}; }
    static Type makeSigned(unsigned w) { return {true, w}; }
    /** bool is an alias for unsigned<1>. */
    static Type makeBool() { return {false, 1}; }

    bool isValid() const { return width > 0; }
    bool operator==(const Type &rhs) const = default;

    /** "signed<7>" / "unsigned<32>" rendering. */
    std::string str() const;
};

/** Binary operators with bitwidth-aware result typing. */
enum class BinOp
{
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Xor,
    LogicalAnd,
    LogicalOr,
};

const char *binOpName(BinOp op);

/**
 * Result type of a binary operation per the CoreDSL rules.
 *
 * Arithmetic/bitwise ops on mixed signedness first give the unsigned
 * operand a sign bit; additions grow by one bit, multiplications by the
 * sum of the widths. Shifts keep the left operand's type. Comparisons
 * and logical operators yield unsigned<1>.
 */
Type resultType(BinOp op, Type lhs, Type rhs);

/**
 * The smallest type that can represent all values of both operands;
 * used for the arms of the conditional operator.
 */
Type unionType(Type a, Type b);

/**
 * True if a value of type @p from may be assigned to storage of type
 * @p to without an explicit cast, i.e. without any possible loss of
 * precision or sign information.
 */
bool isImplicitlyAssignable(Type to, Type from);

} // namespace coredsl
} // namespace longnail

#endif // LONGNAIL_COREDSL_TYPES_HH
