#include "coredsl/sema.hh"

#include <algorithm>
#include <set>

#include "coredsl/parser.hh"
#include "obs/obs.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

namespace longnail {
namespace coredsl {

unsigned
StateInfo::indexWidth() const
{
    unsigned w = 1;
    while ((uint64_t(1) << w) < numElements)
        ++w;
    return w;
}

const StateInfo *
ElaboratedIsa::findState(const std::string &state_name) const
{
    for (const auto &s : state)
        if (s.name == state_name)
            return &s;
    return nullptr;
}

const FunctionInfo *
ElaboratedIsa::findFunction(const std::string &fn_name) const
{
    for (const auto &f : functions)
        if (f.name == fn_name)
            return &f;
    return nullptr;
}

const InstrInfo *
ElaboratedIsa::findInstruction(const std::string &instr_name) const
{
    for (const auto &i : instructions)
        if (i.name == instr_name)
            return &i;
    return nullptr;
}

// -------------------------------------------------------------------------
// Constant evaluation
// -------------------------------------------------------------------------

namespace {

/** Adjust a constant to a target type (extend or truncate the bits). */
ApInt
adjustTo(const TypedConst &c, Type target)
{
    if (c.type.isSigned)
        return c.value.sextOrTrunc(target.width);
    return c.value.zextOrTrunc(target.width);
}

std::optional<TypedConst>
evalBinary(BinOp op, const TypedConst &lhs, const TypedConst &rhs)
{
    Type rt = resultType(op, lhs.type, rhs.type);
    // Comparison/division operands are evaluated in the smallest common
    // type, which may be wider than the result type.
    Type ct = unionType(lhs.type, rhs.type);
    if (rt.width > ct.width || (rt.isSigned && !ct.isSigned))
        ct = unionType(rt, ct);
    ApInt a = adjustTo(lhs, rt);
    ApInt b = adjustTo(rhs, rt);
    ApInt ca = adjustTo(lhs, ct);
    ApInt cb = adjustTo(rhs, ct);
    TypedConst out;
    out.type = rt;
    switch (op) {
      case BinOp::Add: out.value = a + b; break;
      case BinOp::Sub: out.value = a - b; break;
      case BinOp::Mul: out.value = a * b; break;
      case BinOp::Div:
        if (cb.isZero())
            return std::nullopt;
        out.value = (ct.isSigned ? ca.sdiv(cb) : ca.udiv(cb))
                        .zextOrTrunc(rt.width);
        break;
      case BinOp::Rem:
        if (cb.isZero())
            return std::nullopt;
        out.value = (ct.isSigned ? ca.srem(cb) : ca.urem(cb))
                        .zextOrTrunc(rt.width);
        break;
      case BinOp::Shl:
      case BinOp::Shr: {
        // Shifts keep the lhs type; the amount is the rhs value.
        ApInt lv = lhs.value;
        uint64_t amount = rhs.value.activeBits() > 32
                              ? lv.width()
                              : rhs.value.toUint64();
        unsigned amt = static_cast<unsigned>(
            std::min<uint64_t>(amount, lv.width()));
        if (op == BinOp::Shl)
            out.value = lv.shl(amt);
        else
            out.value = lhs.type.isSigned ? lv.ashr(amt) : lv.lshr(amt);
        out.type = lhs.type;
        break;
      }
      case BinOp::Lt:
        out.value = ApInt(1, ct.isSigned ? ca.slt(cb) : ca.ult(cb));
        break;
      case BinOp::Le:
        out.value = ApInt(1, ct.isSigned ? ca.sle(cb) : ca.ule(cb));
        break;
      case BinOp::Gt:
        out.value = ApInt(1, ct.isSigned ? ca.sgt(cb) : ca.ugt(cb));
        break;
      case BinOp::Ge:
        out.value = ApInt(1, ct.isSigned ? ca.sge(cb) : ca.uge(cb));
        break;
      case BinOp::Eq: out.value = ApInt(1, ca == cb); break;
      case BinOp::Ne: out.value = ApInt(1, ca != cb); break;
      case BinOp::And: out.value = a & b; break;
      case BinOp::Or: out.value = a | b; break;
      case BinOp::Xor: out.value = a ^ b; break;
      case BinOp::LogicalAnd:
        out.value = ApInt(1, !lhs.value.isZero() && !rhs.value.isZero());
        break;
      case BinOp::LogicalOr:
        out.value = ApInt(1, !lhs.value.isZero() || !rhs.value.isZero());
        break;
    }
    // Comparison results are booleans regardless of the mixed-sign
    // handling above.
    switch (op) {
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne:
      case BinOp::LogicalAnd:
      case BinOp::LogicalOr:
        out.type = Type::makeBool();
        break;
      default:
        break;
    }
    return out;
}

} // namespace

std::optional<TypedConst>
evalConst(const Expr &expr, const std::map<std::string, TypedConst> &env)
{
    switch (expr.kind) {
      case Expr::Kind::IntLit: {
        const auto &lit = static_cast<const IntLitExpr &>(expr);
        TypedConst c;
        if (lit.sized) {
            c.type = Type::makeUnsigned(lit.sizedWidth);
            c.value = lit.value.zextOrTrunc(lit.sizedWidth);
        } else {
            unsigned w = std::max(1u, lit.value.activeBits());
            c.type = Type::makeUnsigned(w);
            c.value = lit.value.zextOrTrunc(w);
        }
        return c;
      }
      case Expr::Kind::Ref: {
        const auto &ref = static_cast<const RefExpr &>(expr);
        auto it = env.find(ref.name);
        if (it == env.end())
            return std::nullopt;
        return it->second;
      }
      case Expr::Kind::Unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        auto operand = evalConst(*un.operand, env);
        if (!operand)
            return std::nullopt;
        TypedConst out;
        switch (un.op) {
          case UnaryExpr::Op::Neg:
            out.type = Type::makeSigned(operand->type.width + 1);
            out.value = adjustTo(*operand, out.type).negate();
            return out;
          case UnaryExpr::Op::BitNot:
            out.type = operand->type;
            out.value = ~operand->value;
            return out;
          case UnaryExpr::Op::LogicalNot:
            out.type = Type::makeBool();
            out.value = ApInt(1, operand->value.isZero());
            return out;
          default:
            return std::nullopt; // ++/-- are not constant expressions
        }
      }
      case Expr::Kind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        auto lhs = evalConst(*bin.lhs, env);
        auto rhs = evalConst(*bin.rhs, env);
        if (!lhs || !rhs)
            return std::nullopt;
        return evalBinary(bin.op, *lhs, *rhs);
      }
      case Expr::Kind::Conditional: {
        const auto &cond = static_cast<const ConditionalExpr &>(expr);
        auto c = evalConst(*cond.cond, env);
        if (!c)
            return std::nullopt;
        return evalConst(c->value.isZero() ? *cond.elseExpr
                                           : *cond.thenExpr, env);
      }
      case Expr::Kind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        auto operand = evalConst(*cast.operand, env);
        if (!operand)
            return std::nullopt;
        bool to_signed = cast.targetType.base == TypeSpec::Base::Signed;
        unsigned width = operand->type.width;
        if (!cast.keepOperandWidth) {
            if (cast.targetType.base == TypeSpec::Base::Bool) {
                width = 1;
            } else if (cast.targetType.aliasWidth) {
                width = cast.targetType.aliasWidth;
            } else if (cast.targetType.widthExpr) {
                auto w = evalConst(*cast.targetType.widthExpr, env);
                if (!w)
                    return std::nullopt;
                width = static_cast<unsigned>(w->value.toUint64());
            } else {
                width = 32;
            }
        }
        TypedConst out;
        out.type = Type(to_signed, width);
        out.value = adjustTo(*operand, out.type);
        return out;
      }
      case Expr::Kind::Concat: {
        const auto &cc = static_cast<const ConcatExpr &>(expr);
        auto lhs = evalConst(*cc.lhs, env);
        auto rhs = evalConst(*cc.rhs, env);
        if (!lhs || !rhs)
            return std::nullopt;
        TypedConst out;
        out.value = lhs->value.concat(rhs->value);
        out.type = Type::makeUnsigned(out.value.width());
        return out;
      }
      case Expr::Kind::RangeIndex: {
        const auto &ri = static_cast<const RangeIndexExpr &>(expr);
        auto base = evalConst(*ri.base, env);
        auto from = evalConst(*ri.from, env);
        auto to = evalConst(*ri.to, env);
        if (!base || !from || !to)
            return std::nullopt;
        unsigned hi = static_cast<unsigned>(from->value.toUint64());
        unsigned lo = static_cast<unsigned>(to->value.toUint64());
        if (hi < lo || hi >= base->type.width)
            return std::nullopt;
        TypedConst out;
        out.value = base->value.extract(lo, hi - lo + 1);
        out.type = Type::makeUnsigned(hi - lo + 1);
        return out;
      }
      case Expr::Kind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(expr);
        auto base = evalConst(*ix.base, env);
        auto index = evalConst(*ix.index, env);
        if (!base || !index)
            return std::nullopt;
        uint64_t bit = index->value.toUint64();
        if (bit >= base->type.width)
            return std::nullopt;
        TypedConst out;
        out.value = base->value.extract(static_cast<unsigned>(bit), 1);
        out.type = Type::makeUnsigned(1);
        return out;
      }
      default:
        return std::nullopt;
    }
}

// -------------------------------------------------------------------------
// Analyzer
// -------------------------------------------------------------------------

namespace {

class Analyzer
{
  public:
    Analyzer(DiagnosticEngine &diags, SourceProvider provider,
             SemaOptions options)
        : diags_(diags), provider_(std::move(provider)),
          options_(std::move(options))
    {}

    std::unique_ptr<ElaboratedIsa>
    run(const std::string &source, const std::string &target_name)
    {
        DiagnosticEngine::ContextScope scope(diags_, Phase::Sema,
                                             "LN1002");
        auto isa = std::make_unique<ElaboratedIsa>();
        isa_ = isa.get();

        std::unique_ptr<Description> desc;
        {
            obs::TraceSpan span("parse");
            desc = std::make_unique<Description>(
                parseString(source, diags_));
        }
        if (diags_.hasErrors())
            return nullptr;
        if (failpoint::fire("sema") != failpoint::Mode::Off) {
            diags_.error({}, "LN1902",
                         "injected fault at failpoint 'sema'");
            return nullptr;
        }

        loadImports(*desc);
        for (auto &def : desc->defs)
            registerDef(def.get());

        IsaDef *target = nullptr;
        if (target_name.empty()) {
            if (!desc->defs.empty())
                target = desc->defs.back().get();
        }
        isa->ownedAsts.push_back(std::move(desc));
        if (diags_.hasErrors())
            return nullptr;

        if (!target_name.empty()) {
            auto it = defsByName_.find(target_name);
            if (it != defsByName_.end())
                target = it->second;
        }
        if (!target) {
            diags_.error({}, "no definition named '" +
                                 (target_name.empty() ? "<last>"
                                                      : target_name) +
                                 "' found");
            return nullptr;
        }
        isa->name = target->name;

        std::vector<IsaDef *> chain = flatten(target);
        if (diags_.hasErrors())
            return nullptr;

        std::set<std::string> base_names = baseSetNames();

        // Phase 1: evaluate parameters, declaration order across the
        // chain; core parameter assignments override defaults.
        for (IsaDef *def : chain) {
            for (auto &decl : def->state)
                if (decl.storage == StateDecl::Storage::Param)
                    defineParameter(decl);
        }
        for (IsaDef *def : chain) {
            for (auto &pa : def->paramAssigns)
                assignParameter(pa);
        }

        // Phase 2: state elements.
        for (IsaDef *def : chain) {
            bool is_base = base_names.count(def->name) > 0;
            for (auto &decl : def->state)
                if (decl.storage != StateDecl::Storage::Param)
                    resolveState(decl, is_base);
        }

        // Phase 3: function signatures, then bodies (so functions may
        // call previously declared functions).
        for (IsaDef *def : chain)
            for (auto &fn : def->functions)
                resolveFunctionSignature(fn);
        for (IsaDef *def : chain)
            for (auto &fn : def->functions)
                checkFunctionBody(fn);

        // Phase 4: instructions and always-blocks.
        for (IsaDef *def : chain) {
            bool is_base = base_names.count(def->name) > 0;
            for (auto &instr : def->instructions)
                resolveInstruction(instr, is_base);
            for (auto &blk : def->alwaysBlocks)
                resolveAlways(blk, is_base);
        }

        if (diags_.hasErrors())
            return nullptr;
        return isa;
    }

  private:
    // --- import / inheritance handling ---------------------------------

    void
    loadImports(Description &desc)
    {
        for (const std::string &import_name : desc.imports) {
            if (!loadedImports_.insert(import_name).second)
                continue;
            auto text = provider_(import_name);
            if (!text) {
                diags_.error({}, "cannot resolve import '" + import_name +
                                     "'");
                continue;
            }
            auto imported = std::make_unique<Description>(
                parseString(*text, diags_));
            loadImports(*imported);
            for (auto &def : imported->defs)
                registerDef(def.get());
            isa_->ownedAsts.push_back(std::move(imported));
        }
    }

    void
    registerDef(IsaDef *def)
    {
        auto [it, inserted] = defsByName_.emplace(def->name, def);
        if (!inserted)
            diags_.error(def->loc,
                         "redefinition of '" + def->name + "'");
    }

    /** Ancestors first, depth-first, each definition once. */
    std::vector<IsaDef *>
    flatten(IsaDef *def)
    {
        std::vector<IsaDef *> chain;
        std::set<std::string> visited;
        flattenInto(def, chain, visited);
        return chain;
    }

    void
    flattenInto(IsaDef *def, std::vector<IsaDef *> &chain,
                std::set<std::string> &visited)
    {
        if (!visited.insert(def->name).second)
            return;
        for (const std::string &parent : def->parents) {
            auto it = defsByName_.find(parent);
            if (it == defsByName_.end()) {
                diags_.error(def->loc, "unknown instruction set '" +
                                           parent + "'");
                continue;
            }
            flattenInto(it->second, chain, visited);
        }
        chain.push_back(def);
    }

    /** The base set and all of its ancestors. */
    std::set<std::string>
    baseSetNames()
    {
        std::set<std::string> names;
        auto it = defsByName_.find(options_.baseSetName);
        if (it == defsByName_.end())
            return names;
        for (IsaDef *def : flatten(it->second))
            names.insert(def->name);
        return names;
    }

    // --- parameters and state -------------------------------------------

    void
    defineParameter(StateDecl &decl)
    {
        Type type = resolveTypeSpec(decl.type, /*bare_means_32=*/true);
        if (!type.isValid())
            return;
        TypedConst value;
        value.type = type;
        value.value = ApInt(type.width, 0);
        if (decl.init) {
            auto c = evalConst(*decl.init, isa_->parameters);
            if (!c) {
                diags_.error(decl.loc, "parameter '" + decl.name +
                                           "' initializer is not a "
                                           "compile-time constant");
                return;
            }
            value.value = adjustTo(*c, type);
        }
        isa_->parameters[decl.name] = std::move(value);
    }

    void
    assignParameter(ParamAssign &pa)
    {
        auto it = isa_->parameters.find(pa.name);
        if (it == isa_->parameters.end()) {
            diags_.error(pa.loc,
                         "assignment to unknown parameter '" + pa.name +
                             "'");
            return;
        }
        auto c = evalConst(*pa.value, isa_->parameters);
        if (!c) {
            diags_.error(pa.loc, "parameter assignment is not a "
                                 "compile-time constant");
            return;
        }
        it->second.value = adjustTo(*c, it->second.type);
    }

    void
    resolveState(StateDecl &decl, bool is_base)
    {
        StateInfo info;
        info.name = decl.name;
        info.kind = decl.storage == StateDecl::Storage::Extern
                        ? StateInfo::Kind::AddressSpace
                        : StateInfo::Kind::Register;
        info.isConst = decl.isConst;
        info.isCoreState = is_base;
        info.elementType = resolveTypeSpec(decl.type, true);
        if (!info.elementType.isValid())
            return;
        if (decl.arraySize) {
            auto c = evalConst(*decl.arraySize, isa_->parameters);
            if (!c) {
                diags_.error(decl.loc, "array size of '" + decl.name +
                                           "' is not a compile-time "
                                           "constant");
                return;
            }
            info.numElements = c->value.toUint64();
            if (info.numElements == 0) {
                diags_.error(decl.loc, "array size must be positive");
                return;
            }
        }
        if (!decl.initList.empty()) {
            if (!info.isConst) {
                diags_.error(decl.loc,
                             "initializer lists are only supported for "
                             "constant registers (ROMs)");
                return;
            }
            if (decl.initList.size() != info.numElements) {
                diags_.error(decl.loc,
                             "initializer list has " +
                                 std::to_string(decl.initList.size()) +
                                 " elements, expected " +
                                 std::to_string(info.numElements));
                return;
            }
            for (auto &e : decl.initList) {
                auto c = evalConst(*e, isa_->parameters);
                if (!c) {
                    diags_.error(decl.loc,
                                 "ROM initializer is not a compile-time "
                                 "constant");
                    return;
                }
                info.constValues.push_back(
                    adjustTo(*c, info.elementType));
            }
        } else if (decl.init) {
            auto c = evalConst(*decl.init, isa_->parameters);
            if (!c || !info.isConst) {
                diags_.error(decl.loc,
                             "only constant registers may carry "
                             "initializers");
                return;
            }
            info.constValues.push_back(adjustTo(*c, info.elementType));
        } else if (info.isConst) {
            diags_.error(decl.loc, "constant register '" + decl.name +
                                       "' needs an initializer");
            return;
        }
        if (isa_->findState(info.name)) {
            diags_.error(decl.loc,
                         "redefinition of state element '" + info.name +
                             "'");
            return;
        }
        isa_->state.push_back(std::move(info));
    }

    // --- functions -------------------------------------------------------

    void
    resolveFunctionSignature(FunctionDef &fn)
    {
        FunctionInfo info;
        info.ast = &fn;
        info.name = fn.name;
        if (!fn.returnType.isVoid()) {
            fn.resolvedReturnType = resolveTypeSpec(fn.returnType, true);
            info.returnType = fn.resolvedReturnType;
        }
        for (auto &p : fn.params) {
            p.resolvedType = resolveTypeSpec(p.type, true);
            info.paramTypes.push_back(p.resolvedType);
        }
        if (isa_->findFunction(fn.name)) {
            diags_.error(fn.loc,
                         "redefinition of function '" + fn.name + "'");
            return;
        }
        isa_->functions.push_back(std::move(info));
    }

    void
    checkFunctionBody(FunctionDef &fn)
    {
        const FunctionInfo *info = isa_->findFunction(fn.name);
        if (!info)
            return;
        ScopeGuard guard(*this);
        for (const auto &p : fn.params)
            declareLocal(p.name, p.resolvedType, p.loc);
        curFields_ = nullptr;
        curReturnType_ = info->returnType;
        inFunction_ = true;
        inInstruction_ = false;
        checkStmt(*fn.body);
        inFunction_ = false;
    }

    // --- instructions and always-blocks ----------------------------------

    void
    resolveInstruction(Instruction &instr, bool is_base)
    {
        InstrInfo info;
        info.ast = &instr;
        info.name = instr.name;
        info.fromBase = is_base;
        info.maskString.assign(32, '-');

        unsigned total = 0;
        for (const auto &e : instr.encoding)
            total += e.width();
        if (total != 32) {
            diags_.error(instr.loc, "encoding of '" + instr.name +
                                        "' is " + std::to_string(total) +
                                        " bits wide, expected 32");
            return;
        }

        unsigned pos = 32; // walk MSB-first
        for (const auto &e : instr.encoding) {
            pos -= e.width();
            if (e.isLiteral) {
                for (unsigned i = 0; i < e.literalWidth; ++i) {
                    unsigned bit = pos + i;
                    info.mask |= 1u << bit;
                    if (e.value.getBit(i))
                        info.match |= 1u << bit;
                    info.maskString[31 - bit] =
                        e.value.getBit(i) ? '1' : '0';
                }
            } else {
                FieldInfo &field = info.fields[e.field];
                field.width = std::max(field.width, e.msb + 1);
                field.slices.push_back({pos, e.lsb, e.msb - e.lsb + 1});
            }
        }

        // Check the behavior with the encoding fields in scope.
        ScopeGuard guard(*this);
        curFields_ = &info.fields;
        inFunction_ = false;
        inInstruction_ = true;
        checkStmt(*instr.behavior);
        curFields_ = nullptr;

        if (isa_->findInstruction(info.name)) {
            diags_.error(instr.loc, "redefinition of instruction '" +
                                        info.name + "'");
            return;
        }
        isa_->instructions.push_back(std::move(info));
    }

    void
    resolveAlways(AlwaysBlock &blk, bool is_base)
    {
        AlwaysInfo info;
        info.ast = &blk;
        info.name = blk.name;
        info.fromBase = is_base;

        ScopeGuard guard(*this);
        curFields_ = nullptr;
        inFunction_ = false;
        inInstruction_ = false;
        checkStmt(*blk.behavior);

        isa_->alwaysBlocks.push_back(std::move(info));
    }

    // --- types -----------------------------------------------------------

    Type
    resolveTypeSpec(TypeSpec &spec, bool bare_means_32)
    {
        switch (spec.base) {
          case TypeSpec::Base::Bool:
            return Type::makeBool();
          case TypeSpec::Base::Void:
            diags_.error(spec.loc, "'void' is not allowed here");
            return {};
          case TypeSpec::Base::Signed:
          case TypeSpec::Base::Unsigned: {
            bool is_signed = spec.base == TypeSpec::Base::Signed;
            if (spec.aliasWidth)
                return Type(is_signed, spec.aliasWidth);
            if (!spec.widthExpr) {
                if (bare_means_32)
                    return Type(is_signed, 32);
                diags_.error(spec.loc, "type requires a width");
                return {};
            }
            auto c = evalConst(*spec.widthExpr, isa_->parameters);
            if (!c) {
                diags_.error(spec.loc,
                             "type width is not a compile-time constant");
                return {};
            }
            uint64_t w = c->value.toUint64();
            if (w == 0 || w > ApInt::maxWidth) {
                diags_.error(spec.loc, "invalid type width " +
                                           std::to_string(w));
                return {};
            }
            return Type(is_signed, static_cast<unsigned>(w));
          }
        }
        return {};
    }

    // --- scopes ----------------------------------------------------------

    struct ScopeGuard
    {
        explicit ScopeGuard(Analyzer &a) : analyzer(a)
        {
            analyzer.scopes_.emplace_back();
        }
        ~ScopeGuard() { analyzer.scopes_.pop_back(); }
        Analyzer &analyzer;
    };

    void
    declareLocal(const std::string &name, Type type, SourceLoc loc)
    {
        if (!scopes_.back().emplace(name, type).second)
            diags_.error(loc, "redeclaration of '" + name + "'");
    }

    const Type *
    lookupLocal(const std::string &name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        return nullptr;
    }

    // --- statement checking ----------------------------------------------

    void
    checkStmt(Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block: {
            auto &block = static_cast<BlockStmt &>(stmt);
            ScopeGuard guard(*this);
            for (auto &s : block.stmts)
                checkStmt(*s);
            break;
          }
          case Stmt::Kind::VarDecl: {
            auto &decl = static_cast<VarDeclStmt &>(stmt);
            decl.resolvedType = resolveTypeSpec(decl.type, true);
            if (!decl.resolvedType.isValid())
                break;
            if (decl.init) {
                Type init_type = checkExpr(*decl.init);
                if (init_type.isValid() &&
                    !isImplicitlyAssignable(decl.resolvedType,
                                            init_type)) {
                    diags_.error(decl.loc,
                                 "cannot implicitly convert " +
                                     init_type.str() + " to " +
                                     decl.resolvedType.str() +
                                     " in initialization of '" +
                                     decl.name + "'");
                }
            }
            declareLocal(decl.name, decl.resolvedType, decl.loc);
            break;
          }
          case Stmt::Kind::ExprStmt:
            checkExpr(*static_cast<ExprStmt &>(stmt).expr);
            break;
          case Stmt::Kind::If: {
            auto &if_stmt = static_cast<IfStmt &>(stmt);
            checkExpr(*if_stmt.cond);
            checkStmt(*if_stmt.thenStmt);
            if (if_stmt.elseStmt)
                checkStmt(*if_stmt.elseStmt);
            break;
          }
          case Stmt::Kind::For: {
            auto &for_stmt = static_cast<ForStmt &>(stmt);
            ScopeGuard guard(*this);
            if (for_stmt.init)
                checkStmt(*for_stmt.init);
            if (for_stmt.cond)
                checkExpr(*for_stmt.cond);
            else
                diags_.error(for_stmt.loc,
                             "for-loops require a condition (loops must "
                             "have compile-time known trip counts)");
            if (for_stmt.step)
                checkExpr(*for_stmt.step);
            checkStmt(*for_stmt.body);
            break;
          }
          case Stmt::Kind::While: {
            auto &while_stmt = static_cast<WhileStmt &>(stmt);
            checkExpr(*while_stmt.cond);
            checkStmt(*while_stmt.body);
            break;
          }
          case Stmt::Kind::Switch: {
            auto &switch_stmt = static_cast<SwitchStmt &>(stmt);
            Type subject = checkExpr(*switch_stmt.subject);
            for (auto &arm : switch_stmt.cases) {
                for (auto &value : arm.values) {
                    Type vt = checkExpr(*value);
                    if (!evalConst(*value, isa_->parameters))
                        diags_.error(value->loc,
                                     "case values must be compile-time "
                                     "constants");
                    (void)vt;
                }
                ScopeGuard guard(*this);
                for (auto &body_stmt : arm.body)
                    checkStmt(*body_stmt);
            }
            (void)subject;
            break;
          }
          case Stmt::Kind::Break:
            diags_.error(stmt.loc,
                         "'break' is only allowed inside a switch arm");
            break;
          case Stmt::Kind::Return: {
            auto &ret = static_cast<ReturnStmt &>(stmt);
            if (!inFunction_) {
                diags_.error(ret.loc,
                             "'return' is only allowed in functions");
                break;
            }
            if (ret.value) {
                Type t = checkExpr(*ret.value);
                if (!curReturnType_.isValid()) {
                    diags_.error(ret.loc,
                                 "void function cannot return a value");
                } else if (t.isValid() &&
                           !isImplicitlyAssignable(curReturnType_, t)) {
                    diags_.error(ret.loc, "cannot implicitly convert " +
                                              t.str() + " to " +
                                              curReturnType_.str() +
                                              " in return");
                }
            } else if (curReturnType_.isValid()) {
                diags_.error(ret.loc, "non-void function must return a "
                                      "value");
            }
            break;
          }
          case Stmt::Kind::Spawn: {
            auto &spawn = static_cast<SpawnStmt &>(stmt);
            if (!inInstruction_)
                diags_.error(spawn.loc, "'spawn' is only allowed in "
                                        "instruction behaviors");
            checkStmt(*spawn.body);
            break;
          }
        }
    }

    // --- expression checking ----------------------------------------------

    /** Fallback type used after reporting an error, to limit cascades. */
    static Type errorType() { return Type::makeUnsigned(32); }

    Type
    checkExpr(Expr &expr)
    {
        Type t = checkExprImpl(expr);
        expr.type = t;
        return t;
    }

    Type
    checkExprImpl(Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::IntLit: {
            auto &lit = static_cast<IntLitExpr &>(expr);
            if (lit.sized)
                return Type::makeUnsigned(lit.sizedWidth);
            return Type::makeUnsigned(
                std::max(1u, lit.value.activeBits()));
          }
          case Expr::Kind::Ref:
            return checkRef(static_cast<RefExpr &>(expr));
          case Expr::Kind::Index:
            return checkIndex(static_cast<IndexExpr &>(expr));
          case Expr::Kind::RangeIndex:
            return checkRangeIndex(static_cast<RangeIndexExpr &>(expr));
          case Expr::Kind::Call:
            return checkCall(static_cast<CallExpr &>(expr));
          case Expr::Kind::Unary:
            return checkUnary(static_cast<UnaryExpr &>(expr));
          case Expr::Kind::Binary: {
            auto &bin = static_cast<BinaryExpr &>(expr);
            Type l = checkExpr(*bin.lhs);
            Type r = checkExpr(*bin.rhs);
            if (!l.isValid() || !r.isValid())
                return errorType();
            return resultType(bin.op, l, r);
          }
          case Expr::Kind::Assign:
            return checkAssign(static_cast<AssignExpr &>(expr));
          case Expr::Kind::Conditional: {
            auto &cond = static_cast<ConditionalExpr &>(expr);
            checkExpr(*cond.cond);
            Type t = checkExpr(*cond.thenExpr);
            Type f = checkExpr(*cond.elseExpr);
            if (!t.isValid() || !f.isValid())
                return errorType();
            return unionType(t, f);
          }
          case Expr::Kind::Cast: {
            auto &cast = static_cast<CastExpr &>(expr);
            Type operand = checkExpr(*cast.operand);
            if (cast.keepOperandWidth) {
                bool to_signed =
                    cast.targetType.base == TypeSpec::Base::Signed;
                return Type(to_signed, operand.width);
            }
            return resolveTypeSpec(cast.targetType, true);
          }
          case Expr::Kind::Concat: {
            auto &cc = static_cast<ConcatExpr &>(expr);
            Type l = checkExpr(*cc.lhs);
            Type r = checkExpr(*cc.rhs);
            if (!l.isValid() || !r.isValid())
                return errorType();
            return Type::makeUnsigned(l.width + r.width);
          }
        }
        return errorType();
    }

    Type
    checkRef(RefExpr &ref)
    {
        if (const Type *local = lookupLocal(ref.name))
            return *local;
        if (curFields_) {
            auto it = curFields_->find(ref.name);
            if (it != curFields_->end())
                return Type::makeUnsigned(it->second.width);
        }
        if (const StateInfo *state = isa_->findState(ref.name)) {
            if (state->isArray() || state->kind ==
                                        StateInfo::Kind::AddressSpace) {
                diags_.error(ref.loc, "'" + ref.name +
                                          "' must be accessed with a "
                                          "subscript");
                return errorType();
            }
            return state->elementType;
        }
        auto param = isa_->parameters.find(ref.name);
        if (param != isa_->parameters.end())
            return param->second.type;
        diags_.error(ref.loc, "use of undeclared identifier '" +
                                  ref.name + "'");
        return errorType();
    }

    Type
    checkIndex(IndexExpr &index)
    {
        // State-array element access: X[rs1], SBOX[v].
        if (index.base->kind == Expr::Kind::Ref) {
            auto &ref = static_cast<RefExpr &>(*index.base);
            if (const StateInfo *state = isa_->findState(ref.name)) {
                index.base->type = state->elementType; // informational
                checkExpr(*index.index);
                return state->elementType;
            }
        }
        // Otherwise: single-bit select on a scalar value.
        Type base = checkExpr(*index.base);
        checkExpr(*index.index);
        if (!base.isValid())
            return errorType();
        return Type::makeBool();
    }

    /**
     * Width of [from:to] where both bounds are constants, or both
     * reference the same variable with constant offsets (Sec. 2.4).
     */
    std::optional<uint64_t>
    rangeSpan(Expr &from, Expr &to)
    {
        auto cf = evalConst(from, isa_->parameters);
        auto ct = evalConst(to, isa_->parameters);
        if (cf && ct) {
            int64_t hi = cf->value.zextOrTrunc(64).toUint64();
            int64_t lo = ct->value.zextOrTrunc(64).toUint64();
            if (hi < lo)
                return std::nullopt;
            return static_cast<uint64_t>(hi - lo);
        }
        // var + c / var - c / var patterns.
        auto split = [](Expr &e) -> std::optional<
                                      std::pair<std::string, int64_t>> {
            if (e.kind == Expr::Kind::Ref)
                return std::make_pair(
                    static_cast<RefExpr &>(e).name, int64_t(0));
            if (e.kind == Expr::Kind::Binary) {
                auto &bin = static_cast<BinaryExpr &>(e);
                if ((bin.op == BinOp::Add || bin.op == BinOp::Sub) &&
                    bin.lhs->kind == Expr::Kind::Ref) {
                    auto c = evalConst(*bin.rhs, {});
                    if (c) {
                        int64_t off = static_cast<int64_t>(
                            c->value.zextOrTrunc(63).toUint64());
                        if (bin.op == BinOp::Sub)
                            off = -off;
                        return std::make_pair(
                            static_cast<RefExpr &>(*bin.lhs).name, off);
                    }
                }
            }
            return std::nullopt;
        };
        auto sf = split(from);
        auto st = split(to);
        if (sf && st && sf->first == st->first &&
            sf->second >= st->second)
            return static_cast<uint64_t>(sf->second - st->second);
        return std::nullopt;
    }

    Type
    checkRangeIndex(RangeIndexExpr &range)
    {
        auto span = rangeSpan(*range.from, *range.to);
        // Type-check bound expressions (they may reference locals).
        checkExpr(*range.from);
        checkExpr(*range.to);
        if (!span) {
            diags_.error(range.loc,
                         "range bounds must be compile-time constants or "
                         "reference the same variable with constant "
                         "offsets");
            return errorType();
        }
        // Address-space range: concatenation of multiple elements.
        if (range.base->kind == Expr::Kind::Ref) {
            auto &ref = static_cast<RefExpr &>(*range.base);
            if (const StateInfo *state = isa_->findState(ref.name)) {
                if (state->kind == StateInfo::Kind::AddressSpace) {
                    range.base->type = state->elementType;
                    uint64_t width =
                        (*span + 1) * state->elementType.width;
                    if (width > ApInt::maxWidth) {
                        diags_.error(range.loc, "range too wide");
                        return errorType();
                    }
                    return Type::makeUnsigned(
                        static_cast<unsigned>(width));
                }
            }
        }
        // Bit range on a scalar value.
        Type base = checkExpr(*range.base);
        if (!base.isValid())
            return errorType();
        if (*span + 1 > base.width) {
            diags_.error(range.loc, "bit range wider than its operand");
            return errorType();
        }
        return Type::makeUnsigned(static_cast<unsigned>(*span + 1));
    }

    Type
    checkCall(CallExpr &call)
    {
        const FunctionInfo *fn = isa_->findFunction(call.callee);
        if (!fn) {
            diags_.error(call.loc,
                         "call to undeclared function '" + call.callee +
                             "'");
            for (auto &a : call.args)
                checkExpr(*a);
            return errorType();
        }
        if (call.args.size() != fn->paramTypes.size()) {
            diags_.error(call.loc,
                         "'" + call.callee + "' expects " +
                             std::to_string(fn->paramTypes.size()) +
                             " arguments, got " +
                             std::to_string(call.args.size()));
        }
        for (size_t i = 0; i < call.args.size(); ++i) {
            Type t = checkExpr(*call.args[i]);
            if (i < fn->paramTypes.size() && t.isValid() &&
                !isImplicitlyAssignable(fn->paramTypes[i], t)) {
                diags_.error(call.args[i]->loc,
                             "cannot implicitly convert " + t.str() +
                                 " to " + fn->paramTypes[i].str() +
                                 " in argument " + std::to_string(i + 1));
            }
        }
        if (!fn->returnType.isValid()) {
            diags_.error(call.loc, "void function call used as a value");
            return errorType();
        }
        return fn->returnType;
    }

    Type
    checkUnary(UnaryExpr &unary)
    {
        Type operand = checkExpr(*unary.operand);
        if (!operand.isValid())
            return errorType();
        switch (unary.op) {
          case UnaryExpr::Op::Neg:
            return Type::makeSigned(operand.width + 1);
          case UnaryExpr::Op::BitNot:
            return operand;
          case UnaryExpr::Op::LogicalNot:
            return Type::makeBool();
          case UnaryExpr::Op::PreInc:
          case UnaryExpr::Op::PreDec:
          case UnaryExpr::Op::PostInc:
          case UnaryExpr::Op::PostDec:
            if (!isLvalue(*unary.operand))
                diags_.error(unary.loc,
                             "increment/decrement requires an "
                             "assignable operand");
            return operand;
        }
        return errorType();
    }

    bool
    isLvalue(Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::Ref: {
            auto &ref = static_cast<RefExpr &>(expr);
            if (lookupLocal(ref.name))
                return true;
            const StateInfo *state = isa_->findState(ref.name);
            return state && !state->isArray() && !state->isConst &&
                   state->kind == StateInfo::Kind::Register;
          }
          case Expr::Kind::Index: {
            auto &index = static_cast<IndexExpr &>(expr);
            if (index.base->kind != Expr::Kind::Ref)
                return false;
            auto &ref = static_cast<RefExpr &>(*index.base);
            const StateInfo *state = isa_->findState(ref.name);
            return state && !state->isConst;
          }
          case Expr::Kind::RangeIndex: {
            auto &range = static_cast<RangeIndexExpr &>(expr);
            if (range.base->kind != Expr::Kind::Ref)
                return false;
            auto &ref = static_cast<RefExpr &>(*range.base);
            const StateInfo *state = isa_->findState(ref.name);
            return state &&
                   state->kind == StateInfo::Kind::AddressSpace;
          }
          default:
            return false;
        }
    }

    Type
    checkAssign(AssignExpr &assign)
    {
        Type lhs = checkExpr(*assign.lhs);
        Type rhs = checkExpr(*assign.rhs);
        if (!isLvalue(*assign.lhs)) {
            diags_.error(assign.loc,
                         "left-hand side of assignment is not "
                         "assignable");
            return errorType();
        }
        if (!lhs.isValid() || !rhs.isValid())
            return errorType();
        if (!assign.compoundOp &&
            !isImplicitlyAssignable(lhs, rhs)) {
            diags_.error(assign.loc,
                         "cannot implicitly convert " + rhs.str() +
                             " to " + lhs.str() +
                             "; use an explicit cast");
        }
        return lhs;
    }

    DiagnosticEngine &diags_;
    SourceProvider provider_;
    SemaOptions options_;

    ElaboratedIsa *isa_ = nullptr;
    std::map<std::string, IsaDef *> defsByName_;
    std::set<std::string> loadedImports_;

    std::vector<std::map<std::string, Type>> scopes_;
    std::map<std::string, FieldInfo> *curFields_ = nullptr;
    Type curReturnType_;
    bool inFunction_ = false;
    bool inInstruction_ = false;
};

} // namespace

Sema::Sema(DiagnosticEngine &diags, SourceProvider provider,
           SemaOptions options)
    : diags_(diags), provider_(std::move(provider)),
      options_(std::move(options))
{
}

std::unique_ptr<ElaboratedIsa>
Sema::analyze(const std::string &source, const std::string &target_name)
{
    Analyzer analyzer(diags_, provider_, options_);
    return analyzer.run(source, target_name);
}

} // namespace coredsl
} // namespace longnail
