/**
 * @file
 * Recursive-descent parser for CoreDSL, implementing the grammar of
 * Fig. 2 of the paper plus C-style statements and expressions with the
 * CoreDSL extensions (Sec. 2.4): concatenation '::', bit/range
 * subscripts, Verilog-sized literals, and casts.
 */

#ifndef LONGNAIL_COREDSL_PARSER_HH
#define LONGNAIL_COREDSL_PARSER_HH

#include <memory>
#include <string>
#include <vector>

#include "coredsl/ast.hh"
#include "coredsl/token.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace coredsl {

class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagnosticEngine &diags);

    /**
     * Parse a whole description file. On error, diagnostics are
     * reported and a partial (possibly empty) AST is returned.
     *
     * The parser recovers from syntax errors with panic-mode
     * resynchronization (skipping to the next ';', '}', or top-level
     * keyword), so one run reports every independent syntax error in
     * the input instead of only the first. Recovery stops when the
     * engine's error limit is reached.
     */
    Description parseDescription();

  private:
    struct ParseError {};

    // Token-stream helpers.
    const Token &peek(int ahead = 0) const;
    const Token &current() const { return peek(0); }
    Token consume();
    bool check(TokenKind kind) const { return current().is(kind); }
    bool accept(TokenKind kind);
    Token expect(TokenKind kind, const char *context);
    [[noreturn]] void errorHere(const std::string &msg);

    // Panic-mode error recovery.
    bool atTopLevelKeyword() const;
    void syncToTopLevel();
    void syncToBlockElement();
    void syncToStatement();

    // Top-level productions.
    std::unique_ptr<IsaDef> parseIsaDef();
    void parseIsaBody(IsaDef &def);
    void parseArchitecturalState(IsaDef &def);
    StateDecl parseStateDecl(bool has_register, bool has_extern,
                             bool has_const);
    void parseInstructions(IsaDef &def);
    Instruction parseInstruction();
    std::vector<EncodingElem> parseEncoding();
    void parseAlwaysSection(IsaDef &def);
    void parseFunctions(IsaDef &def);
    FunctionDef parseFunction();

    // Types.
    bool atTypeStart() const;
    TypeSpec parseTypeSpec();

    // Statements.
    StmtPtr parseStmt();
    StmtPtr parseBlock();
    StmtPtr parseVarDecl();
    StmtPtr parseIf();
    StmtPtr parseFor();
    StmtPtr parseWhile();
    StmtPtr parseSwitch();

    // Expressions, by descending precedence.
    ExprPtr parseExpr();
    ExprPtr parseAssignment();
    ExprPtr parseConditional();
    ExprPtr parseLogicalOr();
    ExprPtr parseLogicalAnd();
    ExprPtr parseBitOr();
    ExprPtr parseBitXor();
    ExprPtr parseBitAnd();
    ExprPtr parseEquality();
    ExprPtr parseRelational();
    ExprPtr parseConcat();
    ExprPtr parseShift();
    ExprPtr parseAdditive();
    ExprPtr parseMultiplicative();
    ExprPtr parseUnary();
    ExprPtr parsePostfix();
    ExprPtr parsePrimary();

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    DiagnosticEngine &diags_;
};

/** Convenience: lex and parse a source buffer in one call. */
Description parseString(const std::string &source, DiagnosticEngine &diags);

} // namespace coredsl
} // namespace longnail

#endif // LONGNAIL_COREDSL_PARSER_HH
