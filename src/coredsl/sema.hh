/**
 * @file
 * Semantic analysis for CoreDSL: import resolution, inheritance
 * flattening, parameter elaboration, encoding checking, and
 * bitwidth-aware type checking of instruction/always/function behaviors
 * (Secs. 2.2-2.5 of the paper).
 */

#ifndef LONGNAIL_COREDSL_SEMA_HH
#define LONGNAIL_COREDSL_SEMA_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "coredsl/ast.hh"
#include "coredsl/module.hh"
#include "support/diagnostics.hh"

namespace longnail {
namespace coredsl {

/**
 * Resolves an import string (e.g. "RV32I.core_desc") to source text.
 * Returning std::nullopt reports an unresolved import.
 */
using SourceProvider =
    std::function<std::optional<std::string>(const std::string &)>;

/** A provider serving the descriptions bundled with Longnail. */
SourceProvider builtinSourceProvider();

/** Options controlling elaboration. */
struct SemaOptions
{
    /**
     * Name of the base instruction set assumed to be implemented by the
     * host core. Its state elements become core state, and its
     * instructions/always-blocks are not synthesized by default.
     */
    std::string baseSetName = "RV32I";
};

class Sema
{
  public:
    Sema(DiagnosticEngine &diags, SourceProvider provider,
         SemaOptions options = {});

    /**
     * Parse and elaborate @p source, targeting the definition named
     * @p target_name (default: the last definition in the file).
     * @return the elaborated ISA, or nullptr if errors were reported.
     */
    std::unique_ptr<ElaboratedIsa> analyze(const std::string &source,
                                           const std::string &target_name
                                           = "");

  private:
    class Impl;

    DiagnosticEngine &diags_;
    SourceProvider provider_;
    SemaOptions options_;
};

/**
 * Evaluate an expression to a compile-time constant in the context of
 * the given parameter environment. Returns nullopt if the expression is
 * not a compile-time constant.
 */
std::optional<TypedConst>
evalConst(const Expr &expr, const std::map<std::string, TypedConst> &env);

} // namespace coredsl
} // namespace longnail

#endif // LONGNAIL_COREDSL_SEMA_HH
