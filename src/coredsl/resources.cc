/**
 * @file
 * Descriptions bundled with Longnail: the RV32I base instruction set
 * referenced by every ISAX via 'import "RV32I.core_desc"'.
 *
 * The base set declares the core-provided architectural state (the
 * standard register field X, the program counter PC, and the
 * byte-addressable main memory MEM) and the ADDI instruction used as the
 * paper's running example (Figs. 5/6/9).
 */

#include "coredsl/sema.hh"

namespace longnail {
namespace coredsl {

namespace {

const char *rv32iCoreDesc = R"(
InstructionSet RV32I {
    architectural_state {
        unsigned<32> XLEN = 32;
        // Standard RISC-V register field with 32 elements.
        register unsigned<32> X[32];
        register unsigned<32> PC;
        // Byte-addressable standard address space.
        extern unsigned<8> MEM[4294967296];
    }
    instructions {
        ADDI {
            encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0]
                      :: 7'b0010011;
            behavior: {
                X[rd] = (unsigned<32>)(X[rs1] + (signed)imm[11:0]);
            }
        }
    }
}
)";

} // namespace

SourceProvider
builtinSourceProvider()
{
    return [](const std::string &name) -> std::optional<std::string> {
        if (name == "RV32I.core_desc")
            return std::string(rv32iCoreDesc);
        return std::nullopt;
    };
}

} // namespace coredsl
} // namespace longnail
