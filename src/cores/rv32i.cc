#include "cores/rv32i.hh"

namespace longnail {
namespace cores {

namespace {

int32_t
signExtend(uint32_t value, unsigned bits)
{
    uint32_t sign = 1u << (bits - 1);
    return int32_t((value ^ sign) - sign);
}

} // namespace

const std::vector<EncodingPattern> &
rv32iBasePatterns()
{
    // Mask/match per the RV32I base opcode map; mirrors decode() but
    // in the form the encoding-overlap lint needs.
    static const std::vector<EncodingPattern> patterns = {
        {"lui", 0x0000007f, 0x00000037},
        {"auipc", 0x0000007f, 0x00000017},
        {"jal", 0x0000007f, 0x0000006f},
        {"jalr", 0x0000707f, 0x00000067},
        {"beq", 0x0000707f, 0x00000063},
        {"bne", 0x0000707f, 0x00001063},
        {"blt", 0x0000707f, 0x00004063},
        {"bge", 0x0000707f, 0x00005063},
        {"bltu", 0x0000707f, 0x00006063},
        {"bgeu", 0x0000707f, 0x00007063},
        {"lb", 0x0000707f, 0x00000003},
        {"lh", 0x0000707f, 0x00001003},
        {"lw", 0x0000707f, 0x00002003},
        {"lbu", 0x0000707f, 0x00004003},
        {"lhu", 0x0000707f, 0x00005003},
        {"sb", 0x0000707f, 0x00000023},
        {"sh", 0x0000707f, 0x00001023},
        {"sw", 0x0000707f, 0x00002023},
        {"addi", 0x0000707f, 0x00000013},
        {"slti", 0x0000707f, 0x00002013},
        {"sltiu", 0x0000707f, 0x00003013},
        {"xori", 0x0000707f, 0x00004013},
        {"ori", 0x0000707f, 0x00006013},
        {"andi", 0x0000707f, 0x00007013},
        {"slli", 0xfe00707f, 0x00001013},
        {"srli", 0xfe00707f, 0x00005013},
        {"srai", 0xfe00707f, 0x40005013},
        {"add", 0xfe00707f, 0x00000033},
        {"sub", 0xfe00707f, 0x40000033},
        {"sll", 0xfe00707f, 0x00001033},
        {"slt", 0xfe00707f, 0x00002033},
        {"sltu", 0xfe00707f, 0x00003033},
        {"xor", 0xfe00707f, 0x00004033},
        {"srl", 0xfe00707f, 0x00005033},
        {"sra", 0xfe00707f, 0x40005033},
        {"or", 0xfe00707f, 0x00006033},
        {"and", 0xfe00707f, 0x00007033},
        {"fence", 0x0000707f, 0x0000000f},
        {"ecall", 0xffffffff, 0x00000073},
        {"ebreak", 0xffffffff, 0x00100073},
    };
    return patterns;
}

DecodedInstr
decode(uint32_t word)
{
    DecodedInstr d;
    d.raw = word;
    d.rd = (word >> 7) & 0x1f;
    d.rs1 = (word >> 15) & 0x1f;
    d.rs2 = (word >> 20) & 0x1f;
    d.funct3 = (word >> 12) & 0x7;
    d.funct7 = (word >> 25) & 0x7f;

    uint32_t opcode = word & 0x7f;
    switch (opcode) {
      case 0x37:
        d.opcode = Opcode::Lui;
        d.imm = int32_t(word & 0xfffff000);
        break;
      case 0x17:
        d.opcode = Opcode::Auipc;
        d.imm = int32_t(word & 0xfffff000);
        break;
      case 0x6f: {
        d.opcode = Opcode::Jal;
        uint32_t imm = ((word >> 31) << 20) |
                       (((word >> 12) & 0xff) << 12) |
                       (((word >> 20) & 1) << 11) |
                       (((word >> 21) & 0x3ff) << 1);
        d.imm = signExtend(imm, 21);
        break;
      }
      case 0x67:
        d.opcode = Opcode::Jalr;
        d.imm = signExtend(word >> 20, 12);
        break;
      case 0x63: {
        d.opcode = Opcode::Branch;
        uint32_t imm = ((word >> 31) << 12) |
                       (((word >> 7) & 1) << 11) |
                       (((word >> 25) & 0x3f) << 5) |
                       (((word >> 8) & 0xf) << 1);
        d.imm = signExtend(imm, 13);
        break;
      }
      case 0x03:
        d.opcode = Opcode::Load;
        d.imm = signExtend(word >> 20, 12);
        break;
      case 0x23: {
        d.opcode = Opcode::Store;
        uint32_t imm = (((word >> 25) & 0x7f) << 5) |
                       ((word >> 7) & 0x1f);
        d.imm = signExtend(imm, 12);
        break;
      }
      case 0x13:
        d.opcode = Opcode::AluImm;
        d.imm = signExtend(word >> 20, 12);
        break;
      case 0x33:
        d.opcode = Opcode::AluReg;
        break;
      case 0x0f:
        d.opcode = Opcode::Fence;
        break;
      case 0x73:
        d.opcode = Opcode::System;
        break;
      default:
        d.opcode = Opcode::Custom;
        break;
    }
    return d;
}

uint32_t
executeAlu(const DecodedInstr &instr, uint32_t rs1_value,
           uint32_t rs2_value, uint32_t pc)
{
    uint32_t b = instr.opcode == Opcode::AluImm ? uint32_t(instr.imm)
                                                : rs2_value;
    switch (instr.opcode) {
      case Opcode::Lui:
        return uint32_t(instr.imm);
      case Opcode::Auipc:
        return pc + uint32_t(instr.imm);
      case Opcode::Jal:
      case Opcode::Jalr:
        return pc + 4;
      case Opcode::Load:
      case Opcode::Store:
        return rs1_value + uint32_t(instr.imm);
      case Opcode::AluImm:
      case Opcode::AluReg:
        break;
      default:
        return 0;
    }
    switch (instr.funct3) {
      case 0x0:
        if (instr.opcode == Opcode::AluReg && (instr.funct7 & 0x20))
            return rs1_value - b;
        return rs1_value + b;
      case 0x1:
        return rs1_value << (b & 31);
      case 0x2:
        return int32_t(rs1_value) < int32_t(b) ? 1 : 0;
      case 0x3:
        return rs1_value < b ? 1 : 0;
      case 0x4:
        return rs1_value ^ b;
      case 0x5:
        if (instr.funct7 & 0x20)
            return uint32_t(int32_t(rs1_value) >> (b & 31));
        return rs1_value >> (b & 31);
      case 0x6:
        return rs1_value | b;
      case 0x7:
        return rs1_value & b;
    }
    return 0;
}

bool
branchTaken(const DecodedInstr &instr, uint32_t rs1_value,
            uint32_t rs2_value)
{
    switch (instr.funct3) {
      case 0x0: return rs1_value == rs2_value;           // beq
      case 0x1: return rs1_value != rs2_value;           // bne
      case 0x4: return int32_t(rs1_value) < int32_t(rs2_value); // blt
      case 0x5: return int32_t(rs1_value) >= int32_t(rs2_value);// bge
      case 0x6: return rs1_value < rs2_value;            // bltu
      case 0x7: return rs1_value >= rs2_value;           // bgeu
      default: return false;
    }
}

StepResult
Iss::step()
{
    uint32_t word = memory_.readWord(state_.pc);
    DecodedInstr d = decode(word);

    switch (d.opcode) {
      case Opcode::Custom:
        if (custom_ && custom_(d, state_, memory_)) {
            lastResult_ = StepResult::Ok;
            break;
        }
        lastResult_ = StepResult::IllegalInstruction;
        return lastResult_;
      case Opcode::System:
        lastResult_ = StepResult::Halted;
        return lastResult_;
      case Opcode::Fence:
        state_.pc += 4;
        lastResult_ = StepResult::Ok;
        break;
      case Opcode::Lui:
      case Opcode::Auipc:
      case Opcode::AluImm:
      case Opcode::AluReg: {
        uint32_t result = executeAlu(d, state_.reg(d.rs1),
                                     state_.reg(d.rs2), state_.pc);
        state_.setReg(d.rd, result);
        state_.pc += 4;
        lastResult_ = StepResult::Ok;
        break;
      }
      case Opcode::Jal:
        state_.setReg(d.rd, state_.pc + 4);
        state_.pc += uint32_t(d.imm);
        lastResult_ = StepResult::Ok;
        break;
      case Opcode::Jalr: {
        uint32_t target = (state_.reg(d.rs1) + uint32_t(d.imm)) & ~1u;
        state_.setReg(d.rd, state_.pc + 4);
        state_.pc = target;
        lastResult_ = StepResult::Ok;
        break;
      }
      case Opcode::Branch:
        if (branchTaken(d, state_.reg(d.rs1), state_.reg(d.rs2)))
            state_.pc += uint32_t(d.imm);
        else
            state_.pc += 4;
        lastResult_ = StepResult::Ok;
        break;
      case Opcode::Load: {
        uint32_t addr = state_.reg(d.rs1) + uint32_t(d.imm);
        uint32_t value = 0;
        switch (d.funct3) {
          case 0x0:
            value = uint32_t(int32_t(int8_t(memory_.readByte(addr))));
            break;
          case 0x1:
            value = uint32_t(
                int32_t(int16_t(memory_.readHalf(addr))));
            break;
          case 0x2: value = memory_.readWord(addr); break;
          case 0x4: value = memory_.readByte(addr); break;
          case 0x5: value = memory_.readHalf(addr); break;
          default:
            lastResult_ = StepResult::IllegalInstruction;
            return lastResult_;
        }
        state_.setReg(d.rd, value);
        state_.pc += 4;
        lastResult_ = StepResult::Ok;
        break;
      }
      case Opcode::Store: {
        uint32_t addr = state_.reg(d.rs1) + uint32_t(d.imm);
        uint32_t value = state_.reg(d.rs2);
        switch (d.funct3) {
          case 0x0: memory_.writeByte(addr, uint8_t(value)); break;
          case 0x1: memory_.writeHalf(addr, uint16_t(value)); break;
          case 0x2: memory_.writeWord(addr, value); break;
          default:
            lastResult_ = StepResult::IllegalInstruction;
            return lastResult_;
        }
        state_.pc += 4;
        lastResult_ = StepResult::Ok;
        break;
      }
    }

    if (always_)
        always_(state_, memory_);
    return lastResult_;
}

uint64_t
Iss::run(uint64_t max_steps)
{
    uint64_t steps = 0;
    while (steps < max_steps) {
        ++steps;
        if (step() != StepResult::Ok)
            break;
    }
    return steps;
}

} // namespace cores
} // namespace longnail
