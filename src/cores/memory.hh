/**
 * @file
 * Byte-addressable sparse memory and a simple bus timing model for the
 * host-core simulators. The bus wait states model the uncached
 * embedded-system memories of the paper's evaluation platform.
 */

#ifndef LONGNAIL_CORES_MEMORY_HH
#define LONGNAIL_CORES_MEMORY_HH

#include <cstdint>
#include <unordered_map>

namespace longnail {
namespace cores {

/** Little-endian sparse memory. */
class Memory
{
  public:
    uint8_t readByte(uint32_t addr) const;
    void writeByte(uint32_t addr, uint8_t value);

    uint16_t readHalf(uint32_t addr) const;
    void writeHalf(uint32_t addr, uint16_t value);

    /** Unaligned accesses are supported (byte-assembled). */
    uint32_t readWord(uint32_t addr) const;
    void writeWord(uint32_t addr, uint32_t value);

  private:
    std::unordered_map<uint32_t, uint8_t> bytes_;
};

/** Bus timing: extra cycles per access class. */
struct BusTiming
{
    /** Extra wait cycles for a data load (0 = single-cycle). */
    unsigned loadWaitStates = 2;
    /** Extra wait cycles for a data store. */
    unsigned storeWaitStates = 0;
};

} // namespace cores
} // namespace longnail

#endif // LONGNAIL_CORES_MEMORY_HH
