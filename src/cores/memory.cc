#include "cores/memory.hh"

namespace longnail {
namespace cores {

uint8_t
Memory::readByte(uint32_t addr) const
{
    auto it = bytes_.find(addr);
    return it == bytes_.end() ? 0 : it->second;
}

void
Memory::writeByte(uint32_t addr, uint8_t value)
{
    bytes_[addr] = value;
}

uint16_t
Memory::readHalf(uint32_t addr) const
{
    return uint16_t(readByte(addr)) |
           (uint16_t(readByte(addr + 1)) << 8);
}

void
Memory::writeHalf(uint32_t addr, uint16_t value)
{
    writeByte(addr, uint8_t(value));
    writeByte(addr + 1, uint8_t(value >> 8));
}

uint32_t
Memory::readWord(uint32_t addr) const
{
    return uint32_t(readHalf(addr)) |
           (uint32_t(readHalf(addr + 2)) << 16);
}

void
Memory::writeWord(uint32_t addr, uint32_t value)
{
    writeHalf(addr, uint16_t(value));
    writeHalf(addr + 2, uint16_t(value >> 16));
}

} // namespace cores
} // namespace longnail
