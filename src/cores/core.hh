/**
 * @file
 * Cycle-level models of the evaluation host cores (Sec. 5.2) with
 * SCAIE-V integration: ORCA and VexRiscv (5-stage pipelines), Piccolo
 * (3-stage), and PicoRV32 (non-pipelined FSM sequencing, modeled as a
 * no-overlap pipeline).
 *
 * The integration layer plays the role of the SCAIE-V-generated logic:
 * it decodes ISAX opcodes, drives the generated modules' stage-suffixed
 * ports in lock-step with the pipeline (the modules themselves run in
 * the RTL simulator), applies their state updates (WrRD/WrPC/WrMem/
 * custom registers), performs register data-hazard handling (stalls +
 * forwarding, including the scoreboard for decoupled ISAXes), hosts the
 * SCAIE-V-managed custom registers, evaluates always-blocks every
 * cycle, and arbitrates between multiple attached ISAXes
 * (first-attached wins, Sec. 3.3).
 */

#ifndef LONGNAIL_CORES_CORE_HH
#define LONGNAIL_CORES_CORE_HH

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cores/memory.hh"
#include "cores/rv32i.hh"
#include "hwgen/hwgen.hh"
#include "rtl/sim.hh"
#include "scaiev/datasheet.hh"

namespace longnail {
namespace cores {

/** One ISAX instruction with its generated hardware module. */
struct IsaxInstrUnit
{
    std::string name;
    uint32_t mask = 0;
    uint32_t match = 0;
    hwgen::GeneratedModule module;
};

/** A compiled ISAX ready for integration. */
struct IsaxBundle
{
    std::string name;

    struct CustomReg
    {
        std::string name;
        unsigned width = 32;
        uint64_t elements = 1;
    };

    std::vector<IsaxInstrUnit> instructions;
    std::vector<hwgen::GeneratedModule> alwaysBlocks;
    std::vector<CustomReg> customRegs;
};

/** Per-run statistics. */
struct RunStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    /** Cycles (since core construction) in which the pipeline front
     * end was held back: a global tightly-coupled/commit stall, or a
     * fetch/decode stall from hazards and bus waits. */
    uint64_t stallCycles = 0;
    bool halted = false;

    double ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }
};

/** Extra timing knobs beyond the datasheet. */
struct CoreTiming
{
    BusTiming bus;
    /** Extra cycles per instruction fetch (uncached iBus). */
    unsigned fetchWaitStates = 0;
};

class Core
{
  public:
    explicit Core(const scaiev::Datasheet &sheet, CoreTiming timing = {});

    /** Attach a compiled ISAX; attach order fixes arbitration
     * priority. */
    void attachIsax(std::shared_ptr<IsaxBundle> bundle);

    /** Copy a program into memory and point the PC at it. */
    void loadProgram(const std::vector<uint32_t> &words, uint32_t base);

    Memory &memory() { return memory_; }
    uint32_t reg(unsigned i) const { return state_.reg(i); }
    void setReg(unsigned i, uint32_t v) { state_.setReg(i, v); }
    uint32_t pc() const { return fetchPc_; }

    /** Architectural custom-register contents. */
    const ApInt &customReg(const std::string &name,
                           uint64_t index = 0) const;
    void setCustomReg(const std::string &name, uint64_t index,
                      const ApInt &value);

    /** Advance one clock cycle. @return false once halted. */
    bool stepCycle();

    /** Run until ECALL/EBREAK retires or @p max_cycles pass. */
    RunStats run(uint64_t max_cycles = 1'000'000);

    bool halted() const { return halted_; }

  private:
    // ------------------------------------------------------------------
    struct IsaxExec; // an ISAX instruction in flight

    /** One pipeline slot (the instruction occupying a stage). */
    struct Slot
    {
        bool valid = false;
        uint64_t seq = 0;
        uint32_t pc = 0;
        uint32_t instr = 0;
        DecodedInstr d;
        bool operandsRead = false;
        uint32_t rs1v = 0;
        uint32_t rs2v = 0;
        bool resultValid = false;
        uint32_t result = 0;
        bool addrValid = false;  ///< EX computed the memory address
        unsigned waitCycles = 0; ///< bus wait countdown in MEM
        bool memDone = false;
        bool isHalt = false;
        std::shared_ptr<IsaxExec> isax; ///< non-null for ISAX instrs
    };

    /** A custom (ISAX) instruction execution driving its module. */
    struct IsaxExec
    {
        IsaxInstrUnit *unit = nullptr;
        std::unique_ptr<rtl::Simulator> sim;
        int stage = -1;       ///< current module stage (time step)
        bool stalledThisCycle = false;
        bool rdPending = false; ///< WrRD not yet delivered
        bool resultReady = false; ///< sampled, awaiting WB commit
        uint32_t resultValue = 0;
        unsigned rd = 0;
        bool decoupled = false; ///< detached from the pipeline
        bool finished = false;
        unsigned memWait = 0;   ///< bus wait for an ISAX memory access
        uint64_t seq = 0;
    };

    struct AlwaysUnit
    {
        const hwgen::GeneratedModule *module = nullptr;
        std::unique_ptr<rtl::Simulator> sim;
    };

    // Stage processing (called once per cycle, last stage first).
    void processWriteback();
    void processMemory();
    void processExecute();
    void processDecode();
    void processFetch();
    void advancePipeline();
    void runAlwaysUnits();
    void stepIsaxExecs(bool force_hold_attached);
    void stepOneExec(const std::shared_ptr<IsaxExec> &exec, Slot *slot,
                     bool force_hold);

    bool readOperand(unsigned reg_index, uint64_t reader_seq,
                     uint32_t &value) const;
    IsaxInstrUnit *matchIsax(uint32_t word) const;

    void sampleIsaxOutputs(Slot *slot, IsaxExec &exec);
    void applyRedirect(uint32_t new_pc, uint64_t younger_than_seq);

    unsigned stageOf(const Slot *slot) const;
    bool slotWillAdvance(unsigned stage) const;
    const std::vector<std::string> &customRegsReadOrWritten(
        const Slot &slot) const;
    bool customRegHasPendingWrite(const std::string &reg,
                                  uint64_t reader_seq) const;
    /** Simulator for a generated module, honoring the process-wide
     * engine default. The compiled engine shares one bytecode program
     * per module across all dynamic executions. */
    std::unique_ptr<rtl::Simulator> makeSim(
        const hwgen::GeneratedModule &mod);

    // ------------------------------------------------------------------
    const scaiev::Datasheet &sheet_;
    CoreTiming timing_;

    unsigned numStages_;
    bool overlap_; ///< false models FSM sequencing (PicoRV32)
    unsigned decodeStage_;
    unsigned execStage_;
    unsigned memStage_;
    unsigned wbStage_;

    ArchState state_;
    Memory memory_;
    uint32_t fetchPc_ = 0;
    unsigned fetchWait_ = 0;
    bool fetchedThisCycle_ = false;
    uint32_t fetchedPc_ = 0;
    uint64_t nextSeq_ = 1;
    uint64_t cycle_ = 0;
    uint64_t retired_ = 0;
    uint64_t stallCycles_ = 0;
    bool halted_ = false;
    /** Extra full-pipeline stall cycles (tightly-coupled / commit). */
    unsigned globalStall_ = 0;

    std::vector<Slot> slots_; ///< index = stage
    std::vector<std::shared_ptr<IsaxExec>> detachedExecs_;
    /** GPR scoreboard for decoupled writes: reg -> owning seq. */
    std::map<unsigned, uint64_t> rdScoreboard_;

    std::vector<std::shared_ptr<IsaxBundle>> bundles_;
    std::vector<AlwaysUnit> alwaysUnits_;
    std::map<std::string, std::vector<ApInt>> customRegs_;

    /** Compiled simulation programs, one per generated module. */
    std::map<const hwgen::GeneratedModule *,
             std::shared_ptr<const rtl::simjit::Program>>
        programs_;
    /** Custom registers touched per ISAX instruction (attach-time). */
    std::map<const IsaxInstrUnit *, std::vector<std::string>>
        unitCustomRegs_;
    /** Direct-mapped fetch decode cache: decode() + matchIsax() are
     * pure functions of the instruction word and the attached
     * bundles, so memoize them (invalidated by attachIsax). */
    struct DecodeCacheEntry
    {
        uint32_t word = 0;
        bool valid = false;
        DecodedInstr d;
        IsaxInstrUnit *isax = nullptr;
    };
    std::array<DecodeCacheEntry, 256> decodeCache_{};
    /** Reusable scratch for WrCustRegAddr/WrCustRegData pairing,
     * avoiding a per-cycle map allocation. */
    std::vector<std::pair<const std::string *, uint64_t>>
        pendingIdxScratch_;

    // Per-cycle stall flags computed during stage processing.
    bool stallFetch_ = false;
    bool stallDecode_ = false;
    bool stallExecute_ = false;
    bool stallMemory_ = false;
};

} // namespace cores
} // namespace longnail

#endif // LONGNAIL_CORES_CORE_HH
