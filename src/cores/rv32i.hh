/**
 * @file
 * RV32I decoder and instruction-set simulator.
 *
 * The ISS is the golden architectural model: the cycle-level core
 * models must produce the same final state. ISAX instructions are
 * handled through a callback so the golden model can delegate their
 * semantics to the LIL interpreter.
 */

#ifndef LONGNAIL_CORES_RV32I_HH
#define LONGNAIL_CORES_RV32I_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cores/memory.hh"

namespace longnail {
namespace cores {

/** Instruction classes after decoding. */
enum class Opcode
{
    Lui,
    Auipc,
    Jal,
    Jalr,
    Branch,
    Load,
    Store,
    AluImm,
    AluReg,
    Fence,  ///< treated as a no-op
    System, ///< ECALL/EBREAK halt the simulation
    Custom, ///< matches no base instruction (candidate ISAX)
};

/** A decoded RV32I instruction. */
struct DecodedInstr
{
    Opcode opcode = Opcode::Custom;
    uint32_t raw = 0;
    unsigned rd = 0;
    unsigned rs1 = 0;
    unsigned rs2 = 0;
    unsigned funct3 = 0;
    unsigned funct7 = 0;
    int32_t imm = 0;

    bool isBranchOrJump() const
    {
        return opcode == Opcode::Jal || opcode == Opcode::Jalr ||
               opcode == Opcode::Branch;
    }
    bool
    writesRd() const
    {
        switch (opcode) {
          case Opcode::Branch:
          case Opcode::Store:
          case Opcode::Fence:
          case Opcode::System:
          case Opcode::Custom:
            return false;
          default:
            return rd != 0;
        }
    }
    bool
    readsRs1() const
    {
        switch (opcode) {
          case Opcode::Lui:
          case Opcode::Auipc:
          case Opcode::Jal:
          case Opcode::Fence:
          case Opcode::System:
            return false;
          default:
            return true;
        }
    }
    bool
    readsRs2() const
    {
        return opcode == Opcode::Branch || opcode == Opcode::Store ||
               opcode == Opcode::AluReg;
    }
};

/** Decode one instruction word. */
DecodedInstr decode(uint32_t word);

/**
 * One base-ISA encoding pattern in mask/match form: a word w is this
 * instruction iff (w & mask) == match. Used by the encoding lint to
 * detect ISAX encodings colliding with the RV32I base.
 */
struct EncodingPattern
{
    const char *name;
    uint32_t mask;
    uint32_t match;
};

/** Mask/match patterns of every RV32I base instruction. */
const std::vector<EncodingPattern> &rv32iBasePatterns();

/** Architectural state of an RV32I hart. */
struct ArchState
{
    std::array<uint32_t, 32> regs{};
    uint32_t pc = 0;

    uint32_t reg(unsigned i) const { return i == 0 ? 0 : regs[i]; }
    void
    setReg(unsigned i, uint32_t value)
    {
        if (i != 0)
            regs[i] = value;
    }
};

/** Outcome of one ISS step. */
enum class StepResult
{
    Ok,
    Halted,   ///< ECALL/EBREAK
    IllegalInstruction,
};

/**
 * Execute the ALU/compare portion of an instruction (shared between
 * the ISS and the pipeline models).
 */
uint32_t executeAlu(const DecodedInstr &instr, uint32_t rs1_value,
                    uint32_t rs2_value, uint32_t pc);

/** True if the branch condition holds. */
bool branchTaken(const DecodedInstr &instr, uint32_t rs1_value,
                 uint32_t rs2_value);

class Iss
{
  public:
    /**
     * Callback for instructions the base ISA does not recognize.
     * Returns true if the ISAX handled the instruction (and updated
     * state/memory itself, including the PC).
     */
    using CustomHandler = std::function<bool(const DecodedInstr &,
                                             ArchState &, Memory &)>;
    /** Called after every step (models always-blocks). */
    using AlwaysHook = std::function<void(ArchState &, Memory &)>;

    Iss(ArchState &state, Memory &memory)
        : state_(state), memory_(memory)
    {}

    void setCustomHandler(CustomHandler handler)
    {
        custom_ = std::move(handler);
    }
    void setAlwaysHook(AlwaysHook hook) { always_ = std::move(hook); }

    /** Fetch, decode, execute one instruction. */
    StepResult step();

    /** Run until halt/illegal or @p max_steps. @return steps taken. */
    uint64_t run(uint64_t max_steps = 1'000'000);

    StepResult lastResult() const { return lastResult_; }

  private:
    ArchState &state_;
    Memory &memory_;
    CustomHandler custom_;
    AlwaysHook always_;
    StepResult lastResult_ = StepResult::Ok;
};

} // namespace cores
} // namespace longnail

#endif // LONGNAIL_CORES_RV32I_HH
