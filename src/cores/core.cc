#include "cores/core.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "support/logging.hh"

namespace longnail {
namespace cores {

using hwgen::GeneratedModule;
using hwgen::InterfacePort;
using scaiev::SubInterface;

Core::Core(const scaiev::Datasheet &sheet, CoreTiming timing)
    : sheet_(sheet), timing_(timing)
{
    numStages_ = sheet.numStages;
    overlap_ = sheet.pipelined;
    decodeStage_ = std::min(1u, numStages_ - 1);
    execStage_ = sheet.operandStage;
    memStage_ = sheet.memoryStage;
    wbStage_ = numStages_ - 1;
    slots_.resize(numStages_);
}

std::unique_ptr<rtl::Simulator>
Core::makeSim(const GeneratedModule &mod)
{
    if (rtl::defaultSimEngine() == rtl::SimEngine::Compiled) {
        auto &program = programs_[&mod];
        if (!program)
            program = rtl::simjit::Program::compile(mod.module);
        return std::make_unique<rtl::Simulator>(mod.module, program);
    }
    return std::make_unique<rtl::Simulator>(mod.module,
                                            rtl::SimEngine::Interp);
}

void
Core::attachIsax(std::shared_ptr<IsaxBundle> bundle)
{
    for (const auto &reg : bundle->customRegs) {
        auto &storage = customRegs_[reg.name];
        storage.assign(reg.elements, ApInt(reg.width, 0));
    }
    for (const auto &always : bundle->alwaysBlocks) {
        AlwaysUnit unit;
        unit.module = &always;
        unit.sim = makeSim(always);
        unit.sim->reset();
        alwaysUnits_.push_back(std::move(unit));
    }
    // Attach-time precomputation for the per-cycle hot paths: the
    // custom registers each instruction touches, and (on the compiled
    // engine) one shared bytecode program per module.
    for (auto &unit : bundle->instructions) {
        auto &regs = unitCustomRegs_[&unit];
        regs.clear();
        for (const auto &port : unit.module.ports) {
            if ((port.iface == SubInterface::RdCustReg ||
                 port.iface == SubInterface::WrCustRegData) &&
                std::find(regs.begin(), regs.end(), port.reg) ==
                    regs.end())
                regs.push_back(port.reg);
        }
        if (rtl::defaultSimEngine() == rtl::SimEngine::Compiled) {
            auto &program = programs_[&unit.module];
            if (!program)
                program =
                    rtl::simjit::Program::compile(unit.module.module);
        }
    }
    // New instructions can change what a fetched word decodes to.
    for (auto &entry : decodeCache_)
        entry.valid = false;
    bundles_.push_back(std::move(bundle));
}

void
Core::loadProgram(const std::vector<uint32_t> &words, uint32_t base)
{
    for (size_t i = 0; i < words.size(); ++i)
        memory_.writeWord(base + uint32_t(i) * 4, words[i]);
    fetchPc_ = base;
    state_.pc = base;
}

const ApInt &
Core::customReg(const std::string &name, uint64_t index) const
{
    auto it = customRegs_.find(name);
    if (it == customRegs_.end())
        LN_PANIC("no custom register '", name, "'");
    return it->second.at(index);
}

void
Core::setCustomReg(const std::string &name, uint64_t index,
                   const ApInt &value)
{
    auto it = customRegs_.find(name);
    if (it == customRegs_.end())
        LN_PANIC("no custom register '", name, "'");
    ApInt &slot = it->second.at(index);
    slot = value.zextOrTrunc(slot.width());
}

IsaxInstrUnit *
Core::matchIsax(uint32_t word) const
{
    // Static arbitration priority: first attached, first matched
    // (Sec. 3.3).
    for (const auto &bundle : bundles_) {
        for (auto &unit :
             const_cast<IsaxBundle &>(*bundle).instructions) {
            if ((word & unit.mask) == unit.match)
                return &unit;
        }
    }
    return nullptr;
}

unsigned
Core::stageOf(const Slot *slot) const
{
    for (unsigned s = 0; s < slots_.size(); ++s)
        if (&slots_[s] == slot)
            return s;
    LN_PANIC("slot not in pipeline");
}

bool
Core::readOperand(unsigned reg_index, uint64_t reader_seq,
                  uint32_t &value) const
{
    if (reg_index == 0) {
        value = 0;
        return true;
    }
    // Decoupled scoreboard: the register is owned by an ISAX still
    // computing its result.
    auto owned = rdScoreboard_.find(reg_index);
    if (owned != rdScoreboard_.end())
        return false;
    // Nearest older in-flight producer (ascending stages = most
    // recently issued first).
    for (unsigned s = decodeStage_ + 1; s < slots_.size(); ++s) {
        const Slot &slot = slots_[s];
        if (!slot.valid || slot.seq >= reader_seq)
            continue;
        if (slot.isax && slot.isax->rd == reg_index) {
            // In-pipeline ISAX results forward as soon as the module
            // delivers them; the register file commit happens at WB.
            IsaxExec &exec = *slot.isax;
            if (exec.resultReady) {
                value = exec.resultValue;
                return true;
            }
            if (exec.rdPending && !exec.finished)
                return false; // stall until the module delivers
            continue; // predicated off / no WrRD: not a producer
        }
        if (!(slot.d.writesRd() && slot.d.rd == reg_index))
            continue;
        if (slot.resultValid) {
            value = slot.result;
            return true;
        }
        return false; // stall until the producer computes
    }
    value = state_.reg(reg_index);
    return true;
}

void
Core::applyRedirect(uint32_t new_pc, uint64_t younger_than_seq)
{
    fetchPc_ = new_pc;
    fetchWait_ = 0;
    for (auto &slot : slots_) {
        if (slot.valid && slot.seq > younger_than_seq) {
            if (slot.isax)
                slot.isax->finished = true; // squashed
            slot = Slot{};
        }
    }
}

// ---------------------------------------------------------------------------
// Stage processing
// ---------------------------------------------------------------------------

void
Core::processWriteback()
{
    Slot &slot = slots_[wbStage_];
    if (!slot.valid)
        return;
    if (slot.isHalt) {
        halted_ = true;
        ++retired_;
        slot = Slot{};
        return;
    }
    if (slot.isax) {
        IsaxExec &exec = *slot.isax;
        // Commit an in-pipeline result in program order.
        if (exec.resultReady) {
            state_.setReg(exec.rd, exec.resultValue);
            exec.resultReady = false;
        }
        // Decide how the remaining module stages execute.
        const GeneratedModule &mod = exec.unit->module;
        if (!exec.finished && exec.stage <= mod.lastStage) {
            bool spawn_remaining = false;
            for (const auto &port : mod.ports)
                if (port.stage > int(wbStage_) && port.fromSpawn)
                    spawn_remaining = true;
            // Either way the register stays owned by the ISAX until
            // its WrRD fires; readers stall via the scoreboard.
            if (exec.rdPending && exec.rd != 0)
                rdScoreboard_[exec.rd] = exec.seq;
            if (spawn_remaining) {
                // Decoupled execution: the instruction retires, the
                // module keeps running in parallel.
                exec.decoupled = true;
            } else {
                // Tightly-coupled: stall the whole core until the
                // module delivers its last result.
                globalStall_ = unsigned(mod.lastStage - exec.stage);
            }
            detachedExecs_.push_back(slot.isax);
        }
        ++retired_;
        slot = Slot{};
        return;
    }
    // Base instruction commit.
    if (slot.d.writesRd() && slot.resultValid)
        state_.setReg(slot.d.rd, slot.result);
    state_.pc = slot.pc + 4;
    ++retired_;
    slot = Slot{};
}

void
Core::processMemory()
{
    Slot &slot = slots_[memStage_];
    if (!slot.valid || slot.isax || slot.memDone)
        return;
    if (slot.d.opcode != Opcode::Load && slot.d.opcode != Opcode::Store) {
        slot.memDone = true;
        return;
    }
    if (!slot.addrValid)
        return; // the address has not been computed yet
    if (slot.waitCycles == 0) {
        unsigned waits = slot.d.opcode == Opcode::Load
                             ? timing_.bus.loadWaitStates
                             : timing_.bus.storeWaitStates;
        slot.waitCycles = waits + 1;
    }
    --slot.waitCycles;
    if (slot.waitCycles > 0)
        return; // still waiting; occupancy stalls upstream
    uint32_t addr = slot.result; // ALU computed the address
    if (slot.d.opcode == Opcode::Load) {
        uint32_t value = 0;
        switch (slot.d.funct3) {
          case 0x0:
            value = uint32_t(int32_t(int8_t(memory_.readByte(addr))));
            break;
          case 0x1:
            value = uint32_t(int32_t(int16_t(memory_.readHalf(addr))));
            break;
          case 0x2: value = memory_.readWord(addr); break;
          case 0x4: value = memory_.readByte(addr); break;
          case 0x5: value = memory_.readHalf(addr); break;
          default: break;
        }
        slot.result = value;
        slot.resultValid = true;
    } else {
        uint32_t value = slot.rs2v;
        switch (slot.d.funct3) {
          case 0x0: memory_.writeByte(addr, uint8_t(value)); break;
          case 0x1: memory_.writeHalf(addr, uint16_t(value)); break;
          case 0x2: memory_.writeWord(addr, value); break;
          default: break;
        }
    }
    slot.memDone = true;
}

void
Core::processExecute()
{
    Slot &slot = slots_[execStage_];
    if (!slot.valid || slot.isax || slot.resultValid || !slot.operandsRead)
        return;
    if (slot.d.opcode == Opcode::System || slot.d.opcode == Opcode::Fence)
        return;
    slot.result = executeAlu(slot.d, slot.rs1v, slot.rs2v, slot.pc);
    // Loads/stores: 'result' is the address until MEM replaces it.
    slot.addrValid = true;
    slot.resultValid = slot.d.opcode != Opcode::Load;
    // Control flow resolves here.
    if (slot.d.opcode == Opcode::Jal) {
        applyRedirect(slot.pc + uint32_t(slot.d.imm), slot.seq);
    } else if (slot.d.opcode == Opcode::Jalr) {
        applyRedirect((slot.rs1v + uint32_t(slot.d.imm)) & ~1u,
                      slot.seq);
    } else if (slot.d.opcode == Opcode::Branch &&
               branchTaken(slot.d, slot.rs1v, slot.rs2v)) {
        applyRedirect(slot.pc + uint32_t(slot.d.imm), slot.seq);
    }
}

void
Core::processDecode()
{
    Slot &slot = slots_[decodeStage_];
    stallDecode_ = false;
    if (!slot.valid || slot.operandsRead)
        return;

    // Structural hazard: only one execution per ISAX module at a time.
    if (slot.isax) {
        for (unsigned s = decodeStage_ + 1; s < slots_.size(); ++s) {
            const Slot &older = slots_[s];
            if (older.valid && older.isax &&
                older.isax->unit == slot.isax->unit &&
                !older.isax->finished) {
                stallDecode_ = true;
                return;
            }
        }
        for (const auto &exec : detachedExecs_) {
            if (!exec->finished && exec->unit == slot.isax->unit) {
                stallDecode_ = true;
                return;
            }
        }
    }

    // Register operands (with forwarding / stall).
    bool needs_rs1 = slot.isax
                         ? slot.isax->unit->module.findPort(
                               SubInterface::RdRS1) != nullptr
                         : slot.d.readsRs1();
    bool needs_rs2 = slot.isax
                         ? slot.isax->unit->module.findPort(
                               SubInterface::RdRS2) != nullptr
                         : slot.d.readsRs2();
    if (needs_rs1 && !readOperand(slot.d.rs1, slot.seq, slot.rs1v)) {
        stallDecode_ = true;
        return;
    }
    if (needs_rs2 && !readOperand(slot.d.rs2, slot.seq, slot.rs2v)) {
        stallDecode_ = true;
        return;
    }
    // WAW with an ISAX write in flight (either already detached and
    // tracked by the scoreboard, or still moving through the
    // pipeline).
    if ((slot.d.writesRd() || slot.isax) && slot.d.rd != 0) {
        auto owned = rdScoreboard_.find(slot.d.rd);
        if (owned != rdScoreboard_.end()) {
            stallDecode_ = true;
            return;
        }
        for (unsigned s = decodeStage_ + 1; s < slots_.size(); ++s) {
            const Slot &older = slots_[s];
            if (older.valid && older.seq < slot.seq && older.isax &&
                !older.isax->finished && older.isax->rdPending &&
                older.isax->rd == slot.d.rd) {
                stallDecode_ = true;
                return;
            }
        }
    }
    // Custom-register RAW/WAW against older unfinished ISAXes writing
    // the same register.
    if (slot.isax) {
        for (const std::string &reg : customRegsReadOrWritten(slot)) {
            if (customRegHasPendingWrite(reg, slot.seq)) {
                stallDecode_ = true;
                return;
            }
        }
    }
    slot.operandsRead = true;
}

const std::vector<std::string> &
Core::customRegsReadOrWritten(const Slot &slot) const
{
    static const std::vector<std::string> empty;
    if (!slot.isax)
        return empty;
    auto it = unitCustomRegs_.find(slot.isax->unit);
    return it != unitCustomRegs_.end() ? it->second : empty;
}

bool
Core::customRegHasPendingWrite(const std::string &reg,
                               uint64_t reader_seq) const
{
    auto pending = [&](const IsaxExec &exec) {
        if (exec.finished || exec.seq >= reader_seq)
            return false;
        for (const auto &port : exec.unit->module.ports) {
            if (port.iface == SubInterface::WrCustRegData &&
                port.reg == reg && port.stage >= exec.stage)
                return true;
        }
        return false;
    };
    for (unsigned s = 0; s < slots_.size(); ++s)
        if (slots_[s].valid && slots_[s].isax && pending(*slots_[s].isax))
            return true;
    for (const auto &exec : detachedExecs_)
        if (pending(*exec))
            return true;
    return false;
}

void
Core::processFetch()
{
    stallFetch_ = false;
    if (halted_)
        return;
    if (slots_[0].valid)
        return; // fetch stage occupied
    if (fetchWait_ > 0) {
        --fetchWait_;
        return;
    }
    if (!overlap_) {
        // FSM sequencing: one instruction at a time.
        for (const auto &slot : slots_)
            if (slot.valid)
                return;
    }
    uint32_t word = memory_.readWord(fetchPc_);
    DecodeCacheEntry &cached = decodeCache_[(word >> 2) & 0xff];
    if (!cached.valid || cached.word != word) {
        cached.word = word;
        cached.d = decode(word);
        cached.isax = cached.d.opcode == Opcode::Custom
                          ? matchIsax(word)
                          : nullptr;
        cached.valid = true;
    }
    Slot slot;
    slot.valid = true;
    slot.seq = nextSeq_++;
    slot.pc = fetchPc_;
    slot.instr = word;
    slot.d = cached.d;
    slot.isHalt = slot.d.opcode == Opcode::System;
    if (slot.d.opcode == Opcode::Custom) {
        IsaxInstrUnit *unit = cached.isax;
        if (unit) {
            auto exec = std::make_shared<IsaxExec>();
            exec->unit = unit;
            exec->sim = makeSim(unit->module);
            exec->sim->reset();
            exec->stage = 0;
            exec->seq = slot.seq;
            const InterfacePort *wr =
                unit->module.findPort(SubInterface::WrRD);
            exec->rdPending = wr != nullptr;
            exec->rd = slot.d.rd;
            slot.isax = exec;
        }
        // Unmatched custom opcodes trap as illegal: halt.
        if (!slot.isax)
            slot.isHalt = true;
    }
    slots_[0] = std::move(slot);
    fetchedThisCycle_ = true;
    fetchedPc_ = slots_[0].pc;
    fetchPc_ += 4;
    fetchWait_ = timing_.fetchWaitStates;
}

// ---------------------------------------------------------------------------
// ISAX module driving
// ---------------------------------------------------------------------------

void
Core::stepOneExec(const std::shared_ptr<IsaxExec> &exec_ptr, Slot *slot,
                  bool force_hold)
{
    IsaxExec &exec = *exec_ptr;
    const GeneratedModule &mod = exec.unit->module;
    rtl::Simulator &sim = *exec.sim;

    bool hold;
    if (slot) {
        unsigned s = stageOf(slot);
        if (exec.stage != int(s)) {
            // The module ran ahead while the slot stalled at fetch
            // time; wait for the slot to catch up.
            hold = true;
        } else {
            hold = force_hold || !slotWillAdvance(s);
        }
    } else {
        hold = false;
    }
    if (exec.memWait > 0) {
        --exec.memWait;
        hold = true;
    }
    exec.stalledThisCycle = hold;

    // Drive stall inputs uniformly (one instruction per module).
    for (const std::string &name : mod.stallInputs)
        if (!name.empty())
            sim.setInput(name, uint64_t(hold ? 1 : 0));

    // Drive data inputs for ports in the current module stage.
    for (const auto &port : mod.ports) {
        if (port.stage != exec.stage)
            continue;
        switch (port.iface) {
          case SubInterface::RdInstr:
            sim.setInput(port.dataPort,
                         uint64_t(slot ? slot->instr : 0));
            break;
          case SubInterface::RdRS1:
            sim.setInput(port.dataPort,
                         uint64_t(slot ? slot->rs1v : 0));
            break;
          case SubInterface::RdRS2:
            sim.setInput(port.dataPort,
                         uint64_t(slot ? slot->rs2v : 0));
            break;
          case SubInterface::RdPC:
            sim.setInput(port.dataPort,
                         uint64_t(slot ? slot->pc : 0));
            break;
          default:
            break;
        }
    }
    sim.evalComb();
    // Custom-register reads resolve combinationally.
    for (const auto &port : mod.ports) {
        if (port.iface != SubInterface::RdCustReg ||
            port.stage != exec.stage)
            continue;
        auto &storage = customRegs_.at(port.reg);
        uint64_t index = 0;
        if (!port.addrPort.empty())
            index = sim.outputU64(port.addrPort);
        sim.setInput(port.dataPort, index < storage.size()
                                        ? storage[index]
                                        : ApInt(32, 0));
    }
    sim.evalComb();

    if (!hold) {
        sampleIsaxOutputs(slot, exec);
        sim.clockEdge();
        ++exec.stage;
        if (exec.stage > mod.lastStage)
            exec.finished = true;
    }
}

void
Core::stepIsaxExecs(bool force_hold_attached)
{
    for (auto &slot : slots_)
        if (slot.valid && slot.isax && !slot.isax->finished)
            stepOneExec(slot.isax, &slot, force_hold_attached);
    for (auto &exec : detachedExecs_)
        if (!exec->finished)
            stepOneExec(exec, nullptr, false);
    std::erase_if(detachedExecs_,
                  [](const std::shared_ptr<IsaxExec> &exec) {
                      return exec->finished;
                  });
}

void
Core::sampleIsaxOutputs(Slot *slot, IsaxExec &exec)
{
    const GeneratedModule &mod = exec.unit->module;
    rtl::Simulator &sim = *exec.sim;
    pendingIdxScratch_.clear();

    for (const auto &port : mod.ports) {
        if (port.stage != exec.stage)
            continue;
        switch (port.iface) {
          case SubInterface::RdMem: {
            if (sim.outputU64(port.validPort) == 0)
                break;
            uint32_t addr = uint32_t(sim.outputU64(port.addrPort));
            uint32_t word = memory_.readWord(addr);
            sim.setInput(port.dataPort, uint64_t(word));
            if (timing_.bus.loadWaitStates > 0)
                exec.memWait = timing_.bus.loadWaitStates;
            break;
          }
          case SubInterface::WrMem: {
            if (sim.outputU64(port.validPort) == 0)
                break;
            uint32_t addr = uint32_t(sim.outputU64(port.addrPort));
            uint32_t value = uint32_t(sim.outputU64(port.dataPort));
            memory_.writeWord(addr, value);
            if (timing_.bus.storeWaitStates > 0)
                exec.memWait = timing_.bus.storeWaitStates;
            break;
          }
          case SubInterface::WrRD: {
            bool enabled = sim.outputU64(port.validPort) != 0;
            if (enabled) {
                uint32_t value =
                    uint32_t(sim.outputU64(port.dataPort));
                if (slot) {
                    // In-pipeline: forwardable immediately, committed
                    // to the register file in program order at WB.
                    exec.resultReady = true;
                    exec.resultValue = value;
                } else {
                    state_.setReg(exec.rd, value);
                }
            }
            exec.rdPending = false;
            // Release the scoreboard entry if this execution owns it.
            auto owned = rdScoreboard_.find(exec.rd);
            if (owned != rdScoreboard_.end() &&
                owned->second == exec.seq)
                rdScoreboard_.erase(owned);
            if (enabled && exec.decoupled) {
                // Sec. 3.2: the base pipeline is stalled for one cycle
                // to avoid write-back conflicts.
                globalStall_ += 1;
            }
            break;
          }
          case SubInterface::WrPC: {
            if (sim.outputU64(port.validPort) == 0)
                break;
            uint32_t target = uint32_t(sim.outputU64(port.dataPort));
            applyRedirect(target, exec.seq);
            break;
          }
          case SubInterface::WrCustRegAddr:
            pendingIdxScratch_.emplace_back(
                &port.reg, port.addrPort.empty()
                               ? 0
                               : sim.outputU64(port.addrPort));
            break;
          case SubInterface::WrCustRegData: {
            if (sim.outputU64(port.validPort) == 0)
                break;
            auto &storage = customRegs_.at(port.reg);
            uint64_t index = 0;
            for (const auto &[reg, idx] : pendingIdxScratch_)
                if (*reg == port.reg)
                    index = idx;
            if (index < storage.size())
                storage[index] = sim.output(port.dataPort)
                                     .zextOrTrunc(
                                         storage[index].width());
            break;
          }
          default:
            break;
        }
    }
    (void)slot;
}

void
Core::runAlwaysUnits()
{
    for (auto &unit : alwaysUnits_) {
        rtl::Simulator &sim = *unit.sim;
        for (const auto &port : unit.module->ports) {
            if (port.iface == SubInterface::RdPC) {
                // Gated by fetch-valid: the always-block sees each
                // fetched PC exactly once (cf. RdIValid in Table 1).
                uint32_t pc_value = fetchedThisCycle_ ? fetchedPc_
                                                      : 0xffffffffu;
                sim.setInput(port.dataPort, uint64_t(pc_value));
            }
        }
        sim.evalComb();
        for (const auto &port : unit.module->ports) {
            if (port.iface != SubInterface::RdCustReg)
                continue;
            auto &storage = customRegs_.at(port.reg);
            uint64_t index = 0;
            if (!port.addrPort.empty())
                index = sim.outputU64(port.addrPort);
            sim.setInput(port.dataPort, index < storage.size()
                                            ? storage[index]
                                            : ApInt(32, 0));
        }
        sim.evalComb();

        pendingIdxScratch_.clear();
        for (const auto &port : unit.module->ports) {
            switch (port.iface) {
              case SubInterface::WrPC:
                if (sim.outputU64(port.validPort) != 0) {
                    // Redirect the next fetch; the already fetched
                    // instruction proceeds (ZOL semantics).
                    fetchPc_ = uint32_t(sim.outputU64(port.dataPort));
                    fetchWait_ = 0;
                }
                break;
              case SubInterface::WrCustRegAddr:
                pendingIdxScratch_.emplace_back(
                    &port.reg, port.addrPort.empty()
                                   ? 0
                                   : sim.outputU64(port.addrPort));
                break;
              case SubInterface::WrCustRegData: {
                if (sim.outputU64(port.validPort) == 0)
                    break;
                auto &storage = customRegs_.at(port.reg);
                uint64_t index = 0;
                for (const auto &[reg, idx] : pendingIdxScratch_)
                    if (*reg == port.reg)
                        index = idx;
                if (index < storage.size())
                    storage[index] =
                        sim.output(port.dataPort)
                            .zextOrTrunc(storage[index].width());
                break;
              }
              default:
                break;
            }
        }
        sim.clockEdge();
    }
}

// ---------------------------------------------------------------------------
// Cycle loop
// ---------------------------------------------------------------------------

bool
Core::slotWillAdvance(unsigned stage) const
{
    const Slot &slot = slots_[stage];
    if (!slot.valid)
        return false;
    if (stage == wbStage_)
        return true; // retires
    // Hold conditions.
    if (stage == decodeStage_ && !slot.operandsRead)
        return false;
    if (stage == memStage_ && !slot.isax && !slot.memDone)
        return false;
    if (slot.isax && slot.isax->memWait > 0)
        return false;
    return !slots_[stage + 1].valid || slotWillAdvance(stage + 1);
}

void
Core::advancePipeline()
{
    // Writeback already retired its slot. Move the rest upward.
    for (int s = int(wbStage_) - 1; s >= 0; --s) {
        Slot &slot = slots_[s];
        if (!slot.valid)
            continue;
        if (s == int(decodeStage_) && !slot.operandsRead)
            continue;
        if (s == int(memStage_) && !slot.isax && !slot.memDone)
            continue;
        if (slot.isax && slot.isax->memWait > 0)
            continue;
        if (slots_[s + 1].valid)
            continue;
        slots_[s + 1] = std::move(slot);
        slot = Slot{};
        // Instructions passing through decode before decodeStage_?
        // (Not possible: decodeStage_ <= 1.)
    }
}

bool
Core::stepCycle()
{
    if (halted_)
        return false;
    ++cycle_;
    fetchedThisCycle_ = false;

    if (globalStall_ > 0) {
        --globalStall_;
        ++stallCycles_;
        stepIsaxExecs(/*force_hold_attached=*/true);
        runAlwaysUnits();
        return !halted_;
    }

    // Fetch first: the fetched instruction occupies the fetch stage
    // during this cycle and moves into decode at the cycle's end.
    processFetch();

    processWriteback();
    processExecute();
    processMemory();
    processDecode();
    // Merged decode/execute/memory stages (3-stage Piccolo) need the
    // younger processing order within the same cycle.
    if (execStage_ == decodeStage_) {
        processExecute();
        processMemory();
    }

    // ISAX modules advance in lock-step with their slots; evaluate
    // before moving the slots so stage-s inputs are sampled in stage s.
    stepIsaxExecs(/*force_hold_attached=*/false);

    if (stallFetch_ || stallDecode_)
        ++stallCycles_;
    advancePipeline();
    runAlwaysUnits();
    return !halted_;
}

RunStats
Core::run(uint64_t max_cycles)
{
    uint64_t retired_before = retired_;
    uint64_t stalls_before = stallCycles_;
    RunStats stats;
    while (!halted_ && stats.cycles < max_cycles) {
        stepCycle();
        ++stats.cycles;
    }
    // Drain: decoupled/tightly-coupled executions still in flight
    // commit their results even though the core has halted (their
    // architectural effects precede the halting instruction in
    // program order).
    uint64_t drain_budget = 100000;
    while (!detachedExecs_.empty() && drain_budget-- > 0) {
        stepIsaxExecs(/*force_hold_attached=*/true);
        ++stats.cycles;
    }
    stats.instructions = retired_;
    stats.stallCycles = stallCycles_;
    stats.halted = halted_;
    obs::count("core.cycles", stats.cycles);
    obs::count("core.instructions_retired", retired_ - retired_before);
    obs::count("core.stall_cycles", stallCycles_ - stalls_before);
    return stats;
}

} // namespace cores
} // namespace longnail
