/**
 * @file
 * Content hashing for the compilation cache (docs/batch-compilation.md).
 *
 * A streaming SHA-256 implementation (FIPS 180-4) with no external
 * dependencies. The artifact cache keys every compile by the digest of
 * its complete input closure -- CoreDSL source, virtual datasheet,
 * technology library mode, CompileOptions and the compiler version --
 * so two compiles share a cache entry exactly when they are guaranteed
 * to produce byte-identical artifacts.
 */

#ifndef LONGNAIL_SUPPORT_HASH_HH
#define LONGNAIL_SUPPORT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace longnail {
namespace hash {

/** Incremental SHA-256 (FIPS 180-4). */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const void *data, size_t len);
    void update(const std::string &s) { update(s.data(), s.size()); }

    /**
     * Absorb one length-delimited field: the field's size followed by
     * its bytes. Prevents ambiguity between adjacent fields ("ab"+"c"
     * vs "a"+"bc") when hashing a record of strings.
     */
    void updateField(const std::string &s);

    /** Finalize and return the digest as 64 lowercase hex chars.
     * The object must not be updated afterwards. */
    std::string hexDigest();

  private:
    void processBlock(const uint8_t *block);

    uint32_t state_[8];
    uint64_t totalBytes_ = 0;
    uint8_t buffer_[64];
    size_t bufferLen_ = 0;
};

/** One-shot convenience: hex SHA-256 of @p data. */
std::string sha256Hex(const std::string &data);

} // namespace hash
} // namespace longnail

#endif // LONGNAIL_SUPPORT_HASH_HH
