#include "support/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace longnail {
namespace json {

namespace {

/** Depth cap: hostile deeply nested documents must not overflow the
 * recursive-descent stack. */
constexpr int maxDepth = 64;

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<Value>
    run(std::string *error)
    {
        std::optional<Value> v = parseValue(0);
        if (v) {
            skipWs();
            if (pos_ != text_.size())
                v = fail("trailing characters");
        }
        if (!v && error)
            *error = error_ + " at byte " + std::to_string(errorPos_);
        return v;
    }

  private:
    std::optional<Value>
    fail(const std::string &what)
    {
        // Keep the first (innermost) error.
        if (error_.empty()) {
            error_ = what;
            errorPos_ = pos_;
        }
        return std::nullopt;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    std::optional<Value>
    parseValue(int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case 'n':
            if (literal("null"))
                return Value();
            return fail("bad literal");
        case 't':
            if (literal("true"))
                return Value(true);
            return fail("bad literal");
        case 'f':
            if (literal("false"))
                return Value(false);
            return fail("bad literal");
        case '"':
            return parseString();
        case '[':
            return parseArray(depth);
        case '{':
            return parseObject(depth);
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            return fail("unexpected character");
        }
    }

    std::optional<Value>
    parseNumber()
    {
        size_t start = pos_;
        if (consume('-')) {
        }
        if (pos_ >= text_.size() || !isdigit(unsigned(text_[pos_])))
            return fail("bad number");
        // JSON forbids leading zeros: "0" is fine, "01" is not.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            isdigit(unsigned(text_[pos_ + 1])))
            return fail("bad number");
        while (pos_ < text_.size() && isdigit(unsigned(text_[pos_])))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() ||
                !isdigit(unsigned(text_[pos_])))
                return fail("bad number");
            while (pos_ < text_.size() &&
                   isdigit(unsigned(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !isdigit(unsigned(text_[pos_])))
                return fail("bad number");
            while (pos_ < text_.size() &&
                   isdigit(unsigned(text_[pos_])))
                ++pos_;
        }
        std::string num = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double value = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size() || !std::isfinite(value))
            return fail("bad number");
        return Value(value);
    }

    std::optional<Value>
    parseString()
    {
        std::optional<std::string> s = parseRawString();
        if (!s)
            return std::nullopt;
        return Value(std::move(*s));
    }

    std::optional<std::string>
    parseRawString()
    {
        if (!consume('"')) {
            fail("expected string");
            return std::nullopt;
        }
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return std::nullopt;
            }
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("raw control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return std::nullopt;
            }
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size()) {
                        fail("bad \\u escape");
                        return std::nullopt;
                    }
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return std::nullopt;
                    }
                }
                // Encode the code point as UTF-8. Surrogate pairs are
                // passed through as two 3-byte sequences -- lossy for
                // astral-plane text but safe, and the protocol carries
                // ASCII compiler output in practice.
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xC0 | (code >> 6));
                    out += char(0x80 | (code & 0x3F));
                } else {
                    out += char(0xE0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3F));
                    out += char(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                --pos_;
                fail("bad escape");
                return std::nullopt;
            }
        }
    }

    std::optional<Value>
    parseArray(int depth)
    {
        consume('[');
        Value arr = Value::array();
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            std::optional<Value> item = parseValue(depth + 1);
            if (!item)
                return std::nullopt;
            arr.push(std::move(*item));
            skipWs();
            if (consume(']'))
                return arr;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    std::optional<Value>
    parseObject(int depth)
    {
        consume('{');
        Value obj = Value::object();
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            std::optional<std::string> key = parseRawString();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            std::optional<Value> value = parseValue(depth + 1);
            if (!value)
                return std::nullopt;
            obj.set(*key, std::move(*value));
            skipWs();
            if (consume('}'))
                return obj;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
    size_t errorPos_ = 0;
};

void
emitInto(const Value &v, std::string &out)
{
    switch (v.kind()) {
    case Value::Kind::Null:
        out += "null";
        break;
    case Value::Kind::Bool:
        out += v.boolean() ? "true" : "false";
        break;
    case Value::Kind::Number: {
        double d = v.number();
        // Exact integers emit without a fraction (stable, greppable).
        if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(d));
            out += buf;
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", d);
            out += buf;
        }
        break;
    }
    case Value::Kind::String:
        out += '"';
        out += escape(v.str());
        out += '"';
        break;
    case Value::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Value &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            emitInto(item, out);
        }
        out += ']';
        break;
    }
    case Value::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, value] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += escape(key);
            out += "\":";
            emitInto(value, out);
        }
        out += '}';
        break;
    }
    }
}

} // namespace

void
Value::set(const std::string &key, Value v)
{
    for (auto &[k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
Value::getString(const std::string &key, const std::string &dflt) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->str() : dflt;
}

double
Value::getNumber(const std::string &key, double dflt) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->number() : dflt;
}

bool
Value::getBool(const std::string &key, bool dflt) const
{
    const Value *v = find(key);
    return v && v->isBool() ? v->boolean() : dflt;
}

std::string
Value::emit() const
{
    std::string out;
    emitInto(*this, out);
    return out;
}

std::optional<Value>
parse(const std::string &text, std::string *error)
{
    return Parser(text).run(error);
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace json
} // namespace longnail
