/**
 * @file
 * A minimal YAML subset used for the Longnail <-> SCAIE-V metadata
 * exchange (virtual datasheets and configuration files, Figs. 8/9 of the
 * paper).
 *
 * Supported constructs: block mappings, block sequences, flow mappings
 * ({k: v, ...}), flow sequences ([a, b]), plain and double-quoted scalars,
 * '#' comments. Key order is preserved. This is intentionally not a
 * general YAML implementation.
 */

#ifndef LONGNAIL_SUPPORT_YAML_HH
#define LONGNAIL_SUPPORT_YAML_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace longnail {
namespace yaml {

/** A YAML node: scalar, sequence or (order-preserving) mapping. */
class Node
{
  public:
    enum class Kind { Scalar, Sequence, Mapping };

    Node() : kind_(Kind::Scalar) {}
    explicit Node(std::string scalar)
        : kind_(Kind::Scalar), scalar_(std::move(scalar))
    {}
    explicit Node(int64_t value) : Node(std::to_string(value)) {}

    static Node makeSequence() { Node n; n.kind_ = Kind::Sequence; return n; }
    static Node makeMapping() { Node n; n.kind_ = Kind::Mapping; return n; }

    Kind kind() const { return kind_; }
    bool isScalar() const { return kind_ == Kind::Scalar; }
    bool isSequence() const { return kind_ == Kind::Sequence; }
    bool isMapping() const { return kind_ == Kind::Mapping; }

    /** Scalar access. */
    const std::string &scalar() const;
    int64_t asInt() const;
    bool asBool() const;

    /** Sequence access. */
    const std::vector<Node> &items() const;
    void push(Node n);

    /** Mapping access. */
    const std::vector<std::pair<std::string, Node>> &entries() const;
    /** True if the mapping contains @p key. */
    bool has(const std::string &key) const;
    /** Lookup; panics when missing. Use has() to probe. */
    const Node &at(const std::string &key) const;
    /** Append or replace a key. */
    void set(const std::string &key, Node value);

    /** Serialize this node as a YAML document. */
    std::string emit() const;

    /** 1-based source line this node was parsed from; 0 when the node
     * was built programmatically. Carried into error messages so
     * malformed metadata files point at the offending line. */
    int sourceLine() const { return sourceLine_; }
    void setSourceLine(int line) { sourceLine_ = line; }

  private:
    void emitNode(std::string &out, int indent, bool in_flow) const;
    static bool needsQuotes(const std::string &s);
    std::string lineSuffix() const;

    Kind kind_;
    std::string scalar_;
    std::vector<Node> items_;
    std::vector<std::pair<std::string, Node>> entries_;
    int sourceLine_ = 0;
};

/**
 * Parse a YAML document.
 * @throws std::runtime_error on malformed input.
 */
Node parse(const std::string &text);

} // namespace yaml
} // namespace longnail

#endif // LONGNAIL_SUPPORT_YAML_HH
