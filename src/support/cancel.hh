/**
 * @file
 * Cooperative cancellation for long-running compiles.
 *
 * A CancelToken combines an explicit cancel flag (operator Ctrl-C,
 * server drain) with an optional wall-clock deadline (per-request
 * compile deadlines, docs/compile-server.md). The compile pipeline
 * polls it at phase boundaries via CompileOptions::cancel; a token
 * that reports cancelled makes the compile fail soft with LN3011
 * instead of running to completion.
 *
 * Checking is cheap (one relaxed atomic load, plus one clock read when
 * a deadline is set), so phase-boundary polling adds no measurable
 * cost to an uncancelled compile. All methods are thread-safe: the
 * requesting side cancels from a different thread (signal dispatch,
 * server drain, deadline reaper) than the compiling worker.
 */

#ifndef LONGNAIL_SUPPORT_CANCEL_HH
#define LONGNAIL_SUPPORT_CANCEL_HH

#include <atomic>
#include <chrono>

namespace longnail {

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation (idempotent; thread-safe). */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /** Arm a wall-clock deadline @p ms from now; ms <= 0 means the
     * token is already expired (useful for deterministic tests). */
    void
    setDeadlineAfterMs(long ms)
    {
        deadline_.store(
            (Clock::now() + std::chrono::milliseconds(ms < 0 ? 0 : ms))
                .time_since_epoch()
                .count(),
            std::memory_order_relaxed);
        hasDeadline_.store(true, std::memory_order_relaxed);
    }

    bool
    hasDeadline() const
    {
        return hasDeadline_.load(std::memory_order_relaxed);
    }

    /** True once cancelled or past the deadline. */
    bool
    stopRequested() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        return deadlineExpired();
    }

    /** True when the deadline (if any) has passed, independent of an
     * explicit cancel() -- distinguishes timeout from shutdown. */
    bool
    deadlineExpired() const
    {
        if (!hasDeadline_.load(std::memory_order_relaxed))
            return false;
        return Clock::now().time_since_epoch().count() >=
               deadline_.load(std::memory_order_relaxed);
    }

    /** Why stopRequested() is true ("deadline exceeded" wins so a
     * request that times out during drain reports the timeout). */
    const char *
    reason() const
    {
        if (deadlineExpired())
            return "deadline exceeded";
        return "cancelled";
    }

    /** Clear cancel flag and deadline (reusing a long-lived token,
     * e.g. between tests; not safe while a compile is polling it with
     * the expectation of stopping). */
    void
    reset()
    {
        cancelled_.store(false, std::memory_order_relaxed);
        hasDeadline_.store(false, std::memory_order_relaxed);
        deadline_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<bool> hasDeadline_{false};
    std::atomic<Clock::rep> deadline_{0};
};

} // namespace longnail

#endif // LONGNAIL_SUPPORT_CANCEL_HH
