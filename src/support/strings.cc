#include "support/strings.hh"

#include <cctype>

namespace longnail {

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

} // namespace longnail
