#include "support/socket.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace longnail {
namespace net {

namespace {

/**
 * Wait until @p fd is readable (or writable when @p for_write).
 * @return Ok when ready, Timeout on expiry or wake-fd activity, Error
 * on poll failure. EINTR retries with the remaining budget unless the
 * wake fd is armed (a termination signal must break the wait).
 */
IoStatus
waitReady(int fd, bool for_write, int timeout_ms, int wake_fd)
{
    for (;;) {
        struct pollfd fds[2];
        fds[0].fd = fd;
        fds[0].events = for_write ? POLLOUT : POLLIN;
        fds[0].revents = 0;
        nfds_t nfds = 1;
        if (wake_fd >= 0) {
            fds[1].fd = wake_fd;
            fds[1].events = POLLIN;
            fds[1].revents = 0;
            nfds = 2;
        }
        int rc = poll(fds, nfds, timeout_ms);
        if (rc == 0)
            return IoStatus::Timeout;
        if (rc < 0) {
            if (errno == EINTR) {
                // A signal interrupted the wait. With a wake fd armed
                // the next iteration sees it readable and reports
                // Timeout; without one, retry.
                continue;
            }
            return IoStatus::Error;
        }
        if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)))
            return IoStatus::Timeout;
        if (fds[0].revents & (POLLIN | POLLOUT | POLLERR | POLLHUP))
            return IoStatus::Ok;
    }
}

/** Read exactly @p len bytes; Closed only at offset 0. */
IoStatus
readExact(int fd, char *buf, size_t len, int timeout_ms, int wake_fd)
{
    size_t got = 0;
    while (got < len) {
        IoStatus ready = waitReady(fd, false, timeout_ms, wake_fd);
        if (ready != IoStatus::Ok)
            return ready;
        ssize_t n = read(fd, buf + got, len - got);
        if (n == 0)
            return got == 0 ? IoStatus::Closed : IoStatus::Truncated;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return IoStatus::Error;
        }
        got += size_t(n);
    }
    return IoStatus::Ok;
}

IoStatus
writeAll(int fd, const char *buf, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a
        // process-killing SIGPIPE -- the server must survive clients
        // that vanish mid-reply regardless of signal disposition.
        ssize_t n = send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                IoStatus ready = waitReady(fd, true, -1, -1);
                if (ready != IoStatus::Ok)
                    return IoStatus::Error;
                continue;
            }
            return IoStatus::Error;
        }
        sent += size_t(n);
    }
    return IoStatus::Ok;
}

} // namespace

const char *
ioStatusName(IoStatus status)
{
    switch (status) {
    case IoStatus::Ok: return "ok";
    case IoStatus::Timeout: return "timeout";
    case IoStatus::Closed: return "closed";
    case IoStatus::Truncated: return "truncated";
    case IoStatus::Oversize: return "oversize";
    case IoStatus::Error: return "error";
    }
    return "?";
}

void
Connection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

IoStatus
Connection::sendFrame(const std::string &payload)
{
    if (fd_ < 0)
        return IoStatus::Error;
    uint32_t len = uint32_t(payload.size());
    char prefix[4];
    prefix[0] = char(len & 0xFF);
    prefix[1] = char((len >> 8) & 0xFF);
    prefix[2] = char((len >> 16) & 0xFF);
    prefix[3] = char((len >> 24) & 0xFF);
    IoStatus status = writeAll(fd_, prefix, sizeof(prefix));
    if (status != IoStatus::Ok)
        return status;
    return writeAll(fd_, payload.data(), payload.size());
}

IoStatus
Connection::recvFrame(std::string &payload, int timeout_ms,
                      uint32_t max_len, int wake_fd)
{
    payload.clear();
    if (fd_ < 0)
        return IoStatus::Error;
    char prefix[4];
    IoStatus status =
        readExact(fd_, prefix, sizeof(prefix), timeout_ms, wake_fd);
    if (status != IoStatus::Ok)
        return status;
    uint32_t len = (uint32_t(uint8_t(prefix[0]))) |
                   (uint32_t(uint8_t(prefix[1])) << 8) |
                   (uint32_t(uint8_t(prefix[2])) << 16) |
                   (uint32_t(uint8_t(prefix[3])) << 24);
    // Bound BEFORE allocating: a hostile prefix must not balloon
    // memory or stall the reader loop on bytes that never come.
    if (len > max_len)
        return IoStatus::Oversize;
    payload.resize(len);
    if (len == 0)
        return IoStatus::Ok;
    status = readExact(fd_, payload.data(), len, timeout_ms, wake_fd);
    if (status == IoStatus::Closed)
        return IoStatus::Truncated; // EOF between prefix and payload
    if (status != IoStatus::Ok)
        payload.clear();
    return status;
}

Connection
connectUnix(const std::string &path, std::string &error)
{
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return Connection();
    }
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        error = "socket path too long: " + path;
        return Connection();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        error = "connect '" + path + "': " + std::strerror(errno);
        ::close(fd);
        return Connection();
    }
    return Connection(fd);
}

bool
Listener::open(const std::string &path, std::string &error)
{
    close();
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        error = "socket path too long: " + path;
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // Replace a stale socket file from a previous run.
    unlink(path.c_str());
    if (bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
             sizeof(addr)) != 0) {
        error = "bind '" + path + "': " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (listen(fd, 64) != 0) {
        error = "listen '" + path + "': " + std::strerror(errno);
        ::close(fd);
        unlink(path.c_str());
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

IoStatus
Listener::accept(Connection &out, int timeout_ms, int wake_fd)
{
    if (fd_ < 0)
        return IoStatus::Error;
    IoStatus ready = waitReady(fd_, false, timeout_ms, wake_fd);
    if (ready != IoStatus::Ok)
        return ready;
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return IoStatus::Timeout;
        return IoStatus::Error;
    }
    out = Connection(fd);
    return IoStatus::Ok;
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (!path_.empty())
            unlink(path_.c_str());
        path_.clear();
    }
}

} // namespace net
} // namespace longnail
