/**
 * @file
 * ApInt: an arbitrary-precision integer with a fixed bit width in two's
 * complement representation.
 *
 * ApInt stores raw bits; signedness is a property of the *operation*
 * (sdiv vs. udiv, slt vs. ult, sext vs. zext), mirroring how hardware and
 * the CoreDSL type system treat values. All binary arithmetic requires
 * equal operand widths and wraps around; the CoreDSL semantics layer is
 * responsible for widening operands first so no overflow can occur
 * (Sec. 2.3 of the paper).
 */

#ifndef LONGNAIL_SUPPORT_APINT_HH
#define LONGNAIL_SUPPORT_APINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace longnail {

class ApInt
{
  public:
    /** Maximum supported width in bits. */
    static constexpr unsigned maxWidth = 1u << 16;

    /** Zero value of the given width (width must be >= 1). */
    explicit ApInt(unsigned width = 1, uint64_t value = 0);

    /** Value with the low 64 bits taken sign-extended from @p value. */
    static ApInt fromInt64(unsigned width, int64_t value);

    /**
     * Parse an unsigned decimal, hexadecimal (0x), binary (0b) or octal
     * (0) literal. Digits may be separated by underscores.
     * @return the value, as wide as needed (at least 1 bit).
     */
    static ApInt fromString(const std::string &text, unsigned radix);

    /** All bits set. */
    static ApInt allOnes(unsigned width);

    /** Single set bit at @p pos. */
    static ApInt oneBit(unsigned width, unsigned pos);

    unsigned width() const { return width_; }
    size_t numWords() const { return words_.size(); }

    bool getBit(unsigned pos) const;
    void setBit(unsigned pos, bool value);

    /**
     * Overwrite the value in place with @p value zero-extended or
     * truncated to the existing width. Keeps the word storage, so
     * repeated assignment into a preallocated ApInt never allocates.
     */
    void setValue(uint64_t value)
    {
        words_.assign(words_.size(), 0);
        words_[0] = value;
        clearUnusedBits();
    }

    /** Like setValue(), for two-word values (bits [64, 128) in @p hi). */
    void setValue(uint64_t lo, uint64_t hi)
    {
        words_.assign(words_.size(), 0);
        words_[0] = lo;
        if (words_.size() > 1)
            words_[1] = hi;
        clearUnusedBits();
    }

    /** Storage word @p i (zero beyond the storage; value is masked). */
    uint64_t word(size_t i) const
    {
        return i < words_.size() ? words_[i] : 0;
    }

    bool isZero() const;
    bool isAllOnes() const;
    /** Most significant bit, i.e. the two's complement sign. */
    bool isNegative() const { return getBit(width_ - 1); }

    /** Number of significant bits when interpreted as unsigned. */
    unsigned activeBits() const;
    /** Minimal two's complement width that can hold this signed value. */
    unsigned minSignedBits() const;

    /** Resize operations. */
    ApInt zext(unsigned new_width) const;
    ApInt sext(unsigned new_width) const;
    ApInt trunc(unsigned new_width) const;
    ApInt zextOrTrunc(unsigned new_width) const;
    ApInt sextOrTrunc(unsigned new_width) const;

    /** Wrapping arithmetic; operands must have equal widths. */
    ApInt operator+(const ApInt &rhs) const;
    ApInt operator-(const ApInt &rhs) const;
    ApInt operator*(const ApInt &rhs) const;
    ApInt udiv(const ApInt &rhs) const;
    ApInt urem(const ApInt &rhs) const;
    ApInt sdiv(const ApInt &rhs) const;
    ApInt srem(const ApInt &rhs) const;
    ApInt negate() const;

    /** Bitwise logic; operands must have equal widths. */
    ApInt operator&(const ApInt &rhs) const;
    ApInt operator|(const ApInt &rhs) const;
    ApInt operator^(const ApInt &rhs) const;
    ApInt operator~() const;

    /** Shifts; an amount >= width yields 0 (or all sign bits for ashr). */
    ApInt shl(unsigned amount) const;
    ApInt lshr(unsigned amount) const;
    ApInt ashr(unsigned amount) const;

    /** Comparisons. */
    bool operator==(const ApInt &rhs) const;
    bool operator!=(const ApInt &rhs) const { return !(*this == rhs); }
    bool ult(const ApInt &rhs) const;
    bool ule(const ApInt &rhs) const { return !rhs.ult(*this); }
    bool ugt(const ApInt &rhs) const { return rhs.ult(*this); }
    bool uge(const ApInt &rhs) const { return !ult(rhs); }
    bool slt(const ApInt &rhs) const;
    bool sle(const ApInt &rhs) const { return !rhs.slt(*this); }
    bool sgt(const ApInt &rhs) const { return rhs.slt(*this); }
    bool sge(const ApInt &rhs) const { return !slt(rhs); }

    /** Extract @p count bits starting at bit @p lo. */
    ApInt extract(unsigned lo, unsigned count) const;

    /** Concatenation: this value becomes the *high* bits. */
    ApInt concat(const ApInt &low) const;

    /** Low 64 bits, zero-extended. */
    uint64_t toUint64() const;
    /** Low 64 bits... sign-extended from the value's width. */
    int64_t toInt64() const;

    /** Unsigned textual form in the given radix (2, 8, 10 or 16). */
    std::string toStringUnsigned(unsigned radix = 10) const;
    /** Signed decimal textual form. */
    std::string toStringSigned() const;

  private:
    static constexpr unsigned wordBits = 64;

    static size_t wordsForBits(unsigned bits);
    void clearUnusedBits();
    /** -1, 0, 1 comparison of unsigned magnitudes (equal widths). */
    int ucmp(const ApInt &rhs) const;
    /** Divide by a single word, returning the remainder. */
    uint64_t udivremWord(uint64_t divisor);
    static void udivrem(const ApInt &lhs, const ApInt &rhs, ApInt &quot,
                        ApInt &rem);

    unsigned width_;
    std::vector<uint64_t> words_;
};

} // namespace longnail

#endif // LONGNAIL_SUPPORT_APINT_HH
