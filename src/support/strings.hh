/**
 * @file
 * Small string helpers shared across the project.
 */

#ifndef LONGNAIL_SUPPORT_STRINGS_HH
#define LONGNAIL_SUPPORT_STRINGS_HH

#include <string>
#include <vector>

namespace longnail {

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Split on a single character; keeps empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

} // namespace longnail

#endif // LONGNAIL_SUPPORT_STRINGS_HH
