#include "support/diagnostics.hh"

#include <cstdio>
#include <sstream>

namespace longnail {

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

std::string
SourceLoc::str() const
{
    if (!isValid())
        return "<unknown>";
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::str() const
{
    const char *sev = severity == Severity::Error     ? "error"
                      : severity == Severity::Warning ? "warning"
                                                      : "note";
    std::ostringstream os;
    os << loc.str() << ": " << sev << ": " << message;
    return os.str();
}

void
DiagnosticEngine::error(SourceLoc loc, const std::string &msg)
{
    diags_.push_back({Severity::Error, loc, msg});
    ++numErrors_;
}

void
DiagnosticEngine::warning(SourceLoc loc, const std::string &msg)
{
    diags_.push_back({Severity::Warning, loc, msg});
}

void
DiagnosticEngine::note(SourceLoc loc, const std::string &msg)
{
    diags_.push_back({Severity::Note, loc, msg});
}

std::string
DiagnosticEngine::str() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.str() << "\n";
    return os.str();
}

void
DiagnosticEngine::clear()
{
    diags_.clear();
    numErrors_ = 0;
}

} // namespace longnail
