#include "support/diagnostics.hh"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "obs/metrics.hh"

namespace longnail {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

// All four sinks write to stderr only: stdout stays reserved for
// machine-readable artifacts (see logging.hh).

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (quiet())
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (quiet())
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

std::string
SourceLoc::str() const
{
    if (!isValid())
        return "<unknown>";
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::None: return "none";
      case Phase::Parse: return "parse";
      case Phase::Sema: return "sema";
      case Phase::AstLower: return "astlower";
      case Phase::Analysis: return "analysis";
      case Phase::Lil: return "lil";
      case Phase::Sched: return "sched";
      case Phase::HwGen: return "hwgen";
      case Phase::Scaiev: return "scaiev";
      case Phase::Validate: return "validate";
      case Phase::Driver: return "driver";
    }
    return "none";
}

std::string
Diagnostic::str() const
{
    const char *sev = severity == Severity::Error     ? "error"
                      : severity == Severity::Warning ? "warning"
                                                      : "note";
    std::ostringstream os;
    os << loc.str() << ": " << sev << ": " << message;
    if (!code.empty() || phase != Phase::None) {
        os << " [";
        if (!code.empty())
            os << code;
        if (phase != Phase::None) {
            if (!code.empty())
                os << ", ";
            os << phaseName(phase);
        }
        os << "]";
    }
    return os.str();
}

void
DiagnosticEngine::add(Severity severity, SourceLoc loc, std::string code,
                      const std::string &msg)
{
    if (code.empty())
        code = defaultCode_;
    if (severity == Severity::Warning) {
        if (suppressed_.count(code))
            return;
        if (werrorAll_ || werrorCodes_.count(code))
            severity = Severity::Error;
    }
    switch (severity) {
      case Severity::Error: obs::count("diag.errors"); break;
      case Severity::Warning: obs::count("diag.warnings"); break;
      case Severity::Note: obs::count("diag.notes"); break;
    }
    diags_.push_back({severity, loc, msg, std::move(code), phase_});
    if (severity == Severity::Error)
        ++numErrors_;
}

void
DiagnosticEngine::error(SourceLoc loc, const std::string &msg)
{
    add(Severity::Error, loc, "", msg);
}

void
DiagnosticEngine::error(SourceLoc loc, const std::string &code,
                        const std::string &msg)
{
    add(Severity::Error, loc, code, msg);
}

void
DiagnosticEngine::warning(SourceLoc loc, const std::string &msg)
{
    add(Severity::Warning, loc, "", msg);
}

void
DiagnosticEngine::warning(SourceLoc loc, const std::string &code,
                          const std::string &msg)
{
    add(Severity::Warning, loc, code, msg);
}

void
DiagnosticEngine::note(SourceLoc loc, const std::string &msg)
{
    add(Severity::Note, loc, "", msg);
}

bool
DiagnosticEngine::hasErrorCode(const std::string &code) const
{
    for (const auto &d : diags_)
        if (d.severity == Severity::Error && d.code == code)
            return true;
    return false;
}

bool
DiagnosticEngine::hasErrorCodePrefix(const std::string &prefix) const
{
    for (const auto &d : diags_)
        if (d.severity == Severity::Error &&
            d.code.compare(0, prefix.size(), prefix) == 0)
            return true;
    return false;
}

void
DiagnosticEngine::setContext(Phase phase, std::string default_code)
{
    phase_ = phase;
    defaultCode_ = std::move(default_code);
}

std::string
DiagnosticEngine::str() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.str() << "\n";
    return os.str();
}

void
DiagnosticEngine::clear()
{
    diags_.clear();
    numErrors_ = 0;
}

} // namespace longnail
