#include "support/yaml.hh"

#include <cctype>
#include <stdexcept>

#include "support/logging.hh"
#include "support/strings.hh"

namespace longnail {
namespace yaml {

const std::string &
Node::scalar() const
{
    if (!isScalar())
        LN_PANIC("yaml node is not a scalar");
    return scalar_;
}

std::string
Node::lineSuffix() const
{
    return sourceLine_ > 0 ? " at line " + std::to_string(sourceLine_)
                           : "";
}

int64_t
Node::asInt() const
{
    const std::string &s = scalar();
    try {
        size_t pos = 0;
        int64_t v = std::stoll(s, &pos, 0);
        if (pos != s.size())
            throw std::invalid_argument(s);
        return v;
    } catch (const std::exception &) {
        throw std::runtime_error("yaml: not an integer: '" + s + "'" +
                                 lineSuffix());
    }
}

bool
Node::asBool() const
{
    const std::string &s = scalar();
    if (s == "true" || s == "1" || s == "yes")
        return true;
    if (s == "false" || s == "0" || s == "no")
        return false;
    throw std::runtime_error("yaml: not a boolean: '" + s + "'" +
                             lineSuffix());
}

const std::vector<Node> &
Node::items() const
{
    if (!isSequence())
        LN_PANIC("yaml node is not a sequence");
    return items_;
}

void
Node::push(Node n)
{
    if (!isSequence())
        LN_PANIC("yaml node is not a sequence");
    items_.push_back(std::move(n));
}

const std::vector<std::pair<std::string, Node>> &
Node::entries() const
{
    if (!isMapping())
        LN_PANIC("yaml node is not a mapping");
    return entries_;
}

bool
Node::has(const std::string &key) const
{
    for (const auto &[k, v] : entries())
        if (k == key)
            return true;
    return false;
}

const Node &
Node::at(const std::string &key) const
{
    for (const auto &[k, v] : entries())
        if (k == key)
            return v;
    throw std::runtime_error("yaml: missing key '" + key + "'" +
                             lineSuffix());
}

void
Node::set(const std::string &key, Node value)
{
    if (!isMapping())
        LN_PANIC("yaml node is not a mapping");
    for (auto &[k, v] : entries_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    entries_.emplace_back(key, std::move(value));
}

bool
Node::needsQuotes(const std::string &s)
{
    if (s.empty())
        return true;
    for (char c : s) {
        if (c == ':' || c == '#' || c == '{' || c == '}' || c == '[' ||
            c == ']' || c == ',' || c == '"' || c == '\n')
            return true;
    }
    return std::isspace(static_cast<unsigned char>(s.front())) ||
           std::isspace(static_cast<unsigned char>(s.back()));
}

void
Node::emitNode(std::string &out, int indent, bool in_flow) const
{
    std::string pad(indent, ' ');
    switch (kind_) {
      case Kind::Scalar:
        if (needsQuotes(scalar_)) {
            out += '"';
            for (char c : scalar_) {
                if (c == '"' || c == '\\')
                    out += '\\';
                out += c;
            }
            out += '"';
        } else {
            out += scalar_;
        }
        break;
      case Kind::Sequence:
        if (in_flow) {
            out += '[';
            for (size_t i = 0; i < items_.size(); ++i) {
                if (i)
                    out += ", ";
                items_[i].emitNode(out, 0, true);
            }
            out += ']';
        } else {
            for (const auto &item : items_) {
                out += pad + "- ";
                // Keep small composite items on one line (flow style),
                // matching the paper's configuration files.
                item.emitNode(out, 0, true);
                out += '\n';
            }
        }
        break;
      case Kind::Mapping:
        if (in_flow) {
            out += '{';
            for (size_t i = 0; i < entries_.size(); ++i) {
                if (i)
                    out += ", ";
                out += entries_[i].first + ": ";
                entries_[i].second.emitNode(out, 0, true);
            }
            out += '}';
        } else {
            for (const auto &[k, v] : entries_) {
                out += pad + k + ":";
                bool empty_collection =
                    (v.isSequence() && v.items_.empty()) ||
                    (v.isMapping() && v.entries_.empty());
                if (v.isScalar() || empty_collection) {
                    out += ' ';
                    v.emitNode(out, 0, true);
                    out += '\n';
                } else {
                    out += '\n';
                    v.emitNode(out, indent + 2, false);
                }
            }
        }
        break;
    }
}

std::string
Node::emit() const
{
    std::string out;
    emitNode(out, 0, false);
    if (isScalar())
        out += '\n';
    return out;
}

namespace {

/** One logical input line: indentation plus trimmed content. */
struct Line
{
    int indent;
    std::string text;
    /** 1-based position in the input document. */
    int lineNo;
};

[[noreturn]] void
parseError(const std::string &msg, int line = 0)
{
    throw std::runtime_error(
        "yaml: " + msg +
        (line > 0 ? " at line " + std::to_string(line) : ""));
}

/** Remove a trailing comment that is not inside quotes. */
std::string
stripComment(const std::string &s)
{
    bool in_quote = false;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '"')
            in_quote = !in_quote;
        else if (s[i] == '#' && !in_quote)
            return s.substr(0, i);
    }
    return s;
}

std::vector<Line>
splitLines(const std::string &text)
{
    std::vector<Line> lines;
    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        std::string no_comment = stripComment(raw);
        std::string content = trim(no_comment);
        if (content.empty())
            continue;
        int indent = 0;
        while (indent < (int)no_comment.size() && no_comment[indent] == ' ')
            ++indent;
        lines.push_back({indent, content, line_no});
    }
    return lines;
}

/** Recursive-descent parser over the flow-style subset. */
class FlowParser
{
  public:
    explicit FlowParser(const std::string &text, int line_no = 0)
        : text_(text), lineNo_(line_no)
    {}

    Node
    parseAll()
    {
        Node n = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            parseError("trailing characters in flow value: '" +
                           text_.substr(pos_) + "'",
                       lineNo_);
        return n;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    Node
    parseValue()
    {
        Node n = parseValueImpl();
        n.setSourceLine(lineNo_);
        return n;
    }

    Node
    parseValueImpl()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return Node("");
        char c = text_[pos_];
        if (c == '{')
            return parseFlowMapping();
        if (c == '[')
            return parseFlowSequence();
        if (c == '"')
            return Node(parseQuoted());
        // Plain scalar: up to a structural character.
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ',' &&
               text_[pos_] != '}' && text_[pos_] != ']')
            ++pos_;
        return Node(trim(text_.substr(start, pos_ - start)));
    }

    std::string
    parseQuoted()
    {
        ++pos_; // consume opening quote
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size())
                ++pos_;
            out += text_[pos_++];
        }
        if (pos_ >= text_.size())
            parseError("unterminated string", lineNo_);
        ++pos_; // consume closing quote
        return out;
    }

    Node
    parseFlowMapping()
    {
        ++pos_; // consume '{'
        Node map = Node::makeMapping();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return map;
        }
        while (true) {
            skipSpace();
            size_t key_start = pos_;
            while (pos_ < text_.size() && text_[pos_] != ':')
                ++pos_;
            if (pos_ >= text_.size())
                parseError("missing ':' in flow mapping", lineNo_);
            std::string key = trim(text_.substr(key_start, pos_ - key_start));
            ++pos_; // consume ':'
            map.set(key, parseValue());
            skipSpace();
            if (pos_ >= text_.size())
                parseError("unterminated flow mapping", lineNo_);
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return map;
            }
            parseError("expected ',' or '}' in flow mapping", lineNo_);
        }
    }

    Node
    parseFlowSequence()
    {
        ++pos_; // consume '['
        Node seq = Node::makeSequence();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return seq;
        }
        while (true) {
            seq.push(parseValue());
            skipSpace();
            if (pos_ >= text_.size())
                parseError("unterminated flow sequence", lineNo_);
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return seq;
            }
            parseError("expected ',' or ']' in flow sequence", lineNo_);
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    int lineNo_;
};

/** Parser over the line-oriented block structure. */
class BlockParser
{
  public:
    explicit BlockParser(std::vector<Line> lines) : lines_(std::move(lines))
    {}

    Node
    parse()
    {
        if (lines_.empty())
            return Node::makeMapping();
        Node n = parseBlock(lines_[0].indent);
        if (idx_ != lines_.size())
            parseError("inconsistent indentation near '" +
                           lines_[idx_].text + "'",
                       lines_[idx_].lineNo);
        return n;
    }

  private:
    Node
    parseBlock(int indent)
    {
        if (lines_[idx_].text[0] == '-')
            return parseSequence(indent);
        return parseMapping(indent);
    }

    Node
    parseSequence(int indent)
    {
        Node seq = Node::makeSequence();
        seq.setSourceLine(lines_[idx_].lineNo);
        while (idx_ < lines_.size() && lines_[idx_].indent == indent &&
               lines_[idx_].text[0] == '-') {
            std::string rest = trim(lines_[idx_].text.substr(1));
            int line_no = lines_[idx_].lineNo;
            ++idx_;
            if (!rest.empty()) {
                // Inline item, possibly an inline "key: value" mapping.
                seq.push(parseInlineValue(rest, line_no));
            } else {
                if (idx_ >= lines_.size() || lines_[idx_].indent <= indent)
                    parseError("empty sequence item", line_no);
                seq.push(parseBlock(lines_[idx_].indent));
            }
        }
        return seq;
    }

    Node
    parseMapping(int indent)
    {
        Node map = Node::makeMapping();
        map.setSourceLine(lines_[idx_].lineNo);
        while (idx_ < lines_.size() && lines_[idx_].indent == indent &&
               lines_[idx_].text[0] != '-') {
            const std::string &text = lines_[idx_].text;
            int line_no = lines_[idx_].lineNo;
            size_t colon = findKeyColon(text, line_no);
            std::string key = trim(text.substr(0, colon));
            std::string value = trim(text.substr(colon + 1));
            ++idx_;
            if (!value.empty()) {
                map.set(key, FlowParser(value, line_no).parseAll());
            } else {
                if (idx_ < lines_.size() && lines_[idx_].indent > indent)
                    map.set(key, parseBlock(lines_[idx_].indent));
                else
                    map.set(key, Node(""));
            }
        }
        return map;
    }

    /** Inline sequence item: flow value or single-line mapping. */
    Node
    parseInlineValue(const std::string &text, int line_no)
    {
        if (text[0] == '{' || text[0] == '[' || text[0] == '"')
            return FlowParser(text, line_no).parseAll();
        size_t colon = text.find(": ");
        if (colon != std::string::npos) {
            Node map = Node::makeMapping();
            map.setSourceLine(line_no);
            map.set(trim(text.substr(0, colon)),
                    FlowParser(trim(text.substr(colon + 1)), line_no)
                        .parseAll());
            return map;
        }
        Node scalar{trim(text)};
        scalar.setSourceLine(line_no);
        return scalar;
    }

    /** Position of the colon separating key and value. */
    static size_t
    findKeyColon(const std::string &text, int line_no)
    {
        for (size_t i = 0; i < text.size(); ++i) {
            if (text[i] == ':' &&
                (i + 1 == text.size() || text[i + 1] == ' '))
                return i;
        }
        parseError("expected 'key: value' but got '" + text + "'",
                   line_no);
    }

    std::vector<Line> lines_;
    size_t idx_ = 0;
};

} // namespace

Node
parse(const std::string &text)
{
    return BlockParser(splitLines(text)).parse();
}

} // namespace yaml
} // namespace longnail
