/**
 * @file
 * Process termination signals (SIGINT/SIGTERM) as cooperative state.
 *
 * install() registers async-signal-safe handlers that record the
 * signal, cancel the process-wide CancelToken and write one byte to a
 * self-pipe. Polling code has two integration points:
 *
 *   - token(): a CancelToken wired into CompileOptions::cancel so an
 *     in-flight compile stops at the next phase boundary (LN3011);
 *   - wakeFd(): the self-pipe read end, added to poll() sets so
 *     blocking accept/read loops (the compile server) wake immediately
 *     instead of waiting for their timeout.
 *
 * The CLI uses this for graceful Ctrl-C: cancel outstanding pool work,
 * remove in-progress cache temp files, exit with the deterministic
 * interrupt code (docs/failure-model.md). The compile server uses the
 * same facility for graceful drain (docs/compile-server.md).
 *
 * State is process-global by nature (there is one signal disposition
 * per process); reset() rearms it for tests.
 */

#ifndef LONGNAIL_SUPPORT_SIGNALS_HH
#define LONGNAIL_SUPPORT_SIGNALS_HH

#include "support/cancel.hh"

namespace longnail {
namespace signals {

/** Install SIGINT/SIGTERM handlers (idempotent). */
void install();

/** True once a termination signal was delivered. */
bool terminationRequested();

/** The last termination signal delivered (0 if none). */
int lastSignal();

/** Process-wide cancellation token; cancelled by the handler. */
CancelToken &token();

/**
 * Read end of the self-pipe: becomes readable when a termination
 * signal arrives (level-triggered until drainWake()). -1 before
 * install().
 */
int wakeFd();

/** Consume pending wake bytes (after handling a drain request). */
void drainWake();

/** Clear recorded state and re-arm (tests only; handlers stay
 * installed). */
void reset();

} // namespace signals
} // namespace longnail

#endif // LONGNAIL_SUPPORT_SIGNALS_HH
