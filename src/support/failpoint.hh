/**
 * @file
 * Deterministic fault-injection points for the compile pipeline.
 *
 * A failpoint is a named site in the code (one per phase boundary:
 * "parse", "sema", "astlower", "analysis", "lil", "sched",
 * "sched-optimal", "hwgen", "scaiev-config", "validate", plus
 * "passes", which injects a deliberate miscompile into the -O1
 * pipeline for the signature checker to catch) that is normally
 * inert. Tests or operators
 * arm it programmatically (arm()) or through the environment:
 *
 *   LONGNAIL_FAILPOINTS="sema=fail;sched=transient:2"
 *
 * Modes:
 *   off           the site is inert (same as not armed)
 *   fail          every evaluation fails
 *   transient:N   the first N evaluations fail, later ones pass
 *
 * Evaluation is fully deterministic: a site fails based only on its
 * spec and its per-site hit counter. Transient failures model
 * recoverable conditions (the driver's compileWithRetry() retries
 * them); "fail" models permanent ones.
 *
 * The registry is process-global and guarded by a mutex; per-compile
 * bookkeeping (transientFired) is global too, so concurrent compiles
 * with armed failpoints should serialize (fault injection is a test and
 * operations facility, not a hot path).
 */

#ifndef LONGNAIL_SUPPORT_FAILPOINT_HH
#define LONGNAIL_SUPPORT_FAILPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace longnail {
namespace failpoint {

/** How an armed failpoint behaves when evaluated. */
enum class Mode { Off, Fail, Transient };

/** Arm @p name; Transient fails the first @p transient_count hits. */
void arm(const std::string &name, Mode mode,
         uint64_t transient_count = 1);

/** Disarm one site (its hit counter is kept). */
void disarm(const std::string &name);

/** Disarm everything and clear all counters/flags. */
void reset();

/**
 * Parse and arm one "name=mode" spec ("sema=fail",
 * "sched=transient:2", "parse=off").
 * @return empty string on success, else a description of the problem.
 */
std::string armFromSpec(const std::string &spec);

/**
 * Arm every ';'-separated spec in the environment variable @p env_var
 * (default LONGNAIL_FAILPOINTS). Unset/empty is not an error.
 * @return empty string on success, else the first problem found.
 */
std::string armFromEnv(const char *env_var = "LONGNAIL_FAILPOINTS");

/**
 * Evaluate the site @p name: returns Off when the site is inert for
 * this hit, else the mode that made it fail. Increments the site's hit
 * counter and, for transient failures, the global transient flag.
 */
Mode fire(const char *name);

/** Times fire() was called for @p name (armed or not). */
uint64_t hitCount(const std::string &name);

/** Names of all currently armed sites. */
std::vector<std::string> armedNames();

/**
 * True if any transient failpoint fired since the last
 * clearTransientFired(). The driver uses this to classify a failed
 * compile as retryable.
 */
bool transientFired();
void clearTransientFired();

/** RAII arming for tests: disarms the site on scope exit. */
class Scoped
{
  public:
    Scoped(std::string name, Mode mode, uint64_t transient_count = 1)
        : name_(std::move(name))
    {
        arm(name_, mode, transient_count);
    }
    ~Scoped() { disarm(name_); }
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    std::string name_;
};

} // namespace failpoint
} // namespace longnail

#endif // LONGNAIL_SUPPORT_FAILPOINT_HH
