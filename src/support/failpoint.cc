#include "support/failpoint.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/flightrec.hh"
#include "obs/metrics.hh"
#include "support/strings.hh"

namespace longnail {
namespace failpoint {

namespace {

struct Site
{
    Mode mode = Mode::Off;
    uint64_t transientCount = 0; ///< remaining transient failures
    uint64_t hits = 0;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Site> sites;
    bool transientFired = false;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

void
arm(const std::string &name, Mode mode, uint64_t transient_count)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    Site &site = r.sites[name];
    site.mode = mode;
    site.transientCount = mode == Mode::Transient ? transient_count : 0;
}

void
disarm(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(name);
    if (it != r.sites.end()) {
        it->second.mode = Mode::Off;
        it->second.transientCount = 0;
    }
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites.clear();
    r.transientFired = false;
}

std::string
armFromSpec(const std::string &spec)
{
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        return "failpoint spec '" + spec +
               "' is not of the form name=mode";
    std::string name = trim(spec.substr(0, eq));
    std::string mode = trim(spec.substr(eq + 1));
    if (mode == "off") {
        disarm(name);
        return "";
    }
    if (mode == "fail") {
        arm(name, Mode::Fail);
        return "";
    }
    if (mode.compare(0, 9, "transient") == 0) {
        uint64_t count = 1;
        if (mode.size() > 9) {
            if (mode[9] != ':')
                return "bad transient spec '" + mode +
                       "' (want transient or transient:N)";
            char *end = nullptr;
            count = std::strtoull(mode.c_str() + 10, &end, 10);
            if (end == mode.c_str() + 10 || *end != '\0' || count == 0)
                return "bad transient count in '" + mode + "'";
        }
        arm(name, Mode::Transient, count);
        return "";
    }
    return "unknown failpoint mode '" + mode +
           "' (want off, fail, or transient[:N])";
}

std::string
armFromEnv(const char *env_var)
{
    const char *value = std::getenv(env_var);
    if (!value || !*value)
        return "";
    for (const std::string &spec : split(value, ';')) {
        if (trim(spec).empty())
            continue;
        std::string err = armFromSpec(trim(spec));
        if (!err.empty())
            return err;
    }
    return "";
}

Mode
fire(const char *name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    Site &site = r.sites[name];
    ++site.hits;
    switch (site.mode) {
      case Mode::Off:
        return Mode::Off;
      case Mode::Fail:
        obs::count("failpoint.trips");
        obs::flightrec::note("failpoint", name);
        obs::flightrec::writePostmortem("failpoint");
        return Mode::Fail;
      case Mode::Transient:
        if (site.transientCount == 0)
            return Mode::Off;
        --site.transientCount;
        r.transientFired = true;
        obs::count("failpoint.trips");
        obs::flightrec::note("failpoint", name);
        obs::flightrec::writePostmortem("failpoint");
        return Mode::Transient;
    }
    return Mode::Off;
}

uint64_t
hitCount(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(name);
    return it == r.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string>
armedNames()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    for (const auto &[name, site] : r.sites)
        if (site.mode != Mode::Off)
            names.push_back(name);
    return names;
}

bool
transientFired()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.transientFired;
}

void
clearTransientFired()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.transientFired = false;
}

} // namespace failpoint
} // namespace longnail
