/**
 * @file
 * Source locations and a diagnostics engine for the compile pipeline.
 *
 * Components report errors/warnings against SourceLoc positions; the
 * DiagnosticEngine collects them so callers (tests, the driver CLI)
 * can inspect, print, or turn them into a failure.
 *
 * Every diagnostic carries a pipeline phase tag and a stable error
 * code (see docs/failure-model.md for the full registry):
 *
 *   LN1xxx  frontend (parse, sema, AST lowering, LIL lowering)
 *   LN2xxx  scheduling
 *   LN3xxx  hardware generation / SCAIE-V metadata
 *   LN4xxx  static analysis (IR verifier, dataflow lint, encoding and
 *           datasheet checks; see docs/static-analysis.md)
 *
 * Codes ending in 9xx are reserved for injected faults from the
 * support/failpoint facility.
 */

#ifndef LONGNAIL_SUPPORT_DIAGNOSTICS_HH
#define LONGNAIL_SUPPORT_DIAGNOSTICS_HH

#include <set>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace longnail {

/** A position in a CoreDSL source buffer (1-based line/column). */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool isValid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a diagnostic. */
enum class Severity { Note, Warning, Error };

/** The pipeline phase a diagnostic originates from (Fig. 9 flow). */
enum class Phase
{
    None,
    Parse,
    Sema,
    AstLower,
    Analysis,
    Lil,
    Sched,
    HwGen,
    Scaiev,
    Validate,
    Driver,
};

/** Short phase name for diagnostics ("parse", "sched", ...). */
const char *phaseName(Phase phase);

/** One reported diagnostic. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;
    /** Stable error code, e.g. "LN1001"; may be empty. */
    std::string code;
    /** Pipeline phase the diagnostic was produced in. */
    Phase phase = Phase::None;

    std::string str() const;
};

/**
 * Collects diagnostics produced while processing one CoreDSL input.
 *
 * The engine never throws; callers check hasErrors() after each phase.
 * Each pipeline component installs its phase and default error code via
 * ContextScope; diagnostics reported without an explicit code inherit
 * the scope's defaults.
 */
class DiagnosticEngine
{
  public:
    void error(SourceLoc loc, const std::string &msg);
    void error(SourceLoc loc, const std::string &code,
               const std::string &msg);
    void warning(SourceLoc loc, const std::string &msg);
    void warning(SourceLoc loc, const std::string &code,
                 const std::string &msg);
    void note(SourceLoc loc, const std::string &msg);

    bool hasErrors() const { return numErrors_ > 0; }
    size_t errorCount() const { return numErrors_; }
    const std::vector<Diagnostic> &all() const { return diags_; }

    /** True if any error carries @p code (e.g. "LN2002"). */
    bool hasErrorCode(const std::string &code) const;
    /** True if any error's code starts with @p prefix (e.g. "LN2"). */
    bool hasErrorCodePrefix(const std::string &prefix) const;

    /**
     * Cap on recorded errors; 0 = unlimited. Error recovery (e.g. the
     * parser's panic-mode resynchronization) stops once the limit is
     * reached, so one malformed input cannot produce an error cascade.
     */
    void setErrorLimit(size_t limit) { errorLimit_ = limit; }
    size_t errorLimit() const { return errorLimit_; }
    bool errorLimitReached() const
    {
        return errorLimit_ > 0 && numErrors_ >= errorLimit_;
    }

    /**
     * Warning-severity policy, applied centrally in add():
     * suppressed codes are dropped, warnings-as-errors (globally or
     * per code) are promoted to errors before they are recorded. The
     * CLI exposes these as --no-warn=CODE and --Werror[=CODE].
     */
    void setWarningsAsErrors(bool enable) { werrorAll_ = enable; }
    void addWarningAsError(const std::string &code)
    {
        werrorCodes_.insert(code);
    }
    void addSuppressedWarning(const std::string &code)
    {
        suppressed_.insert(code);
    }

    /** Current phase/default-code context (see ContextScope). */
    void setContext(Phase phase, std::string default_code);
    Phase phase() const { return phase_; }

    /** RAII phase context: restores the previous context on exit. */
    class ContextScope
    {
      public:
        ContextScope(DiagnosticEngine &engine, Phase phase,
                     std::string default_code)
            : engine_(engine), prevPhase_(engine.phase_),
              prevCode_(engine.defaultCode_)
        {
            engine_.setContext(phase, std::move(default_code));
        }
        ~ContextScope() { engine_.setContext(prevPhase_, prevCode_); }
        ContextScope(const ContextScope &) = delete;
        ContextScope &operator=(const ContextScope &) = delete;

      private:
        DiagnosticEngine &engine_;
        Phase prevPhase_;
        std::string prevCode_;
    };

    /** All diagnostics, one per line, for error messages and tests. */
    std::string str() const;

    void clear();

  private:
    void add(Severity severity, SourceLoc loc, std::string code,
             const std::string &msg);

    std::vector<Diagnostic> diags_;
    size_t numErrors_ = 0;
    size_t errorLimit_ = 0;
    Phase phase_ = Phase::None;
    std::string defaultCode_;
    bool werrorAll_ = false;
    std::set<std::string> werrorCodes_;
    std::set<std::string> suppressed_;
};

} // namespace longnail

#endif // LONGNAIL_SUPPORT_DIAGNOSTICS_HH
