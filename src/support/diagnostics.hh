/**
 * @file
 * Source locations and a diagnostics engine for the CoreDSL frontend.
 *
 * Frontend components report errors/warnings against SourceLoc positions;
 * the DiagnosticEngine collects them so callers (tests, the driver CLI)
 * can inspect, print, or turn them into a failure.
 */

#ifndef LONGNAIL_SUPPORT_DIAGNOSTICS_HH
#define LONGNAIL_SUPPORT_DIAGNOSTICS_HH

#include <string>
#include <vector>

#include "support/logging.hh"

namespace longnail {

/** A position in a CoreDSL source buffer (1-based line/column). */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool isValid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a diagnostic. */
enum class Severity { Note, Warning, Error };

/** One reported diagnostic. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    std::string str() const;
};

/**
 * Collects diagnostics produced while processing one CoreDSL input.
 *
 * The engine never throws; callers check hasErrors() after each phase.
 */
class DiagnosticEngine
{
  public:
    void error(SourceLoc loc, const std::string &msg);
    void warning(SourceLoc loc, const std::string &msg);
    void note(SourceLoc loc, const std::string &msg);

    bool hasErrors() const { return numErrors_ > 0; }
    size_t errorCount() const { return numErrors_; }
    const std::vector<Diagnostic> &all() const { return diags_; }

    /** All diagnostics, one per line, for error messages and tests. */
    std::string str() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t numErrors_ = 0;
};

} // namespace longnail

#endif // LONGNAIL_SUPPORT_DIAGNOSTICS_HH
