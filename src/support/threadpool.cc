#include "support/threadpool.hh"

namespace longnail {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    queues_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(cvMutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

bool ThreadPool::submit(std::function<void()> task)
{
    {
        // Hold cvMutex_ across the draining check AND the enqueue so
        // drain()'s discard sweep (which also takes cvMutex_) cannot
        // interleave between them -- a task enqueued after the sweep
        // but counted in outstanding_ would hang wait() forever.
        std::lock_guard<std::mutex> lock(cvMutex_);
        if (draining_.load(std::memory_order_relaxed))
            return false;
        {
            std::lock_guard<std::mutex> idle(idleMutex_);
            ++outstanding_;
        }
        size_t target = nextQueue_++ % queues_.size();
        {
            std::lock_guard<std::mutex> qlock(queues_[target]->mutex);
            queues_[target]->tasks.push_back(std::move(task));
        }
        // Bump gen_ only AFTER the task is in the queue: a worker that
        // snapshots the new generation under cvMutex_ is then
        // guaranteed to find the task when it rescans. Bumping before
        // the push lets a worker observe the new gen_, miss the
        // not-yet-pushed task, and sleep through the notify with
        // outstanding_ > 0 (lost wakeup).
        ++gen_;
    }
    cv_.notify_all();
    return true;
}

size_t ThreadPool::drain(DrainPolicy policy)
{
    size_t discarded = 0;
    {
        std::lock_guard<std::mutex> lock(cvMutex_);
        draining_.store(true, std::memory_order_relaxed);
        if (policy == DrainPolicy::DiscardQueued) {
            // cvMutex_ is held, so no submit can slip a task into a
            // queue after this sweep (lock order: cvMutex_ -> queue).
            for (auto &queue : queues_) {
                std::lock_guard<std::mutex> qlock(queue->mutex);
                discarded += queue->tasks.size();
                queue->tasks.clear();
            }
        }
    }
    if (discarded > 0) {
        {
            std::lock_guard<std::mutex> lock(idleMutex_);
            outstanding_ -= discarded;
        }
        idleCv_.notify_all();
    }
    wait();
    return discarded;
}

bool ThreadPool::draining() const
{
    return draining_.load(std::memory_order_relaxed);
}

size_t ThreadPool::queuedCount() const
{
    size_t total = 0;
    for (const auto &queue : queues_) {
        std::lock_guard<std::mutex> lock(queue->mutex);
        total += queue->tasks.size();
    }
    return total;
}

bool ThreadPool::tryRunOne(size_t self)
{
    std::function<void()> task;
    // Own queue first (back = most recently pushed), then steal the
    // oldest task from any other worker.
    {
        WorkerQueue &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.back());
            q.tasks.pop_back();
        }
    }
    if (!task) {
        for (size_t off = 1; off < queues_.size() && !task; ++off) {
            WorkerQueue &q = *queues_[(self + off) % queues_.size()];
            std::lock_guard<std::mutex> lock(q.mutex);
            if (!q.tasks.empty()) {
                task = std::move(q.tasks.front());
                q.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;

    try {
        task();
    } catch (...) {
        // Tasks are expected to capture their own failures; a stray
        // exception must not tear down the pool.
    }
    {
        std::lock_guard<std::mutex> lock(idleMutex_);
        --outstanding_;
    }
    idleCv_.notify_all();
    return true;
}

void ThreadPool::workerLoop(size_t index)
{
    for (;;) {
        // Snapshot gen_ BEFORE scanning. A submit that lands during
        // the scan bumps gen_, so the post-scan check below rescans
        // instead of sleeping past the new task.
        uint64_t seenGen;
        {
            std::lock_guard<std::mutex> lock(cvMutex_);
            seenGen = gen_;
        }
        while (tryRunOne(index)) {
        }
        std::unique_lock<std::mutex> lock(cvMutex_);
        if (stop_)
            return;
        if (gen_ != seenGen)
            continue;
        cv_.wait(lock, [&] { return stop_ || gen_ != seenGen; });
        if (stop_)
            return;
    }
}

void ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(idleMutex_);
    idleCv_.wait(lock, [&] { return outstanding_ == 0; });
}

} // namespace longnail
