/**
 * @file
 * Status/error reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (a Longnail bug), fatal() for
 * unrecoverable user errors, warn()/inform() for advisory output.
 *
 * All advisory output (warn/inform, and panic/fatal messages) goes to
 * stderr, never stdout: stdout is reserved for machine-readable
 * artifacts (--stdout Verilog, --stats=- metric tables, reports), so
 * pipelines can consume it without filtering. setQuiet(true) (CLI:
 * --quiet) additionally suppresses warn()/inform() entirely.
 */

#ifndef LONGNAIL_SUPPORT_LOGGING_HH
#define LONGNAIL_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace longnail {

namespace detail {

/** Stream-concatenate all arguments into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Suppress warn()/inform() advisory output (CLI: --quiet). Errors
 * (panic/fatal and structured diagnostics) are never suppressed.
 */
void setQuiet(bool quiet);
bool quiet();

/**
 * Abort with a message. Use for conditions that indicate a bug in
 * Longnail itself, never for user input errors.
 */
#define LN_PANIC(...)                                                        \
    ::longnail::detail::panicImpl(                                           \
        __FILE__, __LINE__, ::longnail::detail::formatMessage(__VA_ARGS__))

/** Exit with an error message caused by invalid user input. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::formatMessage(std::forward<Args>(args)...));
}

/** Print a warning; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatMessage(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatMessage(std::forward<Args>(args)...));
}

} // namespace longnail

#endif // LONGNAIL_SUPPORT_LOGGING_HH
