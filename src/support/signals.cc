#include "support/signals.hh"

#include <atomic>
#include <csignal>

#include <fcntl.h>
#include <unistd.h>

namespace longnail {
namespace signals {

namespace {

std::atomic<int> lastSignal_{0};
std::atomic<bool> installed_{false};
int wakePipe_[2] = {-1, -1};

CancelToken &
tokenStorage()
{
    static CancelToken token;
    return token;
}

extern "C" void
handleTermination(int sig)
{
    // Async-signal-safe only: atomic stores and one write(2).
    lastSignal_.store(sig, std::memory_order_relaxed);
    tokenStorage().cancel();
    if (wakePipe_[1] >= 0) {
        char byte = 1;
        // Best effort; a full pipe already guarantees wakeFd() is
        // readable.
        [[maybe_unused]] ssize_t n = write(wakePipe_[1], &byte, 1);
    }
}

} // namespace

void
install()
{
    if (installed_.exchange(true))
        return;
    if (pipe(wakePipe_) == 0) {
        for (int fd : wakePipe_) {
            int flags = fcntl(fd, F_GETFL, 0);
            if (flags >= 0)
                fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            int fdflags = fcntl(fd, F_GETFD, 0);
            if (fdflags >= 0)
                fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
        }
    } else {
        wakePipe_[0] = wakePipe_[1] = -1;
    }
    struct sigaction action = {};
    action.sa_handler = handleTermination;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: blocking accept/read in the serve loop should
    // return EINTR so the drain path runs promptly.
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

bool
terminationRequested()
{
    return lastSignal_.load(std::memory_order_relaxed) != 0;
}

int
lastSignal()
{
    return lastSignal_.load(std::memory_order_relaxed);
}

CancelToken &
token()
{
    return tokenStorage();
}

int
wakeFd()
{
    return wakePipe_[0];
}

void
drainWake()
{
    if (wakePipe_[0] < 0)
        return;
    char buf[64];
    while (read(wakePipe_[0], buf, sizeof(buf)) > 0) {
    }
}

void
reset()
{
    lastSignal_.store(0, std::memory_order_relaxed);
    tokenStorage().reset();
    drainWake();
}

} // namespace signals
} // namespace longnail
