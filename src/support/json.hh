/**
 * @file
 * Minimal JSON value model, parser and emitter for the compile-server
 * wire protocol (docs/compile-server.md).
 *
 * The subset is deliberately small but complete for RFC 8259
 * documents: null, booleans, numbers (stored as double, with an exact
 * integer fast path), strings with full escape handling, arrays and
 * objects. Objects preserve insertion order on emit so a round-tripped
 * reply is byte-stable; lookup is linear, which is fine for the
 * handful of keys a protocol frame carries.
 *
 * parse() never throws: malformed input yields std::nullopt and an
 * error description with byte offset, which the server turns into an
 * LN3101 protocol-error reply instead of dying (the hostile-input
 * tests in tests/serve/test_protocol.cc pin this).
 */

#ifndef LONGNAIL_SUPPORT_JSON_HH
#define LONGNAIL_SUPPORT_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace longnail {
namespace json {

class Value;

/** Object member list; insertion-ordered, linear lookup. */
using Members = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(int n) : kind_(Kind::Number), num_(double(n)) {}
    Value(int64_t n) : kind_(Kind::Number), num_(double(n)) {}
    Value(uint64_t n) : kind_(Kind::Number), num_(double(n)) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }
    const std::vector<Value> &items() const { return items_; }
    const Members &members() const { return members_; }

    /** Append to an array value. */
    void push(Value v) { items_.push_back(std::move(v)); }
    /** Set (or overwrite) an object member. */
    void set(const std::string &key, Value v);
    /** Member lookup; null when absent or not an object. */
    const Value *find(const std::string &key) const;

    // Typed member accessors with defaults (for protocol decoding).
    std::string getString(const std::string &key,
                          const std::string &dflt = "") const;
    double getNumber(const std::string &key, double dflt = 0.0) const;
    bool getBool(const std::string &key, bool dflt = false) const;

    /** Compact serialization (no whitespace, keys in stored order). */
    std::string emit() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> items_;
    Members members_;
};

/**
 * Parse one JSON document. @p error (when non-null) receives a
 * human-readable description with byte offset on failure. Trailing
 * non-whitespace after the document is an error. Nesting depth is
 * capped (hostile inputs must not overflow the stack).
 */
std::optional<Value> parse(const std::string &text,
                           std::string *error = nullptr);

/** Escape @p s for inclusion in a double-quoted JSON string. */
std::string escape(const std::string &s);

} // namespace json
} // namespace longnail

#endif // LONGNAIL_SUPPORT_JSON_HH
