/**
 * @file
 * Unix-domain stream sockets with length-prefixed frames -- the
 * transport under the compile-server wire protocol
 * (docs/compile-server.md).
 *
 * A frame is a 4-byte little-endian payload length followed by that
 * many payload bytes (JSON text at the protocol layer; the transport
 * does not care). recvFrame() enforces a caller-chosen maximum length
 * BEFORE allocating, so a hostile 0xFFFFFFFF prefix cannot balloon
 * memory (the PR 5 Cache.HugeBlobLengthEntryIsCorrupt lesson applied
 * to the wire), and distinguishes timeout / clean close / truncation
 * so the server can reply, log, or drop precisely.
 *
 * All operations are blocking with explicit poll()-based timeouts; a
 * second "wake" fd (the signals self-pipe) can interrupt waits for
 * graceful drain. Nothing here throws; errors are return values.
 */

#ifndef LONGNAIL_SUPPORT_SOCKET_HH
#define LONGNAIL_SUPPORT_SOCKET_HH

#include <cstdint>
#include <string>

namespace longnail {
namespace net {

/** Outcome of one frame or connection operation. */
enum class IoStatus
{
    Ok,
    Timeout,   ///< poll timeout (or wake fd fired) before completion
    Closed,    ///< orderly EOF at a frame boundary
    Truncated, ///< EOF inside a frame (hostile or crashed peer)
    Oversize,  ///< length prefix exceeds the caller's limit
    Error,     ///< errno-level failure
};

const char *ioStatusName(IoStatus status);

/** One connected stream; owns its fd. Movable, not copyable. */
class Connection
{
  public:
    Connection() = default;
    explicit Connection(int fd) : fd_(fd) {}
    ~Connection() { close(); }
    Connection(Connection &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Connection &
    operator=(Connection &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /**
     * Send one length-prefixed frame. Blocks until fully written.
     * @return Ok, or Error (peer gone / I/O failure).
     */
    IoStatus sendFrame(const std::string &payload);

    /**
     * Receive one frame into @p payload. @p timeout_ms < 0 blocks
     * indefinitely; @p max_len bounds the accepted payload length.
     * @p wake_fd (when >= 0) aborts the wait with Timeout when it
     * becomes readable -- the drain hook.
     */
    IoStatus recvFrame(std::string &payload, int timeout_ms,
                       uint32_t max_len, int wake_fd = -1);

  private:
    int fd_ = -1;
};

/** Connect to the Unix socket at @p path. */
Connection connectUnix(const std::string &path, std::string &error);

/** Listening Unix socket; unlinks the path on close. */
class Listener
{
  public:
    Listener() = default;
    ~Listener() { close(); }
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Bind + listen on @p path (an existing socket file is replaced).
     * @return false with @p error set on failure. */
    bool open(const std::string &path, std::string &error);

    /**
     * Accept one connection. @p timeout_ms < 0 blocks indefinitely;
     * @p wake_fd aborts with Timeout when readable. On Ok, @p out is
     * the accepted connection.
     */
    IoStatus accept(Connection &out, int timeout_ms, int wake_fd = -1);

    bool valid() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }
    void close();

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace net
} // namespace longnail

#endif // LONGNAIL_SUPPORT_SOCKET_HH
