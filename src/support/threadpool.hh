/**
 * @file
 * Work-stealing thread pool for batch compilation
 * (docs/batch-compilation.md).
 *
 * Each worker owns a deque: it pushes and pops its own work at the
 * back (LIFO, cache-friendly) and steals from other workers' fronts
 * (FIFO, grabs the oldest -- typically largest -- task). Tasks must
 * not throw; a catch-all in the worker loop swallows anything that
 * escapes so one bad unit cannot take down the batch.
 *
 * Determinism note: the pool executes tasks in a nondeterministic
 * order by design. Batch compilation keeps its outputs deterministic
 * by routing every task's results into a pre-sized slot vector and
 * emitting them sorted after wait() returns.
 */

#ifndef LONGNAIL_SUPPORT_THREADPOOL_HH
#define LONGNAIL_SUPPORT_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace longnail {

class ThreadPool
{
  public:
    /** Spawn @p threads workers; 0 means one per hardware thread. */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Safe to call from any thread, including workers. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    size_t threadCount() const { return workers_.size(); }

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(size_t index);
    bool tryRunOne(size_t self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    // Sleep/wake protocol: submit() enqueues the task FIRST, then
    // bumps gen_ under cvMutex_ and notifies; workers re-scan all
    // queues whenever gen_ moved, so a task enqueued between a failed
    // scan and the wait cannot be lost. (The enqueue-before-bump order
    // is load-bearing: a worker that sees the new generation must be
    // able to find the task on rescan.)
    std::mutex cvMutex_;
    std::condition_variable cv_;
    uint64_t gen_ = 0;
    bool stop_ = false;

    std::mutex idleMutex_;
    std::condition_variable idleCv_;
    size_t outstanding_ = 0; // guarded by idleMutex_

    std::size_t nextQueue_ = 0; // round-robin submit target; cvMutex_
};

} // namespace longnail

#endif // LONGNAIL_SUPPORT_THREADPOOL_HH
