/**
 * @file
 * Work-stealing thread pool for batch compilation
 * (docs/batch-compilation.md).
 *
 * Each worker owns a deque: it pushes and pops its own work at the
 * back (LIFO, cache-friendly) and steals from other workers' fronts
 * (FIFO, grabs the oldest -- typically largest -- task). Tasks must
 * not throw; a catch-all in the worker loop swallows anything that
 * escapes so one bad unit cannot take down the batch.
 *
 * Determinism note: the pool executes tasks in a nondeterministic
 * order by design. Batch compilation keeps its outputs deterministic
 * by routing every task's results into a pre-sized slot vector and
 * emitting them sorted after wait() returns.
 */

#ifndef LONGNAIL_SUPPORT_THREADPOOL_HH
#define LONGNAIL_SUPPORT_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace longnail {

class ThreadPool
{
  public:
    /** Spawn @p threads workers; 0 means one per hardware thread. */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task. Safe to call from any thread, including workers.
     * @return false (without enqueueing) once the pool is draining --
     * callers that spawn follow-up work must treat a rejected submit
     * as "this work will never run" and settle it themselves (the
     * compile server replies "draining" to such requests).
     */
    bool submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    /** What drain() does with tasks still sitting in the queues. */
    enum class DrainPolicy
    {
        RunQueued,     ///< finish everything already accepted
        DiscardQueued, ///< drop queued tasks; running ones finish
    };

    /**
     * Stop accepting work (submit() returns false from now on), then
     * either run or discard the queued backlog and block until every
     * running task has finished. Idempotent; safe to call while
     * workers are mid-task and while tasks try to spawn tasks. The
     * pool stays drained permanently -- this is shutdown, not pause.
     * @return the number of discarded tasks.
     */
    size_t drain(DrainPolicy policy = DrainPolicy::RunQueued);

    /** True once drain() was called (new submits are rejected). */
    bool draining() const;

    size_t threadCount() const { return workers_.size(); }

    /** Tasks accepted but not yet picked up by a worker (a snapshot;
     * the compile server reports it as queue depth). */
    size_t queuedCount() const;

  private:
    struct WorkerQueue
    {
        mutable std::mutex mutex; // mutable: queuedCount() is const
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(size_t index);
    bool tryRunOne(size_t self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    // Sleep/wake protocol: submit() enqueues the task FIRST, then
    // bumps gen_ under cvMutex_ and notifies; workers re-scan all
    // queues whenever gen_ moved, so a task enqueued between a failed
    // scan and the wait cannot be lost. (The enqueue-before-bump order
    // is load-bearing: a worker that sees the new generation must be
    // able to find the task on rescan.)
    std::mutex cvMutex_;
    std::condition_variable cv_;
    uint64_t gen_ = 0;
    bool stop_ = false;
    // Set by drain() under cvMutex_ and read by submit(); also
    // mirrored in an atomic so draining() needs no lock.
    std::atomic<bool> draining_{false};

    std::mutex idleMutex_;
    std::condition_variable idleCv_;
    size_t outstanding_ = 0; // guarded by idleMutex_

    std::size_t nextQueue_ = 0; // round-robin submit target; cvMutex_
};

} // namespace longnail

#endif // LONGNAIL_SUPPORT_THREADPOOL_HH
