#include "support/apint.hh"

#include <algorithm>
#include <cctype>

#include "support/logging.hh"

namespace longnail {

size_t
ApInt::wordsForBits(unsigned bits)
{
    return (bits + wordBits - 1) / wordBits;
}

ApInt::ApInt(unsigned width, uint64_t value) : width_(width)
{
    if (width == 0 || width > maxWidth)
        LN_PANIC("invalid ApInt width ", width);
    words_.assign(wordsForBits(width), 0);
    words_[0] = value;
    clearUnusedBits();
}

ApInt
ApInt::fromInt64(unsigned width, int64_t value)
{
    ApInt r(width);
    uint64_t fill = value < 0 ? ~uint64_t(0) : 0;
    for (size_t i = 0; i < r.words_.size(); ++i)
        r.words_[i] = fill;
    r.words_[0] = static_cast<uint64_t>(value);
    r.clearUnusedBits();
    return r;
}

ApInt
ApInt::fromString(const std::string &text, unsigned radix)
{
    if (radix != 2 && radix != 8 && radix != 10 && radix != 16)
        LN_PANIC("unsupported radix ", radix);

    // Generous initial width; callers shrink via activeBits().
    unsigned bits_per_digit = radix == 2 ? 1 : radix == 8 ? 3 : 4;
    unsigned est = std::max<unsigned>(1, text.size() * bits_per_digit + 1);
    ApInt r(std::min(est, maxWidth));
    ApInt radix_val(r.width(), radix);

    for (char c : text) {
        if (c == '_')
            continue;
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            LN_PANIC("bad digit '", c, "' in integer literal");
        if (digit >= radix)
            LN_PANIC("digit '", c, "' out of range for radix ", radix);
        r = r * radix_val + ApInt(r.width(), digit);
    }

    unsigned active = std::max(1u, r.activeBits());
    return r.trunc(active);
}

ApInt
ApInt::allOnes(unsigned width)
{
    ApInt r(width);
    for (auto &w : r.words_)
        w = ~uint64_t(0);
    r.clearUnusedBits();
    return r;
}

ApInt
ApInt::oneBit(unsigned width, unsigned pos)
{
    ApInt r(width);
    r.setBit(pos, true);
    return r;
}

void
ApInt::clearUnusedBits()
{
    unsigned used = width_ % wordBits;
    if (used != 0)
        words_.back() &= (~uint64_t(0)) >> (wordBits - used);
}

bool
ApInt::getBit(unsigned pos) const
{
    if (pos >= width_)
        LN_PANIC("bit index ", pos, " out of range for width ", width_);
    return (words_[pos / wordBits] >> (pos % wordBits)) & 1;
}

void
ApInt::setBit(unsigned pos, bool value)
{
    if (pos >= width_)
        LN_PANIC("bit index ", pos, " out of range for width ", width_);
    uint64_t mask = uint64_t(1) << (pos % wordBits);
    if (value)
        words_[pos / wordBits] |= mask;
    else
        words_[pos / wordBits] &= ~mask;
}

bool
ApInt::isZero() const
{
    for (uint64_t w : words_)
        if (w != 0)
            return false;
    return true;
}

bool
ApInt::isAllOnes() const
{
    return *this == allOnes(width_);
}

unsigned
ApInt::activeBits() const
{
    for (size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != 0) {
            unsigned top = wordBits - __builtin_clzll(words_[i]);
            return i * wordBits + top;
        }
    }
    return 0;
}

unsigned
ApInt::minSignedBits() const
{
    if (isNegative()) {
        // Width of the magnitude of ~x, plus the sign bit.
        ApInt inv = ~*this;
        return inv.activeBits() + 1;
    }
    return activeBits() + 1;
}

ApInt
ApInt::zext(unsigned new_width) const
{
    if (new_width < width_)
        LN_PANIC("zext to smaller width");
    ApInt r(new_width);
    std::copy(words_.begin(), words_.end(), r.words_.begin());
    return r;
}

ApInt
ApInt::sext(unsigned new_width) const
{
    if (new_width < width_)
        LN_PANIC("sext to smaller width");
    ApInt r(new_width);
    if (!isNegative()) {
        std::copy(words_.begin(), words_.end(), r.words_.begin());
        return r;
    }
    for (auto &w : r.words_)
        w = ~uint64_t(0);
    std::copy(words_.begin(), words_.end(), r.words_.begin());
    // Re-set the sign-extension bits within the boundary word.
    unsigned used = width_ % wordBits;
    if (used != 0)
        r.words_[words_.size() - 1] |= (~uint64_t(0)) << used;
    r.clearUnusedBits();
    return r;
}

ApInt
ApInt::trunc(unsigned new_width) const
{
    if (new_width > width_)
        LN_PANIC("trunc to larger width");
    ApInt r(new_width);
    std::copy(words_.begin(), words_.begin() + r.words_.size(),
              r.words_.begin());
    r.clearUnusedBits();
    return r;
}

ApInt
ApInt::zextOrTrunc(unsigned new_width) const
{
    return new_width >= width_ ? zext(new_width) : trunc(new_width);
}

ApInt
ApInt::sextOrTrunc(unsigned new_width) const
{
    return new_width >= width_ ? sext(new_width) : trunc(new_width);
}

ApInt
ApInt::operator+(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in add: ", width_, " vs ", rhs.width_);
    ApInt r(width_);
    unsigned __int128 carry = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
        unsigned __int128 sum = (unsigned __int128)words_[i] +
                                rhs.words_[i] + carry;
        r.words_[i] = static_cast<uint64_t>(sum);
        carry = sum >> wordBits;
    }
    r.clearUnusedBits();
    return r;
}

ApInt
ApInt::operator-(const ApInt &rhs) const
{
    return *this + rhs.negate();
}

ApInt
ApInt::negate() const
{
    ApInt r = ~*this;
    return r + ApInt(width_, 1);
}

ApInt
ApInt::operator*(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in mul: ", width_, " vs ", rhs.width_);
    ApInt r(width_);
    size_t n = words_.size();
    for (size_t i = 0; i < n; ++i) {
        if (words_[i] == 0)
            continue;
        unsigned __int128 carry = 0;
        for (size_t j = 0; i + j < n; ++j) {
            unsigned __int128 cur = (unsigned __int128)words_[i] *
                                        rhs.words_[j] +
                                    r.words_[i + j] + carry;
            r.words_[i + j] = static_cast<uint64_t>(cur);
            carry = cur >> wordBits;
        }
    }
    r.clearUnusedBits();
    return r;
}

int
ApInt::ucmp(const ApInt &rhs) const
{
    for (size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != rhs.words_[i])
            return words_[i] < rhs.words_[i] ? -1 : 1;
    }
    return 0;
}

void
ApInt::udivrem(const ApInt &lhs, const ApInt &rhs, ApInt &quot, ApInt &rem)
{
    if (rhs.isZero())
        LN_PANIC("division by zero");
    unsigned w = lhs.width_;
    quot = ApInt(w);
    rem = ApInt(w);
    // Binary long division, MSB first.
    for (unsigned i = w; i-- > 0;) {
        rem = rem.shl(1);
        if (lhs.getBit(i))
            rem.setBit(0, true);
        if (rem.ucmp(rhs) >= 0) {
            rem = rem - rhs;
            quot.setBit(i, true);
        }
    }
}

ApInt
ApInt::udiv(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in udiv");
    ApInt q(width_), r(width_);
    udivrem(*this, rhs, q, r);
    return q;
}

ApInt
ApInt::urem(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in urem");
    ApInt q(width_), r(width_);
    udivrem(*this, rhs, q, r);
    return r;
}

ApInt
ApInt::sdiv(const ApInt &rhs) const
{
    // C-style truncating division.
    bool neg_l = isNegative(), neg_r = rhs.isNegative();
    ApInt lhs_mag = neg_l ? negate() : *this;
    ApInt rhs_mag = neg_r ? rhs.negate() : rhs;
    ApInt q = lhs_mag.udiv(rhs_mag);
    return (neg_l != neg_r) ? q.negate() : q;
}

ApInt
ApInt::srem(const ApInt &rhs) const
{
    // Remainder takes the sign of the dividend.
    bool neg_l = isNegative();
    ApInt lhs_mag = neg_l ? negate() : *this;
    ApInt rhs_mag = rhs.isNegative() ? rhs.negate() : rhs;
    ApInt r = lhs_mag.urem(rhs_mag);
    return neg_l ? r.negate() : r;
}

ApInt
ApInt::operator&(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in and");
    ApInt r(width_);
    for (size_t i = 0; i < words_.size(); ++i)
        r.words_[i] = words_[i] & rhs.words_[i];
    return r;
}

ApInt
ApInt::operator|(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in or");
    ApInt r(width_);
    for (size_t i = 0; i < words_.size(); ++i)
        r.words_[i] = words_[i] | rhs.words_[i];
    return r;
}

ApInt
ApInt::operator^(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in xor");
    ApInt r(width_);
    for (size_t i = 0; i < words_.size(); ++i)
        r.words_[i] = words_[i] ^ rhs.words_[i];
    return r;
}

ApInt
ApInt::operator~() const
{
    ApInt r(width_);
    for (size_t i = 0; i < words_.size(); ++i)
        r.words_[i] = ~words_[i];
    r.clearUnusedBits();
    return r;
}

ApInt
ApInt::shl(unsigned amount) const
{
    ApInt r(width_);
    if (amount >= width_)
        return r;
    unsigned word_shift = amount / wordBits;
    unsigned bit_shift = amount % wordBits;
    for (size_t i = words_.size(); i-- > word_shift;) {
        uint64_t v = words_[i - word_shift] << bit_shift;
        if (bit_shift != 0 && i - word_shift > 0)
            v |= words_[i - word_shift - 1] >> (wordBits - bit_shift);
        r.words_[i] = v;
    }
    r.clearUnusedBits();
    return r;
}

ApInt
ApInt::lshr(unsigned amount) const
{
    ApInt r(width_);
    if (amount >= width_)
        return r;
    unsigned word_shift = amount / wordBits;
    unsigned bit_shift = amount % wordBits;
    for (size_t i = 0; i + word_shift < words_.size(); ++i) {
        uint64_t v = words_[i + word_shift] >> bit_shift;
        if (bit_shift != 0 && i + word_shift + 1 < words_.size())
            v |= words_[i + word_shift + 1] << (wordBits - bit_shift);
        r.words_[i] = v;
    }
    return r;
}

ApInt
ApInt::ashr(unsigned amount) const
{
    if (!isNegative())
        return lshr(amount);
    if (amount >= width_)
        return allOnes(width_);
    // lshr, then fill the vacated high bits with ones.
    ApInt r = lshr(amount);
    for (unsigned i = width_ - amount; i < width_; ++i)
        r.setBit(i, true);
    return r;
}

bool
ApInt::operator==(const ApInt &rhs) const
{
    return width_ == rhs.width_ && words_ == rhs.words_;
}

bool
ApInt::ult(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in ult");
    return ucmp(rhs) < 0;
}

bool
ApInt::slt(const ApInt &rhs) const
{
    if (width_ != rhs.width_)
        LN_PANIC("width mismatch in slt");
    bool neg_l = isNegative(), neg_r = rhs.isNegative();
    if (neg_l != neg_r)
        return neg_l;
    return ucmp(rhs) < 0;
}

ApInt
ApInt::extract(unsigned lo, unsigned count) const
{
    if (count == 0 || lo + count > width_)
        LN_PANIC("extract [", lo + count - 1, ":", lo,
                 "] out of range for width ", width_);
    return lshr(lo).trunc(count);
}

ApInt
ApInt::concat(const ApInt &low) const
{
    unsigned w = width_ + low.width_;
    return zext(w).shl(low.width_) | low.zext(w);
}

uint64_t
ApInt::toUint64() const
{
    return words_[0];
}

int64_t
ApInt::toInt64() const
{
    if (width_ >= 64)
        return static_cast<int64_t>(words_[0]);
    uint64_t v = words_[0];
    if (isNegative())
        v |= (~uint64_t(0)) << width_;
    return static_cast<int64_t>(v);
}

uint64_t
ApInt::udivremWord(uint64_t divisor)
{
    unsigned __int128 rem = 0;
    for (size_t i = words_.size(); i-- > 0;) {
        unsigned __int128 cur = (rem << wordBits) | words_[i];
        words_[i] = static_cast<uint64_t>(cur / divisor);
        rem = cur % divisor;
    }
    return static_cast<uint64_t>(rem);
}

std::string
ApInt::toStringUnsigned(unsigned radix) const
{
    static const char *digits = "0123456789abcdef";
    if (radix != 2 && radix != 8 && radix != 10 && radix != 16)
        LN_PANIC("unsupported radix ", radix);
    if (isZero())
        return "0";
    std::string out;
    ApInt tmp = *this;
    while (!tmp.isZero()) {
        uint64_t d = tmp.udivremWord(radix);
        out.push_back(digits[d]);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
ApInt::toStringSigned() const
{
    if (!isNegative())
        return toStringUnsigned(10);
    return "-" + negate().toStringUnsigned(10);
}

} // namespace longnail
