#include "serve/memcache.hh"

#include "support/failpoint.hh"

namespace longnail {
namespace serve {

namespace {

/** Widened bypass rule: the disk cache only tolerates the `cache`
 * failpoint itself; the memory tier steps aside for that one too
 * (symmetry is cheaper than reasoning about which injected faults can
 * taint an in-memory entry). */
bool
faultInjectionActive()
{
    return !failpoint::armedNames().empty();
}

} // namespace

std::shared_ptr<const driver::CompileSummary>
MemCache::lookup(const std::string &key)
{
    if (maxEntries_ == 0 || faultInjectionActive())
        return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
}

void
MemCache::insert(const std::string &key,
                 std::shared_ptr<const driver::CompileSummary> summary)
{
    if (maxEntries_ == 0 || !summary || faultInjectionActive())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(summary);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(summary));
    index_.emplace(key, lru_.begin());
    while (lru_.size() > maxEntries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

void
MemCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

size_t
MemCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

} // namespace serve
} // namespace longnail
