/**
 * @file
 * The compile-server wire protocol (docs/compile-server.md).
 *
 * Transport: length-prefixed frames over a Unix-domain socket
 * (support/socket.hh); every frame payload is one JSON document.
 * Requests carry a "type" ("compile", "health", "stats", "metrics",
 * "dump", "ping", "shutdown") and an optional client-chosen "id"
 * echoed verbatim in the reply. Every request may also carry an
 * observability context: "rid" (the end-to-end request id; the server
 * mints one when absent and echoes it in the reply either way) and a
 * client trace context "traceId"/"spanId" that becomes the parent of
 * the server-side request span (docs/observability.md). Replies are
 * either:
 *
 *   - "result": the outcome of a compile -- the deterministic
 *     CompileSummary rendered to JSON, both for successes (artifacts)
 *     and ordinary compile failures (diagnostics). Server replies are
 *     byte-identical to one-shot CLI output for the same inputs
 *     because both render from the same CompileSummary.
 *   - "error": a serve-layer failure that never produced a summary:
 *     protocol errors (LN3101), oversize frames (LN3102), idle
 *     timeout (LN3103), admission shed (LN3110, with retryAfterMs),
 *     deadline exceeded (LN3111), draining (LN3112), injected server
 *     fault (LN3904).
 *   - "health" / "stats" / "metrics" / "dump" / "pong" / "ok":
 *     service replies.
 *
 * Everything here is shared by the server and the --connect client so
 * the two cannot drift.
 */

#ifndef LONGNAIL_SERVE_PROTOCOL_HH
#define LONGNAIL_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>

#include "driver/cache.hh"
#include "driver/longnail.hh"
#include "support/json.hh"

namespace longnail {
namespace serve {

/** Frame-size bounds (the Oversize guard in recvFrame). Requests are
 * bounded tightly -- a CoreDSL source is kilobytes; replies carry
 * generated SystemVerilog and get more headroom. */
constexpr uint32_t maxRequestFrame = 4u << 20;  // 4 MiB
constexpr uint32_t maxReplyFrame = 64u << 20;   // 64 MiB

// Serve-layer error codes (docs/failure-model.md).
inline constexpr const char *codeProtocol = "LN3101";
inline constexpr const char *codeOversize = "LN3102";
inline constexpr const char *codeIdleTimeout = "LN3103";
inline constexpr const char *codeOverloaded = "LN3110";
inline constexpr const char *codeDeadline = "LN3111";
inline constexpr const char *codeDraining = "LN3112";
inline constexpr const char *codeInjected = "LN3904";

/** What a parsed request asks for. */
enum class RequestKind
{
    Compile,
    Health,
    Stats,
    Metrics, ///< Prometheus text exposition of the server's Registry
    Dump,    ///< on-demand flight-recorder postmortem
    Ping,
    Shutdown
};

/** One decoded request frame. */
struct Request
{
    RequestKind kind = RequestKind::Ping;
    /** Client-chosen correlation id, echoed in the reply ("" = none). */
    std::string id;

    // Observability context (any request kind; all optional).
    /** End-to-end request id; server mints "s<n>" when empty. */
    std::string rid;
    /** Client trace context: the server request span is parented under
     * this client span in the merged Chrome trace. */
    std::string traceId;
    std::string spanId;

    // Compile-only fields.
    std::string unitName; ///< display name for diagnostics/artifacts
    std::string source;
    std::string target;
    driver::CompileOptions options;
    /** Per-request deadline in ms; < 0 = use the server default. A
     * deadline of 0 is already expired (deterministic timeout tests). */
    long deadlineMs = -1;
};

/**
 * Parse and validate one request payload. Returns std::nullopt with
 * @p error set on malformed JSON, a missing/unknown "type", or bad
 * compile fields -- the server turns that into an LN3101 reply.
 */
std::optional<Request> parseRequest(const std::string &payload,
                                    std::string &error);

/** Serialize @p request (the client side of parseRequest). */
std::string emitRequest(const Request &request);

/** Encode/decode the CompileOptions subset that travels on the wire
 * (core, timing, cycle time, base set, error caps, lint/validate/
 * verify-ir flags, warning policy). Kept symmetric so client and
 * server agree on the cache key's input closure. */
json::Value encodeOptions(const driver::CompileOptions &options);
bool decodeOptions(const json::Value &obj,
                   driver::CompileOptions &options, std::string &error);

/** Build a "result" reply from the deterministic compile summary.
 * @p rid, when non-empty, is echoed so the client can correlate the
 * reply with the server's log records. */
std::string emitResultReply(const driver::CompileSummary &summary,
                            const std::string &id,
                            const std::string &cacheTier,
                            const std::string &rid = "");

/** Build an "error" reply. @p retry_after_ms >= 0 adds retryAfterMs
 * (the shed reply's backpressure hint). */
std::string emitErrorReply(const std::string &code,
                           const std::string &message,
                           const std::string &id,
                           long retry_after_ms = -1,
                           const std::string &rid = "");

/** A decoded reply (the client side). */
struct Reply
{
    std::string type; ///< "result", "error", "health", "stats", ...
    std::string id;
    /** Request id the server processed this request under. */
    std::string rid;
    // "result" fields.
    driver::CompileSummary summary;
    std::string cacheTier; ///< "mem", "disk" or "fresh"
    // "error" fields.
    std::string code;
    std::string message;
    long retryAfterMs = -1;
    /** Raw JSON for service replies (health/stats). */
    json::Value raw;
};

/** Parse one reply payload; std::nullopt + @p error when malformed. */
std::optional<Reply> parseReply(const std::string &payload,
                                std::string &error);

} // namespace serve
} // namespace longnail

#endif // LONGNAIL_SERVE_PROTOCOL_HH
