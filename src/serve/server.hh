/**
 * @file
 * The `longnail --serve` compile server (docs/compile-server.md).
 *
 * A long-running daemon on a Unix-domain socket: clients send
 * length-prefixed JSON compile requests (serve/protocol.hh) and get
 * back the same deterministic CompileSummary the one-shot CLI renders,
 * byte-identical artifacts included. Concurrency comes from one
 * handler thread per connection dispatching compile work onto a shared
 * work-stealing ThreadPool; artifacts come from a three-tier lookup
 * (in-memory LRU, then the on-disk content-addressed store, then a
 * fresh compile).
 *
 * Robustness properties (each pinned by tests/serve/):
 *
 *   - Admission control: at most `admissionMax` compile requests are
 *     in flight; excess requests are shed immediately with an LN3110
 *     "overloaded" reply carrying a retry-after hint, instead of
 *     queueing unboundedly.
 *   - Deadlines: a request's `deadlineMs` arms a CancelToken polled at
 *     pipeline phase boundaries; an expired request gets a structured
 *     LN3111 reply while concurrent requests are unaffected.
 *   - Fault isolation: a request that trips a failpoint (including the
 *     dedicated `serve` failpoint, LN3904) gets a structured error
 *     reply; the daemon never dies with it.
 *   - Graceful drain: on SIGINT/SIGTERM (or a `shutdown` request) the
 *     server stops accepting, lets in-flight requests finish or
 *     deadline out within a grace period, answers every blocked client
 *     (LN3112 "draining"), flushes caches, sweeps cache temp files and
 *     returns so the CLI can exit 0.
 */

#ifndef LONGNAIL_SERVE_SERVER_HH
#define LONGNAIL_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "driver/batch.hh"
#include "serve/memcache.hh"
#include "serve/protocol.hh"
#include "support/cancel.hh"
#include "support/socket.hh"
#include "support/threadpool.hh"

namespace longnail {
namespace serve {

struct ServeOptions
{
    std::string socketPath;
    /** Compile worker threads; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Max concurrently admitted compile requests; beyond this the
     * server sheds with LN3110 instead of queueing unboundedly. */
    unsigned admissionMax = 8;
    /** retryAfterMs hint attached to shed replies. */
    long retryAfterMs = 100;
    /** Close connections silent for this long (LN3103). <= 0 waits
     * forever. */
    long idleTimeoutMs = 30000;
    /** Deadline applied to requests that do not send their own;
     * 0 = none. */
    long defaultDeadlineMs = 0;
    /** How long drain waits for in-flight requests before cancelling
     * their tokens. */
    long drainGraceMs = 2000;
    /** In-memory hot cache bound; 0 disables the memory tier. */
    size_t memCacheEntries = 64;
    /** On-disk artifact cache; empty disables the disk tier. */
    std::string cacheDir;
    size_t cacheMaxEntries = 0;
    /** Structured JSONL event log ("-" = stderr, "" = off). The server
     * owns the EventLog lifetime: opened in run(), closed after
     * drain. */
    std::string logPath;
    /** Chrome trace written at shutdown ("" = off). */
    std::string tracePath;
    /** Prometheus exposition written at shutdown ("" = off). */
    std::string metricsPath;
    /** Flight-recorder postmortem directory ("" = postmortems off). */
    std::string postmortemDir;
    /**
     * External stop request (the CLI passes signals::token() so
     * SIGINT/SIGTERM initiate drain); polled by the accept loop.
     */
    const CancelToken *stopToken = nullptr;
};

/** What happened over one serve lifetime (returned by run()). */
struct ServeStats
{
    uint64_t connections = 0;
    uint64_t requests = 0; ///< every parsed request, any kind
    uint64_t compiles = 0; ///< fresh compiles actually run
    uint64_t memHits = 0;
    uint64_t diskHits = 0;
    uint64_t shed = 0;
    uint64_t deadlineMisses = 0;
    uint64_t drainRejects = 0; ///< LN3112 replies
    uint64_t protocolErrors = 0;
    uint64_t idleTimeouts = 0;
    uint64_t injectedFaults = 0;
    size_t tmpFilesRemoved = 0;
};

class Server
{
  public:
    explicit Server(ServeOptions options);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve until a stop is requested (stopToken, requestStop() or a
     * `shutdown` request), then drain gracefully and return the
     * lifetime stats. @return false with @p error set only when the
     * socket could not be opened -- once serving, all failures are
     * per-connection and run() still returns true.
     */
    bool run(ServeStats &stats, std::string &error);

    /** True once the socket is accepting (for tests that spawn run()
     * on a thread and need to know when to connect). */
    bool ready() const { return ready_.load(); }

    /** Initiate graceful drain from another thread (idempotent). */
    void requestStop();

  private:
    struct ConnState
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void handleConnection(net::Connection conn);
    /** Dispatch one request. @p outcome (for the reply log record and
     * the serve.outcome.* counters): "ok", "shed", "deadline",
     * "drain", "fault" or "compile-error". */
    std::string handleRequest(const Request &request,
                              std::string &outcome);
    std::string handleCompile(const Request &request,
                              std::string &outcome);
    /** handleCompile's body; split out so the wrapper can time it and
     * attribute the latency to outcome and cache tier. @p tier is set
     * for summary-producing outcomes ("mem", "disk", "fresh"). */
    std::string compileReply(const Request &request,
                             std::string &outcome, std::string &tier);
    void shutdownPhase(ServeStats &stats);
    void reapConnections(bool join_all);

    ServeOptions options_;
    MemCache memCache_;
    std::unique_ptr<ThreadPool> pool_;
    driver::SharedInputs shared_;
    net::Listener listener_;

    /** Self-pipe: written once at drain start; never drained, so every
     * blocked recvFrame/accept poll sees it (level-triggered). */
    int drainPipe_[2] = {-1, -1};
    std::atomic<bool> draining_{false};
    std::atomic<bool> ready_{false};

    std::mutex connMutex_;
    std::vector<std::unique_ptr<ConnState>> connections_;

    /** Tokens of in-flight compile requests; drain cancels them after
     * the grace period. */
    std::mutex tokensMutex_;
    std::set<CancelToken *> activeTokens_;
    std::atomic<unsigned> inFlight_{0};

    // Lifetime tallies (mirrored into ServeStats at shutdown).
    std::atomic<uint64_t> connections2_{0};
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> compiles_{0};
    std::atomic<uint64_t> diskHits_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> deadlineMisses_{0};
    std::atomic<uint64_t> drainRejects_{0};
    std::atomic<uint64_t> protocolErrors_{0};
    std::atomic<uint64_t> idleTimeouts_{0};
    std::atomic<uint64_t> injectedFaults_{0};

    /** Mints "s<n>" request ids for requests that arrive without one. */
    std::atomic<uint64_t> ridCounter_{0};
    /** True when run() opened the EventLog (and must close it). */
    bool ownsEventLog_ = false;
};

} // namespace serve
} // namespace longnail

#endif // LONGNAIL_SERVE_SERVER_HH
