#include "serve/server.hh"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <fstream>

#include "driver/cache.hh"
#include "obs/flightrec.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "support/failpoint.hh"

namespace longnail {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

long
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - since)
        .count();
}

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
    case RequestKind::Compile:
        return "compile";
    case RequestKind::Health:
        return "health";
    case RequestKind::Stats:
        return "stats";
    case RequestKind::Metrics:
        return "metrics";
    case RequestKind::Dump:
        return "dump";
    case RequestKind::Ping:
        return "ping";
    case RequestKind::Shutdown:
        return "shutdown";
    }
    return "unknown";
}

} // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)), memCache_(options_.memCacheEntries)
{
}

Server::~Server()
{
    for (int fd : drainPipe_)
        if (fd >= 0)
            ::close(fd);
}

void
Server::requestStop()
{
    // draining_ is set BEFORE the pipe write: anyone woken by the pipe
    // observes draining_ == true, so a recvFrame Timeout with the flag
    // clear is always a genuine idle timeout.
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    if (drainPipe_[1] >= 0) {
        char byte = 'x';
        // Never drained: level-triggered so every poller, present and
        // future, sees it.
        (void)!::write(drainPipe_[1], &byte, 1);
    }
}

bool
Server::run(ServeStats &stats, std::string &error)
{
    if (options_.socketPath.empty()) {
        error = "serve: no socket path";
        return false;
    }
    if (::pipe(drainPipe_) != 0) {
        error = "serve: cannot create drain pipe";
        return false;
    }
    if (!listener_.open(options_.socketPath, error))
        return false;

    // The metrics registry backs the `stats` request type; serving
    // without it would make that reply permanently empty.
    obs::setEnabled(true);

    if (!options_.logPath.empty()) {
        std::string log_error;
        if (!obs::EventLog::instance().open(options_.logPath, log_error)) {
            error = "serve: " + log_error;
            return false;
        }
        ownsEventLog_ = true;
    }
    if (!options_.postmortemDir.empty()) {
        obs::flightrec::setPostmortemDir(options_.postmortemDir);
        obs::flightrec::installCrashHandler();
    }

    pool_ = std::make_unique<ThreadPool>(options_.jobs);
    ready_.store(true);
    obs::count("serve.started");
    obs::logEvent(obs::LogLevel::Info, "serve.start",
                  {{"socket", options_.socketPath},
                   {"jobs", std::to_string(pool_->threadCount())},
                   {"admissionMax",
                    std::to_string(options_.admissionMax)}});
    obs::flightrec::note("serve", "start " + options_.socketPath);

    while (!draining_.load()) {
        if (options_.stopToken && options_.stopToken->stopRequested())
            requestStop();
        if (draining_.load())
            break;

        net::Connection conn;
        net::IoStatus st = listener_.accept(conn, 100, drainPipe_[0]);
        if (st == net::IoStatus::Ok) {
            connections2_.fetch_add(1);
            obs::count("serve.connections");
            auto state = std::make_unique<ConnState>();
            ConnState *raw = state.get();
            {
                std::lock_guard<std::mutex> lock(connMutex_);
                connections_.push_back(std::move(state));
            }
            raw->thread =
                std::thread([this, raw, c = std::move(conn)]() mutable {
                    handleConnection(std::move(c));
                    raw->done.store(true);
                });
        } else {
            // Timeout doubles as the periodic tick: reap finished
            // connection threads so a long-lived server does not
            // accumulate joined-out handles.
            reapConnections(false);
            if (st == net::IoStatus::Error && draining_.load())
                break;
        }
    }

    shutdownPhase(stats);
    return true;
}

void
Server::shutdownPhase(ServeStats &stats)
{
    requestStop(); // idempotent; covers the `shutdown`-request path
    listener_.close();

    // Grace period: give in-flight compiles a chance to finish on
    // their own before cancelling their tokens mid-pipeline.
    auto grace_start = Clock::now();
    while (inFlight_.load() > 0 &&
           elapsedMs(grace_start) < options_.drainGraceMs)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
        std::lock_guard<std::mutex> lock(tokensMutex_);
        for (CancelToken *token : activeTokens_)
            token->cancel();
    }

    // Handlers blocked on recvFrame woke via the drain pipe and reply
    // LN3112; handlers waiting on a compile job get their (now
    // cancelled) result and reply. Join them all BEFORE draining the
    // pool -- their queued jobs must still be able to run.
    reapConnections(true);
    pool_->drain(ThreadPool::DrainPolicy::RunQueued);

    memCache_.clear();
    if (!options_.cacheDir.empty())
        stats.tmpFilesRemoved =
            driver::cacheCleanupTmp(options_.cacheDir);

    stats.connections = connections2_.load();
    stats.requests = requests_.load();
    stats.compiles = compiles_.load();
    stats.memHits = memCache_.hits();
    stats.diskHits = diskHits_.load();
    stats.shed = shed_.load();
    stats.deadlineMisses = deadlineMisses_.load();
    stats.drainRejects = drainRejects_.load();
    stats.protocolErrors = protocolErrors_.load();
    stats.idleTimeouts = idleTimeouts_.load();
    stats.injectedFaults = injectedFaults_.load();

    obs::logEvent(obs::LogLevel::Info, "serve.stop",
                  {{"requests", std::to_string(stats.requests)},
                   {"compiles", std::to_string(stats.compiles)},
                   {"shed", std::to_string(stats.shed)},
                   {"deadlineMisses",
                    std::to_string(stats.deadlineMisses)}});
    obs::flightrec::note("serve", "stop");

    // Observability artifacts are written after the last worker is
    // gone, so the trace and exposition are complete snapshots.
    if (!options_.tracePath.empty()) {
        std::ofstream out(options_.tracePath, std::ios::binary);
        if (out)
            out << obs::Tracer::instance().toChromeJson();
    }
    if (!options_.metricsPath.empty()) {
        std::ofstream out(options_.metricsPath, std::ios::binary);
        if (out)
            out << obs::Registry::instance().toPrometheus();
    }
    if (ownsEventLog_)
        obs::EventLog::instance().close();
}

void
Server::reapConnections(bool join_all)
{
    std::vector<std::unique_ptr<ConnState>> to_join;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        if (join_all) {
            to_join.swap(connections_);
        } else {
            for (size_t i = 0; i < connections_.size();) {
                // done is set by the thread body, possibly before the
                // accept loop assigned the thread member; only reap
                // once both are true.
                if (connections_[i]->done.load() &&
                    connections_[i]->thread.joinable()) {
                    to_join.push_back(std::move(connections_[i]));
                    connections_[i] = std::move(connections_.back());
                    connections_.pop_back();
                } else {
                    ++i;
                }
            }
        }
    }
    for (auto &state : to_join) {
        // join_all can race the accept loop's thread assignment; spin
        // briefly until the member is joinable.
        while (!state->thread.joinable())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        state->thread.join();
    }
}

void
Server::handleConnection(net::Connection conn)
{
    while (true) {
        std::string payload;
        int timeout =
            options_.idleTimeoutMs > 0 ? int(options_.idleTimeoutMs) : -1;
        net::IoStatus st = conn.recvFrame(payload, timeout,
                                          maxRequestFrame, drainPipe_[0]);
        switch (st) {
        case net::IoStatus::Ok:
            break;
        case net::IoStatus::Timeout:
            if (draining_.load()) {
                drainRejects_.fetch_add(1);
                obs::count("serve.drain_rejects");
                conn.sendFrame(emitErrorReply(
                    codeDraining, "server draining; connection closed",
                    ""));
                return;
            }
            idleTimeouts_.fetch_add(1);
            obs::count("serve.idle_timeouts");
            conn.sendFrame(emitErrorReply(
                codeIdleTimeout,
                "idle timeout after " +
                    std::to_string(options_.idleTimeoutMs) + " ms",
                ""));
            return;
        case net::IoStatus::Closed:
            return;
        case net::IoStatus::Truncated:
            // Peer vanished mid-frame; nothing to reply to.
            protocolErrors_.fetch_add(1);
            obs::count("serve.protocol_errors");
            return;
        case net::IoStatus::Oversize:
            // The length prefix was read but the payload was not: the
            // stream is no longer frame-aligned, so reply and close.
            protocolErrors_.fetch_add(1);
            obs::count("serve.protocol_errors");
            conn.sendFrame(emitErrorReply(
                codeOversize,
                "request frame exceeds " +
                    std::to_string(maxRequestFrame) + " bytes",
                ""));
            return;
        case net::IoStatus::Error:
            return;
        }

        std::string parse_error;
        auto request = parseRequest(payload, parse_error);
        if (!request) {
            // Framing is intact (we read a complete frame), so the
            // connection stays usable after the error reply.
            protocolErrors_.fetch_add(1);
            obs::count("serve.protocol_errors");
            if (conn.sendFrame(emitErrorReply(
                    codeProtocol, "bad request: " + parse_error, "")) !=
                net::IoStatus::Ok)
                return;
            continue;
        }

        requests_.fetch_add(1);
        obs::count("serve.requests");

        // Adopt the client's request id, or mint a server-side one so
        // every request is greppable in the event log either way.
        if (request->rid.empty())
            request->rid = "s" + std::to_string(ridCounter_.fetch_add(1) + 1);
        obs::RequestScope scope(request->rid, request->traceId,
                                request->spanId);
        obs::logEvent(obs::LogLevel::Info, "serve.request",
                      {{"kind", requestKindName(request->kind)},
                       {"id", request->id}});
        std::string outcome = "ok";
        std::string reply = handleRequest(*request, outcome);
        obs::logEvent(obs::LogLevel::Info, "serve.reply",
                      {{"kind", requestKindName(request->kind)},
                       {"outcome", outcome}});
        if (conn.sendFrame(reply) != net::IoStatus::Ok)
            return;
        if (request->kind == RequestKind::Shutdown)
            return;
    }
}

std::string
Server::handleRequest(const Request &request, std::string &outcome)
{
    switch (request.kind) {
    case RequestKind::Ping: {
        json::Value obj = json::Value::object();
        obj.set("type", "pong");
        if (!request.id.empty())
            obj.set("id", request.id);
        obj.set("rid", request.rid);
        return obj.emit();
    }
    case RequestKind::Health: {
        json::Value obj = json::Value::object();
        obj.set("type", "health");
        if (!request.id.empty())
            obj.set("id", request.id);
        obj.set("rid", request.rid);
        obj.set("status", draining_.load() ? "draining" : "ok");
        obj.set("inFlight", uint64_t(inFlight_.load()));
        obj.set("admissionMax", uint64_t(options_.admissionMax));
        obj.set("memCacheEntries", uint64_t(memCache_.size()));
        return obj.emit();
    }
    case RequestKind::Stats: {
        json::Value obj = json::Value::object();
        obj.set("type", "stats");
        if (!request.id.empty())
            obj.set("id", request.id);
        obj.set("rid", request.rid);
        auto metrics = json::parse(obs::Registry::instance().toJson());
        obj.set("metrics", metrics ? std::move(*metrics)
                                   : json::Value::object());
        json::Value mc = json::Value::object();
        mc.set("entries", uint64_t(memCache_.size()));
        mc.set("hits", memCache_.hits());
        mc.set("misses", memCache_.misses());
        obj.set("memCache", std::move(mc));
        obj.set("inFlight", uint64_t(inFlight_.load()));
        obj.set("queueDepth", uint64_t(pool_ ? pool_->queuedCount() : 0));
        obj.set("admissionMax", uint64_t(options_.admissionMax));
        obj.set("draining", draining_.load());
        // Lifetime tallies, mirrored live (ServeStats only materializes
        // at shutdown; --top needs them while serving).
        json::Value server = json::Value::object();
        server.set("connections", connections2_.load());
        server.set("requests", requests_.load());
        server.set("compiles", compiles_.load());
        server.set("memHits", memCache_.hits());
        server.set("diskHits", diskHits_.load());
        server.set("shed", shed_.load());
        server.set("deadlineMisses", deadlineMisses_.load());
        server.set("drainRejects", drainRejects_.load());
        server.set("protocolErrors", protocolErrors_.load());
        server.set("idleTimeouts", idleTimeouts_.load());
        server.set("injectedFaults", injectedFaults_.load());
        obj.set("server", std::move(server));
        return obj.emit();
    }
    case RequestKind::Metrics: {
        json::Value obj = json::Value::object();
        obj.set("type", "metrics");
        if (!request.id.empty())
            obj.set("id", request.id);
        obj.set("rid", request.rid);
        obj.set("text", obs::Registry::instance().toPrometheus());
        return obj.emit();
    }
    case RequestKind::Dump: {
        obs::flightrec::note("dump", "on-demand dump request");
        std::string path = obs::flightrec::writePostmortem("dump");
        json::Value obj = json::Value::object();
        obj.set("type", "dump");
        if (!request.id.empty())
            obj.set("id", request.id);
        obj.set("rid", request.rid);
        if (!path.empty())
            obj.set("path", path);
        obj.set("text",
                obs::flightrec::renderEvents(obs::flightrec::snapshot()));
        return obj.emit();
    }
    case RequestKind::Shutdown: {
        requestStop();
        json::Value obj = json::Value::object();
        obj.set("type", "ok");
        if (!request.id.empty())
            obj.set("id", request.id);
        obj.set("rid", request.rid);
        obj.set("message", "draining");
        return obj.emit();
    }
    case RequestKind::Compile:
        return handleCompile(request, outcome);
    }
    return emitErrorReply(codeProtocol, "unreachable", request.id);
}

std::string
Server::handleCompile(const Request &request, std::string &outcome)
{
    // The request span covers the full server-side handling; when the
    // client sent a trace context, its ids ride along as args so the
    // merged Chrome trace shows this span under the client's span.
    obs::TraceSpan span("request");
    span.arg("kind", "compile");
    if (!request.id.empty())
        span.arg("id", request.id);
    if (!request.traceId.empty()) {
        span.arg("trace", request.traceId);
        span.arg("parent", request.spanId);
    }
    auto start = Clock::now();
    std::string tier;
    std::string reply = compileReply(request, outcome, tier);
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    // Latency split by cache tier for served summaries and by outcome
    // for everything else -- the exposition --top reads p50/p95/p99
    // from.
    obs::observe("serve.request_ms", ms);
    std::string split = outcome == "ok" ? tier : outcome;
    if (!split.empty())
        obs::observe(("serve.request_ms." + split).c_str(), ms);
    obs::count(("serve.outcome." + outcome).c_str());
    span.arg("outcome", outcome);
    if (!tier.empty())
        span.arg("tier", tier);
    return reply;
}

std::string
Server::compileReply(const Request &request, std::string &outcome,
                     std::string &tier)
{
    if (draining_.load()) {
        drainRejects_.fetch_add(1);
        obs::count("serve.drain_rejects");
        outcome = "drain";
        return emitErrorReply(codeDraining,
                              "server draining; no new work accepted",
                              request.id, -1, request.rid);
    }

    // Per-request fault isolation: the injected serve fault produces a
    // structured error reply for THIS request and nothing else -- the
    // soak test hammers this while concurrent requests succeed.
    if (failpoint::fire("serve") != failpoint::Mode::Off) {
        injectedFaults_.fetch_add(1);
        obs::count("serve.injected_faults");
        outcome = "fault";
        return emitErrorReply(codeInjected,
                              "injected fault at failpoint 'serve'",
                              request.id, -1, request.rid);
    }

    // Admission control: bounded concurrency, shed beyond it.
    unsigned admitted;
    {
        obs::TraceSpan admission_span("admission");
        admitted = inFlight_.fetch_add(1) + 1;
        admission_span.arg(
            "admitted", admitted <= options_.admissionMax ? "yes" : "no");
    }
    if (admitted > options_.admissionMax) {
        inFlight_.fetch_sub(1);
        shed_.fetch_add(1);
        obs::count("serve.shed");
        obs::flightrec::note("shed", "admission over " +
                                         std::to_string(
                                             options_.admissionMax));
        outcome = "shed";
        return emitErrorReply(
            codeOverloaded,
            "server overloaded (" +
                std::to_string(options_.admissionMax) +
                " requests in flight); retry after " +
                std::to_string(options_.retryAfterMs) + " ms",
            request.id, options_.retryAfterMs, request.rid);
    }
    struct AdmissionGuard
    {
        std::atomic<unsigned> &count;
        ~AdmissionGuard() { count.fetch_sub(1); }
    } admission_guard{inFlight_};

    // Per-request deadline token, registered so drain can cancel it.
    CancelToken token;
    long deadline_ms = -1;
    if (request.deadlineMs >= 0)
        deadline_ms = request.deadlineMs;
    else if (options_.defaultDeadlineMs > 0)
        deadline_ms = options_.defaultDeadlineMs;
    if (deadline_ms >= 0)
        token.setDeadlineAfterMs(deadline_ms);
    {
        std::lock_guard<std::mutex> lock(tokensMutex_);
        activeTokens_.insert(&token);
    }
    struct TokenGuard
    {
        Server &server;
        CancelToken &token;
        ~TokenGuard()
        {
            std::lock_guard<std::mutex> lock(server.tokensMutex_);
            server.activeTokens_.erase(&token);
        }
    } token_guard{*this, token};

    // Tiered lookup: memory, disk, fresh compile.
    std::string key =
        driver::cacheKey(request.source, request.target, request.options);
    {
        obs::TraceSpan cache_span("cache.lookup");
        if (auto hit = memCache_.lookup(key)) {
            obs::count("serve.mem_hits");
            cache_span.arg("tier", "mem");
            outcome = "ok";
            tier = "mem";
            return emitResultReply(*hit, request.id, "mem", request.rid);
        }
        if (!options_.cacheDir.empty()) {
            driver::CompileSummary cached;
            if (driver::cacheLoad(options_.cacheDir, key, cached) ==
                driver::CacheLookup::Hit) {
                diskHits_.fetch_add(1);
                obs::count("serve.disk_hits");
                cache_span.arg("tier", "disk");
                auto shared = std::make_shared<driver::CompileSummary>(
                    std::move(cached));
                memCache_.insert(key, shared);
                outcome = "ok";
                tier = "disk";
                return emitResultReply(*shared, request.id, "disk",
                                       request.rid);
            }
            // Corrupt/injected lookups fall through to a fresh compile
            // (fail-soft, same as batch mode).
        }
        cache_span.arg("tier", "miss");
    }

    driver::CompileOptions opts = request.options;
    opts.cancel = &token;
    auto tech = shared_.techlibFor(opts.timingMode);
    opts.techlib = tech.get();
    std::shared_ptr<const scaiev::Datasheet> sheet;
    if (!opts.datasheet) {
        sheet = shared_.datasheetFor(opts.coreName);
        if (sheet)
            opts.datasheet = sheet.get();
    }

    auto summary = std::make_shared<driver::CompileSummary>();
    // The done-handshake state is shared-owned by both the handler and
    // the pool task: the worker's notify_all() may still be executing
    // when the handler wakes and returns, so stack storage would be
    // destroyed under it.
    struct DoneState {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
    };
    auto done = std::make_shared<DoneState>();
    auto submitted_at = Clock::now();
    // The worker runs on a pool thread with no request context of its
    // own; re-enter the handler's scope there so phase spans, log
    // records and flight-recorder notes from the compile carry this
    // request's rid.
    obs::RequestContext ctx = obs::currentRequest();
    bool accepted = pool_->submit([&, summary, done, submitted_at, ctx] {
        obs::RequestScope scope(ctx.rid, ctx.traceId, ctx.parentSpan);
        if (obs::enabled()) {
            // Synthetic span covering the time the request sat in the
            // pool queue: submit time to pickup time, recorded on the
            // worker's track.
            obs::TraceEvent wait;
            wait.name = "queue.wait";
            wait.startUs = obs::traceTimeUs(submitted_at);
            wait.durUs = obs::traceNowUs() - wait.startUs;
            wait.tid = obs::traceThreadId();
            if (!ctx.rid.empty())
                wait.args.emplace_back("rid", ctx.rid);
            obs::observe("serve.queue_wait_ms", wait.durUs / 1000.0);
            obs::Tracer::instance().record(std::move(wait));
        }
        auto compiled =
            driver::compileWithRetry(request.source, request.target, opts);
        *summary = driver::summarize(compiled);
        {
            std::lock_guard<std::mutex> lock(done->mutex);
            done->done = true;
        }
        done->cv.notify_all();
    });
    if (!accepted) {
        drainRejects_.fetch_add(1);
        obs::count("serve.drain_rejects");
        outcome = "drain";
        return emitErrorReply(codeDraining,
                              "server draining; no new work accepted",
                              request.id, -1, request.rid);
    }
    {
        std::unique_lock<std::mutex> lock(done->mutex);
        done->cv.wait(lock, [&] { return done->done; });
    }
    compiles_.fetch_add(1);
    obs::count("serve.compiles");

    if (summary->ok) {
        if (!options_.cacheDir.empty())
            driver::cacheStore(options_.cacheDir, key, *summary,
                               options_.cacheMaxEntries);
        memCache_.insert(key, summary);
        outcome = "ok";
        tier = "fresh";
        return emitResultReply(*summary, request.id, "fresh",
                               request.rid);
    }

    // A compile that failed BECAUSE its token stopped it is a
    // serve-layer outcome, not a source-code failure: report it as a
    // structured timeout/drain error. A successful compile is returned
    // as a result even if the deadline expired at the last instant --
    // the work is done, discarding it would only waste it.
    if (token.deadlineExpired()) {
        deadlineMisses_.fetch_add(1);
        obs::count("serve.deadline_misses");
        obs::flightrec::note("deadline",
                             "LN3111 after " +
                                 std::to_string(deadline_ms) + " ms");
        obs::flightrec::writePostmortem("deadline");
        outcome = "deadline";
        return emitErrorReply(
            codeDeadline,
            "deadline of " + std::to_string(deadline_ms) +
                " ms exceeded; compile cancelled at a phase boundary",
            request.id, -1, request.rid);
    }
    if (token.stopRequested()) {
        drainRejects_.fetch_add(1);
        obs::count("serve.drain_rejects");
        outcome = "drain";
        return emitErrorReply(codeDraining,
                              "compile cancelled: server draining",
                              request.id, -1, request.rid);
    }
    // Ordinary compile failure: a full structured result with
    // diagnostics, exactly what the one-shot CLI would report.
    outcome = "compile-error";
    tier = "fresh";
    return emitResultReply(*summary, request.id, "fresh", request.rid);
}

} // namespace serve
} // namespace longnail
