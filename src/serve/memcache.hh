/**
 * @file
 * In-memory hot artifact cache for the compile server
 * (docs/compile-server.md).
 *
 * A bounded LRU of CompileSummary objects keyed by the same
 * content-addressed cacheKey() the on-disk store uses, tiered above
 * it: a serve-mode lookup tries memory first ("mem" tier), then the
 * disk store ("disk"), then compiles ("fresh"). Replay from either
 * tier is byte-identical to recompiling because all three paths render
 * from the same deterministic CompileSummary.
 *
 * The same safety rule as the disk cache applies, conservatively
 * widened: while ANY failpoint is armed the memory cache neither
 * serves nor admits entries -- fault-injected compiles can produce
 * degraded fail-soft artifacts that must never be replayed to a later
 * healthy request.
 *
 * Thread-safe; entries are immutable shared_ptrs, so a hit can be
 * rendered to the wire without copying under the lock.
 */

#ifndef LONGNAIL_SERVE_MEMCACHE_HH
#define LONGNAIL_SERVE_MEMCACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "driver/cache.hh"

namespace longnail {
namespace serve {

class MemCache
{
  public:
    /** @p max_entries bounds the cache; 0 disables it entirely. */
    explicit MemCache(size_t max_entries) : maxEntries_(max_entries) {}

    /** Lookup; null on miss (or while fault injection is active). A
     * hit moves the entry to most-recently-used. */
    std::shared_ptr<const driver::CompileSummary>
    lookup(const std::string &key);

    /** Admit @p summary (only ok compiles should be inserted), then
     * evict least-recently-used entries down to the bound. A no-op
     * while fault injection is active. */
    void insert(const std::string &key,
                std::shared_ptr<const driver::CompileSummary> summary);

    /** Drop everything (the drain path flushes before exit). */
    void clear();

    size_t size() const;
    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }

  private:
    size_t maxEntries_;
    mutable std::mutex mutex_;
    /** MRU first. */
    std::list<std::pair<std::string,
                        std::shared_ptr<const driver::CompileSummary>>>
        lru_;
    std::map<std::string, decltype(lru_)::iterator> index_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace serve
} // namespace longnail

#endif // LONGNAIL_SERVE_MEMCACHE_HH
